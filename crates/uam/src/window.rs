use std::collections::VecDeque;

/// An online sliding-window arrival counter.
///
/// Used by admission-control code (and the simulator's workload generators)
/// to decide, as arrivals happen, whether one more arrival at time `t` would
/// exceed a UAM's per-window maximum. Arrival times must be fed in
/// non-decreasing order.
///
/// # Examples
///
/// ```
/// use lfrt_uam::SlidingWindowCounter;
///
/// let mut counter = SlidingWindowCounter::new(100);
/// counter.record(0);
/// counter.record(10);
/// assert_eq!(counter.count_at(50), 2);
/// assert_eq!(counter.count_at(99), 2);
/// assert_eq!(counter.count_at(100), 1); // the arrival at 0 left the window (0, 100]
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindowCounter {
    window: u64,
    arrivals: VecDeque<u64>,
}

impl SlidingWindowCounter {
    /// Creates a counter over windows of length `window` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            arrivals: VecDeque::new(),
        }
    }

    /// Records an arrival at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than a previously recorded arrival.
    pub fn record(&mut self, t: u64) {
        if let Some(&last) = self.arrivals.back() {
            assert!(
                t >= last,
                "arrivals must be recorded in non-decreasing order"
            );
        }
        self.arrivals.push_back(t);
    }

    /// The number of recorded arrivals within the window ending at `now`,
    /// i.e. in `(now - W, now]`. Arrivals older than the window are evicted.
    pub fn count_at(&mut self, now: u64) -> u32 {
        let cutoff = now.saturating_sub(self.window);
        while let Some(&front) = self.arrivals.front() {
            // Window is (now - W, now]: an arrival exactly W ago has left it
            // when now >= front + W, i.e. front <= cutoff (for now >= W).
            if now >= self.window && front <= cutoff {
                self.arrivals.pop_front();
            } else {
                break;
            }
        }
        u32::try_from(self.arrivals.len()).unwrap_or(u32::MAX)
    }

    /// Whether recording one more arrival at `now` would keep the count in
    /// the window at or below `max`.
    pub fn admits(&mut self, now: u64, max: u32) -> bool {
        self.count_at(now) < max
    }

    /// The window length in ticks.
    pub fn window(&self) -> u64 {
        self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_at_window_boundary() {
        let mut c = SlidingWindowCounter::new(10);
        c.record(0);
        assert_eq!(c.count_at(9), 1);
        assert_eq!(c.count_at(10), 0); // window (0, 10] excludes arrival at 0
    }

    #[test]
    fn simultaneous_arrivals_counted() {
        let mut c = SlidingWindowCounter::new(10);
        c.record(5);
        c.record(5);
        c.record(5);
        assert_eq!(c.count_at(5), 3);
    }

    #[test]
    fn admits_respects_max() {
        let mut c = SlidingWindowCounter::new(100);
        assert!(c.admits(0, 2));
        c.record(0);
        assert!(c.admits(0, 2));
        c.record(0);
        assert!(!c.admits(50, 2));
        assert!(c.admits(101, 2)); // both arrivals have left the window
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_panics() {
        let mut c = SlidingWindowCounter::new(10);
        c.record(5);
        c.record(4);
    }
}
