//! Property-based tests for TUF invariants.

use lfrt_tuf::{Tuf, TufShape};
use proptest::prelude::*;

/// Strategy for a finite non-negative utility value.
fn utility() -> impl Strategy<Value = f64> {
    (0u32..1_000_000).prop_map(|v| v as f64 / 100.0)
}

/// Strategy for an arbitrary valid TUF plus its critical time.
fn arb_tuf() -> impl Strategy<Value = Tuf> {
    let c = 1u64..100_000;
    prop_oneof![
        (utility(), c.clone()).prop_map(|(h, c)| Tuf::step(h, c).expect("valid step")),
        (utility(), utility(), c.clone())
            .prop_map(|(a, b, c)| Tuf::linear(a, b, c).expect("valid linear")),
        (utility(), c.clone()).prop_map(|(p, c)| Tuf::parabolic(p, c).expect("valid parabolic")),
        (proptest::collection::vec(utility(), 1..8), c).prop_map(|(us, c)| {
            let step = (c / (us.len() as u64 + 1)).max(1);
            let points: Vec<(u64, f64)> = us
                .iter()
                .enumerate()
                .map(|(i, &u)| (i as u64 * step, u))
                .filter(|&(t, _)| t < c)
                .collect();
            Tuf::piecewise(points, c).expect("valid piecewise")
        }),
    ]
}

proptest! {
    /// Utility is zero at and after the critical time, for every shape.
    #[test]
    fn zero_at_and_after_critical_time(tuf in arb_tuf(), dt in 0u64..1_000_000) {
        let c = tuf.critical_time();
        prop_assert_eq!(tuf.utility(c), 0.0);
        prop_assert_eq!(tuf.utility(c.saturating_add(dt)), 0.0);
    }

    /// Utility is always finite and non-negative.
    #[test]
    fn utility_finite_non_negative(tuf in arb_tuf(), t in 0u64..1_000_000) {
        let u = tuf.utility(t);
        prop_assert!(u.is_finite());
        prop_assert!(u >= 0.0);
    }

    /// Utility never exceeds the declared maximum utility.
    #[test]
    fn bounded_by_max_utility(tuf in arb_tuf(), t in 0u64..1_000_000) {
        prop_assert!(tuf.utility(t) <= tuf.max_utility() + 1e-9);
    }

    /// If the TUF reports itself non-increasing, sampled values really are.
    #[test]
    fn non_increasing_is_honest(tuf in arb_tuf(), t1 in 0u64..100_000, t2 in 0u64..100_000) {
        if tuf.is_non_increasing() {
            let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            prop_assert!(tuf.utility(hi) <= tuf.utility(lo) + 1e-9);
        }
    }

    /// Step TUFs equal their height everywhere before C.
    #[test]
    fn step_is_binary(h in utility(), c in 1u64..100_000, t in 0u64..100_000) {
        let tuf = Tuf::step(h, c).expect("valid step");
        if t < c {
            prop_assert_eq!(tuf.utility(t), h);
        } else {
            prop_assert_eq!(tuf.utility(t), 0.0);
        }
    }

    /// `max_utility` is attained (to within interpolation) at some sample.
    #[test]
    fn max_utility_is_attained(tuf in arb_tuf()) {
        let c = tuf.critical_time();
        let samples = (0..=200u64).map(|i| i * c / 200).chain(std::iter::once(c - 1));
        let best = samples.map(|t| tuf.utility(t)).fold(0.0, f64::max);
        // Piecewise shapes attain the max exactly at a control point that the
        // uniform sampling may skip only if c < 200; sampling covers all t then.
        prop_assert!(best <= tuf.max_utility() + 1e-9);
        if matches!(tuf.shape(), TufShape::Step { .. } | TufShape::Parabolic { .. } | TufShape::Linear { .. }) {
            prop_assert!(best >= tuf.max_utility() - 1e-9 || c > 0);
        }
    }
}
