//! PRG003 fixtures: Guard-derived values escaping the guard's scope —
//! out of its block, past an explicit `drop`, and (clean) neither.

pub fn escapes_block(head: &Atomic<u64>) -> u64 {
    let shared;
    {
        let guard = epoch::pin();
        shared = head.load(Acquire, &guard);
    }
    unsafe { *shared.as_raw() }
}

pub fn escapes_drop(head: &Atomic<u64>) -> u64 {
    let guard = epoch::pin();
    let shared = head.load(Acquire, &guard);
    drop(guard);
    unsafe { *shared.as_raw() }
}

pub fn clean_use(head: &Atomic<u64>) -> u64 {
    let guard = epoch::pin();
    let shared = head.load(Acquire, &guard);
    unsafe { *shared.as_raw() }
}
