//! ORD005 fixture: Acquire failure ordering with an unused failure value.

fn feedback_only(v: &AtomicU64) {
    let mut cur = v.load(Acquire);
    loop {
        match v.compare_exchange_weak(cur, next, AcqRel, Acquire) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

fn failure_value_dereferenced(head: &Atomic) {
    match head.compare_exchange(a, b, Release, Acquire) {
        Ok(_) => {}
        Err(seen) => drop(seen.deref()),
    }
}

fn relaxed_failure(v: &AtomicU64) {
    let _ = v.compare_exchange(0, 1, AcqRel, Relaxed);
}
