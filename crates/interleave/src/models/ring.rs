//! Model of the SPSC ring, mirroring `crates/lockfree/src/ring.rs`.

use crate::atomic::Atomic;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};

/// Bounded single-producer/single-consumer ring over `capacity + 1` slots
/// (one spare slot distinguishes full from empty, as in the real ring).
///
/// Both operations are wait-free — straight-line code, no retry loop — so
/// exhaustive exploration of this model is tiny even at 3–4 ops per side.
/// The model does not enforce the single-producer/single-consumer contract;
/// scenarios must respect it, exactly as the real endpoints' `!Clone` types
/// do statically.
pub struct ModelSpscRing {
    slots: Vec<Atomic<u64>>,
    /// Next slot to pop (owned by the consumer).
    head: Atomic<usize>,
    /// Next slot to push (owned by the producer).
    tail: Atomic<usize>,
}

impl ModelSpscRing {
    /// An empty ring holding up to `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            slots: (0..capacity + 1).map(|_| Atomic::new(0)).collect(),
            head: Atomic::new(0),
            tail: Atomic::new(0),
        }
    }

    fn next(&self, i: usize) -> usize {
        (i + 1) % self.slots.len()
    }

    /// Mirrors `RingProducer::push`.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` when the ring is full.
    pub fn push(&self, value: u64) -> Result<(), u64> {
        // P1: `shared.tail.load(Relaxed)` — producer-owned index.
        let tail = self.tail.load_ord(Relaxed);
        let next = self.next(tail);
        // P2: `shared.head.load(Acquire)` — full check against the consumer.
        if next == self.head.load_ord(Acquire) {
            return Err(value);
        }
        // P3: the slot write. The real ring writes an `UnsafeCell` here,
        // safe because slot `tail` is outside `[head, tail)`; the model
        // keeps it a scheduled step so a protocol bug that lets the
        // consumer read slot `tail` early is observable as a race. Declared
        // `Relaxed`: the plain write is ordered only by P4's `Release`, so
        // under a store buffer it may sit unbuffered past P3's step — the
        // publication must still commit after it.
        self.slots[tail].store_ord(value, Relaxed);
        // P4: `shared.tail.store(next, Release)` — publication.
        self.tail.store_ord(next, Release);
        Ok(())
    }

    /// Mirrors `RingConsumer::pop`.
    pub fn pop(&self) -> Option<u64> {
        // C1: `shared.head.load(Relaxed)` — consumer-owned index.
        let head = self.head.load_ord(Relaxed);
        // C2: `shared.tail.load(Acquire)` — empty check against the producer.
        if head == self.tail.load_ord(Acquire) {
            return None;
        }
        // C3: the slot read (see P3 on why this is a step).
        let value = self.slots[head].load_ord(Relaxed);
        // C4: `shared.head.store(next, Release)` — frees the slot.
        self.head.store_ord(self.next(head), Release);
        Some(value)
    }

    /// Post-check helper: remaining elements oldest-first, without
    /// scheduling (single-threaded use only).
    pub fn drain_plain(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut head = self.head.load_plain();
        let tail = self.tail.load_plain();
        while head != tail {
            out.push(self.slots[head].load_plain());
            head = self.next(head);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_until_full() {
        let ring = ModelSpscRing::new(2);
        assert_eq!(ring.push(1), Ok(()));
        assert_eq!(ring.push(2), Ok(()));
        assert_eq!(ring.push(3), Err(3));
        assert_eq!(ring.drain_plain(), vec![1, 2]);
        assert_eq!(ring.pop(), Some(1));
        assert_eq!(ring.push(3), Ok(()));
        assert_eq!(ring.pop(), Some(2));
        assert_eq!(ring.pop(), Some(3));
        assert_eq!(ring.pop(), None);
    }
}
