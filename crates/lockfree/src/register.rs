use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::utils::Backoff;

use crate::stats::OpStats;

/// A single-word lock-free read-modify-write register.
///
/// This is the primitive form of the paper's lock-free access pattern:
/// "instead of acquiring locks, a lock-free operation continuously accesses
/// the object, checks, and retries until it becomes successful" (§1.1). Each
/// [`CasRegister::update`] is a read–compute–CAS loop; a failed CAS is one
/// retry of the kind bounded per job by Theorem 2.
///
/// The load→CAS loop is mirrored by `lfrt-interleave`'s `ModelCasRegister`
/// and checked linearizable over every interleaving of concurrent updates
/// in `crates/interleave/tests/linearizability.rs`.
///
/// # Examples
///
/// ```
/// use lfrt_lockfree::CasRegister;
///
/// let counter = CasRegister::new(0);
/// counter.update(|v| v + 1);
/// counter.update(|v| v + 10);
/// assert_eq!(counter.load(), 11);
/// ```
#[derive(Debug, Default)]
pub struct CasRegister {
    value: AtomicU64,
    stats: OpStats,
}

impl CasRegister {
    /// Creates a register holding `initial`.
    pub fn new(initial: u64) -> Self {
        Self {
            value: AtomicU64::new(initial),
            stats: OpStats::new(),
        }
    }

    /// Reads the current value.
    #[inline]
    pub fn load(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    /// Unconditionally stores `value`.
    #[inline]
    pub fn store(&self, value: u64) {
        self.value.store(value, Ordering::Release);
    }

    /// Atomically replaces the value with `f(current)`, retrying on
    /// interference. Returns the value that was replaced.
    ///
    /// `f` may run multiple times and must be a pure function of its input.
    pub fn update<F: FnMut(u64) -> u64>(&self, mut f: F) -> u64 {
        let backoff = Backoff::new();
        let mut current = self.value.load(Ordering::Acquire);
        loop {
            self.stats.attempt();
            let next = f(current);
            // Relaxed failure ordering: the observed value is only fed back
            // as the next expected value, never dereferenced, so the retry
            // needs no acquire edge (ordlint ORD005; pinned by
            // tests/ordering_pins.rs).
            match self.value.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(prev) => return prev,
                Err(actual) => {
                    self.stats.retry();
                    current = actual;
                    backoff.spin();
                }
            }
        }
    }

    /// The attempt/retry counters of this register.
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn load_store_round_trip() {
        let r = CasRegister::new(5);
        assert_eq!(r.load(), 5);
        r.store(9);
        assert_eq!(r.load(), 9);
    }

    #[test]
    fn update_returns_previous() {
        let r = CasRegister::new(3);
        assert_eq!(r.update(|v| v * 2), 3);
        assert_eq!(r.load(), 6);
    }

    #[test]
    fn concurrent_increments_all_land() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        let r = Arc::new(CasRegister::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        r.update(|v| v + 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("incrementer panicked");
        }
        assert_eq!(r.load(), THREADS * PER_THREAD);
        // attempts = successes + retries, successes = all increments.
        let snap = r.stats().snapshot();
        assert_eq!(snap.successes(), THREADS * PER_THREAD);
    }
}
