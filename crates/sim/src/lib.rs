//! A discrete-event uniprocessor RTOS simulator for utility-accrual
//! scheduling experiments.
//!
//! This crate is the testbed substrate of the reproduction of *Lock-Free
//! Synchronization for Dynamic Embedded Real-Time Systems* (Cho, Ravindran,
//! Jensen — DATE 2006). The paper evaluated on QNX Neutrino 6.3 with an
//! application-level meta-scheduler; here the same mechanisms are modelled
//! explicitly so experiments are deterministic and hardware-independent:
//!
//! * **jobs and tasks** ([`TaskSpec`], [`Job`]) with TUF time constraints and
//!   UAM-driven arrivals;
//! * **shared objects** under three sharing disciplines ([`SharingMode`]):
//!   lock-based (blocking, lock/unlock scheduling events), lock-free
//!   (interference-triggered retries), and ideal (zero-cost, the paper's
//!   "ideal RUA" yardstick);
//! * **abort exceptions** on critical-time expiry, per the paper's §3.5
//!   abortion model;
//! * **scheduler overhead charging** ([`OverheadModel`]): every scheduler
//!   invocation reports an operation count and the simulator charges
//!   proportional processor time — the mechanism behind the paper's
//!   Critical-time Miss Load experiment (Figure 9);
//! * **metrics** ([`SimMetrics`]): accrued utility ratio (AUR), critical-time
//!   meet ratio (CMR), sojourn times, retries, blockings.
//!
//! Schedulers implement [`UaScheduler`]; the paper's RUA variants live in
//! the `lfrt-core` crate.
//!
//! # Examples
//!
//! ```
//! use lfrt_sim::{
//!     AccessKind, Engine, ObjectId, OverheadModel, Segment, SharingMode, SimConfig, TaskSpec,
//! };
//! use lfrt_sim::scheduler::{Decision, SchedulerContext, UaScheduler};
//! use lfrt_tuf::Tuf;
//! use lfrt_uam::{ArrivalTrace, Uam};
//!
//! /// A trivial FIFO scheduler: run jobs in arrival order.
//! struct Fifo;
//! impl UaScheduler for Fifo {
//!     fn name(&self) -> &str { "fifo" }
//!     fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
//!         let mut order: Vec<_> = ctx.jobs.iter().map(|j| j.id).collect();
//!         order.sort_by_key(|&id| ctx.job(id).expect("listed job").arrival);
//!         Decision { order, ops: ctx.jobs.len() as u64, ..Decision::default() }
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let task = TaskSpec::builder("t0")
//!     .tuf(Tuf::step(10.0, 1_000)?)
//!     .uam(Uam::periodic(1_000))
//!     .segments(vec![
//!         Segment::Compute(100),
//!         Segment::Access { object: ObjectId::new(0), kind: AccessKind::Write },
//!         Segment::Compute(100),
//!     ])
//!     .build()?;
//! let trace = ArrivalTrace::new(vec![0, 1_000, 2_000]);
//! let outcome = Engine::new(
//!     vec![task],
//!     vec![trace],
//!     SimConfig::new(SharingMode::LockFree { access_ticks: 10 })
//!         .overhead(OverheadModel::zero()),
//! )?
//! .run(Fifo);
//! assert_eq!(outcome.metrics.released(), 3);
//! assert_eq!(outcome.metrics.completed(), 3);
//! assert!(outcome.metrics.aur() > 0.99);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calendar;
pub mod csv;
mod engine;
mod error;
mod event;
mod ids;
mod job;
mod metrics;
pub mod mp;
mod object;
mod overhead;
pub mod scheduler;
mod segment;
mod task;
pub mod tracelog;
pub mod workload;

pub use engine::{Engine, SimConfig, SimOutcome};
pub use error::SimError;
pub use ids::{JobId, ObjectId, TaskId};
pub use job::{Job, JobPhase, JobRecord};
pub use metrics::{aggregate, sojourn_percentiles, SimMetrics, SojournPercentiles, TaskMetrics};
pub use mp::{DispatchPolicy, MpEngine};
pub use object::ObjectTable;
pub use overhead::OverheadModel;
pub use scheduler::{Decision, JobView, SchedulerContext, UaScheduler};
pub use segment::{AccessKind, Segment};
pub use task::{ExecTimeModel, SharingMode, TaskSpec, TaskSpecBuilder};
pub use tracelog::{AbortReason, TraceEvent, TraceLog, TraceRecord};

/// Simulated time in integer ticks (1 tick ≈ 1 µs in the experiments).
pub type SimTime = u64;
/// A duration in ticks.
pub type Ticks = u64;
