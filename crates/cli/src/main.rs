//! `lfrt` — command-line front end for the lockfree-rt workspace.
//!
//! ```text
//! lfrt workload --tasks 10 --objects 10 --load 1.1 --sharing lockfree --scheduler rua [--cpus 2] [--gantt]
//! lfrt admit    --tasks 5 --objects 3 --load 0.2 --s 20
//! lfrt bound    --a 2 --critical 10000 --others 3:4000,1:8000
//! lfrt fit      --window 8000 --horizon 400000 < arrivals.csv
//! lfrt summary  < records.csv
//! ```

use std::io::{self, BufReader, Read};
use std::process::ExitCode;

use lfrt_bench::Args;

mod commands;

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = Args::parse(argv);
    let result = match command.as_str() {
        "workload" => commands::workload(&args),
        "admit" => commands::admit(&args),
        "bound" => commands::bound(&args),
        "fit" => commands::fit(&args, &stdin_string()),
        "summary" => commands::summary(&mut locked_stdin()),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn stdin_string() -> String {
    let mut buffer = String::new();
    let _ = io::stdin().read_to_string(&mut buffer);
    buffer
}

fn locked_stdin() -> BufReader<io::Stdin> {
    BufReader::new(io::stdin())
}

const USAGE: &str = "\
lfrt — lock-free real-time scheduling toolbox

USAGE:
  lfrt workload [--tasks N] [--objects K] [--accesses M] [--load X]
                [--sharing lockfree|lockbased|ideal] [--scheduler rua|rua-lockbased|edf|edf-pi|rm|llf|lbesa]
                [--s TICKS] [--r TICKS] [--cpus M] [--seed S] [--gantt]
      run a seeded UAM workload on the simulator and print the metrics
  lfrt admit    [--tasks N] [--objects K] [--accesses M] [--load X] [--s TICKS] [--seed S]
      run the sufficient admission test on the generated task set
  lfrt bound    --critical C [--a A] [--others a:w,a:w,...]
      evaluate the Theorem 2 retry bound
  lfrt fit      [--window W] [--horizon H]   (arrival times on stdin, one per line)
      fit the tightest UAM to a trace and report its statistics
  lfrt summary                               (job-record CSV on stdin)
      summarize a record file: AUR, CMR, sojourn percentiles, retries
";
