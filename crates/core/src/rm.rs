use lfrt_sim::{Decision, JobId, SchedulerContext, UaScheduler};

use crate::ops::OpsCounter;

/// Rate-monotonic: the classic *static-priority* baseline (§4.1's first
/// scheduler class).
///
/// Priorities are fixed per task — shorter UAM window (higher rate) wins —
/// and never change while a job is live, so a job can be preempted at most
/// once per release of a higher-priority job (the static-priority half of
/// the preemption taxonomy that Lemma 1 contrasts UA schedulers against).
///
/// Cost: one sort, `O(n log n)` reported operations.
///
/// # Examples
///
/// ```
/// use lfrt_core::Rm;
/// use lfrt_sim::UaScheduler;
///
/// assert_eq!(Rm::new().name(), "rm");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Rm {
    _private: (),
}

impl Rm {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl UaScheduler for Rm {
    fn name(&self) -> &str {
        "rm"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        let mut ops = OpsCounter::new();
        let mut order: Vec<JobId> = ctx.jobs.iter().map(|j| j.id).collect();
        order.sort_by(|&a, &b| {
            ops.tick();
            let ka = ctx.job(a).map(|j| (j.window, j.task, j.id));
            let kb = ctx.job(b).map(|j| (j.window, j.task, j.id));
            ka.cmp(&kb)
        });
        Decision {
            order,
            ops: ops.total(),
            aborts: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfrt_sim::{JobView, TaskId};
    use lfrt_tuf::Tuf;

    #[test]
    fn shorter_window_wins_regardless_of_deadline() {
        let tuf = Tuf::step(1.0, 10_000).expect("valid");
        let mk = |id: usize, window: u64, crit: u64| JobView {
            id: JobId::new(id),
            task: TaskId::new(id),
            arrival: 0,
            absolute_critical_time: crit,
            window,
            tuf: &tuf,
            remaining: 10,
            blocked_on: None,
            holds: Vec::new(),
        };
        // Job 0 has the later deadline but the shorter window: RM picks it.
        let ctx = SchedulerContext {
            now: 0,
            jobs: vec![mk(0, 100, 9_000), mk(1, 500, 1_000)],
        };
        let decision = Rm::new().schedule(&ctx);
        assert_eq!(decision.order[0], JobId::new(0));
    }
}
