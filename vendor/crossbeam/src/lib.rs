//! Offline stand-in for the `crossbeam` crate.
//!
//! The build container has no crates.io access, so this vendors the parts
//! of `crossbeam` that `lfrt-lockfree` uses:
//!
//! * [`epoch`] — tagged atomic pointers (`Atomic`/`Owned`/`Shared`) with
//!   guard-scoped loads and **real epoch-based reclamation**: a global
//!   epoch counter, cache-line-padded per-thread pinned-epoch records, and
//!   per-thread deferred-garbage bags collected amortized on pin.
//!   `Guard::defer_destroy` actually frees a retired node once two epoch
//!   advances guarantee no pinned thread can still hold a reference — the
//!   dynamic analogue of the paper's type-stable node pools on QNX, but
//!   with memory returned to the allocator, so sustained churn runs in
//!   bounded space (verified by the `churn_footprint` bench and the
//!   reclamation tests in `crates/lockfree/tests/reclamation.rs`).
//! * [`utils`] — [`CachePadded`] (false-sharing armor for hot indices and
//!   epoch records) and [`Backoff`] (bounded spin-then-yield for contended
//!   CAS loops), mirroring `crossbeam_utils`.
//!
//! Keep the API aligned with the real crates this mirrors.

pub mod epoch;
pub mod utils;

pub use utils::{Backoff, CachePadded};
