use crate::job::JobRecord;
use crate::{SimTime, Ticks};

/// Aggregated outcomes for one task.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskMetrics {
    /// Jobs released.
    pub released: u64,
    /// Jobs that completed (at any time before their critical time — jobs
    /// reaching it are aborted, so completion implies meeting it).
    pub completed: u64,
    /// Jobs aborted at their critical time.
    pub aborted: u64,
    /// Total utility accrued by completed jobs.
    pub utility_accrued: f64,
    /// Maximum possible utility (`U_i(0)`-equivalent) summed over releases.
    pub utility_possible: f64,
    /// Sum of sojourn times of completed jobs.
    pub sojourn_sum: Ticks,
    /// Largest sojourn time of a completed job.
    pub sojourn_max: Ticks,
    /// Total lock-free retries across this task's jobs.
    pub retries: u64,
    /// Total lock blockings across this task's jobs.
    pub blockings: u64,
    /// Total preemptions across this task's jobs.
    pub preemptions: u64,
    /// Jobs crashed by failure injection (never completed nor aborted
    /// cleanly; any held locks stay held forever).
    pub crashed: u64,
}

impl TaskMetrics {
    /// Mean sojourn time of completed jobs, or `None` if none completed.
    pub fn mean_sojourn(&self) -> Option<f64> {
        (self.completed > 0).then(|| self.sojourn_sum as f64 / self.completed as f64)
    }
}

/// Aggregated outcomes of a simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimMetrics {
    per_task: Vec<TaskMetrics>,
    /// Number of scheduler invocations.
    pub sched_invocations: u64,
    /// Total operations reported by the scheduler.
    pub sched_ops: u64,
    /// Total processor time charged as scheduling overhead.
    pub overhead_ticks: Ticks,
    /// Total processor time spent executing jobs (summed across processors
    /// on a multiprocessor run).
    pub busy_ticks: Ticks,
    /// Time of the last handled event.
    pub makespan: SimTime,
}

impl SimMetrics {
    pub(crate) fn new(tasks: usize) -> Self {
        Self {
            per_task: vec![TaskMetrics::default(); tasks],
            ..Self::default()
        }
    }

    pub(crate) fn task_mut(&mut self, task: usize) -> &mut TaskMetrics {
        &mut self.per_task[task]
    }

    /// Per-task metrics, indexed by task.
    pub fn per_task(&self) -> &[TaskMetrics] {
        &self.per_task
    }

    /// Total jobs released.
    pub fn released(&self) -> u64 {
        self.per_task.iter().map(|t| t.released).sum()
    }

    /// Total jobs completed.
    pub fn completed(&self) -> u64 {
        self.per_task.iter().map(|t| t.completed).sum()
    }

    /// Total jobs aborted.
    pub fn aborted(&self) -> u64 {
        self.per_task.iter().map(|t| t.aborted).sum()
    }

    /// Total lock-free retries.
    pub fn retries(&self) -> u64 {
        self.per_task.iter().map(|t| t.retries).sum()
    }

    /// Total lock blockings.
    pub fn blockings(&self) -> u64 {
        self.per_task.iter().map(|t| t.blockings).sum()
    }

    /// Total preemptions (Lemma 1 bounds these by scheduling events).
    pub fn preemptions(&self) -> u64 {
        self.per_task.iter().map(|t| t.preemptions).sum()
    }

    /// Total crashed jobs (failure injection).
    pub fn crashed(&self) -> u64 {
        self.per_task.iter().map(|t| t.crashed).sum()
    }

    /// The *accrued utility ratio*: actual total utility over the maximum
    /// possible total utility (Section 5 of the paper).
    ///
    /// Returns 1.0 when nothing was released (vacuously perfect).
    pub fn aur(&self) -> f64 {
        let possible: f64 = self.per_task.iter().map(|t| t.utility_possible).sum();
        if possible <= 0.0 {
            return 1.0;
        }
        let accrued: f64 = self.per_task.iter().map(|t| t.utility_accrued).sum();
        accrued / possible
    }

    /// Fraction of one processor's time spent executing jobs over the
    /// makespan (can exceed 1.0 on multiprocessors; divide by the CPU count
    /// for per-processor utilization). Excludes charged scheduler overhead.
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.busy_ticks as f64 / self.makespan as f64
    }

    /// The *critical-time meet ratio*: jobs meeting their critical time over
    /// jobs released (Section 6.2 of the paper).
    ///
    /// Returns 1.0 when nothing was released.
    pub fn cmr(&self) -> f64 {
        let released = self.released();
        if released == 0 {
            return 1.0;
        }
        self.completed() as f64 / released as f64
    }
}

/// Sojourn-time percentiles over a set of job records.
///
/// Percentiles use the nearest-rank method over *completed* jobs; aborted
/// jobs are excluded (their "sojourn" is the abort latency, not a service
/// time). Returns `None` if no job completed.
///
/// # Examples
///
/// ```
/// # use lfrt_sim::{JobId, TaskId, JobRecord};
/// # let rec = |s: u64| JobRecord {
/// #     id: JobId::new(0), task: TaskId::new(0), arrival: 0, resolved_at: s,
/// #     completed: true, utility: 1.0, retries: 0, blockings: 0, preemptions: 0,
/// # };
/// let records: Vec<JobRecord> = (1..=100).map(|i| rec(i * 10)).collect();
/// let p = lfrt_sim::sojourn_percentiles(&records).expect("completions exist");
/// assert_eq!(p.p50, 500);
/// assert_eq!(p.p99, 990);
/// assert_eq!(p.max, 1_000);
/// ```
pub fn sojourn_percentiles(records: &[JobRecord]) -> Option<SojournPercentiles> {
    let mut sojourns: Vec<Ticks> = records
        .iter()
        .filter(|r| r.completed)
        .map(JobRecord::sojourn)
        .collect();
    if sojourns.is_empty() {
        return None;
    }
    sojourns.sort_unstable();
    let rank = |p: f64| -> Ticks {
        let idx = ((p / 100.0) * sojourns.len() as f64).ceil() as usize;
        sojourns[idx.clamp(1, sojourns.len()) - 1]
    };
    Some(SojournPercentiles {
        p50: rank(50.0),
        p90: rank(90.0),
        p99: rank(99.0),
        max: *sojourns.last().expect("non-empty"),
        n: sojourns.len(),
    })
}

/// Nearest-rank sojourn percentiles; see [`sojourn_percentiles`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SojournPercentiles {
    /// Median sojourn.
    pub p50: Ticks,
    /// 90th percentile.
    pub p90: Ticks,
    /// 99th percentile.
    pub p99: Ticks,
    /// Worst observed sojourn.
    pub max: Ticks,
    /// Number of completed jobs summarized.
    pub n: usize,
}

/// Derives per-task and global metrics from raw job records.
///
/// Useful for re-aggregating after filtering (e.g. dropping a warm-up
/// prefix).
pub fn aggregate(records: &[JobRecord], tasks: usize, possible: &[f64]) -> SimMetrics {
    let mut m = SimMetrics::new(tasks);
    for r in records {
        let t = m.task_mut(r.task.index());
        t.released += 1;
        t.utility_possible += possible[r.task.index()];
        t.retries += r.retries;
        t.blockings += r.blockings;
        t.preemptions += r.preemptions;
        if r.completed {
            t.completed += 1;
            t.utility_accrued += r.utility;
            t.sojourn_sum += r.sojourn();
            t.sojourn_max = t.sojourn_max.max(r.sojourn());
        } else {
            t.aborted += 1;
        }
        m.makespan = m.makespan.max(r.resolved_at);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{JobId, TaskId};

    fn rec(task: usize, arrival: SimTime, resolved: SimTime, done: bool, u: f64) -> JobRecord {
        JobRecord {
            id: JobId::new(0),
            task: TaskId::new(task),
            arrival,
            resolved_at: resolved,
            completed: done,
            utility: u,
            retries: 1,
            blockings: 0,
            preemptions: 0,
        }
    }

    #[test]
    fn empty_metrics_are_vacuously_perfect() {
        let m = SimMetrics::new(2);
        assert_eq!(m.aur(), 1.0);
        assert_eq!(m.cmr(), 1.0);
        assert_eq!(m.released(), 0);
    }

    #[test]
    fn percentiles_handle_small_and_empty_sets() {
        assert_eq!(sojourn_percentiles(&[]), None);
        let aborted = rec(0, 0, 100, false, 0.0);
        assert_eq!(sojourn_percentiles(&[aborted]), None, "aborts are excluded");
        let single = rec(0, 0, 70, true, 1.0);
        let p = sojourn_percentiles(&[single]).expect("one completion");
        assert_eq!((p.p50, p.p90, p.p99, p.max, p.n), (70, 70, 70, 70, 1));
    }

    #[test]
    fn aggregate_computes_ratios() {
        let records = vec![
            rec(0, 0, 50, true, 10.0),
            rec(0, 100, 160, true, 10.0),
            rec(1, 0, 200, false, 0.0),
            rec(1, 50, 120, true, 5.0),
        ];
        let m = aggregate(&records, 2, &[10.0, 5.0]);
        assert_eq!(m.released(), 4);
        assert_eq!(m.completed(), 3);
        assert_eq!(m.aborted(), 1);
        // possible: 2*10 + 2*5 = 30; accrued: 25.
        assert!((m.aur() - 25.0 / 30.0).abs() < 1e-12);
        assert!((m.cmr() - 0.75).abs() < 1e-12);
        assert_eq!(m.retries(), 4);
        assert_eq!(m.makespan, 200);
        assert_eq!(m.per_task()[0].mean_sojourn(), Some(55.0));
        assert_eq!(m.per_task()[0].sojourn_max, 60);
    }
}
