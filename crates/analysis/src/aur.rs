use lfrt_tuf::Tuf;
use lfrt_uam::Uam;

/// Per-task parameters for the AUR bounds of Lemmas 4 and 5.
///
/// The same structure serves both lemmas: for the lock-free bound
/// (Lemma 4), `access_time` is `s` and `delay` is `I_i + R_i`; for the
/// lock-based bound (Lemma 5), `access_time` is `r` and `delay` is
/// `I_i + B_i`.
#[derive(Debug, Clone, PartialEq)]
pub struct AurTaskParams {
    /// The task's arrival model `⟨l_i, a_i, W_i⟩`.
    pub uam: Uam,
    /// The task's TUF (must be non-increasing for the lemmas to apply).
    pub tuf: Tuf,
    /// `u_i`: computation time excluding object accesses, ticks.
    pub compute: u64,
    /// `m_i`: shared-object accesses per job.
    pub accesses: u64,
    /// Worst-case extra delay: interference plus retry time (lock-free) or
    /// interference plus blocking time (lock-based), ticks.
    pub delay: u64,
}

impl AurTaskParams {
    /// Best-case sojourn under access time `t_acc`: `u_i + t_acc·m_i`.
    pub fn best_sojourn(&self, access_time: f64) -> u64 {
        self.compute + (access_time * self.accesses as f64).round() as u64
    }

    /// Worst-case sojourn: best case plus the delay term.
    pub fn worst_sojourn(&self, access_time: f64) -> u64 {
        self.best_sojourn(access_time) + self.delay
    }
}

/// The lower/upper AUR bounds produced by [`aur_bounds`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AurBounds {
    /// The Lemma 4/5 lower bound: minimum-rate weights, worst-case sojourns.
    pub lower: f64,
    /// The Lemma 4/5 upper bound: maximum-rate weights, best-case sojourns.
    pub upper: f64,
}

impl AurBounds {
    /// Whether an observed AUR lies within the bounds (inclusive, with a
    /// small tolerance for floating-point aggregation).
    pub fn contains(&self, observed: f64) -> bool {
        observed >= self.lower - 1e-9 && observed <= self.upper + 1e-9
    }
}

/// Computes the AUR bounds of Lemma 4 (lock-free, with `access_time = s`)
/// or Lemma 5 (lock-based, with `access_time = r`):
///
/// ```text
/// Σ (l_i/W_i)·U_i(worst sojourn)        Σ (a_i/W_i)·U_i(best sojourn)
/// ------------------------------ < AUR < ------------------------------
/// Σ (l_i/W_i)·U_i(0)                    Σ (a_i/W_i)·U_i(0)
/// ```
///
/// Both lemmas require all jobs feasible and all TUFs non-increasing; this
/// function does not enforce feasibility (the caller's setup determines it)
/// but debug-asserts non-increasing TUFs.
///
/// Returns `AurBounds { lower: 0.0, upper: 1.0 }` for an empty task set.
pub fn aur_bounds(tasks: &[AurTaskParams], access_time: f64) -> AurBounds {
    debug_assert!(
        tasks.iter().all(|t| t.tuf.is_non_increasing()),
        "the AUR lemmas require non-increasing TUFs"
    );
    if tasks.is_empty() {
        return AurBounds {
            lower: 0.0,
            upper: 1.0,
        };
    }
    let mut lower_num = 0.0;
    let mut lower_den = 0.0;
    let mut upper_num = 0.0;
    let mut upper_den = 0.0;
    for t in tasks {
        let min_rate = t.uam.min_rate();
        let max_rate = t.uam.max_rate();
        let at_zero = t.tuf.utility(0);
        lower_num += min_rate * t.tuf.utility(t.worst_sojourn(access_time));
        lower_den += min_rate * at_zero;
        upper_num += max_rate * t.tuf.utility(t.best_sojourn(access_time));
        upper_den += max_rate * at_zero;
    }
    AurBounds {
        lower: if lower_den > 0.0 {
            lower_num / lower_den
        } else {
            0.0
        },
        upper: if upper_den > 0.0 {
            upper_num / upper_den
        } else {
            1.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(l: u32, a: u32, w: u64, tuf: Tuf, compute: u64, m: u64, delay: u64) -> AurTaskParams {
        AurTaskParams {
            uam: Uam::new(l, a, w).expect("valid"),
            tuf,
            compute,
            accesses: m,
            delay,
        }
    }

    #[test]
    fn step_tufs_feasible_everywhere_give_unit_bounds() {
        // If even the worst-case sojourn beats the critical time, both
        // bounds are 1 for step TUFs.
        let t = params(1, 2, 1_000, Tuf::step(5.0, 500).expect("valid"), 50, 2, 100);
        let b = aur_bounds(&[t], 10.0);
        assert!((b.lower - 1.0).abs() < 1e-12);
        assert!((b.upper - 1.0).abs() < 1e-12);
        assert!(b.contains(1.0));
    }

    #[test]
    fn worst_case_miss_zeroes_the_lower_bound() {
        // Worst sojourn 50 + 20 + 500 = 570 ≥ C = 500: lower bound 0; best
        // sojourn 70 < 500: upper bound 1.
        let t = params(1, 1, 1_000, Tuf::step(5.0, 500).expect("valid"), 50, 2, 500);
        let b = aur_bounds(&[t], 10.0);
        assert_eq!(b.lower, 0.0);
        assert!((b.upper - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_tuf_bounds_match_hand_computation() {
        // U(t) = 10·(1 − t/100); u=20, m=1, s=10 → best sojourn 30,
        // worst 30+40=70. Single task: bounds are U(70)/10 and U(30)/10.
        let t = params(
            1,
            1,
            1_000,
            Tuf::linear_decreasing(10.0, 100).expect("valid"),
            20,
            1,
            40,
        );
        let b = aur_bounds(&[t], 10.0);
        assert!((b.lower - 0.3).abs() < 1e-9);
        assert!((b.upper - 0.7).abs() < 1e-9);
    }

    #[test]
    fn lower_never_exceeds_upper() {
        for delay in [0u64, 10, 100, 1_000] {
            for access in [0.0, 5.0, 50.0] {
                let tasks = vec![
                    params(1, 3, 500, Tuf::step(2.0, 400).expect("valid"), 30, 2, delay),
                    params(
                        1,
                        1,
                        900,
                        Tuf::parabolic(7.0, 800).expect("valid"),
                        100,
                        3,
                        delay,
                    ),
                    params(
                        2,
                        4,
                        1_200,
                        Tuf::linear_decreasing(4.0, 1_000).expect("valid"),
                        60,
                        1,
                        delay,
                    ),
                ];
                let b = aur_bounds(&tasks, access);
                assert!(
                    b.lower <= b.upper + 1e-12,
                    "lower {} > upper {} (delay {delay}, access {access})",
                    b.lower,
                    b.upper
                );
            }
        }
    }

    #[test]
    fn larger_access_time_cannot_raise_the_upper_bound() {
        let tasks = vec![params(
            1,
            2,
            1_000,
            Tuf::linear_decreasing(10.0, 500).expect("valid"),
            50,
            4,
            100,
        )];
        let cheap = aur_bounds(&tasks, 1.0);
        let pricey = aur_bounds(&tasks, 50.0);
        assert!(pricey.upper <= cheap.upper + 1e-12);
        assert!(pricey.lower <= cheap.lower + 1e-12);
    }

    #[test]
    fn empty_task_set_is_trivial() {
        let b = aur_bounds(&[], 10.0);
        assert_eq!(b.lower, 0.0);
        assert_eq!(b.upper, 1.0);
    }

    #[test]
    fn zero_min_rate_tasks_drop_from_the_lower_bound() {
        // l = 0: the task may never arrive; it contributes nothing to the
        // lower bound's weights but caps the upper normally.
        let t = params(0, 1, 1_000, Tuf::step(5.0, 500).expect("valid"), 50, 0, 0);
        let b = aur_bounds(&[t], 0.0);
        assert_eq!(b.lower, 0.0); // degenerate: no guaranteed arrivals
        assert!((b.upper - 1.0).abs() < 1e-12);
    }
}
