use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::utils::Backoff;

use crate::stats::OpStats;

/// A lock-free atomic multi-cell snapshot.
///
/// The paper's §7 names "the snapshot abstraction" as future work: reading a
/// *consistent* view of several shared cells without locks. This is the
/// classic double-collect construction: each cell packs a 32-bit value with
/// a 32-bit sequence number into one CAS word; [`AtomicSnapshot::scan`]
/// collects all cells twice and succeeds when no sequence number moved —
/// otherwise it retries, and the retry is exactly the interference that the
/// paper's Theorem 2 bounds for scheduled tasks.
///
/// Double-collect scans are lock-free (not wait-free): a scan can starve
/// only while writers keep committing, and some operation always completes.
///
/// # Examples
///
/// ```
/// use lfrt_lockfree::AtomicSnapshot;
///
/// let snap = AtomicSnapshot::new(3);
/// snap.write(0, 10);
/// snap.write(2, 30);
/// assert_eq!(snap.scan(), vec![10, 0, 30]);
/// ```
#[derive(Debug)]
pub struct AtomicSnapshot {
    cells: Vec<AtomicU64>,
    stats: OpStats,
}

fn pack(value: u32, seq: u32) -> u64 {
    (u64::from(seq) << 32) | u64::from(value)
}

fn unpack(word: u64) -> (u32, u32) {
    (word as u32, (word >> 32) as u32)
}

impl AtomicSnapshot {
    /// Creates `cells` zeroed cells.
    pub fn new(cells: usize) -> Self {
        Self {
            cells: (0..cells).map(|_| AtomicU64::new(0)).collect(),
            stats: OpStats::new(),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the snapshot has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Atomically replaces cell `index` with `value`, bumping its sequence
    /// number so in-flight scans observe the interference.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn write(&self, index: usize, value: u32) {
        let backoff = Backoff::new();
        let cell = &self.cells[index];
        let mut current = cell.load(Ordering::Acquire);
        loop {
            let (_, seq) = unpack(current);
            let next = pack(value, seq.wrapping_add(1));
            // Relaxed failure ordering: the observed word is only unpacked
            // for its sequence number and retried, never dereferenced, so
            // no acquire edge is needed (ordlint ORD005; pinned by
            // tests/ordering_pins.rs).
            match cell.compare_exchange_weak(current, next, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => {
                    current = actual;
                    backoff.spin();
                }
            }
        }
    }

    /// Reads one cell (always consistent by itself).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn read(&self, index: usize) -> u32 {
        unpack(self.cells[index].load(Ordering::Acquire)).0
    }

    /// Returns a *consistent* snapshot of all cells: a vector of values that
    /// all coexisted at one instant. Retries while writers interfere; each
    /// retry is recorded in [`AtomicSnapshot::stats`].
    pub fn scan(&self) -> Vec<u32> {
        let backoff = Backoff::new();
        loop {
            self.stats.attempt();
            let first: Vec<u64> = self
                .cells
                .iter()
                .map(|c| c.load(Ordering::Acquire))
                .collect();
            let second: Vec<u64> = self
                .cells
                .iter()
                .map(|c| c.load(Ordering::Acquire))
                .collect();
            if first == second {
                return first.into_iter().map(|w| unpack(w).0).collect();
            }
            self.stats.retry();
            backoff.spin();
        }
    }

    /// The attempt/retry counters of scans on this snapshot.
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_threaded_scan_reflects_writes() {
        let snap = AtomicSnapshot::new(4);
        snap.write(1, 11);
        snap.write(3, 33);
        assert_eq!(snap.scan(), vec![0, 11, 0, 33]);
        assert_eq!(snap.read(3), 33);
        assert_eq!(snap.stats().retries(), 0);
    }

    #[test]
    fn empty_snapshot_scans_to_empty() {
        let snap = AtomicSnapshot::new(0);
        assert!(snap.is_empty());
        assert_eq!(snap.scan(), Vec::<u32>::new());
    }

    #[test]
    fn packing_round_trips() {
        for (v, s) in [(0u32, 0u32), (u32::MAX, 1), (42, u32::MAX)] {
            assert_eq!(unpack(pack(v, s)), (v, s));
        }
    }

    #[test]
    fn concurrent_scans_are_consistent() {
        // Writers keep all cells equal (they sweep the same value across
        // every cell); a consistent scan must never observe two cells more
        // than one "sweep" apart.
        const CELLS: usize = 4;
        let snap = Arc::new(AtomicSnapshot::new(CELLS));
        let writer = {
            let snap = Arc::clone(&snap);
            std::thread::spawn(move || {
                for round in 1..=8_000u32 {
                    for i in 0..CELLS {
                        snap.write(i, round);
                    }
                }
            })
        };
        let scanners: Vec<_> = (0..3)
            .map(|_| {
                let snap = Arc::clone(&snap);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        let view = snap.scan();
                        let min = *view.iter().min().expect("non-empty");
                        let max = *view.iter().max().expect("non-empty");
                        // Within one sweep, later cells may lag the earlier
                        // ones by exactly one round — never more, and never
                        // a torn mix of distant rounds.
                        assert!(max - min <= 1, "inconsistent snapshot: {view:?}");
                    }
                })
            })
            .collect();
        writer.join().expect("writer panicked");
        for s in scanners {
            s.join().expect("scanner panicked");
        }
    }
}
