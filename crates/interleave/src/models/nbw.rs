//! Model of the NBW (seqlock) register, mirroring
//! `crates/lockfree/src/nbw.rs`.

use crate::atomic::{fence, Atomic};
use crate::runtime::spin_hint;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};

/// Non-blocking-write register over a two-word payload, with the version
/// protocol of Kopetz & Reisinger: even version = stable, odd = a write is
/// in flight. The real register guards an `UnsafeCell<T>` with one version
/// word; the model splits the payload into two [`Atomic`] words so a torn
/// read — seeing word `a` from one write and word `b` from another — is an
/// explicit interleaving the explorer can reach and the version check must
/// reject. Compare [`crate::models::buggy::TornNbw`], which drops the
/// version protocol and exposes exactly that tear.
pub struct ModelNbw {
    /// Even: stable; odd: a write is in progress.
    version: Atomic<u64>,
    a: Atomic<u64>,
    b: Atomic<u64>,
}

impl ModelNbw {
    /// A register holding `(a, b)`.
    pub fn new(a: u64, b: u64) -> Self {
        Self {
            version: Atomic::new(0),
            a: Atomic::new(a),
            b: Atomic::new(b),
        }
    }

    /// Mirrors `NbwWriter::write`. Wait-free: five steps, no loop.
    /// Single-writer protocol — scenarios must not write concurrently,
    /// matching the real `NbwWriter` being `!Clone`.
    pub fn write(&self, a: u64, b: u64) {
        // W1: `version.load(Relaxed)` (even by the single-writer invariant).
        let v = self.version.load_ord(Relaxed);
        // W2: `version.store(v + 1, Relaxed)` + Release fence — open. The
        // fence keeps the odd version visible before any payload write; see
        // `crate::models::buggy::FencelessNbw` for what its absence costs.
        self.version.store_ord(v + 1, Relaxed);
        fence(Release);
        // W3/W4: the payload writes (`ptr::write_volatile` on the real cell).
        self.a.store_ord(a, Relaxed);
        self.b.store_ord(b, Relaxed);
        // W5: `version.store(v + 2, Release)` — publish.
        self.version.store_ord(v + 2, Release);
    }

    /// Mirrors `NbwReader::read`: retries while a write overlaps.
    pub fn read(&self) -> (u64, u64) {
        loop {
            // R1: `version.load(Acquire)`.
            let v1 = self.version.load_ord(Acquire);
            if !v1.is_multiple_of(2) {
                // Mid-write: the real reader spins (`std::hint::spin_loop`).
                // Only a writer step can change the version, so tell the
                // scheduler this thread is blocked until someone else runs —
                // otherwise the retry loop is an infinite subtree.
                spin_hint();
                continue;
            }
            // R2/R3: the speculative payload read (possibly torn — only
            // *used* after the check below).
            let a = self.a.load_ord(Relaxed);
            let b = self.b.load_ord(Relaxed);
            // R4: `version.load(Relaxed)` after the Acquire fence. Under
            // SC and store-buffer modes the fence is a no-op; under
            // `Config::relaxed` it drains the reader's stale set, which is
            // what keeps the recheck from reading a stale even version
            // (delete it and you get `buggy::StaleNbwReader`).
            fence(Acquire);
            if self.version.load_ord(Relaxed) == v1 {
                return (a, b);
            }
            // A write overlapped; discard and retry. No spin_hint: the
            // version is even again (or the odd branch above will park us),
            // so a retry makes progress on its own.
        }
    }

    /// Non-scheduled snapshot for post-checks.
    pub fn read_plain(&self) -> (u64, u64) {
        (self.a.load_plain(), self.b.load_plain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_round_trip() {
        let r = ModelNbw::new(0, 0);
        assert_eq!(r.read(), (0, 0));
        r.write(21, 42);
        assert_eq!(r.read(), (21, 42));
        assert_eq!(r.read_plain(), (21, 42));
    }
}
