//! **Multiprocessor exploration** (the paper's §7 future work) — how global
//! lock-free RUA behaves as processors are added.
//!
//! Two effects compete as `m` grows:
//!
//! * more parallel capacity → more jobs meet their critical times;
//! * more *true concurrency* on shared objects → lock-free retries now
//!   happen **without preemption** (two CPUs racing one object), a failure
//!   mode the uniprocessor Theorem 2 bound does not model.
//!
//! The table reports AUR/CMR and the retry count per processor count, on a
//! deliberately overloaded single-object workload so both effects show.
//!
//! Usage: `cargo run -p lfrt-bench --release --bin mp_scaling --
//! [--seeds 5] [--s 50]`

use lfrt_bench::stats::Summary;
use lfrt_bench::{table, Args};
use lfrt_core::RuaLockFree;
use lfrt_sim::mp::MpEngine;
use lfrt_sim::workload::{ArrivalStyle, TufClass, WorkloadSpec};
use lfrt_sim::{SharingMode, SimConfig};

fn main() {
    let args = Args::from_env();
    let seeds = args.get_u64("seeds", 5);
    let s = args.get_u64("s", 50);

    println!("# Multiprocessor scaling: global lock-free RUA (paper §7 future work)");
    println!("# 12 tasks, 2 shared objects, s = {s} µs, load 2.5 (overloaded), {seeds} seeds");

    let mut rows = Vec::new();
    for processors in [1usize, 2, 3, 4, 6, 8] {
        let mut aur = Vec::new();
        let mut cmr = Vec::new();
        let mut retries = Vec::new();
        for seed in 0..seeds {
            let spec = WorkloadSpec {
                num_tasks: 12,
                num_objects: 2,
                accesses_per_job: 4,
                tuf_class: TufClass::Step,
                target_load: 2.5,
                window_range: (6_000, 18_000),
                max_burst: 2,
                critical_time_frac: 0.9,
                arrival_style: ArrivalStyle::RandomUam { intensity: 4.0 },
                horizon: 400_000,
                read_fraction: 0.0,
                seed,
            };
            let (tasks, traces) = spec.build().expect("valid workload");
            let outcome = MpEngine::new(
                tasks,
                traces,
                SimConfig::new(SharingMode::LockFree { access_ticks: s }).record_jobs(false),
                processors,
            )
            .expect("valid engine")
            .run(RuaLockFree::new());
            aur.push(outcome.metrics.aur());
            cmr.push(outcome.metrics.cmr());
            retries.push(outcome.metrics.retries() as f64);
        }
        rows.push(vec![
            processors.to_string(),
            Summary::of(&aur).display(3),
            Summary::of(&cmr).display(3),
            Summary::of(&retries).display(0),
        ]);
    }
    table::print(
        "Global lock-free RUA vs processor count (overloaded workload)",
        &["CPUs", "AUR", "CMR", "retries"],
        &rows,
    );
    println!("\nshape check: AUR/CMR climb with capacity; retries reflect true-concurrency races.");
}
