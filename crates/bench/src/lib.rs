//! Shared infrastructure for the experiment harness: summary statistics,
//! plain-text table rendering, a tiny CLI-flag parser, a parallel sweep
//! runner with deterministic result merging, machine-readable JSON reports,
//! and synthetic scheduler contexts for the cost ablations.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation; see `DESIGN.md` §5 for the experiment index and
//! `EXPERIMENTS.md` for recorded outputs. Every binary understands three
//! shared flags on top of its own:
//!
//! * `--json <path>` — also write results as JSON ([`json`] documents);
//! * `--threads N` — worker threads for the sweep ([`runner::Sweep`]);
//!   results are byte-identical for any `N`;
//! * `--quick` — reduced-resolution mode sized for CI smoke runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;
pub mod json;
pub mod runner;
pub mod stats;
pub mod synth;
pub mod table;
pub mod trace;
pub mod workloads;

use std::collections::HashMap;

/// A minimal `--key value` flag parser for the experiment binaries.
///
/// Flags may appear after a literal `--` separator (as cargo passes them).
///
/// # Examples
///
/// ```
/// use lfrt_bench::Args;
///
/// let args = Args::parse(["--load", "1.1", "--tufs", "hetero"].iter().map(|s| s.to_string()));
/// assert_eq!(args.get_f64("load", 0.4), 1.1);
/// assert_eq!(args.get_str("tufs", "step"), "hetero");
/// assert_eq!(args.get_u64("seed", 1), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses flags from an iterator of raw arguments.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Self {
        let mut values = HashMap::new();
        let mut iter = raw.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if arg == "--" {
                continue;
            }
            if let Some(key) = arg.strip_prefix("--") {
                if let Some(value) = iter.peek() {
                    if !value.starts_with("--") {
                        values.insert(key.to_string(), iter.next().expect("peeked"));
                        continue;
                    }
                }
                values.insert(key.to_string(), String::from("true"));
            }
        }
        Self { values }
    }

    /// Parses the process's own command line.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// String flag with a default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Float flag with a default.
    ///
    /// # Panics
    ///
    /// Panics if the flag is present but not a valid float.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects a number, got {v}"))
            })
            .unwrap_or(default)
    }

    /// Integer flag with a default.
    ///
    /// # Panics
    ///
    /// Panics if the flag is present but not a valid integer.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got {v}"))
            })
            .unwrap_or(default)
    }

    /// `usize` flag with a default.
    ///
    /// # Panics
    ///
    /// Panics if the flag is present but not a valid integer.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got {v}"))
            })
            .unwrap_or(default)
    }

    /// Boolean flag: present without a value (or as `true`) means on.
    pub fn get_bool(&self, key: &str) -> bool {
        matches!(
            self.values.get(key).map(String::as_str),
            Some("true" | "1" | "yes")
        )
    }

    /// Whether `--quick` reduced-resolution mode is on (for CI smoke runs).
    pub fn quick(&self) -> bool {
        self.get_bool("quick")
    }

    /// Worker threads for [`runner::Sweep`]s: `--threads N`, defaulting to
    /// the host's available parallelism.
    pub fn threads(&self) -> usize {
        let default = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        self.get_usize("threads", default).max(1)
    }

    /// Destination for the JSON report, if `--json <path>` was given.
    pub fn json_path(&self) -> Option<std::path::PathBuf> {
        self.values.get("json").map(std::path::PathBuf::from)
    }

    /// Destination for the flight-recorder report, if `--trace <path>` was
    /// given. Presence of the flag also turns the recorder on (see
    /// [`trace::Session`]).
    pub fn trace_path(&self) -> Option<std::path::PathBuf> {
        self.values.get("trace").map(std::path::PathBuf::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_flags() {
        let args = Args::parse(
            ["--", "--load", "0.9", "--verbose", "--seed", "7"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(args.get_f64("load", 0.0), 0.9);
        assert_eq!(args.get_u64("seed", 0), 7);
        assert_eq!(args.get_str("verbose", "false"), "true");
        assert_eq!(args.get_str("missing", "x"), "x");
    }

    #[test]
    fn shared_runner_flags() {
        let args = Args::parse(
            ["--quick", "--threads", "3", "--json", "out/results.json"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert!(args.quick());
        assert!(args.get_bool("quick"));
        assert!(!args.get_bool("missing"));
        assert_eq!(args.threads(), 3);
        assert_eq!(args.get_usize("threads", 1), 3);
        assert_eq!(
            args.json_path(),
            Some(std::path::PathBuf::from("out/results.json"))
        );

        let bare = Args::parse(std::iter::empty());
        assert!(!bare.quick());
        assert!(bare.threads() >= 1);
        assert_eq!(bare.json_path(), None);
    }
}
