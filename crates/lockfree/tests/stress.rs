//! Stress tests: several threads hammer the concurrent structures for a
//! bounded number of operations, checking conservation invariants at the
//! end. The mixed test interleaves every structure at once; the
//! per-structure tests focus contention on one object so its CAS loops
//! actually collide, and check the [`lfrt_lockfree::OpStats`] accounting
//! identity (`attempts == successes + retries`, so attempts ≥ successes)
//! alongside element conservation. Catches reclamation and ordering
//! regressions that single-structure unit tests can miss.
//!
//! These are probabilistic: they exercise real schedules under real
//! contention. Their deterministic counterparts — exhaustive small-bound
//! explorations of step-faithful models — live in `tests/interleavings.rs`
//! and `crates/interleave`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lfrt_lockfree::{
    nbw_register, spsc_ring, AtomicSnapshot, BoundedMpmcQueue, CasRegister, LockFreeList,
    LockFreeQueue, StatsSnapshot, TreiberStack,
};

const THREADS: usize = 4;
const OPS_PER_THREAD: u64 = 10_000;

/// `attempts == successes + retries` by construction, so attempts can never
/// undercount successes; and a loop that succeeded at least once must have
/// attempted at least once.
fn check_stats(snapshot: StatsSnapshot, min_successes: u64, what: &str) {
    assert!(
        snapshot.attempts >= snapshot.successes(),
        "{what}: attempts {} < successes {}",
        snapshot.attempts,
        snapshot.successes()
    );
    assert!(
        snapshot.successes() >= min_successes,
        "{what}: {} successes, expected at least {min_successes}",
        snapshot.successes()
    );
}

#[test]
fn mixed_structure_stress_conserves_everything() {
    let queue = Arc::new(LockFreeQueue::new());
    let stack = Arc::new(TreiberStack::new());
    let mpmc = Arc::new(BoundedMpmcQueue::new(128));
    let list = Arc::new(LockFreeList::new());
    let counter = Arc::new(CasRegister::new(0));
    let snapshot = Arc::new(AtomicSnapshot::new(THREADS));
    let (mut nbw_writer, nbw_reader) = nbw_register((0u64, 0u64));

    let produced = Arc::new(AtomicU64::new(0));
    let consumed = Arc::new(AtomicU64::new(0));

    let workers: Vec<_> = (0..THREADS)
        .map(|w| {
            let queue = Arc::clone(&queue);
            let stack = Arc::clone(&stack);
            let mpmc = Arc::clone(&mpmc);
            let list = Arc::clone(&list);
            let counter = Arc::clone(&counter);
            let snapshot = Arc::clone(&snapshot);
            let nbw_reader = nbw_reader.clone();
            let produced = Arc::clone(&produced);
            let consumed = Arc::clone(&consumed);
            std::thread::spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    let tag = (w as u64) << 32 | i;
                    match i % 5 {
                        0 => {
                            queue.enqueue(tag);
                            produced.fetch_add(1, Ordering::Relaxed);
                            if queue.dequeue().is_some() {
                                consumed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        1 => {
                            stack.push(tag);
                            produced.fetch_add(1, Ordering::Relaxed);
                            if stack.pop().is_some() {
                                consumed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        2 => {
                            if mpmc.push(tag).is_ok() {
                                produced.fetch_add(1, Ordering::Relaxed);
                            }
                            if mpmc.pop().is_some() {
                                consumed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        3 => {
                            list.insert(tag);
                            // Concurrent removers may already have won the
                            // race, so no outcome is guaranteed — just
                            // exercise both paths.
                            let _ = list.contains(tag);
                            let _ = list.remove(tag);
                            list.remove(tag);
                        }
                        _ => {
                            counter.update(|v| v + 1);
                            snapshot.write(w, i as u32);
                            let view = snapshot.scan();
                            assert_eq!(view.len(), THREADS);
                            let (a, b) = nbw_reader.read();
                            assert_eq!(b, 2 * a, "torn NBW read");
                        }
                    }
                }
            })
        })
        .collect();

    // The NBW writer runs on the main thread concurrently.
    for i in 0..OPS_PER_THREAD {
        nbw_writer.write((i, 2 * i));
    }
    for h in workers {
        h.join().expect("worker panicked");
    }

    // Drain and check conservation of the pipes.
    let mut leftover = 0u64;
    while queue.dequeue().is_some() {
        leftover += 1;
    }
    while stack.pop().is_some() {
        leftover += 1;
    }
    while mpmc.pop().is_some() {
        leftover += 1;
    }
    assert_eq!(
        produced.load(Ordering::Relaxed),
        consumed.load(Ordering::Relaxed) + leftover,
        "every produced element was consumed exactly once or is still queued"
    );
    // Counter: every update of branch 4 landed.
    assert_eq!(
        counter.load(),
        (THREADS as u64) * OPS_PER_THREAD.div_ceil(5)
    );
    // List drained by its own branch.
    assert!(list.is_empty(), "leftover keys: {:?}", list.to_vec());
}

/// N producers and N consumers on one Michael–Scott queue: every enqueued
/// tag is dequeued exactly once.
#[test]
fn queue_mpmc_stress_conserves_elements() {
    let queue = Arc::new(LockFreeQueue::new());
    let total = (THREADS as u64) * OPS_PER_THREAD;
    let consumed = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for w in 0..THREADS {
            let queue = Arc::clone(&queue);
            s.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    queue.enqueue((w as u64) << 32 | i);
                }
            });
        }
        let sum = Arc::new(AtomicU64::new(0));
        for _ in 0..THREADS {
            let queue = Arc::clone(&queue);
            let consumed = Arc::clone(&consumed);
            let sum = Arc::clone(&sum);
            s.spawn(move || {
                while consumed.load(Ordering::Relaxed) < total {
                    match queue.dequeue() {
                        Some(tag) => {
                            sum.fetch_add(tag, Ordering::Relaxed);
                            consumed.fetch_add(1, Ordering::Relaxed);
                        }
                        None => std::thread::yield_now(),
                    }
                }
            });
        }
    });

    assert_eq!(consumed.load(Ordering::Relaxed), total);
    assert_eq!(queue.dequeue(), None, "queue drained");
    check_stats(queue.stats().snapshot(), total, "ms-queue");
}

/// N pushers and N poppers on one Treiber stack: conservation of the popped
/// multiset (order is unconstrained under concurrency).
#[test]
fn stack_mpmc_stress_conserves_elements() {
    let stack = Arc::new(TreiberStack::new());
    let total = (THREADS as u64) * OPS_PER_THREAD;
    let consumed = Arc::new(AtomicU64::new(0));
    let sum = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for w in 0..THREADS {
            let stack = Arc::clone(&stack);
            s.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    // Small tags so the checksum cannot overflow.
                    stack.push((w as u64) * OPS_PER_THREAD + i);
                }
            });
        }
        for _ in 0..THREADS {
            let stack = Arc::clone(&stack);
            let consumed = Arc::clone(&consumed);
            let sum = Arc::clone(&sum);
            s.spawn(move || {
                while consumed.load(Ordering::Relaxed) < total {
                    match stack.pop() {
                        Some(tag) => {
                            sum.fetch_add(tag, Ordering::Relaxed);
                            consumed.fetch_add(1, Ordering::Relaxed);
                        }
                        None => std::thread::yield_now(),
                    }
                }
            });
        }
    });

    assert!(stack.pop().is_none(), "stack drained");
    // Sum of 0..total — each tag exactly once.
    assert_eq!(sum.load(Ordering::Relaxed), total * (total - 1) / 2);
    check_stats(stack.stats().snapshot(), total, "treiber-stack");
}

/// Insert/remove churn on the sorted list from disjoint key ranges, plus a
/// shared contended range: disjoint keys must all resolve, and the list must
/// end empty.
#[test]
fn list_mpmc_stress_resolves_all_keys() {
    let list = Arc::new(LockFreeList::new());
    let per_thread = OPS_PER_THREAD / 10;

    std::thread::scope(|s| {
        for w in 0..THREADS {
            let list = Arc::clone(&list);
            s.spawn(move || {
                let base = (w as u64 + 1) << 32;
                for i in 0..per_thread {
                    // Private key: both ops must succeed.
                    assert!(list.insert(base + i), "private insert");
                    // Shared key: contended, any outcome — just exercise it.
                    let shared = i % 17;
                    let _ = list.insert(shared);
                    let _ = list.remove(shared);
                    assert!(list.remove(base + i), "private remove");
                }
            });
        }
    });

    // Clear any shared-range stragglers, then the list must be empty.
    for shared in 0..17 {
        list.remove(shared);
    }
    assert!(list.is_empty(), "leftover keys: {:?}", list.to_vec());
    check_stats(
        list.stats().snapshot(),
        2 * (THREADS as u64) * per_thread,
        "lock-free list",
    );
}

/// N producers and N consumers on the bounded Vyukov ring: producers retry
/// on full, consumers on empty, and every element crosses exactly once.
#[test]
fn bounded_mpmc_stress_conserves_elements() {
    let queue = Arc::new(BoundedMpmcQueue::new(64));
    let total = (THREADS as u64) * OPS_PER_THREAD;
    let consumed = Arc::new(AtomicU64::new(0));
    let sum = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for w in 0..THREADS {
            let queue = Arc::clone(&queue);
            s.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    let mut value = (w as u64) * OPS_PER_THREAD + i;
                    while let Err(v) = queue.push(value) {
                        value = v;
                        std::thread::yield_now();
                    }
                }
            });
        }
        for _ in 0..THREADS {
            let queue = Arc::clone(&queue);
            let consumed = Arc::clone(&consumed);
            let sum = Arc::clone(&sum);
            s.spawn(move || {
                while consumed.load(Ordering::Relaxed) < total {
                    match queue.pop() {
                        Some(tag) => {
                            sum.fetch_add(tag, Ordering::Relaxed);
                            consumed.fetch_add(1, Ordering::Relaxed);
                        }
                        None => std::thread::yield_now(),
                    }
                }
            });
        }
    });

    assert_eq!(queue.pop(), None, "ring drained");
    assert_eq!(sum.load(Ordering::Relaxed), total * (total - 1) / 2);
    check_stats(queue.stats().snapshot(), total, "bounded-mpmc");
}

/// The SPSC ring under its contract (exactly one producer, one consumer):
/// elements arrive in order, none lost, none duplicated — even through a
/// tiny capacity that forces constant full/empty collisions.
#[test]
fn spsc_ring_stress_preserves_fifo() {
    let (mut producer, mut consumer) = spsc_ring::<u64>(4);
    let total = OPS_PER_THREAD;

    let handle = std::thread::spawn(move || {
        for mut i in 0..total {
            while let Err(v) = producer.push(i) {
                i = v;
                std::thread::yield_now();
            }
        }
    });
    let mut expected = 0u64;
    while expected < total {
        match consumer.pop() {
            Some(v) => {
                assert_eq!(v, expected, "FIFO order violated");
                expected += 1;
            }
            None => std::thread::yield_now(),
        }
    }
    handle.join().expect("producer panicked");
    assert_eq!(consumer.pop(), None, "ring drained");
}
