//! **Figures 10–13** — AUR and CMR of lock-based versus lock-free RUA under
//! an increasing number of shared objects.
//!
//! Four paper figures come from one parameterized sweep:
//!
//! | figure | load (AL) | TUF class      |
//! |--------|-----------|----------------|
//! | 10     | ≈ 0.4     | step           |
//! | 11     | ≈ 0.4     | heterogeneous  |
//! | 12     | ≈ 1.1     | step           |
//! | 13     | ≈ 1.1     | heterogeneous  |
//!
//! 10 tasks access `k` shared queues (each job touches each object once);
//! each point averages several seeded runs and reports a 95% confidence
//! interval, as in the paper.
//!
//! Expected shape (paper): lock-based AUR/CMR decays sharply with the
//! object count (to ≈0 during overloads); lock-free stays ≈100% during
//! underloads and far above lock-based during overloads.
//!
//! Usage: `cargo run -p lfrt-bench --release --bin fig10_13_aur_cmr --
//! [--load 0.4|1.1] [--tufs step|hetero] [--seeds 5] [--r 400] [--s 5]`

use lfrt_bench::stats::Summary;
use lfrt_bench::{table, Args};
use lfrt_core::{RuaLockBased, RuaLockFree};
use lfrt_sim::workload::{ArrivalStyle, TufClass, WorkloadSpec};
use lfrt_sim::{Engine, OverheadModel, SharingMode, SimConfig, UaScheduler};

fn main() {
    let args = Args::from_env();
    let load = args.get_f64("load", 0.4);
    let tufs = match args.get_str("tufs", "step").as_str() {
        "hetero" | "heterogeneous" => TufClass::Heterogeneous,
        _ => TufClass::Step,
    };
    let seeds = args.get_u64("seeds", 5);
    let r = args.get_u64("r", 400);
    let s = args.get_u64("s", 5);
    let figure = match (load > 0.9, tufs) {
        (false, TufClass::Step) => "10",
        (false, TufClass::Heterogeneous) => "11",
        (true, TufClass::Step) => "12",
        (true, TufClass::Heterogeneous) => "13",
    };

    println!("# Figure {figure}: AUR/CMR vs shared objects (AL = {load}, {tufs:?} TUFs)");
    println!("# r = {r} µs, s = {s} µs, {seeds} seeds per point");

    let mut rows = Vec::new();
    for objects in [1usize, 2, 4, 6, 8, 10] {
        let mut lb_aur = Vec::new();
        let mut lb_cmr = Vec::new();
        let mut lf_aur = Vec::new();
        let mut lf_cmr = Vec::new();
        for seed in 0..seeds {
            let spec = WorkloadSpec {
                num_tasks: 10,
                num_objects: objects,
                accesses_per_job: objects,
                tuf_class: tufs,
                target_load: load,
                window_range: (6_000, 18_000),
                max_burst: 2,
                critical_time_frac: 0.9,
                arrival_style: ArrivalStyle::RandomUam { intensity: 4.0 },
                horizon: 1_000_000,
                read_fraction: 0.0,
                seed,
            };
            let lb = run(&spec, SharingMode::LockBased { access_ticks: r }, RuaLockBased::new());
            lb_aur.push(lb.aur());
            lb_cmr.push(lb.cmr());
            let lf = run(&spec, SharingMode::LockFree { access_ticks: s }, RuaLockFree::new());
            lf_aur.push(lf.aur());
            lf_cmr.push(lf.cmr());
        }
        rows.push(vec![
            objects.to_string(),
            Summary::of(&lf_aur).display(3),
            Summary::of(&lb_aur).display(3),
            Summary::of(&lf_cmr).display(3),
            Summary::of(&lb_cmr).display(3),
        ]);
    }
    table::print(
        &format!("Figure {figure}: AUR and CMR vs number of shared objects"),
        &["objects", "AUR lock-free", "AUR lock-based", "CMR lock-free", "CMR lock-based"],
        &rows,
    );
    println!(
        "\nshape check: lock-based decays with objects{}; lock-free stays high.",
        if load > 0.9 { " (toward 0 in overload)" } else { "" }
    );
}

fn run<S: UaScheduler>(
    spec: &WorkloadSpec,
    sharing: SharingMode,
    scheduler: S,
) -> lfrt_sim::SimMetrics {
    let (tasks, traces) = spec.build().expect("valid workload");
    Engine::new(
        tasks,
        traces,
        SimConfig::new(sharing)
            .overhead(OverheadModel::per_op(0.2))
            .record_jobs(false),
    )
    .expect("valid engine")
    .run(scheduler)
    .metrics
}
