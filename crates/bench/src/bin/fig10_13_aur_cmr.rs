//! **Figures 10–13** — AUR and CMR of lock-based versus lock-free RUA under
//! an increasing number of shared objects.
//!
//! Four paper figures come from one parameterized sweep:
//!
//! | figure | load (AL) | TUF class      |
//! |--------|-----------|----------------|
//! | 10     | ≈ 0.4     | step           |
//! | 11     | ≈ 0.4     | heterogeneous  |
//! | 12     | ≈ 1.1     | step           |
//! | 13     | ≈ 1.1     | heterogeneous  |
//!
//! 10 tasks access `k` shared queues (each job touches each object once);
//! each point averages several seeded runs and reports a 95% confidence
//! interval, as in the paper.
//!
//! Expected shape (paper): lock-based AUR/CMR decays sharply with the
//! object count (to ≈0 during overloads); lock-free stays ≈100% during
//! underloads and far above lock-based during overloads.
//!
//! Usage: `cargo run -p lfrt-bench --release --bin fig10_13_aur_cmr --
//! [--load 0.4|1.1] [--tufs step|hetero] [--seeds 5] [--r 400] [--s 5]
//! [--json <path>] [--threads N] [--quick]`

use lfrt_bench::json::{self, Point, Report};
use lfrt_bench::runner::Sweep;
use lfrt_bench::stats::Summary;
use lfrt_bench::{table, Args};
use lfrt_core::{RuaLockBased, RuaLockFree};
use lfrt_sim::workload::{ArrivalStyle, TufClass, WorkloadSpec};
use lfrt_sim::{Engine, OverheadModel, SharingMode, SimConfig, UaScheduler};

fn main() {
    let started = std::time::Instant::now();
    let args = Args::from_env();
    let trace = lfrt_bench::trace::Session::from_args(&args, "fig10_13_aur_cmr");
    let quick = args.quick();
    let load = args.get_f64("load", 0.4);
    let tufs = match args.get_str("tufs", "step").as_str() {
        "hetero" | "heterogeneous" => TufClass::Heterogeneous,
        _ => TufClass::Step,
    };
    let seeds = args.get_u64("seeds", if quick { 2 } else { 5 });
    let r = args.get_u64("r", 400);
    let s = args.get_u64("s", 5);
    let horizon = args.get_u64("horizon", if quick { 200_000 } else { 1_000_000 });
    let object_counts: Vec<usize> = if quick {
        vec![1, 4, 10]
    } else {
        vec![1, 2, 4, 6, 8, 10]
    };
    let figure = match (load > 0.9, tufs) {
        (false, TufClass::Step) => "10",
        (false, TufClass::Heterogeneous) => "11",
        (true, TufClass::Step) => "12",
        (true, TufClass::Heterogeneous) => "13",
    };

    println!("# Figure {figure}: AUR/CMR vs shared objects (AL = {load}, {tufs:?} TUFs)");
    println!("# r = {r} µs, s = {s} µs, {seeds} seeds per point");

    // One sweep point per (object count, seed); each evaluates the
    // lock-based and lock-free engines on the identical workload.
    let points: Vec<(usize, u64)> = object_counts
        .iter()
        .flat_map(|&k| (0..seeds).map(move |seed| (k, seed)))
        .collect();
    let results = Sweep::new(format!("fig{figure}"), points.clone())
        .threads(args.threads())
        .run(|&(objects, seed)| {
            let spec = WorkloadSpec {
                num_tasks: 10,
                num_objects: objects,
                accesses_per_job: objects,
                tuf_class: tufs,
                target_load: load,
                window_range: (6_000, 18_000),
                max_burst: 2,
                critical_time_frac: 0.9,
                arrival_style: ArrivalStyle::RandomUam { intensity: 4.0 },
                horizon,
                read_fraction: 0.0,
                seed,
            };
            let lb = run(
                &spec,
                SharingMode::LockBased { access_ticks: r },
                RuaLockBased::new(),
            );
            let lf = run(
                &spec,
                SharingMode::LockFree { access_ticks: s },
                RuaLockFree::new(),
            );
            [lf.aur(), lb.aur(), lf.cmr(), lb.cmr()]
        });

    let mut report = Report::new("fig10_13_aur_cmr", figure, "AUR and CMR vs shared objects")
        .config("load", load)
        .config("tufs", format!("{tufs:?}"))
        .config("seeds", seeds)
        .config("r_ticks", r)
        .config("s_ticks", s)
        .config("horizon", horizon)
        .config("num_tasks", 10u64);

    let mut rows = Vec::new();
    for (i, &objects) in object_counts.iter().enumerate() {
        // Seed-major slices out of the seed-ordered sweep results.
        let chunk = &results[i * seeds as usize..(i + 1) * seeds as usize];
        let column = |j: usize| chunk.iter().map(|m| m[j]).collect::<Vec<f64>>();
        let (lf_aur, lb_aur, lf_cmr, lb_cmr) = (column(0), column(1), column(2), column(3));
        rows.push(vec![
            objects.to_string(),
            Summary::of(&lf_aur).display(3),
            Summary::of(&lb_aur).display(3),
            Summary::of(&lf_cmr).display(3),
            Summary::of(&lb_cmr).display(3),
        ]);
        report.points.push(Point {
            params: vec![("objects".into(), objects.into())],
            seeds: (0..seeds).collect(),
            metrics: vec![
                ("aur_lock_free".into(), json::summary_of(&lf_aur)),
                ("aur_lock_based".into(), json::summary_of(&lb_aur)),
                ("cmr_lock_free".into(), json::summary_of(&lf_cmr)),
                ("cmr_lock_based".into(), json::summary_of(&lb_cmr)),
            ],
            timing: Vec::new(),
        });
    }
    table::print(
        &format!("Figure {figure}: AUR and CMR vs number of shared objects"),
        &[
            "objects",
            "AUR lock-free",
            "AUR lock-based",
            "CMR lock-free",
            "CMR lock-based",
        ],
        &rows,
    );
    println!(
        "\nshape check: lock-based decays with objects{}; lock-free stays high.",
        if load > 0.9 {
            " (toward 0 in overload)"
        } else {
            ""
        }
    );

    if let Some(path) = args.json_path() {
        let meta = json::RunMeta::capture(args.threads(), quick);
        json::write_reports(&path, &[report], meta, started).expect("write JSON report");
    }
    trace.finish(args.threads(), args.quick());
}

fn run<S: UaScheduler>(
    spec: &WorkloadSpec,
    sharing: SharingMode,
    scheduler: S,
) -> lfrt_sim::SimMetrics {
    let (tasks, traces) = spec.build().expect("valid workload");
    Engine::new(
        tasks,
        traces,
        SimConfig::new(sharing)
            .overhead(OverheadModel::per_op(0.2))
            .record_jobs(false),
    )
    .expect("valid engine")
    .run(scheduler)
    .metrics
}
