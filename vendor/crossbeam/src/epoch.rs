//! Epoch-based memory reclamation with tagged atomic pointers.
//!
//! This is a real (if compact) implementation of epoch-based reclamation
//! (EBR), the scheme of Fraser's thesis and the `crossbeam-epoch` crate —
//! no longer the leak-forever stand-in this module started as:
//!
//! * a global epoch counter ([`EPOCH`], advancing in steps of 2 so the low
//!   bit of a thread record can carry the *pinned* flag);
//! * a registry of per-thread records ([`Record`], each cache-line padded
//!   so pinning never false-shares), published once per thread and reused
//!   across short-lived threads;
//! * per-thread deferred-garbage bags: [`Guard::defer_destroy`] stamps the
//!   retired node with the current epoch and queues it thread-locally;
//! * amortized maintenance on [`pin`]: every few pins the thread tries to
//!   advance the global epoch (possible only when every pinned thread has
//!   observed the current one) and frees its garbage that is at least two
//!   advances old — the grace period that guarantees no pinned thread can
//!   still hold a reference.
//!
//! Garbage owned by a thread that exits is handed to a global orphan list
//! and freed by whichever thread next collects. [`Guard::flush`] forces a
//! collection cycle, which tests use to reach quiescence deterministically;
//! [`retired_count`]/[`destroyed_count`] expose lifetime totals so tests
//! can assert both "eventually freed" and "never freed early".
//!
//! Besides destruction, a retired node can be *recycled*:
//! [`Guard::defer_recycle`] queues the same grace-period-gated deferral but
//! runs a caller-supplied recycler instead of the destructor+free, routing
//! the raw block back to a node pool (`lfrt-lockfree`'s `pool` module).
//! Reuse is gated on the exact epoch advance that today gates the free, so
//! a recycled block can only be handed out again once no pinned thread can
//! still hold a pre-retirement reference — ABA safety by construction.
//! [`recycle_retired_count`]/[`recycled_count`] mirror the destroy-side
//! totals for the recycle path.

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::mem;
use std::ptr;
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Mutex;

use lfrt_trace as trace;

use crate::utils::CachePadded;

/// Number of low pointer bits available for tags, from `T`'s alignment.
const fn low_bits<T>() -> usize {
    mem::align_of::<T>() - 1
}

fn decompose<T>(data: usize) -> (*mut T, usize) {
    ((data & !low_bits::<T>()) as *mut T, data & low_bits::<T>())
}

/// The global epoch. Advances in steps of 2 (the low bit is the *pinned*
/// flag in thread records), so "one advance" is a numeric distance of 2.
static EPOCH: CachePadded<AtomicUsize> = CachePadded::new(AtomicUsize::new(0));

/// Head of the lock-free singly-linked registry of thread records.
static REGISTRY: AtomicPtr<Record> = AtomicPtr::new(ptr::null_mut());

/// Garbage inherited from exited threads, freed by later collections.
static ORPHANS: Mutex<Vec<Deferred>> = Mutex::new(Vec::new());

/// Lifetime totals, for the reclamation-safety tests: nodes handed to
/// `defer_destroy` and nodes whose destructor has actually run. Padded so
/// the counters don't share a line with each other or the epoch.
static RETIRED: CachePadded<AtomicUsize> = CachePadded::new(AtomicUsize::new(0));
static DESTROYED: CachePadded<AtomicUsize> = CachePadded::new(AtomicUsize::new(0));

/// Recycle-path twins of `RETIRED`/`DESTROYED`: nodes handed to
/// [`Guard::defer_recycle`] and nodes whose recycler has actually run.
static RECYCLE_RETIRED: CachePadded<AtomicUsize> = CachePadded::new(AtomicUsize::new(0));
static RECYCLED: CachePadded<AtomicUsize> = CachePadded::new(AtomicUsize::new(0));

/// Total nodes ever passed to [`Guard::defer_destroy`] (process lifetime).
pub fn retired_count() -> usize {
    RETIRED.load(Ordering::Relaxed)
}

/// Total deferred destructors that have actually run (process lifetime).
///
/// `retired_count() - destroyed_count()` is the number of retired nodes
/// still awaiting their grace period — bounded under churn, zero at
/// quiescence once collections have caught up (see [`Guard::flush`]).
pub fn destroyed_count() -> usize {
    DESTROYED.load(Ordering::Relaxed)
}

/// Total nodes ever passed to [`Guard::defer_recycle`] (process lifetime).
pub fn recycle_retired_count() -> usize {
    RECYCLE_RETIRED.load(Ordering::Relaxed)
}

/// Total deferred recyclers that have actually run (process lifetime).
pub fn recycled_count() -> usize {
    RECYCLED.load(Ordering::Relaxed)
}

/// One thread's slot in the global registry.
///
/// `state` holds `epoch | 1` while the thread is pinned and `0` while it is
/// not; the whole record is cache-line padded because every `pin`/`unpin`
/// writes it and every `try_advance` on any thread reads it.
struct Record {
    state: CachePadded<AtomicUsize>,
    in_use: AtomicBool,
    next: AtomicPtr<Record>,
}

/// What a [`Deferred`] does once its grace period passes: run the pointee's
/// destructor and free the block, or hand the raw block to a pool recycler.
#[derive(Clone, Copy, PartialEq, Eq)]
enum DeferKind {
    Destroy,
    Recycle,
}

/// A retired allocation awaiting its grace period.
struct Deferred {
    ptr: *mut u8,
    /// The grace-period action. For `Destroy` this is `drop_box::<T>` and
    /// `ctx` is unused; for `Recycle` it is the caller's recycler and `ctx`
    /// carries its context word (the pool address).
    run: unsafe fn(*mut u8, usize),
    ctx: usize,
    kind: DeferKind,
    /// Global epoch at retirement time.
    epoch: usize,
}

// SAFETY: a `Deferred` is an unreachable retired allocation; the only thing
// ever done with it is running `run` exactly once, on whichever thread
// performs the collection. The structures that retire nodes require
// `T: Send`, so freeing (or pooling) on another thread is sound.
unsafe impl Send for Deferred {}

impl Deferred {
    /// Whether the grace period has passed: two full epoch advances (the
    /// epoch steps by 2, hence the distance of 4) guarantee every thread
    /// pinned at retirement time has since unpinned or repinned.
    fn expired(&self, global: usize) -> bool {
        global.wrapping_sub(self.epoch) >= 4
    }

    /// Runs the grace-period action (destructor or recycler).
    ///
    /// # Safety
    ///
    /// Must be called at most once, after the grace period.
    unsafe fn destroy(self) {
        (self.run)(self.ptr, self.ctx);
        match self.kind {
            DeferKind::Destroy => DESTROYED.fetch_add(1, Ordering::Relaxed),
            DeferKind::Recycle => RECYCLED.fetch_add(1, Ordering::Relaxed),
        };
    }
}

unsafe fn drop_box<T>(ptr: *mut u8, _ctx: usize) {
    // SAFETY: `ptr` came from `Box::into_raw` in `Owned::new` (cast via
    // `defer_destroy`), and `destroy` runs at most once.
    drop(unsafe { Box::from_raw(ptr.cast::<T>()) });
}

/// Claims a registry record for a new thread: reuses a released one if
/// available, otherwise publishes a fresh record (records themselves are
/// never freed, so the registry size is bounded by the peak number of
/// concurrently live threads).
fn acquire_record() -> &'static Record {
    let mut cursor = REGISTRY.load(Ordering::Acquire);
    while let Some(record) = unsafe { cursor.as_ref() } {
        if !record.in_use.load(Ordering::Relaxed)
            && record
                .in_use
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        {
            return record;
        }
        cursor = record.next.load(Ordering::Acquire);
    }
    let record: &'static Record = Box::leak(Box::new(Record {
        state: CachePadded::new(AtomicUsize::new(0)),
        in_use: AtomicBool::new(true),
        next: AtomicPtr::new(ptr::null_mut()),
    }));
    let mut head = REGISTRY.load(Ordering::Acquire);
    loop {
        record.next.store(head, Ordering::Relaxed);
        match REGISTRY.compare_exchange(
            head,
            record as *const Record as *mut Record,
            Ordering::Release,
            Ordering::Acquire,
        ) {
            Ok(_) => return record,
            Err(actual) => head = actual,
        }
    }
}

/// Tries to advance the global epoch by one step. Succeeds only when every
/// currently pinned thread has observed the current epoch.
fn try_advance() -> usize {
    let global = EPOCH.load(Ordering::Relaxed);
    // Pairs with the fence in `Local::pin`: after this fence, every record
    // whose owner pinned before our scan is visible to the loads below.
    fence(Ordering::SeqCst);
    let mut cursor = REGISTRY.load(Ordering::Acquire);
    while let Some(record) = unsafe { cursor.as_ref() } {
        let state = record.state.load(Ordering::Relaxed);
        if state & 1 == 1 && state & !1 != global {
            // A thread is pinned in an older epoch; cannot advance yet.
            return global;
        }
        cursor = record.next.load(Ordering::Acquire);
    }
    match EPOCH.compare_exchange(
        global,
        global.wrapping_add(2),
        Ordering::Release,
        Ordering::Relaxed,
    ) {
        Ok(_) => {
            let advanced = global.wrapping_add(2);
            trace::emit(
                trace::EventKind::EpochAdvance,
                trace::Site::Epoch,
                (advanced >> 1) as u64,
            );
            advanced
        }
        Err(actual) => actual,
    }
}

/// Moves every grace-period-expired item out of `items` into `out`,
/// preserving the rest. Separate from [`Local::collect`] so the caller
/// controls when the bag borrow (or orphan lock) is released before
/// destructors run. Appends into a caller-owned buffer instead of
/// returning a fresh `Vec`: collection runs on the pin cadence of the
/// hot paths, and allocating the drain buffer per cycle was the last
/// steady-state allocator traffic `churn_footprint` could see.
fn drain_expired(items: &mut Vec<Deferred>, global: usize, out: &mut Vec<Deferred>) {
    let mut i = 0;
    while i < items.len() {
        if items[i].expired(global) {
            out.push(items.swap_remove(i));
        } else {
            i += 1;
        }
    }
}

/// Collect on every Nth pin (power of two; amortizes the registry scan).
const PINS_BETWEEN_COLLECT: usize = 16;
/// Collect eagerly once a thread's bag holds this many retired nodes.
const BAG_COLLECT_THRESHOLD: usize = 64;

/// Per-thread epoch state: the registry record, the pin depth, and the
/// deferred-garbage bag.
struct Local {
    record: &'static Record,
    guard_count: Cell<usize>,
    pins_until_collect: Cell<usize>,
    bag: RefCell<Vec<Deferred>>,
    /// Reusable drain buffer for [`Local::collect`], so steady-state
    /// collection cycles never touch the allocator (its capacity is
    /// bounded by the largest expired batch, itself bounded by
    /// `BAG_COLLECT_THRESHOLD` plus the orphan backlog).
    scratch: RefCell<Vec<Deferred>>,
}

thread_local! {
    static LOCAL: Local = Local {
        record: acquire_record(),
        guard_count: Cell::new(0),
        pins_until_collect: Cell::new(PINS_BETWEEN_COLLECT),
        bag: RefCell::new(Vec::new()),
        scratch: RefCell::new(Vec::new()),
    };
}

impl Local {
    fn pin(&self) {
        let count = self.guard_count.get();
        self.guard_count.set(count + 1);
        if count == 0 {
            let epoch = EPOCH.load(Ordering::Relaxed);
            self.record.state.store(epoch | 1, Ordering::Relaxed);
            // Pairs with the fence in `try_advance`: either the advancing
            // thread's scan sees this pin (and refuses to advance past us),
            // or this fence orders after its scan and our subsequent loads
            // see every unlink that preceded the advance — so nothing freed
            // by it is reachable to us.
            fence(Ordering::SeqCst);
            trace::emit(
                trace::EventKind::EpochPin,
                trace::Site::Epoch,
                (epoch >> 1) as u64,
            );
            let pins = self.pins_until_collect.get() - 1;
            if pins == 0 {
                self.pins_until_collect.set(PINS_BETWEEN_COLLECT);
                self.collect();
            } else {
                self.pins_until_collect.set(pins);
            }
        }
    }

    fn unpin(&self) {
        let count = self.guard_count.get();
        self.guard_count.set(count - 1);
        if count == 1 {
            self.record.state.store(0, Ordering::Release);
        }
    }

    fn defer(&self, deferred: Deferred) {
        let len = {
            let mut bag = self.bag.borrow_mut();
            bag.push(deferred);
            bag.len()
        };
        trace::emit(trace::EventKind::EpochDefer, trace::Site::Epoch, len as u64);
        if len >= BAG_COLLECT_THRESHOLD {
            self.collect();
        }
    }

    /// One maintenance cycle: try to advance the epoch, then free every
    /// bagged (and orphaned) node whose grace period has passed.
    fn collect(&self) {
        let global = try_advance();
        // Take the scratch buffer out by value so the RefCell borrow is
        // released before any destructor runs (a re-entrant collect sees
        // an empty scratch and simply pays one allocation, which is fine:
        // re-entry is a destructor-driven rarity, not the steady state).
        let mut expired = self.scratch.take();
        drain_expired(&mut self.bag.borrow_mut(), global, &mut expired);
        let mut freed = expired.len();
        // Destructors run with the bag borrow released: a payload `Drop`
        // that re-enters `pin`/`defer_destroy` must not hit the RefCell.
        for d in expired.drain(..) {
            // SAFETY: grace period passed; each item destroyed exactly once
            // (it was removed from the bag above).
            unsafe { d.destroy() };
        }
        // Scavenge garbage inherited from exited threads. `try_lock`: the
        // orphan list is a slow path and never worth contending for.
        if let Ok(mut orphans) = ORPHANS.try_lock() {
            drain_expired(&mut orphans, global, &mut expired);
            drop(orphans);
            freed += expired.len();
            for d in expired.drain(..) {
                // SAFETY: as above.
                unsafe { d.destroy() };
            }
        }
        // Hand the (empty, capacity-retaining) buffer back for the next
        // cycle. If a re-entrant collect parked its own buffer meanwhile,
        // the larger one wins so capacity ratchets instead of thrashing.
        let mut slot = self.scratch.borrow_mut();
        if slot.capacity() < expired.capacity() {
            *slot = expired;
        }
        drop(slot);
        trace::emit(
            trace::EventKind::EpochCollect,
            trace::Site::Epoch,
            freed as u64,
        );
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        // Thread exit: orphan any garbage still waiting for its grace
        // period and release the registry record for reuse.
        let bag = mem::take(&mut *self.bag.borrow_mut());
        if !bag.is_empty() {
            ORPHANS.lock().expect("orphan list poisoned").extend(bag);
        }
        self.record.state.store(0, Ordering::Release);
        self.record.in_use.store(false, Ordering::Release);
    }
}

/// A pinned-region token.
///
/// While a `Guard` lives, the current thread is *pinned*: the global epoch
/// cannot advance two steps past the epoch it observed, so no node retired
/// after pinning is freed while any [`Shared`] loaded through this guard is
/// still usable. Dropping the last guard on a thread unpins it.
#[derive(Debug)]
pub struct Guard {
    /// The owning thread's `Local`, or null for [`unprotected`] guards.
    local: *const Local,
}

impl Guard {
    /// Schedules `ptr`'s pointee for destruction once no pinned thread can
    /// hold a reference (two epoch advances from now).
    ///
    /// On an [`unprotected`] guard the destruction runs immediately — the
    /// caller asserted exclusive access.
    ///
    /// # Safety
    ///
    /// `ptr` must be non-null, point to a live allocation created through
    /// [`Owned`], be unreachable to new loads (already unlinked), and not
    /// be retired twice.
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        let raw = ptr.as_raw().cast_mut().cast::<u8>();
        debug_assert!(!raw.is_null(), "defer_destroy on null Shared");
        RETIRED.fetch_add(1, Ordering::Relaxed);
        let deferred = Deferred {
            ptr: raw,
            run: drop_box::<T>,
            ctx: 0,
            kind: DeferKind::Destroy,
            epoch: EPOCH.load(Ordering::Relaxed),
        };
        match unsafe { self.local.as_ref() } {
            Some(local) => local.defer(deferred),
            // SAFETY: unprotected guard — the caller guarantees exclusive
            // access, so the grace period is vacuous.
            None => unsafe { deferred.destroy() },
        }
    }

    /// Schedules `ptr`'s block for *recycling* once no pinned thread can
    /// hold a reference: after the same two-epoch-advance grace period as
    /// [`Guard::defer_destroy`], `recycle(ptr, ctx)` runs instead of the
    /// destructor+free, returning the raw block to a node pool for reuse.
    /// Because handout is gated on the very advance that today gates the
    /// free, a recycled block cannot ABA under a reader pinned before its
    /// retirement.
    ///
    /// On an [`unprotected`] guard the recycler runs immediately — the
    /// caller asserted exclusive access.
    ///
    /// # Safety
    ///
    /// `ptr` must be non-null, unreachable to new loads (already unlinked),
    /// and not retired twice. The pointee's destructor is **not** run: the
    /// caller must have already moved the payload out (or the remaining
    /// fields must be trivially droppable), and `recycle` must accept the
    /// block with its contents left as-is.
    pub unsafe fn defer_recycle<T>(
        &self,
        ptr: Shared<'_, T>,
        recycle: unsafe fn(*mut u8, usize),
        ctx: usize,
    ) {
        let raw = ptr.as_raw().cast_mut().cast::<u8>();
        debug_assert!(!raw.is_null(), "defer_recycle on null Shared");
        RECYCLE_RETIRED.fetch_add(1, Ordering::Relaxed);
        let deferred = Deferred {
            ptr: raw,
            run: recycle,
            ctx,
            kind: DeferKind::Recycle,
            epoch: EPOCH.load(Ordering::Relaxed),
        };
        match unsafe { self.local.as_ref() } {
            Some(local) => local.defer(deferred),
            // SAFETY: unprotected guard — exclusive access, grace period
            // vacuous, so the block can be pooled right away.
            None => unsafe { deferred.destroy() },
        }
    }

    /// Forces a maintenance cycle: one epoch-advance attempt plus a sweep
    /// of this thread's bag and the orphan list.
    ///
    /// Repeated `pin` + `flush` cycles reach quiescence (every retired node
    /// freed) in a bounded number of iterations once no other thread is
    /// pinned — the deterministic lever the reclamation tests use.
    pub fn flush(&self) {
        // SAFETY: non-null `local` points to the calling thread's `Local`,
        // alive for as long as any of its guards.
        if let Some(local) = unsafe { self.local.as_ref() } {
            local.collect();
        }
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        // SAFETY: as in `flush`.
        if let Some(local) = unsafe { self.local.as_ref() } {
            local.unpin();
        }
    }
}

/// Pins the current thread and returns a guard scoping loaded pointers.
///
/// Nested pins are cheap (a counter bump); only the outermost pin writes
/// the thread's registry record and runs amortized garbage collection.
pub fn pin() -> Guard {
    LOCAL.with(|local| {
        local.pin();
        Guard {
            local: local as *const Local,
        }
    })
}

/// Returns a guard usable without pinning.
///
/// Deferred destructions through this guard run immediately.
///
/// # Safety
///
/// Callers must guarantee exclusive access to the data structure (e.g. from
/// `Drop` via `&mut self`, or before the structure is shared).
pub unsafe fn unprotected() -> &'static Guard {
    // Wrapper so `Guard` itself stays `!Sync` (a pinned guard carries
    // thread-local state); the unprotected guard has none.
    struct UnprotectedGuard(Guard);
    // SAFETY: the null-local guard touches no thread-local state.
    unsafe impl Sync for UnprotectedGuard {}
    static UNPROTECTED: UnprotectedGuard = UnprotectedGuard(Guard { local: ptr::null() });
    &UNPROTECTED.0
}

/// An owned, heap-allocated pointer, analogous to `Box<T>`.
pub struct Owned<T> {
    data: usize,
    _marker: PhantomData<Box<T>>,
}

impl<T> Owned<T> {
    /// Allocates `value` on the heap.
    ///
    /// # Panics
    ///
    /// Panics if `T` is a zero-sized type (unsupported by this stand-in).
    pub fn new(value: T) -> Self {
        assert!(mem::size_of::<T>() != 0, "ZSTs are not supported");
        let ptr = Box::into_raw(Box::new(value));
        Self {
            data: ptr as usize,
            _marker: PhantomData,
        }
    }

    /// Wraps a raw pointer to an already-initialized `T`, taking ownership
    /// without allocating — the pool-recycling twin of [`Owned::new`].
    ///
    /// # Safety
    ///
    /// `ptr` must be non-null, properly aligned, point to a fully
    /// initialized `T` the caller exclusively owns, and its block must have
    /// come from the global allocator with `T`'s layout (so the eventual
    /// `Box::from_raw` free — via [`Owned`]'s `Drop` or `defer_destroy` —
    /// is sound).
    pub unsafe fn from_raw(ptr: *mut T) -> Self {
        debug_assert!(!ptr.is_null(), "Owned::from_raw on null");
        Self {
            data: ptr as usize,
            _marker: PhantomData,
        }
    }

    /// Converts into a [`Shared`] scoped by `guard`, giving up ownership.
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        let data = self.data;
        mem::forget(self);
        Shared {
            data,
            _marker: PhantomData,
        }
    }

    fn into_usize(self) -> usize {
        let data = self.data;
        mem::forget(self);
        data
    }

    unsafe fn from_usize(data: usize) -> Self {
        Self {
            data,
            _marker: PhantomData,
        }
    }
}

impl<T> std::ops::Deref for Owned<T> {
    type Target = T;

    fn deref(&self) -> &T {
        let (ptr, _) = decompose::<T>(self.data);
        // SAFETY: an `Owned` always holds a live, exclusively owned
        // allocation created in `Owned::new`.
        unsafe { &*ptr }
    }
}

impl<T> std::ops::DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        let (ptr, _) = decompose::<T>(self.data);
        // SAFETY: as in `deref`, plus `&mut self` gives uniqueness.
        unsafe { &mut *ptr }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        let (ptr, _) = decompose::<T>(self.data);
        // SAFETY: the allocation is exclusively owned and was created by
        // `Box::new` in `Owned::new`.
        drop(unsafe { Box::from_raw(ptr) });
    }
}

/// A tagged pointer valid for the guard lifetime `'g`.
pub struct Shared<'g, T> {
    data: usize,
    _marker: PhantomData<(&'g (), *const T)>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Shared<'_, T> {}

impl<T> PartialEq for Shared<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl<T> Eq for Shared<'_, T> {}

impl<T> std::fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (ptr, tag) = decompose::<T>(self.data);
        f.debug_struct("Shared")
            .field("ptr", &ptr)
            .field("tag", &tag)
            .finish()
    }
}

impl<'g, T> Shared<'g, T> {
    /// The null pointer (tag 0).
    pub fn null() -> Self {
        Self {
            data: 0,
            _marker: PhantomData,
        }
    }

    /// Whether the pointer part (ignoring the tag) is null.
    pub fn is_null(&self) -> bool {
        let (ptr, _) = decompose::<T>(self.data);
        ptr.is_null()
    }

    /// The raw, untagged pointer.
    pub fn as_raw(&self) -> *const T {
        let (ptr, _) = decompose::<T>(self.data);
        ptr
    }

    /// The tag packed into the pointer's low bits.
    pub fn tag(&self) -> usize {
        let (_, tag) = decompose::<T>(self.data);
        tag
    }

    /// The same pointer with its tag replaced by `tag` (masked to fit).
    pub fn with_tag(&self, tag: usize) -> Self {
        let (ptr, _) = decompose::<T>(self.data);
        Self {
            data: ptr as usize | (tag & low_bits::<T>()),
            _marker: PhantomData,
        }
    }

    /// Dereferences the pointer.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and the pointee live for `'g`.
    pub unsafe fn deref(&self) -> &'g T {
        &*self.as_raw()
    }

    /// Dereferences if non-null.
    ///
    /// # Safety
    ///
    /// If non-null, the pointee must be live for `'g`.
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        self.as_raw().as_ref()
    }

    /// Reclaims ownership of the allocation.
    ///
    /// # Safety
    ///
    /// The caller must have exclusive access to the pointee (no concurrent
    /// readers or writers), and the pointer must be non-null.
    pub unsafe fn into_owned(self) -> Owned<T> {
        debug_assert!(!self.is_null(), "into_owned on null Shared");
        Owned::from_usize(self.as_raw() as usize)
    }

    fn into_usize(self) -> usize {
        self.data
    }

    unsafe fn from_usize(data: usize) -> Self {
        Self {
            data,
            _marker: PhantomData,
        }
    }
}

/// Sealed conversion between pointer flavours and their packed form, so
/// [`Atomic::compare_exchange`] can accept either [`Owned`] or [`Shared`]
/// as the replacement value and hand it back intact on failure.
pub trait Pointer<T> {
    /// Packs into the tagged-pointer word.
    fn into_usize(self) -> usize;

    /// Unpacks from the tagged-pointer word.
    ///
    /// # Safety
    ///
    /// `data` must have come from `into_usize` of the same flavour.
    unsafe fn from_usize(data: usize) -> Self;
}

impl<T> Pointer<T> for Owned<T> {
    fn into_usize(self) -> usize {
        Owned::into_usize(self)
    }

    unsafe fn from_usize(data: usize) -> Self {
        Owned::from_usize(data)
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_usize(self) -> usize {
        Shared::into_usize(self)
    }

    unsafe fn from_usize(data: usize) -> Self {
        Shared::from_usize(data)
    }
}

/// The error of a failed [`Atomic::compare_exchange`].
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// The value the atomic actually held.
    pub current: Shared<'g, T>,
    /// The proposed replacement, handed back to the caller.
    pub new: P,
}

/// An atomic tagged pointer to `T`.
pub struct Atomic<T> {
    data: AtomicUsize,
    _marker: PhantomData<*mut T>,
}

// SAFETY: an `Atomic` is a word-sized pointer cell; all access goes through
// atomic operations, so it moves and shares across threads exactly when the
// pointee does.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
// SAFETY: as above.
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// The null pointer.
    pub fn null() -> Self {
        Self {
            data: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }

    /// Allocates `value` and points at it.
    pub fn new(value: T) -> Self {
        Self {
            data: AtomicUsize::new(Owned::new(value).into_usize()),
            _marker: PhantomData,
        }
    }

    /// Loads the current pointer, scoped by `guard`.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        // SAFETY: the word was stored by `store`/`compare_exchange` from a
        // valid packed pointer.
        unsafe { Shared::from_usize(self.data.load(ord)) }
    }

    /// Stores `new` (a [`Shared`]; this stand-in has no owned-store caller).
    pub fn store(&self, new: Shared<'_, T>, ord: Ordering) {
        self.data.store(new.into_usize(), ord);
    }

    /// Single compare-and-swap: replaces `current` with `new`, returning the
    /// stored pointer on success and the observed one (plus `new`, returned
    /// to the caller) on failure.
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'_, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_data = new.into_usize();
        match self
            .data
            .compare_exchange(current.into_usize(), new_data, success, failure)
        {
            // SAFETY: round-trip of packed words produced by this module.
            Ok(_) => Ok(unsafe { Shared::from_usize(new_data) }),
            // SAFETY: as above; `new` is handed back untouched.
            Err(observed) => Err(CompareExchangeError {
                current: unsafe { Shared::from_usize(observed) },
                new: unsafe { P::from_usize(new_data) },
            }),
        }
    }
}

impl<T> std::fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (ptr, tag) = decompose::<T>(self.data.load(Ordering::Relaxed));
        f.debug_struct("Atomic")
            .field("ptr", &ptr)
            .field("tag", &tag)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};

    use std::sync::Arc;

    /// A payload whose deferred destruction is directly observable, making
    /// the tests immune to the other (parallel) tests that also drive the
    /// process-global retired/destroyed counters.
    struct CountOnDrop(Arc<AtomicUsize>);

    impl Drop for CountOnDrop {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Pin+flush until `done` holds (other tests may hold pins briefly, so
    /// a single cycle is not guaranteed to advance the epoch).
    fn collect_until(done: impl Fn() -> bool) -> bool {
        for _ in 0..10_000 {
            if done() {
                return true;
            }
            let guard = pin();
            guard.flush();
            drop(guard);
            std::thread::yield_now();
        }
        done()
    }

    #[test]
    fn owned_round_trip_and_drop() {
        let guard = pin();
        let shared = Owned::new(41u64).into_shared(&guard);
        // SAFETY: just created, exclusively ours.
        assert_eq!(unsafe { *shared.deref() }, 41);
        drop(unsafe { shared.into_owned() });
    }

    #[test]
    fn tags_pack_into_alignment_bits() {
        let guard = pin();
        let a: Atomic<u64> = Atomic::new(7);
        let p = a.load(Acquire, &guard);
        assert_eq!(p.tag(), 0);
        let marked = p.with_tag(1);
        assert_eq!(marked.tag(), 1);
        assert_eq!(marked.as_raw(), p.as_raw());
        assert_eq!(marked.with_tag(0), p);
        drop(unsafe { p.into_owned() });
    }

    #[test]
    fn compare_exchange_success_and_failure() {
        let guard = pin();
        let a: Atomic<u64> = Atomic::null();
        let first = Owned::new(1u64);
        let won = a.compare_exchange(Shared::null(), first, Release, Relaxed, &guard);
        assert!(won.is_ok());
        let lost = a.compare_exchange(Shared::null(), Owned::new(2u64), Release, Relaxed, &guard);
        let Err(err) = lost else {
            panic!("CAS against stale value must fail")
        };
        assert_eq!(unsafe { *err.current.deref() }, 1);
        drop(err.new); // handed back, freed normally
        drop(unsafe { a.load(Acquire, &guard).into_owned() });
    }

    #[test]
    fn null_is_null_regardless_of_tag() {
        let p: Shared<'_, u64> = Shared::null().with_tag(1);
        assert!(p.is_null());
        assert_eq!(p.tag(), 1);
    }

    #[test]
    fn deferred_destruction_eventually_runs() {
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let guard = pin();
            for _ in 0..10 {
                let shared = Owned::new(CountOnDrop(Arc::clone(&drops))).into_shared(&guard);
                // SAFETY: never linked anywhere; exclusively ours.
                unsafe { guard.defer_destroy(shared) };
            }
            assert_eq!(
                drops.load(Ordering::Relaxed),
                0,
                "nothing is freed while the retiring guard is still pinned \
                 in the retirement epoch"
            );
        }
        assert!(
            collect_until(|| drops.load(Ordering::Relaxed) == 10),
            "all 10 retired nodes must be freed at quiescence"
        );
    }

    #[test]
    fn no_destruction_while_a_guard_stays_pinned() {
        let drops = Arc::new(AtomicUsize::new(0));
        let reader = pin();
        {
            let guard = pin();
            let shared = Owned::new(CountOnDrop(Arc::clone(&drops))).into_shared(&guard);
            // SAFETY: never linked anywhere; exclusively ours.
            unsafe { guard.defer_destroy(shared) };
        }
        // The reader guard pins this thread in the retirement epoch: the
        // global epoch can advance at most once, so the two-advance grace
        // period can never pass no matter how often we flush.
        for _ in 0..64 {
            reader.flush();
        }
        assert_eq!(
            drops.load(Ordering::Relaxed),
            0,
            "retired node freed while a guard from its epoch is pinned"
        );
        drop(reader);
        assert!(
            collect_until(|| drops.load(Ordering::Relaxed) == 1),
            "unpinning releases the node for collection"
        );
    }

    #[test]
    fn nested_pins_share_one_epoch_slot() {
        let outer = pin();
        let inner = pin();
        drop(inner);
        // Still pinned: the record must show the pinned bit.
        let pinned = LOCAL.with(|l| l.record.state.load(Relaxed));
        assert_eq!(pinned & 1, 1, "outer guard still pins the thread");
        drop(outer);
        let unpinned = LOCAL.with(|l| l.record.state.load(Relaxed));
        assert_eq!(unpinned, 0, "last guard unpins");
    }

    #[test]
    fn epoch_advances_over_pin_cycles() {
        let start = EPOCH.load(Relaxed);
        assert!(
            collect_until(|| EPOCH.load(Relaxed).wrapping_sub(start) >= 2),
            "repeated pin+flush must advance the epoch"
        );
    }

    #[test]
    fn unprotected_defer_destroy_is_immediate() {
        let before = destroyed_count();
        // SAFETY: nothing else references the allocation.
        unsafe {
            let guard = unprotected();
            let shared = Owned::new(5u64).into_shared(guard);
            guard.defer_destroy(shared);
        }
        assert!(
            destroyed_count() > before,
            "unprotected defer_destroy frees immediately"
        );
    }

    /// Test recycler: counts into the `AtomicUsize` behind `ctx`, then
    /// frees the block so the test leaks nothing.
    unsafe fn recycle_into_sink(ptr: *mut u8, ctx: usize) {
        (*(ctx as *const AtomicUsize)).fetch_add(1, Ordering::Relaxed);
        drop(Box::from_raw(ptr.cast::<u64>()));
    }

    #[test]
    fn deferred_recycle_waits_for_the_grace_period() {
        static SINK: AtomicUsize = AtomicUsize::new(0);
        let ctx = &SINK as *const AtomicUsize as usize;
        {
            let guard = pin();
            let shared = Owned::new(9u64).into_shared(&guard);
            // SAFETY: never linked anywhere; exclusively ours; u64 needs no
            // destructor, so skipping drop is fine.
            unsafe { guard.defer_recycle(shared, recycle_into_sink, ctx) };
            assert_eq!(
                SINK.load(Ordering::Relaxed),
                0,
                "nothing recycles while the retiring guard is still pinned"
            );
        }
        assert!(
            collect_until(|| SINK.load(Ordering::Relaxed) == 1),
            "the recycler must run at quiescence"
        );
        assert!(recycled_count() >= 1);
        assert!(recycle_retired_count() >= recycled_count());
    }

    #[test]
    fn unprotected_defer_recycle_is_immediate() {
        static SINK: AtomicUsize = AtomicUsize::new(0);
        let ctx = &SINK as *const AtomicUsize as usize;
        // SAFETY: nothing else references the allocation.
        unsafe {
            let guard = unprotected();
            let shared = Owned::new(5u64).into_shared(guard);
            guard.defer_recycle(shared, recycle_into_sink, ctx);
        }
        assert_eq!(
            SINK.load(Ordering::Relaxed),
            1,
            "unprotected defer_recycle recycles immediately"
        );
    }

    #[test]
    fn owned_from_raw_round_trip() {
        let raw = Box::into_raw(Box::new(17u64));
        // SAFETY: `raw` is a live, exclusively owned global-allocator block
        // holding an initialized u64.
        let owned = unsafe { Owned::from_raw(raw) };
        assert_eq!(*owned, 17);
        drop(owned); // frees via Box::from_raw
    }

    #[test]
    fn exited_threads_orphan_their_garbage() {
        let drops = Arc::new(AtomicUsize::new(0));
        let thread_drops = Arc::clone(&drops);
        std::thread::spawn(move || {
            let guard = pin();
            let shared = Owned::new(CountOnDrop(thread_drops)).into_shared(&guard);
            // SAFETY: never linked; exclusively ours.
            unsafe { guard.defer_destroy(shared) };
        })
        .join()
        .expect("retiring thread panicked");
        assert!(
            collect_until(|| drops.load(Ordering::Relaxed) == 1),
            "garbage orphaned at thread exit is scavenged by survivors"
        );
    }
}
