//! Lock-free synchronization for dynamic embedded real-time systems.
//!
//! A faithful, from-scratch reproduction of *Lock-Free Synchronization for
//! Dynamic Embedded Real-Time Systems* (Cho, Ravindran, Jensen — ACM DATE
//! 2006, Real-Time Systems Track), packaged as a facade over the workspace
//! crates:
//!
//! * [`tuf`] — time/utility functions (step, linear, parabolic, piecewise);
//! * [`uam`] — the unimodal arbitrary arrival model, checkers, generators;
//! * [`lockfree`] — instrumented lock-free objects (Michael–Scott queue,
//!   Treiber stack, CAS register) and lock-based counterparts;
//! * [`sim`] — a discrete-event uniprocessor RTOS simulator with shared
//!   object contention, abort exceptions, and utility-accrual metrics;
//! * [`core`] — the RUA schedulers (lock-based with dependency chains,
//!   lock-free, and an EDF baseline);
//! * [`analysis`] — the paper's analytical results (Theorem 2 retry bound,
//!   Theorem 3 sojourn tradeoffs, Lemma 4/5 AUR bounds).
//!
//! # Quickstart
//!
//! ```
//! use lockfree_rt::analysis::RetryBoundInput;
//! use lockfree_rt::uam::Uam;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Theorem 2: bound the lock-free retries of a job with critical time
//! // 10_000 ticks, interfered with by two other UAM tasks.
//! let bound = RetryBoundInput {
//!     own_max_arrivals: 2,
//!     critical_time: 10_000,
//!     others: vec![Uam::new(1, 3, 4_000)?, Uam::new(1, 1, 8_000)?],
//! }
//! .retry_bound();
//! assert!(bound > 0);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! binaries that regenerate every figure of the paper's evaluation.

pub use lfrt_analysis as analysis;
pub use lfrt_core as core;
pub use lfrt_lockfree as lockfree;
pub use lfrt_sim as sim;
pub use lfrt_tuf as tuf;
pub use lfrt_uam as uam;
