//! Property-based tests for the ECF tentative schedule (§3.4): ordering and
//! dependency invariants hold under arbitrary insertion sequences.

use lfrt_core::schedule::TentativeSchedule;
use lfrt_core::OpsCounter;
use lfrt_sim::JobId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Insert a fresh job with this critical time, unconstrained.
    Insert(u64),
    /// Insert a fresh job constrained to precede the entry at (index modulo
    /// current length), with this critical time.
    InsertBefore(u64, usize),
    /// Remove the entry at (index modulo current length).
    Remove(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (1u64..100_000).prop_map(Op::Insert),
            ((1u64..100_000), any::<usize>()).prop_map(|(c, i)| Op::InsertBefore(c, i)),
            any::<usize>().prop_map(Op::Remove),
        ],
        0..120,
    )
}

proptest! {
    /// The schedule stays sorted by effective critical time, every
    /// constrained insertion lands before its successor, and effective
    /// critical times never exceed the nominal ones.
    #[test]
    fn ecf_and_dependency_invariants(ops_list in ops()) {
        let mut schedule = TentativeSchedule::new();
        let mut counter = OpsCounter::new();
        let mut next_id = 0usize;
        for op in ops_list {
            match op {
                Op::Insert(critical) => {
                    let job = JobId::new(next_id);
                    next_id += 1;
                    let pos = schedule.insert_before(job, critical, None, &mut counter);
                    let entry = schedule.entries()[pos];
                    prop_assert_eq!(entry.job, job);
                    prop_assert!(entry.effective_critical_time <= critical);
                }
                Op::InsertBefore(critical, raw) => {
                    if schedule.is_empty() {
                        continue;
                    }
                    let limit = raw % schedule.len();
                    let successor = schedule.entries()[limit];
                    let job = JobId::new(next_id);
                    next_id += 1;
                    let pos = schedule.insert_before(job, critical, Some(limit), &mut counter);
                    // Dependency respected: inserted at or before the
                    // successor's (shifted) position.
                    let successor_pos = schedule
                        .position(successor.job, &mut counter)
                        .expect("successor still present");
                    prop_assert!(pos < successor_pos + 1);
                    prop_assert!(pos <= limit);
                    let entry = schedule.entries()[pos];
                    prop_assert!(entry.effective_critical_time <= critical);
                    prop_assert!(
                        entry.effective_critical_time
                            <= successor.effective_critical_time.max(critical)
                    );
                }
                Op::Remove(raw) => {
                    if schedule.is_empty() {
                        continue;
                    }
                    let pos = raw % schedule.len();
                    let before = schedule.len();
                    let removed = schedule.remove(pos, &mut counter);
                    prop_assert_eq!(schedule.len(), before - 1);
                    prop_assert!(schedule.position(removed.job, &mut counter).is_none());
                }
            }
            // Global invariant: non-decreasing effective critical times.
            let entries = schedule.entries();
            for w in entries.windows(2) {
                prop_assert!(
                    w[0].effective_critical_time <= w[1].effective_critical_time,
                    "ECF order broken: {:?}",
                    entries
                );
            }
            // No duplicate jobs.
            let mut jobs = schedule.jobs();
            jobs.sort_unstable();
            let len_before = jobs.len();
            jobs.dedup();
            prop_assert_eq!(jobs.len(), len_before);
        }
        // Ops were charged for the work done.
        if next_id > 0 {
            prop_assert!(counter.total() > 0);
        }
    }
}
