use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::object::{ConcurrentQueue, ConcurrentStack};

/// A mutual-exclusion FIFO queue: the lock-based counterpart of
/// [`LockFreeQueue`](crate::LockFreeQueue).
///
/// Every operation acquires the mutex, so accesses serialize and contending
/// threads block — the source of the blocking time `B_i` in the paper's
/// sojourn-time analysis. The number of times the lock was contended is
/// tracked for reporting.
///
/// # Examples
///
/// ```
/// use lfrt_lockfree::{ConcurrentQueue, LockedQueue};
///
/// let q = LockedQueue::new();
/// q.enqueue(7);
/// assert_eq!(q.dequeue(), Some(7));
/// ```
#[derive(Debug, Default)]
pub struct LockedQueue<T> {
    inner: Mutex<VecDeque<T>>,
    contended: AtomicU64,
}

impl<T> LockedQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(VecDeque::new()),
            contended: AtomicU64::new(0),
        }
    }

    /// Appends `value` at the tail, blocking if the lock is held.
    pub fn enqueue(&self, value: T) {
        self.lock_counting().push_back(value);
    }

    /// Removes and returns the head element, blocking if the lock is held.
    pub fn dequeue(&self) -> Option<T> {
        self.lock_counting().pop_front()
    }

    /// Whether the queue is empty at the instant the lock is held.
    pub fn is_empty(&self) -> bool {
        self.lock_counting().is_empty()
    }

    /// Number of operations that found the lock already held and had to
    /// block — the measured analogue of the paper's blocking count.
    pub fn contended_acquisitions(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    fn lock_counting(&self) -> parking_lot::MutexGuard<'_, VecDeque<T>> {
        match self.inner.try_lock() {
            Some(guard) => guard,
            None => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.inner.lock()
            }
        }
    }
}

impl<T: Send> ConcurrentQueue<T> for LockedQueue<T> {
    fn enqueue(&self, value: T) {
        LockedQueue::enqueue(self, value);
    }

    fn dequeue(&self) -> Option<T> {
        LockedQueue::dequeue(self)
    }

    fn is_empty(&self) -> bool {
        LockedQueue::is_empty(self)
    }
}

/// A mutual-exclusion LIFO stack: the lock-based counterpart of
/// [`TreiberStack`](crate::TreiberStack).
#[derive(Debug, Default)]
pub struct LockedStack<T> {
    inner: Mutex<Vec<T>>,
    contended: AtomicU64,
}

impl<T> LockedStack<T> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Vec::new()),
            contended: AtomicU64::new(0),
        }
    }

    /// Pushes `value` on top, blocking if the lock is held.
    pub fn push(&self, value: T) {
        self.lock_counting().push(value);
    }

    /// Pops the top element, blocking if the lock is held.
    pub fn pop(&self) -> Option<T> {
        self.lock_counting().pop()
    }

    /// Whether the stack is empty at the instant the lock is held.
    pub fn is_empty(&self) -> bool {
        self.lock_counting().is_empty()
    }

    /// Number of operations that found the lock already held.
    pub fn contended_acquisitions(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    fn lock_counting(&self) -> parking_lot::MutexGuard<'_, Vec<T>> {
        match self.inner.try_lock() {
            Some(guard) => guard,
            None => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.inner.lock()
            }
        }
    }
}

impl<T: Send> ConcurrentStack<T> for LockedStack<T> {
    fn push(&self, value: T) {
        LockedStack::push(self, value);
    }

    fn pop(&self) -> Option<T> {
        LockedStack::pop(self)
    }

    fn is_empty(&self) -> bool {
        LockedStack::is_empty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn queue_fifo() {
        let q = LockedQueue::new();
        q.enqueue(1);
        q.enqueue(2);
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn stack_lifo() {
        let s = LockedStack::new();
        s.push(1);
        s.push(2);
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn queue_concurrent_conservation() {
        const N: usize = 4_000;
        let q = Arc::new(LockedQueue::new());
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..N {
                    q.enqueue(i);
                }
            })
        };
        let mut got = Vec::new();
        while got.len() < N {
            if let Some(v) = q.dequeue() {
                got.push(v);
            }
        }
        producer.join().expect("producer panicked");
        assert_eq!(got, (0..N).collect::<Vec<_>>());
    }

    #[test]
    fn uncontended_has_zero_contention_count() {
        let q = LockedQueue::new();
        for i in 0..100 {
            q.enqueue(i);
        }
        assert_eq!(q.contended_acquisitions(), 0);
    }
}
