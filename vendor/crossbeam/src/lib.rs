//! Offline stand-in for the `crossbeam` crate.
//!
//! The build container has no crates.io access, so this vendors the
//! `crossbeam::epoch` pointer API that `lfrt-lockfree` uses: tagged atomic
//! pointers (`Atomic`/`Owned`/`Shared`) with guard-scoped loads.
//!
//! **Reclamation policy:** `Guard::defer_destroy` *permanently defers* — the
//! node is leaked rather than freed. This is the moral equivalent of the
//! paper's type-stable node pools on QNX (memory is never returned while the
//! structure lives, so no ABA and no use-after-free), minus the reuse. The
//! structures' `Drop` impls still free everything still linked at drop time
//! via [`Shared::into_owned`], so quiescent teardown is leak-free; only
//! nodes retired *during concurrent operation* stay resident. Replacing this
//! with real epoch reclamation is tracked in ROADMAP.md.

pub mod epoch;
