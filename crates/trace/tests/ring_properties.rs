//! Ring semantics under real threads: overwrite-oldest accounting, lossless
//! capture below capacity, the seqlock drain never tearing against a live
//! writer, and the disabled fast path staying free of side effects.
//!
//! The recorder is process-global, so every test serializes on
//! [`lfrt_trace::tests_serialize`] and drains first to flush whatever an
//! earlier test left in the rings.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use lfrt_trace::{emit, ring, EventKind, Site, RING_CAPACITY};

/// Drains and throws away anything an earlier serialized test recorded.
fn flush() {
    let _ = lfrt_trace::drain();
}

#[test]
fn overwrite_oldest_keeps_the_newest_window() {
    let _guard = lfrt_trace::tests_serialize();
    lfrt_trace::set_enabled(true);
    flush();

    let extra = 100u64;
    let total = RING_CAPACITY as u64 + extra;
    for i in 0..total {
        emit(EventKind::EpochDefer, Site::Other, i);
    }
    lfrt_trace::set_enabled(false);
    let (events, stats) = lfrt_trace::drain();

    // The ring holds the newest RING_CAPACITY sequences; the drain discards
    // exactly one of those (the slot the writer would overwrite next — it
    // cannot tell "about to" from "mid-write"), so `extra` count as
    // overwritten and one is torn-suspect even though the writer quiesced.
    assert_eq!(stats.overwritten, extra);
    assert_eq!(stats.discarded, 1);
    assert_eq!(events.len(), RING_CAPACITY - 1);
    // What survives is the newest window, in order, ending at the last write.
    for (offset, ev) in events.iter().enumerate() {
        assert_eq!(ev.value, extra + 1 + offset as u64);
    }
    assert_eq!(events.last().unwrap().value, total - 1);
}

#[test]
fn below_capacity_loses_nothing() {
    let _guard = lfrt_trace::tests_serialize();
    lfrt_trace::set_enabled(true);
    flush();

    let n = 1000u64;
    for i in 0..n {
        emit(EventKind::EpochPin, Site::Epoch, i);
    }
    lfrt_trace::set_enabled(false);
    let (events, stats) = lfrt_trace::drain();

    assert_eq!(stats.overwritten, 0);
    assert_eq!(stats.discarded, 0);
    assert_eq!(events.len(), n as usize);
    for (i, ev) in events.iter().enumerate() {
        assert_eq!(ev.value, i as u64);
        assert_eq!(ev.kind, EventKind::EpochPin);
        assert_eq!(ev.site, Site::Epoch);
    }
}

/// Values dual-encode their index in both 24-bit halves, so any slot whose
/// words were mixed across events (a torn read the seqlock discard failed to
/// reject) or re-kept out of order breaks either the self-check or the
/// strict monotonicity check.
#[test]
fn concurrent_drain_never_tears_or_duplicates() {
    let _guard = lfrt_trace::tests_serialize();
    lfrt_trace::set_enabled(true);
    flush();

    const WRITES: u64 = 200_000;
    let done = Arc::new(AtomicBool::new(false));
    let writer = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            for i in 0..WRITES {
                emit(EventKind::CasSuccess, Site::Other, (i << 24) | i);
            }
            done.store(true, Ordering::Release);
        })
    };

    let mut kept: Vec<u64> = Vec::new();
    let mut overwritten = 0u64;
    let mut discarded = 0u64;
    loop {
        let finished = done.load(Ordering::Acquire);
        let (events, stats) = lfrt_trace::drain();
        kept.extend(events.iter().map(|ev| ev.value));
        overwritten += stats.overwritten;
        discarded += stats.discarded;
        if finished {
            break;
        }
    }
    writer.join().unwrap();
    lfrt_trace::set_enabled(false);

    let mut last = None;
    for &value in &kept {
        let index = value & 0xFF_FFFF;
        assert_eq!(value >> 24, index, "torn event slipped past the drain");
        assert!(Some(index) > last, "event kept twice or out of order");
        last = Some(index);
    }
    // Every write is accounted for exactly once: kept, overwritten, or
    // discarded as torn-suspect. Nothing vanishes and nothing is invented.
    assert_eq!(kept.len() as u64 + overwritten + discarded, WRITES);
}

#[test]
fn disabled_fast_path_has_no_side_effects_and_stays_cheap() {
    let _guard = lfrt_trace::tests_serialize();
    lfrt_trace::set_enabled(false);
    flush();

    let rings_before = ring::rings_registered();
    const OPS: u32 = 1_000_000;
    let elapsed = std::thread::spawn(move || {
        let start = std::time::Instant::now();
        for i in 0..OPS {
            let mut op = lfrt_trace::CasOp::start(Site::QueueEnqueue);
            op.attempt();
            if i % 7 == 0 {
                op.retry();
            }
            op.success();
        }
        start.elapsed()
    })
    .join()
    .unwrap();

    // No ring was registered, nothing recorded: the whole instrumented loop
    // reduced to enabled-flag checks.
    assert_eq!(ring::rings_registered(), rings_before);
    let (events, stats) = lfrt_trace::drain();
    assert!(events.is_empty());
    assert_eq!(stats.overwritten + stats.discarded, 0);

    // Branch-cheap, not branch-free: a CasOp cycle is a handful of Relaxed
    // flag loads. 1 µs/op would mean something allocated or syscalled on
    // the fast path; the real figure is ~1 ns (see EXPERIMENTS.md). The
    // generous bound keeps the assertion meaningful yet CI-proof.
    let ns_per_op = elapsed.as_nanos() as f64 / f64::from(OPS);
    assert!(
        ns_per_op < 1000.0,
        "disabled CasOp cycle costs {ns_per_op:.0} ns/op — fast path regressed"
    );
}
