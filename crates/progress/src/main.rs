//! `lfrt-progress` — the progress-guarantee lint binary.
//!
//! ```text
//! cargo run -p lfrt-progress                      # lint the workspace
//! cargo run -p lfrt-progress -- --list            # + declared-op table
//! cargo run -p lfrt-progress -- --json report.json
//! cargo run -p lfrt-progress -- --root DIR --manifest FILE
//! ```
//!
//! Exit status: 0 when every finding is baselined (with justification),
//! no baseline entry is stale, and the manifest covers the public op set
//! exactly; 1 otherwise; 2 on I/O or parse errors. Unlike `ordlint`, a
//! missing manifest is an error, not an empty baseline — the manifest IS
//! the contract being checked.

use std::path::PathBuf;
use std::process::ExitCode;

use lfrt_bench::Args;
use lfrt_progress::{analyze, report, workspace_root};

fn main() -> ExitCode {
    let args = Args::from_env();
    let root = match args.get_str("root", "") {
        s if s.is_empty() => workspace_root(),
        s => PathBuf::from(s),
    };
    let manifest_path = match args.get_str("manifest", "") {
        s if s.is_empty() => root.join("progress.toml"),
        s => PathBuf::from(s),
    };
    let manifest_text = match std::fs::read_to_string(&manifest_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("progress: cannot read {}: {e}", manifest_path.display());
            return ExitCode::from(2);
        }
    };
    let analysis = match analyze(&root, &manifest_text) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("progress: {e}");
            return ExitCode::from(2);
        }
    };
    let list = args.get_str("list", "false") == "true";
    print!("{}", report::render_text(&analysis, list));
    let json_path = args.get_str("json", "");
    if !json_path.is_empty() {
        let doc = report::to_json(&analysis).to_string_pretty();
        if let Err(e) = std::fs::write(&json_path, doc) {
            eprintln!("progress: cannot write {json_path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("progress: wrote {json_path}");
    }
    if report::is_clean(&analysis) {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
