//! Reclamation-safety tests: the epoch scheme must free retired nodes
//! *eventually* (bounded memory under sustained traffic) and *never early*
//! (no frees while any reader guard is pinned).
//!
//! Strategy: payloads carry a counting `Drop` (an `Arc<AtomicUsize>` bumped
//! on drop), so "the payload was dropped" is observable without touching the
//! allocator; node-level frees are observed through the collector's global
//! `retired_count`/`destroyed_count` telemetry. Because those counters are
//! process-global, every test here serializes on [`serial`] — the assertions
//! are about collector state, and a concurrently running test would shift it.
//! Forward progress of the collector is driven explicitly with
//! `epoch::pin().flush()` cycles — production code gets the same effect
//! amortized over ordinary pins.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crossbeam::epoch;
use lfrt_lockfree::{LockFreeList, LockFreeQueue, TreiberStack};

/// Serializes tests in this binary (the epoch telemetry is process-global).
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A payload whose drop is observable.
#[derive(Debug)]
struct CountOnDrop(Arc<AtomicUsize>);

impl Drop for CountOnDrop {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

/// Drives the collector until `done()` holds or a generous bound is hit.
/// Returns whether `done()` held.
fn collect_until(done: impl Fn() -> bool) -> bool {
    for _ in 0..10_000 {
        if done() {
            return true;
        }
        epoch::pin().flush();
        std::thread::yield_now();
    }
    done()
}

/// Destroys every node already retired (all racing threads must have
/// quiesced). Used to reach a clean baseline before taking deltas.
fn drain_backlog() -> bool {
    collect_until(|| epoch::destroyed_count() >= epoch::retired_count())
}

#[test]
fn stack_frees_popped_nodes_after_quiescence() {
    let _guard = serial();
    let drops = Arc::new(AtomicUsize::new(0));
    let stack = TreiberStack::new();
    const N: usize = 100;
    for _ in 0..N {
        stack.push(CountOnDrop(Arc::clone(&drops)));
    }
    let before_destroyed = epoch::destroyed_count();
    for _ in 0..N {
        // The popped payload is dropped here; what the epoch collector owes
        // us is the *node* — freeing it must not double-drop the payload.
        drop(stack.pop().expect("stack has elements"));
    }
    assert_eq!(
        drops.load(Ordering::Relaxed),
        N,
        "each payload dropped exactly once by the popper"
    );
    // Retired nodes must eventually be destroyed, and destruction must not
    // re-drop payloads (the counter stays at N through collection).
    assert!(
        collect_until(|| epoch::destroyed_count() >= before_destroyed + N),
        "popped stack nodes were never reclaimed"
    );
    assert_eq!(
        drops.load(Ordering::Relaxed),
        N,
        "node destruction must not drop payloads a second time"
    );
}

#[test]
fn queue_frees_dequeued_nodes_after_quiescence() {
    let _guard = serial();
    let drops = Arc::new(AtomicUsize::new(0));
    let queue = LockFreeQueue::new();
    const N: usize = 100;
    for _ in 0..N {
        queue.enqueue(CountOnDrop(Arc::clone(&drops)));
    }
    let before_destroyed = epoch::destroyed_count();
    for _ in 0..N {
        drop(queue.dequeue().expect("queue has elements"));
    }
    assert_eq!(drops.load(Ordering::Relaxed), N);
    assert!(
        collect_until(|| epoch::destroyed_count() >= before_destroyed + N),
        "dequeued queue nodes were never reclaimed"
    );
    assert_eq!(
        drops.load(Ordering::Relaxed),
        N,
        "node destruction must not drop payloads a second time"
    );
}

#[test]
fn list_frees_removed_nodes_after_quiescence() {
    let _guard = serial();
    let list = LockFreeList::new();
    const N: u64 = 100;
    for k in 0..N {
        assert!(list.insert(k));
    }
    let before_destroyed = epoch::destroyed_count();
    for k in 0..N {
        assert!(list.remove(k));
    }
    assert!(
        collect_until(|| epoch::destroyed_count() >= before_destroyed + N as usize),
        "removed list nodes were never reclaimed"
    );
}

/// The "never freed early" half: while this thread holds a guard pinned at
/// epoch `e`, the global epoch can advance at most once (to `e + 2`), so a
/// node retired at `e` or later sits at numeric distance ≤ 2 — short of the
/// two-advance (distance 4) grace period — for as long as the guard lives.
/// Nodes retired *after* the guard was taken therefore must stay alive no
/// matter how hard other threads drive the collector. This is deterministic,
/// not timing-dependent.
#[test]
fn no_reclamation_while_a_reader_is_pinned() {
    let _guard = serial();
    // Reach a clean baseline first: anything retired by earlier tests gets
    // destroyed now, so the strict equality below can only be broken by an
    // early free of *our* nodes.
    assert!(drain_backlog(), "could not drain pre-existing garbage");

    let drops = Arc::new(AtomicUsize::new(0));
    let stack = Arc::new(TreiberStack::new());
    const N: usize = 50;

    let reader_pin = epoch::pin();

    for _ in 0..N {
        stack.push(CountOnDrop(Arc::clone(&drops)));
    }
    let destroyed_at_pin = epoch::destroyed_count();
    let retired_at_pin = epoch::retired_count();

    // Other threads pop everything and hammer the collector.
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let stack = Arc::clone(&stack);
            std::thread::spawn(move || {
                while stack.pop().is_some() {}
                for _ in 0..1_000 {
                    epoch::pin().flush();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("popper panicked");
    }

    assert_eq!(drops.load(Ordering::Relaxed), N, "all payloads popped");
    assert!(
        epoch::retired_count() >= retired_at_pin + N,
        "popped nodes were retired"
    );
    assert_eq!(
        epoch::destroyed_count(),
        destroyed_at_pin,
        "nodes retired while a guard is pinned must not be destroyed"
    );

    // Unpinning releases the grace period; everything becomes collectable.
    drop(reader_pin);
    assert!(
        collect_until(|| epoch::destroyed_count() >= destroyed_at_pin + N),
        "nodes stayed unreclaimed after the last guard unpinned"
    );
}

/// Multi-threaded churn: concurrent producers/consumers with collection
/// interleaved; afterwards every payload was dropped exactly once and the
/// retired-node backlog drains to zero — the bounded-memory property the
/// paper needs for long-running embedded workloads.
#[test]
fn concurrent_churn_reclaims_everything_exactly_once() {
    let _guard = serial();
    const THREADS: usize = 4;
    const PER_THREAD: usize = 5_000;
    let drops = Arc::new(AtomicUsize::new(0));
    let queue = Arc::new(LockFreeQueue::new());

    let producers: Vec<_> = (0..THREADS)
        .map(|_| {
            let queue = Arc::clone(&queue);
            let drops = Arc::clone(&drops);
            std::thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    queue.enqueue(CountOnDrop(Arc::clone(&drops)));
                }
            })
        })
        .collect();
    let consumed = Arc::new(AtomicUsize::new(0));
    let consumers: Vec<_> = (0..THREADS)
        .map(|_| {
            let queue = Arc::clone(&queue);
            let consumed = Arc::clone(&consumed);
            std::thread::spawn(move || {
                while consumed.load(Ordering::Relaxed) < THREADS * PER_THREAD {
                    if let Some(v) = queue.dequeue() {
                        drop(v);
                        consumed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        std::hint::spin_loop();
                    }
                }
            })
        })
        .collect();
    for h in producers {
        h.join().expect("producer panicked");
    }
    for h in consumers {
        h.join().expect("consumer panicked");
    }

    assert_eq!(
        drops.load(Ordering::Relaxed),
        THREADS * PER_THREAD,
        "every payload dropped exactly once despite deferred node frees"
    );
    // The backlog of retired-but-undestroyed nodes must drain completely
    // once all threads are quiescent: bounded memory, not a slow leak.
    assert!(
        drain_backlog(),
        "retired-node backlog failed to drain: {} retired, {} destroyed",
        epoch::retired_count(),
        epoch::destroyed_count()
    );
}
