//! PRG006 fixtures: a heap allocation behind a no_alloc-declared op
//! (fires, through one call-graph hop) and an alloc-free twin (clean).

pub struct Prg006Broken;

impl Prg006Broken {
    pub fn op(&self) -> usize {
        self.record()
    }

    fn record(&self) -> usize {
        let boxed = Box::new(7u64);
        *boxed as usize
    }
}

pub struct Prg006Clean;

impl Prg006Clean {
    pub fn op(&self) -> usize {
        self.record()
    }

    fn record(&self) -> usize {
        7
    }
}
