//! In-vivo exercise of RUA's nested-critical-section support and deadlock
//! detection/resolution (§3.3/§3.5 of the paper): two tasks acquire two
//! locks in opposite orders, deadlock at runtime, and the scheduler aborts
//! the least-utility victim so the other completes.

use lockfree_rt::core::RuaLockBased;
use lockfree_rt::sim::{Engine, ObjectId, Segment, SharingMode, SimConfig, SimError, TaskSpec};
use lockfree_rt::tuf::Tuf;
use lockfree_rt::uam::{ArrivalTrace, Uam};

fn acquire(o: usize) -> Segment {
    Segment::Acquire {
        object: ObjectId::new(o),
    }
}
fn release(o: usize) -> Segment {
    Segment::Release {
        object: ObjectId::new(o),
    }
}

fn nested_task(name: &str, utility: f64, critical: u64, first: usize, second: usize) -> TaskSpec {
    TaskSpec::builder(name)
        .tuf(Tuf::step(utility, critical).expect("valid tuf"))
        .uam(Uam::periodic(100_000))
        .segments(vec![
            acquire(first),
            Segment::Compute(100),
            acquire(second),
            Segment::Compute(100),
            release(second),
            release(first),
        ])
        .build()
        .expect("valid task")
}

#[test]
fn opposite_order_acquisition_deadlocks_and_resolves() {
    // "cheap" takes O0 then O1; "valuable" (10× utility, tighter critical
    // time, so it preempts) takes O1 then O0. The interleaving deadlocks;
    // RUA must abort the cheap job and let the valuable one finish.
    let cheap = nested_task("cheap", 1.0, 50_000, 0, 1);
    let valuable = nested_task("valuable", 10.0, 5_000, 1, 0);
    let outcome = Engine::new(
        vec![cheap, valuable],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![50])],
        SimConfig::new(SharingMode::LockBased { access_ticks: 50 }),
    )
    .expect("valid engine")
    .run(RuaLockBased::new());

    let cheap_rec = outcome
        .records
        .iter()
        .find(|r| r.task.index() == 0)
        .expect("resolved");
    let valuable_rec = outcome
        .records
        .iter()
        .find(|r| r.task.index() == 1)
        .expect("resolved");
    assert!(
        valuable_rec.completed,
        "the high-utility job must survive the deadlock"
    );
    assert!(!cheap_rec.completed, "the victim is aborted");
    // The abort is deadlock resolution, not a critical-time expiry: it
    // happens long before the cheap job's 50 ms critical time.
    assert!(
        cheap_rec.resolved_at < 10_000,
        "victim aborted at {} — deadlock resolution must be immediate",
        cheap_rec.resolved_at
    );
    // Both jobs blocked once each while forming the cycle.
    assert!(outcome.metrics.blockings() >= 2);
}

#[test]
fn same_order_acquisition_never_deadlocks() {
    // Classic lock-ordering discipline: both tasks take O0 then O1.
    let a = nested_task("a", 1.0, 50_000, 0, 1);
    let b = nested_task("b", 10.0, 5_000, 0, 1);
    let outcome = Engine::new(
        vec![a, b],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![50])],
        SimConfig::new(SharingMode::LockBased { access_ticks: 50 }),
    )
    .expect("valid engine")
    .run(RuaLockBased::new());
    assert_eq!(
        outcome.metrics.completed(),
        2,
        "ordered acquisition is deadlock-free"
    );
    assert_eq!(outcome.metrics.aborted(), 0);
}

#[test]
fn nested_holds_serialize_across_both_objects() {
    // While "outer" holds O0 and O1 (nested), a tighter-deadline task
    // needing O1 preempts, requests the lock, and must block until the
    // inner release.
    let outer = nested_task("outer", 5.0, 50_000, 0, 1);
    let prober = TaskSpec::builder("prober")
        .tuf(Tuf::step(100.0, 1_000).expect("valid tuf"))
        .uam(Uam::periodic(100_000))
        .segments(vec![acquire(1), Segment::Compute(10), release(1)])
        .build()
        .expect("valid task");
    let outcome = Engine::new(
        vec![outer, prober],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![150])],
        SimConfig::new(SharingMode::LockBased { access_ticks: 50 }),
    )
    .expect("valid engine")
    .run(RuaLockBased::new());
    assert_eq!(outcome.metrics.completed(), 2);
    let prober_rec = outcome
        .records
        .iter()
        .find(|r| r.task.index() == 1)
        .expect("ran");
    // outer acquires O1 at t=100 and releases it at t=200; the prober
    // (arriving at 150, mid-hold) cannot finish before that.
    assert!(
        prober_rec.resolved_at >= 200,
        "prober finished at {} while O1 was held",
        prober_rec.resolved_at
    );
    assert_eq!(prober_rec.blockings, 1);
}

#[test]
fn explicit_locks_rejected_under_lock_free_sharing() {
    let t = nested_task("t", 1.0, 10_000, 0, 1);
    let err = Engine::new(
        vec![t],
        vec![ArrivalTrace::new(vec![0])],
        SimConfig::new(SharingMode::LockFree { access_ticks: 10 }),
    )
    .unwrap_err();
    assert!(matches!(err, SimError::NestedRequiresLockBased { .. }));
}

#[test]
fn unbalanced_locking_rejected_at_build_time() {
    // Release without acquire.
    let err = TaskSpec::builder("bad")
        .tuf(Tuf::step(1.0, 1_000).expect("valid"))
        .uam(Uam::periodic(1_000))
        .segments(vec![Segment::Compute(10), release(0)])
        .build()
        .unwrap_err();
    assert!(matches!(err, SimError::UnbalancedLocking { .. }));

    // Job ends still holding.
    let err = TaskSpec::builder("bad2")
        .tuf(Tuf::step(1.0, 1_000).expect("valid"))
        .uam(Uam::periodic(1_000))
        .segments(vec![acquire(0), Segment::Compute(10)])
        .build()
        .unwrap_err();
    assert!(matches!(err, SimError::UnbalancedLocking { .. }));

    // Non-LIFO release order.
    let err = TaskSpec::builder("bad3")
        .tuf(Tuf::step(1.0, 1_000).expect("valid"))
        .uam(Uam::periodic(1_000))
        .segments(vec![
            acquire(0),
            acquire(1),
            Segment::Compute(10),
            release(0),
            release(1),
        ])
        .build()
        .unwrap_err();
    assert!(matches!(err, SimError::UnbalancedLocking { .. }));

    // Re-acquiring a held object.
    let err = TaskSpec::builder("bad4")
        .tuf(Tuf::step(1.0, 1_000).expect("valid"))
        .uam(Uam::periodic(1_000))
        .segments(vec![
            acquire(0),
            acquire(0),
            Segment::Compute(10),
            release(0),
            release(0),
        ])
        .build()
        .unwrap_err();
    assert!(matches!(err, SimError::UnbalancedLocking { .. }));
}

#[test]
fn victim_selection_prefers_low_utility_job() {
    // Symmetric deadlock but with reversed utilities: now the *first* task
    // is valuable, so the second should die.
    let valuable = nested_task("valuable", 10.0, 50_000, 0, 1);
    let cheap = nested_task("cheap", 1.0, 5_000, 1, 0);
    let outcome = Engine::new(
        vec![valuable, cheap],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![50])],
        SimConfig::new(SharingMode::LockBased { access_ticks: 50 }),
    )
    .expect("valid engine")
    .run(RuaLockBased::new());
    let valuable_rec = outcome
        .records
        .iter()
        .find(|r| r.task.index() == 0)
        .expect("ran");
    assert!(
        valuable_rec.completed,
        "PUD-based victim selection must spare the valuable job"
    );
}
