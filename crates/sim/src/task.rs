use lfrt_tuf::Tuf;
use lfrt_uam::Uam;

use crate::error::SimError;
use crate::segment::Segment;
use crate::Ticks;

/// The discipline under which shared objects are accessed, and its cost.
///
/// The access-time parameters play the roles of `r` (lock-based) and `s`
/// (lock-free) in the paper's Theorem 3; the [`SharingMode::Ideal`] variant
/// is the zero-cost yardstick of the paper's Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingMode {
    /// Mutual exclusion: each access locks the object for `access_ticks`
    /// (= `r`). Lock and unlock requests are scheduling events; contention
    /// blocks the requester.
    LockBased {
        /// Critical-section length `r` in ticks.
        access_ticks: Ticks,
    },
    /// Lock-free: each access attempt takes `access_ticks` (= `s`) and is
    /// retried whenever another job commits a write to the same object while
    /// the attempt is in flight. No lock/unlock scheduling events occur.
    LockFree {
        /// Per-attempt duration `s` in ticks.
        access_ticks: Ticks,
    },
    /// Zero-cost, interference-free accesses: the "ideal" implementation
    /// against which both real disciplines are judged.
    Ideal,
}

impl SharingMode {
    /// Nominal duration of a single access attempt under this mode.
    #[inline]
    pub fn access_cost(&self) -> Ticks {
        match self {
            SharingMode::LockBased { access_ticks } | SharingMode::LockFree { access_ticks } => {
                *access_ticks
            }
            SharingMode::Ideal => 0,
        }
    }

    /// Whether lock/unlock requests are scheduling events under this mode.
    #[inline]
    pub fn uses_locks(&self) -> bool {
        matches!(self, SharingMode::LockBased { .. })
    }
}

/// How actual job execution times relate to the nominal (estimated) plan.
///
/// The paper's dynamic systems have *context-dependent* execution times:
/// the durations presented to the scheduler are only estimates, and
/// overruns are possible (§3.2, footnote 4). Under
/// [`ExecTimeModel::Uniform`], each released job's compute segments are
/// scaled by a per-job factor drawn uniformly from `[min_factor,
/// max_factor]`; schedulers keep seeing the *nominal* remaining time, so
/// their feasibility tests and PUDs can be wrong in exactly the way the
/// paper anticipates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ExecTimeModel {
    /// Actual execution equals the nominal plan.
    #[default]
    Nominal,
    /// Per-job uniform scaling of compute segments in
    /// `[min_factor, max_factor]`, seeded for reproducibility.
    Uniform {
        /// Smallest scale factor (e.g. 0.5 = may finish in half the time).
        min_factor: f64,
        /// Largest scale factor (e.g. 2.0 = may overrun to double).
        max_factor: f64,
        /// RNG seed.
        seed: u64,
    },
}

/// The static description of a task: its TUF, arrival model, execution plan,
/// and abort-handler cost.
///
/// Construct with [`TaskSpec::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    name: String,
    tuf: Tuf,
    uam: Uam,
    segments: Vec<Segment>,
    abort_handler_ticks: Ticks,
    crash_after: Option<Ticks>,
}

impl TaskSpec {
    /// Starts building a task with the given name.
    pub fn builder(name: impl Into<String>) -> TaskSpecBuilder {
        TaskSpecBuilder {
            name: name.into(),
            tuf: None,
            uam: None,
            segments: Vec::new(),
            abort_handler_ticks: 0,
            crash_after: None,
        }
    }

    /// The task's name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The task's time/utility function. Its critical time is `C_i`.
    pub fn tuf(&self) -> &Tuf {
        &self.tuf
    }

    /// The task's arrival model `⟨l_i, a_i, W_i⟩`.
    pub fn uam(&self) -> &Uam {
        &self.uam
    }

    /// The execution plan of each job of this task.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Time charged for running the abort-exception handler (§3.5).
    pub fn abort_handler_ticks(&self) -> Ticks {
        self.abort_handler_ticks
    }

    /// Failure injection: if set, each job of this task *crashes* after
    /// executing this many ticks — it stops forever, never completes, never
    /// runs its abort handler, and never releases any locks it holds. This
    /// models the §1.1 failure mode: "deadlocks can occur when lock holders
    /// crash, causing indefinite starvation to blockers."
    pub fn crash_after(&self) -> Option<Ticks> {
        self.crash_after
    }

    /// Total local computation `u_i` (excluding object accesses).
    pub fn compute_ticks(&self) -> Ticks {
        self.segments.iter().map(Segment::compute_ticks).sum()
    }

    /// Number of shared-object accesses `m_i` per job.
    pub fn access_count(&self) -> usize {
        self.segments.iter().filter(|s| s.is_access()).count()
    }

    /// Nominal execution time of one job under `mode` — `u_i + m_i · t_acc`,
    /// assuming no retries or blocking.
    pub fn nominal_exec(&self, mode: SharingMode) -> Ticks {
        self.compute_ticks() + self.access_count() as Ticks * mode.access_cost()
    }

    /// The paper's per-task *approximate load* contribution `u_i / C_i`
    /// (object access time excluded, per §6.1).
    pub fn approximate_load(&self) -> f64 {
        self.compute_ticks() as f64 / self.tuf.critical_time() as f64
    }

    /// Long-run processor utilization contribution under the UAM's maximum
    /// arrival rate: `(a_i / W_i) · u_i`.
    pub fn max_utilization(&self) -> f64 {
        self.uam.max_rate() * self.compute_ticks() as f64
    }

    /// Whether the task uses explicit `Acquire`/`Release` segments — i.e.
    /// holds locks across computation, possibly nested.
    pub fn uses_explicit_locks(&self) -> bool {
        self.segments.iter().any(Segment::is_explicit_lock)
    }

    /// Checks that explicit locking is properly nested (LIFO), never
    /// re-acquires a held object, never flat-accesses a held object, and
    /// releases everything before the job ends.
    fn validate_locking(&self) -> Result<(), SimError> {
        let mut held: Vec<crate::ids::ObjectId> = Vec::new();
        for seg in &self.segments {
            match seg {
                Segment::Acquire { object } => {
                    if held.contains(object) {
                        return Err(SimError::UnbalancedLocking {
                            task: self.name.clone(),
                            detail: format!("re-acquires held object {object}"),
                        });
                    }
                    held.push(*object);
                }
                Segment::Release { object } => {
                    if held.last() != Some(object) {
                        return Err(SimError::UnbalancedLocking {
                            task: self.name.clone(),
                            detail: format!("releases {object} out of LIFO order"),
                        });
                    }
                    held.pop();
                }
                Segment::Access { object, .. } => {
                    if held.contains(object) {
                        return Err(SimError::UnbalancedLocking {
                            task: self.name.clone(),
                            detail: format!("flat access to held object {object}"),
                        });
                    }
                }
                Segment::Compute(_) => {}
            }
        }
        if let Some(object) = held.first() {
            return Err(SimError::UnbalancedLocking {
                task: self.name.clone(),
                detail: format!("job ends still holding {object}"),
            });
        }
        Ok(())
    }
}

/// Builder for [`TaskSpec`]. Created by [`TaskSpec::builder`].
#[derive(Debug, Clone)]
pub struct TaskSpecBuilder {
    name: String,
    tuf: Option<Tuf>,
    uam: Option<Uam>,
    segments: Vec<Segment>,
    abort_handler_ticks: Ticks,
    crash_after: Option<Ticks>,
}

impl TaskSpecBuilder {
    /// Sets the time/utility function (required).
    #[must_use]
    pub fn tuf(mut self, tuf: Tuf) -> Self {
        self.tuf = Some(tuf);
        self
    }

    /// Sets the arrival model (required).
    #[must_use]
    pub fn uam(mut self, uam: Uam) -> Self {
        self.uam = Some(uam);
        self
    }

    /// Sets the full execution plan (required, non-empty).
    #[must_use]
    pub fn segments(mut self, segments: Vec<Segment>) -> Self {
        self.segments = segments;
        self
    }

    /// Appends one segment to the execution plan.
    #[must_use]
    pub fn segment(mut self, segment: Segment) -> Self {
        self.segments.push(segment);
        self
    }

    /// Sets the abort-handler execution time (default 0).
    #[must_use]
    pub fn abort_handler_ticks(mut self, ticks: Ticks) -> Self {
        self.abort_handler_ticks = ticks;
        self
    }

    /// Injects a crash: every job of this task halts permanently after
    /// executing `ticks` — see [`TaskSpec::crash_after`].
    #[must_use]
    pub fn crash_after(mut self, ticks: Ticks) -> Self {
        self.crash_after = Some(ticks);
        self
    }

    /// Finalizes the task.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if a required field is missing, the segment list
    /// is empty, or total compute time is zero.
    pub fn build(self) -> Result<TaskSpec, SimError> {
        let tuf = self.tuf.ok_or(SimError::MissingField { field: "tuf" })?;
        let uam = self.uam.ok_or(SimError::MissingField { field: "uam" })?;
        if self.segments.is_empty() {
            return Err(SimError::EmptySegments { task: self.name });
        }
        let spec = TaskSpec {
            name: self.name,
            tuf,
            uam,
            segments: self.segments,
            abort_handler_ticks: self.abort_handler_ticks,
            crash_after: self.crash_after,
        };
        if spec.compute_ticks() == 0 && spec.access_count() == 0 {
            return Err(SimError::ZeroComputeTime { task: spec.name });
        }
        spec.validate_locking()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ObjectId;
    use crate::segment::AccessKind;

    fn tuf() -> Tuf {
        Tuf::step(1.0, 1_000).expect("valid tuf")
    }

    fn spec() -> TaskSpec {
        TaskSpec::builder("t")
            .tuf(tuf())
            .uam(Uam::periodic(1_000))
            .segments(vec![
                Segment::Compute(60),
                Segment::Access {
                    object: ObjectId::new(0),
                    kind: AccessKind::Write,
                },
                Segment::Compute(40),
                Segment::Access {
                    object: ObjectId::new(1),
                    kind: AccessKind::Read,
                },
            ])
            .build()
            .expect("valid spec")
    }

    #[test]
    fn builder_requires_fields() {
        assert_eq!(
            TaskSpec::builder("x")
                .uam(Uam::periodic(10))
                .build()
                .unwrap_err(),
            SimError::MissingField { field: "tuf" }
        );
        assert_eq!(
            TaskSpec::builder("x").tuf(tuf()).build().unwrap_err(),
            SimError::MissingField { field: "uam" }
        );
        assert_eq!(
            TaskSpec::builder("x")
                .tuf(tuf())
                .uam(Uam::periodic(10))
                .build()
                .unwrap_err(),
            SimError::EmptySegments { task: "x".into() }
        );
    }

    #[test]
    fn derived_quantities() {
        let s = spec();
        assert_eq!(s.compute_ticks(), 100);
        assert_eq!(s.access_count(), 2);
        assert_eq!(
            s.nominal_exec(SharingMode::LockBased { access_ticks: 30 }),
            160
        );
        assert_eq!(
            s.nominal_exec(SharingMode::LockFree { access_ticks: 5 }),
            110
        );
        assert_eq!(s.nominal_exec(SharingMode::Ideal), 100);
        assert!((s.approximate_load() - 0.1).abs() < 1e-12);
        assert!((s.max_utilization() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn sharing_mode_helpers() {
        assert!(SharingMode::LockBased { access_ticks: 1 }.uses_locks());
        assert!(!SharingMode::LockFree { access_ticks: 1 }.uses_locks());
        assert!(!SharingMode::Ideal.uses_locks());
        assert_eq!(SharingMode::Ideal.access_cost(), 0);
    }

    #[test]
    fn access_only_task_is_valid() {
        let s = TaskSpec::builder("a")
            .tuf(tuf())
            .uam(Uam::periodic(100))
            .segment(Segment::Access {
                object: ObjectId::new(0),
                kind: AccessKind::Write,
            })
            .build();
        assert!(s.is_ok());
    }
}
