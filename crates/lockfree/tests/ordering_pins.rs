//! Pins the memory orderings of audited atomic sites.
//!
//! The workspace's ordering audit (PR 3: `lfrt-ordlint` + the store-buffer
//! explorer) settled each of these sites deliberately; this test freezes
//! them as source-text assertions so a future edit that strengthens or
//! weakens an ordering has to touch this file and restate the argument.
//! The assertions are deliberately syntactic — the same literal tokens
//! `lfrt-ordlint` scans — so the pin and the lint can never drift apart.

use std::path::Path;

fn src(file: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("src").join(file);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Strips whitespace so multi-line call sites compare stably under rustfmt.
fn squash(text: &str) -> String {
    text.chars().filter(|c| !c.is_whitespace()).collect()
}

fn assert_site(file: &str, needle: &str, why: &str) {
    let haystack = squash(&src(file));
    assert!(
        haystack.contains(&squash(needle)),
        "{file}: expected pinned site `{needle}` ({why}); \
         if the ordering changed on purpose, restate the argument here"
    );
}

/// The audit's two downgrades: a CAS retry loop feeds the failure value
/// back as the next expectation and never dereferences it, so the failure
/// ordering carries no acquire obligation (ordlint ORD005).
#[test]
fn cas_failure_orderings_stay_relaxed() {
    assert_site(
        "register.rs",
        "compare_exchange_weak(current, next, Ordering::AcqRel, Ordering::Relaxed,)",
        "update() retry loop: failure value only re-seeds `current`",
    );
    assert_site(
        "snapshot.rs",
        "compare_exchange_weak(current, next, Ordering::AcqRel, Ordering::Relaxed)",
        "write() retry loop: failure word only re-seeds `current`",
    );
}

/// The success orderings those same sites must keep: `update`/`write`
/// both read the old value on success (AcqRel = Acquire for the read,
/// Release for the publication of the new value).
#[test]
fn cas_success_orderings_stay_acqrel() {
    for file in ["register.rs", "snapshot.rs"] {
        let text = src(file);
        assert!(
            text.contains("Ordering::AcqRel"),
            "{file}: the CAS success ordering must stay AcqRel"
        );
        assert!(
            !squash(&text).contains(&squash("Ordering::AcqRel, Ordering::Acquire")),
            "{file}: the audit downgraded the Acquire failure ordering; \
             re-upgrading it needs a new argument here"
        );
    }
}

/// Treiber stack hot path (push/pop): Acquire top load, Release/Relaxed
/// CAS — the publication edge the store-buffer explorer exercises through
/// `ModelTreiberStack`.
#[test]
fn stack_hot_path_orderings() {
    assert_site(
        "stack.rs",
        "self.top.load(Acquire, guard)",
        "push/pop must acquire the published top node",
    );
    assert_site(
        "stack.rs",
        "compare_exchange(top, new, Release, Relaxed, guard)",
        "push publishes the new node with Release",
    );
    assert_site(
        "stack.rs",
        "compare_exchange(top, next, Release, Relaxed, guard)",
        "pop unlinks with Release, Relaxed failure",
    );
    assert_site(
        "stack.rs",
        "new.next.store(top, Relaxed)",
        "pre-publication init of the new node needs no ordering",
    );
}

/// Michael–Scott queue hot path: every CAS publishes with Release and
/// retries with Relaxed failure; head/tail/next loads are Acquire.
#[test]
fn queue_hot_path_orderings() {
    let text = src("queue.rs");
    let squashed = squash(&text);
    for site in [
        "compare_exchange(tail, next, Release, Relaxed, guard)",
        "compare_exchange(Shared::null(), new, Release, Relaxed, guard)",
        "compare_exchange(tail, new, Release, Relaxed, guard)",
        "compare_exchange(head, next, Release, Relaxed, guard)",
    ] {
        assert!(
            squashed.contains(&squash(site)),
            "queue.rs: expected pinned site `{site}`"
        );
    }
    assert!(
        !text.contains("load(Relaxed, guard)") || text.contains("fn drop"),
        "queue.rs: Relaxed loads are only justified in Drop (exclusive access)"
    );
}

/// Vyukov MPMC queue: Relaxed ticket loads and ticket CAS, Acquire
/// sequence loads, Release sequence stores — the per-slot hand-off
/// protocol (baselined ORD002: the ticket is an index, not a pointer).
#[test]
fn mpmc_hot_path_orderings() {
    assert_site(
        "mpmc.rs",
        "slot.sequence.load(Ordering::Acquire)",
        "the sequence load is the slot's acquire edge",
    );
    assert_site(
        "mpmc.rs",
        "slot.sequence.store(tail.wrapping_add(1), Ordering::Release)",
        "the producer hands the slot over with Release",
    );
    assert_site(
        "mpmc.rs",
        "Ordering::Relaxed, Ordering::Relaxed,",
        "ticket CAS needs no ordering: the sequence protocol synchronizes",
    );
}

/// Node-pool overflow stack (a Treiber stack of spill segments, popped
/// only whole): the spiller publishes a pre-linked chain with Release; the
/// refiller detaches the entire chain with an Acquire `swap` *before*
/// reading any chain word, so no overflow step dereferences memory the
/// thread does not own — and no CAS needs an Acquire failure ordering or a
/// version tag.
#[test]
fn pool_overflow_orderings() {
    assert_site(
        "pool.rs",
        "compare_exchange(head, chain, Ordering::Release, Ordering::Relaxed)",
        "push_segments publishes the pre-linked chain with Release; failure value only re-seeds head",
    );
    assert_site(
        "pool.rs",
        "self.overflow.swap(ptr::null_mut(), Ordering::Acquire)",
        "refill/purge detach-all must acquire the spiller's chain writes before walking them",
    );
    assert_site(
        "pool.rs",
        "if self.overflow.load(Ordering::Relaxed).is_null()",
        "refill's empty probe synchronizes nothing: ownership comes from the swap, not the load",
    );
    assert_site(
        "pool.rs",
        "shard.hits.fetch_add(hits, Ordering::Relaxed)",
        "telemetry flushes carry no synchronization (per-op counts live in plain cells)",
    );
}

/// Elimination exchanger: the install CAS is the one Release publication
/// of the offered node; the claim CAS pairs it with Acquire; everything
/// else — the spin probe, the cancel CAS, the acknowledgment store, and
/// the width/hit/miss telemetry — is deliberately Relaxed, because after
/// a won claim the node is exclusively owned and the sentinels (EMPTY,
/// BUSY) carry no payload. The store-buffer explorer exercises this edge
/// through `ModelElimStack`.
#[test]
fn elimination_exchange_orderings() {
    assert_site(
        "elimination.rs",
        "compare_exchange(EMPTY, offer, Ordering::Release, Ordering::Relaxed)",
        "E1 install must publish the node's payload with Release",
    );
    assert_site(
        "elimination.rs",
        "if slot.load(Ordering::Relaxed) != offer",
        "E2 spin probe synchronizes nothing: the claim CAS does",
    );
    assert_site(
        "elimination.rs",
        "compare_exchange(offer, EMPTY, Ordering::Relaxed, Ordering::Relaxed)",
        "E3 cancel withdraws our own offer: EMPTY carries no payload, failure only proves the claim",
    );
    assert_site(
        "elimination.rs",
        "slot.store(EMPTY, Ordering::Relaxed)",
        "the post-claim acknowledgment publishes only the EMPTY sentinel",
    );
    assert_site(
        "elimination.rs",
        "compare_exchange(observed, BUSY, Ordering::Acquire, Ordering::Relaxed)",
        "D2 claim must acquire the installer's Release before the payload read",
    );
    assert_site(
        "elimination.rs",
        "self.width.load(Ordering::Relaxed).clamp(1, SLOTS)",
        "width adaptation is a racy hint: any torn update only respreads probes",
    );
}

/// NBW (Kopetz/Reisinger) seqlock: the version stores straddle the payload
/// with a Release fence + Release store; the reader pairs an Acquire load
/// with an Acquire fence before the recheck.
#[test]
fn nbw_fence_pairing_orderings() {
    assert_site(
        "nbw.rs",
        "fence(Ordering::Release)",
        "writer: version bump must not sink below payload stores",
    );
    assert_site(
        "nbw.rs",
        "shared.version.store(v + 2, Ordering::Release)",
        "writer: closing version store publishes the payload",
    );
    assert_site(
        "nbw.rs",
        "fence(Ordering::Acquire)",
        "reader: payload reads must not sink below the recheck",
    );
    assert_site(
        "nbw.rs",
        "shared.version.load(Ordering::Acquire)",
        "reader: opening version load acquires the last publication",
    );
}
