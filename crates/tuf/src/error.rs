use std::error::Error;
use std::fmt;

/// Error returned when constructing an invalid [`Tuf`](crate::Tuf).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TufError {
    /// The critical time was zero; a TUF must be positive somewhere.
    ZeroCriticalTime,
    /// A utility value was negative, NaN, or infinite.
    InvalidUtility {
        /// The offending value, rendered for diagnostics.
        value: String,
    },
    /// A piecewise-linear TUF was given no control points.
    EmptyPoints,
    /// Piecewise-linear control points were not strictly increasing in time.
    UnsortedPoints {
        /// Index of the first out-of-order point.
        index: usize,
    },
    /// A piecewise-linear point lies at or beyond the critical time.
    PointBeyondCriticalTime {
        /// Time coordinate of the offending point.
        time: u64,
        /// The declared critical time.
        critical_time: u64,
    },
}

impl fmt::Display for TufError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TufError::ZeroCriticalTime => write!(f, "critical time must be positive"),
            TufError::InvalidUtility { value } => {
                write!(
                    f,
                    "utility value {value} is not a finite non-negative number"
                )
            }
            TufError::EmptyPoints => write!(f, "piecewise TUF requires at least one point"),
            TufError::UnsortedPoints { index } => {
                write!(
                    f,
                    "piecewise TUF points must be strictly increasing in time (point {index})"
                )
            }
            TufError::PointBeyondCriticalTime {
                time,
                critical_time,
            } => write!(
                f,
                "piecewise TUF point at time {time} lies at or beyond critical time {critical_time}"
            ),
        }
    }
}

impl Error for TufError {}
