//! Failure injection: §1.1's argument that "deadlocks can occur when lock
//! holders crash, causing indefinite starvation to blockers" — and that
//! lock-free sharing is immune, because no crashed peer can hold anything.

use lfrt_sim::{
    AccessKind, Decision, Engine, JobId, ObjectId, SchedulerContext, Segment, SharingMode,
    SimConfig, TaskSpec, UaScheduler,
};
use lfrt_tuf::Tuf;
use lfrt_uam::{ArrivalTrace, Uam};

struct Edf;

impl UaScheduler for Edf {
    fn name(&self) -> &str {
        "edf-test"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        let mut order: Vec<JobId> = ctx.jobs.iter().map(|j| j.id).collect();
        order.sort_by_key(|&id| {
            let j = ctx.job(id).expect("listed job");
            (j.absolute_critical_time, id)
        });
        Decision {
            order,
            ops: 1,
            ..Decision::default()
        }
    }
}

fn access(object: usize) -> Segment {
    Segment::Access {
        object: ObjectId::new(object),
        kind: AccessKind::Write,
    }
}

/// A holder that crashes mid-critical-section, plus a stream of jobs that
/// need the same object.
fn scenario(sharing: SharingMode) -> lfrt_sim::SimOutcome {
    let crasher = TaskSpec::builder("crasher")
        .tuf(Tuf::step(1.0, 1_000_000).expect("valid tuf"))
        .uam(Uam::periodic(10_000_000))
        .segments(vec![Segment::Compute(10), access(0)])
        .crash_after(200) // dies 190 ticks into its 1000-tick access
        .build()
        .expect("valid task");
    let stream = TaskSpec::builder("stream")
        .tuf(Tuf::step(5.0, 4_000).expect("valid tuf"))
        .uam(Uam::periodic(5_000))
        .segments(vec![access(0), Segment::Compute(50)])
        .build()
        .expect("valid task");
    Engine::new(
        vec![crasher, stream],
        vec![
            ArrivalTrace::new(vec![0]),
            ArrivalTrace::new((0..10).map(|k| 500 + k * 5_000).collect()),
        ],
        SimConfig::new(sharing),
    )
    .expect("valid engine")
    .run(Edf)
}

#[test]
fn crashed_lock_holder_starves_every_blocker() {
    let outcome = scenario(SharingMode::LockBased {
        access_ticks: 1_000,
    });
    assert_eq!(outcome.metrics.crashed(), 1, "the holder crashed");
    // Every stream job blocks on the dead holder's lock and dies at its own
    // critical time: indefinite starvation.
    let stream: Vec<_> = outcome
        .records
        .iter()
        .filter(|r| r.task.index() == 1)
        .collect();
    assert_eq!(stream.len(), 10);
    assert!(
        stream.iter().all(|r| !r.completed),
        "no stream job can ever acquire the dead lock"
    );
    assert!(outcome.metrics.blockings() >= 10);
    assert_eq!(outcome.metrics.aur(), 0.0);
}

#[test]
fn lock_free_sharing_is_immune_to_the_crash() {
    let outcome = scenario(SharingMode::LockFree {
        access_ticks: 1_000,
    });
    assert_eq!(outcome.metrics.crashed(), 1, "the holder still crashes");
    let stream: Vec<_> = outcome
        .records
        .iter()
        .filter(|r| r.task.index() == 1)
        .collect();
    assert_eq!(stream.len(), 10);
    assert!(
        stream.iter().all(|r| r.completed),
        "lock-free peers sail past the crashed job"
    );
    assert_eq!(outcome.metrics.blockings(), 0);
    assert!(outcome.metrics.aur() > 0.9);
}

#[test]
fn crash_point_is_exact_and_counted_once() {
    let crasher = TaskSpec::builder("c")
        .tuf(Tuf::step(1.0, 100_000).expect("valid tuf"))
        .uam(Uam::periodic(1_000_000))
        .segments(vec![Segment::Compute(10_000)])
        .crash_after(1_234)
        .build()
        .expect("valid task");
    let outcome = Engine::new(
        vec![crasher],
        vec![ArrivalTrace::new(vec![0])],
        SimConfig::new(SharingMode::Ideal),
    )
    .expect("valid engine")
    .run(Edf);
    assert_eq!(outcome.metrics.crashed(), 1);
    assert_eq!(outcome.metrics.completed(), 0);
    assert_eq!(outcome.metrics.aborted(), 0, "a crash is not a clean abort");
    assert_eq!(outcome.records[0].resolved_at, 1_234);
}

#[test]
fn crash_only_counts_executed_time_not_wall_time() {
    // The crasher is preempted by an urgent job; its crash point moves out
    // in wall-clock terms because only executed ticks count.
    let crasher = TaskSpec::builder("c")
        .tuf(Tuf::step(1.0, 100_000).expect("valid tuf"))
        .uam(Uam::periodic(1_000_000))
        .segments(vec![Segment::Compute(10_000)])
        .crash_after(500)
        .build()
        .expect("valid task");
    let urgent = TaskSpec::builder("u")
        .tuf(Tuf::step(5.0, 1_000).expect("valid tuf"))
        .uam(Uam::periodic(1_000_000))
        .segments(vec![Segment::Compute(300)])
        .build()
        .expect("valid task");
    let outcome = Engine::new(
        vec![crasher, urgent],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![100])],
        SimConfig::new(SharingMode::Ideal),
    )
    .expect("valid engine")
    .run(Edf);
    let crash = outcome
        .records
        .iter()
        .find(|r| r.task.index() == 0)
        .expect("crashed");
    // 100 executed + 300 preempted + 400 more executed = crash at t = 800.
    assert_eq!(crash.resolved_at, 800);
}
