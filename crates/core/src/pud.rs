//! Potential utility density (§3.2 of the paper).
//!
//! The PUD of a job measures the utility accrued per unit time by executing
//! the job together with everything it depends on:
//!
//! ```text
//! PUD(J) = ( U_J(t_f) + Σ_{D ∈ Dep(J)} U_D(t_D) ) / (t_f − t)
//! ```
//!
//! where `t_D` is each dependent's estimated completion time under the
//! assumption that the chain executes immediately and back-to-back, and
//! `t_f` is `J`'s own estimated completion time.

use lfrt_sim::{JobId, SchedulerContext};

use crate::ops::OpsCounter;

/// Computes the PUD of a chain `⟨head, …, job⟩` at `ctx.now`, charging one
/// operation per chain member.
///
/// Members are assumed to execute back-to-back starting now; each member's
/// utility is evaluated at its estimated completion time. Jobs missing from
/// the context (resolved in the meantime) contribute nothing.
///
/// Returns 0.0 for an empty chain.
pub fn chain_pud(ctx: &SchedulerContext<'_>, chain: &[JobId], ops: &mut OpsCounter) -> f64 {
    let mut elapsed: u64 = 0;
    let mut total_utility = 0.0;
    for &member in chain {
        ops.tick();
        let Some(view) = ctx.job(member) else {
            continue;
        };
        elapsed += view.remaining;
        let completion = ctx.now + elapsed;
        let sojourn = completion.saturating_sub(view.arrival);
        total_utility += view.tuf.utility(sojourn);
    }
    if elapsed == 0 {
        // A chain of zero remaining work either yields utility instantly
        // (infinite density, approximated by the utility itself scaled
        // large) or nothing at all.
        return if total_utility > 0.0 {
            f64::MAX / 2.0
        } else {
            0.0
        };
    }
    total_utility / elapsed as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfrt_sim::{JobView, TaskId};
    use lfrt_tuf::Tuf;

    fn view<'a>(id: usize, tuf: &'a Tuf, arrival: u64, remaining: u64) -> JobView<'a> {
        JobView {
            id: JobId::new(id),
            task: TaskId::new(id),
            arrival,
            absolute_critical_time: arrival + tuf.critical_time(),
            window: tuf.critical_time(),
            tuf,
            remaining,
            blocked_on: None,
            holds: Vec::new(),
        }
    }

    #[test]
    fn singleton_chain_is_utility_over_remaining() {
        let tuf = Tuf::step(10.0, 1_000).expect("valid");
        let ctx = SchedulerContext {
            now: 0,
            jobs: vec![view(0, &tuf, 0, 50)],
        };
        let mut ops = OpsCounter::new();
        let pud = chain_pud(&ctx, &[JobId::new(0)], &mut ops);
        assert!((pud - 10.0 / 50.0).abs() < 1e-12);
        assert_eq!(ops.total(), 1);
    }

    #[test]
    fn chain_sums_utilities_and_times() {
        let tuf_a = Tuf::step(6.0, 1_000).expect("valid");
        let tuf_b = Tuf::step(4.0, 1_000).expect("valid");
        let ctx = SchedulerContext {
            now: 0,
            jobs: vec![view(0, &tuf_a, 0, 100), view(1, &tuf_b, 0, 100)],
        };
        let pud = chain_pud(
            &ctx,
            &[JobId::new(0), JobId::new(1)],
            &mut OpsCounter::new(),
        );
        // (6 + 4) / 200.
        assert!((pud - 0.05).abs() < 1e-12);
    }

    #[test]
    fn member_past_its_critical_time_contributes_nothing() {
        let tuf = Tuf::step(10.0, 100).expect("valid");
        // Completion estimate lands at sojourn 150 >= 100: zero utility.
        let ctx = SchedulerContext {
            now: 100,
            jobs: vec![view(0, &tuf, 50, 100)],
        };
        let pud = chain_pud(&ctx, &[JobId::new(0)], &mut OpsCounter::new());
        assert_eq!(pud, 0.0);
    }

    #[test]
    fn non_step_tuf_uses_estimated_completion() {
        let tuf = Tuf::linear_decreasing(10.0, 100).expect("valid");
        // Completion at sojourn 50: utility 5; PUD = 5 / 50.
        let ctx = SchedulerContext {
            now: 0,
            jobs: vec![view(0, &tuf, 0, 50)],
        };
        let pud = chain_pud(&ctx, &[JobId::new(0)], &mut OpsCounter::new());
        assert!((pud - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_and_missing_are_zero() {
        let tuf = Tuf::step(10.0, 100).expect("valid");
        let ctx = SchedulerContext {
            now: 0,
            jobs: vec![view(0, &tuf, 0, 10)],
        };
        assert_eq!(chain_pud(&ctx, &[], &mut OpsCounter::new()), 0.0);
        assert_eq!(
            chain_pud(&ctx, &[JobId::new(9)], &mut OpsCounter::new()),
            0.0
        );
    }
}
