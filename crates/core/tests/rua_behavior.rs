//! Integration tests: the RUA variants driving the simulator exhibit the
//! paper's qualitative behaviours.

use lfrt_core::{Edf, RuaLockBased, RuaLockFree, RuaLockFreeSampled};
use lfrt_sim::{
    AccessKind, Engine, ObjectId, Segment, SharingMode, SimConfig, SimOutcome, TaskSpec,
    UaScheduler,
};
use lfrt_tuf::Tuf;
use lfrt_uam::{ArrivalTrace, Uam};

fn step_task(name: &str, utility: f64, critical: u64, compute: u64) -> TaskSpec {
    TaskSpec::builder(name)
        .tuf(Tuf::step(utility, critical).expect("valid tuf"))
        .uam(Uam::periodic(critical.max(1)))
        .segments(vec![Segment::Compute(compute)])
        .build()
        .expect("valid task")
}

fn access(object: usize) -> Segment {
    Segment::Access {
        object: ObjectId::new(object),
        kind: AccessKind::Write,
    }
}

fn run<S: UaScheduler>(
    tasks: Vec<TaskSpec>,
    traces: Vec<ArrivalTrace>,
    sharing: SharingMode,
    scheduler: S,
) -> SimOutcome {
    Engine::new(tasks, traces, SimConfig::new(sharing))
        .expect("valid engine")
        .run(scheduler)
}

#[test]
fn underload_rua_meets_everything_like_edf() {
    // Three periodic step-TUF tasks at 30% load: EDF and both RUAs must meet
    // every critical time (RUA defaults to ECF during underloads).
    let mk_tasks = || {
        vec![
            step_task("a", 1.0, 1_000, 100),
            step_task("b", 2.0, 2_000, 200),
            step_task("c", 3.0, 4_000, 300),
        ]
    };
    let mk_traces = || {
        vec![
            ArrivalTrace::new((0..10).map(|i| i * 1_000).collect()),
            ArrivalTrace::new((0..5).map(|i| i * 2_000).collect()),
            ArrivalTrace::new((0..3).map(|i| i * 4_000).collect()),
        ]
    };
    for outcome in [
        run(mk_tasks(), mk_traces(), SharingMode::Ideal, Edf::new()),
        run(
            mk_tasks(),
            mk_traces(),
            SharingMode::Ideal,
            RuaLockFree::new(),
        ),
        run(
            mk_tasks(),
            mk_traces(),
            SharingMode::Ideal,
            RuaLockBased::new(),
        ),
    ] {
        assert_eq!(outcome.metrics.aborted(), 0);
        assert!((outcome.metrics.aur() - 1.0).abs() < 1e-12);
        assert!((outcome.metrics.cmr() - 1.0).abs() < 1e-12);
    }
}

#[test]
fn overload_rua_favors_importance_edf_favors_urgency() {
    // Two simultaneous jobs, each needing 600 ticks, critical times 700 and
    // 1000: only one can meet its constraint. The later-deadline job is 10×
    // more important.
    let urgent_cheap = step_task("urgent", 1.0, 700, 600);
    let late_valuable = step_task("valuable", 10.0, 1_000, 600);
    let traces = || vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![0])];

    // EDF runs the urgent job first; the valuable one then misses
    // (600 + 600 > 1000) — total utility 1.
    let edf = run(
        vec![urgent_cheap.clone(), late_valuable.clone()],
        traces(),
        SharingMode::Ideal,
        Edf::new(),
    );
    let edf_utility: f64 = edf.records.iter().map(|r| r.utility).sum();
    assert_eq!(edf_utility, 1.0);

    // RUA rejects the low-PUD urgent job and banks the valuable one.
    let rua = run(
        vec![urgent_cheap, late_valuable],
        traces(),
        SharingMode::Ideal,
        RuaLockFree::new(),
    );
    let rua_utility: f64 = rua.records.iter().map(|r| r.utility).sum();
    assert_eq!(rua_utility, 10.0);
    let valuable = rua
        .records
        .iter()
        .find(|r| r.task.index() == 1)
        .expect("ran");
    assert!(valuable.completed);
}

#[test]
fn lock_based_rua_runs_lock_holder_before_blocked_high_pud_job() {
    // The holder (low utility) grabs the object; a far more important job
    // then blocks on it. RUA must schedule the holder (the head of the
    // important job's dependency chain) so the important job can proceed.
    let holder = TaskSpec::builder("holder")
        .tuf(Tuf::step(1.0, 10_000).expect("valid"))
        .uam(Uam::periodic(100_000))
        .segments(vec![Segment::Compute(10), access(0), Segment::Compute(500)])
        .build()
        .expect("valid task");
    let important = TaskSpec::builder("important")
        .tuf(Tuf::step(100.0, 2_000).expect("valid"))
        .uam(Uam::periodic(100_000))
        .segments(vec![access(0)])
        .build()
        .expect("valid task");
    let outcome = run(
        vec![holder, important],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![50])],
        SharingMode::LockBased { access_ticks: 400 },
        RuaLockBased::new(),
    );
    assert_eq!(outcome.metrics.completed(), 2);
    let important_rec = outcome
        .records
        .iter()
        .find(|r| r.task.index() == 1)
        .expect("ran");
    assert!(important_rec.completed, "dependency chain must be honoured");
    // Holder's critical section runs 10..410; important blocked at 50,
    // acquires at 410, finishes at 810 — before its 2050 critical time.
    assert!(important_rec.resolved_at <= 2_000);
    assert_eq!(important_rec.blockings, 1);
}

#[test]
fn lock_free_rua_invokes_scheduler_less_often() {
    // Same lock-heavy workload under both disciplines: lock-based RUA fires
    // on lock/unlock events too, so it must be invoked strictly more often.
    let mk = || {
        (0..4)
            .map(|i| {
                TaskSpec::builder(format!("t{i}"))
                    .tuf(Tuf::step(1.0 + i as f64, 5_000).expect("valid"))
                    .uam(Uam::periodic(5_000))
                    .segments(vec![
                        Segment::Compute(50),
                        access(0),
                        Segment::Compute(50),
                        access(1),
                    ])
                    .build()
                    .expect("valid task")
            })
            .collect::<Vec<_>>()
    };
    let traces = || {
        (0..4)
            .map(|i| ArrivalTrace::new((0..5).map(|k| k * 5_000 + i * 10).collect()))
            .collect::<Vec<_>>()
    };
    let lock_based = run(
        mk(),
        traces(),
        SharingMode::LockBased { access_ticks: 30 },
        RuaLockBased::new(),
    );
    let lock_free = run(
        mk(),
        traces(),
        SharingMode::LockFree { access_ticks: 10 },
        RuaLockFree::new(),
    );
    assert!(
        lock_based.metrics.sched_invocations > lock_free.metrics.sched_invocations,
        "lock events must add scheduler activations ({} vs {})",
        lock_based.metrics.sched_invocations,
        lock_free.metrics.sched_invocations,
    );
    assert_eq!(lock_free.metrics.blockings(), 0);
}

#[test]
fn rejected_job_reconsidered_after_situation_improves() {
    // At t=0 two jobs overload the processor and RUA rejects the cheap one;
    // its critical time is generous, so once the valuable job finishes the
    // cheap one still completes.
    let cheap = step_task("cheap", 1.0, 5_000, 600);
    let valuable = step_task("valuable", 10.0, 700, 600);
    let outcome = run(
        vec![cheap, valuable],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![0])],
        SharingMode::Ideal,
        RuaLockFree::new(),
    );
    assert_eq!(outcome.metrics.completed(), 2);
    let cheap_rec = outcome
        .records
        .iter()
        .find(|r| r.task.index() == 0)
        .expect("ran");
    assert_eq!(cheap_rec.resolved_at, 1_200, "cheap job runs second");
}

#[test]
fn non_step_tufs_prefer_early_completion() {
    // A linearly-decreasing TUF accrues more when finished earlier; with two
    // equal-importance jobs, RUA still completes both, and total utility
    // reflects one early and one late finish.
    let mk = |name: &str| {
        TaskSpec::builder(name)
            .tuf(Tuf::linear_decreasing(10.0, 1_000).expect("valid"))
            .uam(Uam::periodic(10_000))
            .segments(vec![Segment::Compute(200)])
            .build()
            .expect("valid task")
    };
    let outcome = run(
        vec![mk("x"), mk("y")],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![0])],
        SharingMode::Ideal,
        RuaLockFree::new(),
    );
    assert_eq!(outcome.metrics.completed(), 2);
    let total: f64 = outcome.records.iter().map(|r| r.utility).sum();
    // First finishes at 200 (utility 8), second at 400 (utility 6).
    assert!((total - 14.0).abs() < 1e-9, "total utility {total}");
}

#[test]
fn lock_free_retries_happen_under_contention_but_jobs_finish() {
    let mk = |i: usize, critical: u64| {
        TaskSpec::builder(format!("t{i}"))
            .tuf(Tuf::step(1.0, critical).expect("valid"))
            .uam(Uam::periodic(10_000))
            .segments(vec![Segment::Compute(20), access(0), Segment::Compute(20)])
            .build()
            .expect("valid task")
    };
    // Staggered arrivals force preemption inside accesses.
    let outcome = run(
        vec![mk(0, 9_000), mk(1, 5_000), mk(2, 2_000)],
        vec![
            ArrivalTrace::new(vec![0]),
            ArrivalTrace::new(vec![25]),
            ArrivalTrace::new(vec![50]),
        ],
        SharingMode::LockFree { access_ticks: 100 },
        RuaLockFree::new(),
    );
    assert_eq!(outcome.metrics.completed(), 3);
    assert!(
        outcome.metrics.retries() > 0,
        "contended accesses must retry"
    );
}

#[test]
fn both_rua_variants_are_deterministic_on_random_workloads() {
    let spec = lfrt_sim::workload::WorkloadSpec::paper_baseline(13);
    let once = |sched: bool| {
        let (tasks, traces) = spec.build().expect("valid workload");
        if sched {
            run(
                tasks,
                traces,
                SharingMode::LockFree { access_ticks: 10 },
                RuaLockFree::new(),
            )
        } else {
            run(
                tasks,
                traces,
                SharingMode::LockBased { access_ticks: 30 },
                RuaLockBased::new(),
            )
        }
    };
    assert_eq!(once(true).records, once(true).records);
    assert_eq!(once(false).records, once(false).records);
}

#[test]
fn random_underload_workload_all_disciplines_complete_everything() {
    let spec = lfrt_sim::workload::WorkloadSpec {
        target_load: 0.2,
        horizon: 500_000,
        ..lfrt_sim::workload::WorkloadSpec::paper_baseline(99)
    };
    let (tasks, traces) = spec.build().expect("valid workload");
    let lf = run(
        tasks.clone(),
        traces.clone(),
        SharingMode::LockFree { access_ticks: 5 },
        RuaLockFree::new(),
    );
    assert!(
        lf.metrics.cmr() > 0.99,
        "lock-free underload CMR {}",
        lf.metrics.cmr()
    );
    let lb = run(
        tasks,
        traces,
        SharingMode::LockBased { access_ticks: 5 },
        RuaLockBased::new(),
    );
    assert!(
        lb.metrics.cmr() > 0.99,
        "lock-based underload CMR {}",
        lb.metrics.cmr()
    );
}

#[test]
fn sampled_feasibility_loses_little_utility() {
    // §3.6's randomized-feasibility optimization: on the paper-style
    // workloads, the sampled variant accrues nearly the utility of exact
    // lock-free RUA while charging far fewer scheduler operations.
    let mut exact_total = 0.0;
    let mut sampled_total = 0.0;
    let mut exact_ops = 0u64;
    let mut sampled_ops = 0u64;
    for seed in 0..5 {
        let spec = lfrt_sim::workload::WorkloadSpec {
            target_load: 1.1,
            window_range: (6_000, 18_000),
            ..lfrt_sim::workload::WorkloadSpec::paper_baseline(seed)
        };
        let (tasks, traces) = spec.build().expect("valid workload");
        let exact = Engine::new(
            tasks.clone(),
            traces.clone(),
            lfrt_sim::SimConfig::new(SharingMode::LockFree { access_ticks: 10 }),
        )
        .expect("valid engine")
        .run(RuaLockFree::new());
        let sampled = Engine::new(
            tasks,
            traces,
            lfrt_sim::SimConfig::new(SharingMode::LockFree { access_ticks: 10 }),
        )
        .expect("valid engine")
        .run(RuaLockFreeSampled::new(2, seed));
        exact_total += exact.metrics.aur();
        sampled_total += sampled.metrics.aur();
        exact_ops += exact.metrics.sched_ops;
        sampled_ops += sampled.metrics.sched_ops;
    }
    assert!(
        sampled_total >= exact_total - 0.25,
        "sampled AUR {sampled_total:.3} too far below exact {exact_total:.3}"
    );
    assert!(
        sampled_ops < exact_ops,
        "sampling must reduce charged scheduler work ({sampled_ops} vs {exact_ops})"
    );
}
