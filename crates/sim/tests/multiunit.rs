//! Multiunit resources (counting semaphores): objects with capacity above 1
//! admit several concurrent lock holders before anyone blocks — the
//! "multiunit resource constraints" of RUA's origin paper.

use lfrt_sim::mp::MpEngine;
use lfrt_sim::{
    Decision, JobId, ObjectId, SchedulerContext, Segment, SharingMode, SimConfig, TaskSpec,
    UaScheduler,
};
use lfrt_tuf::Tuf;
use lfrt_uam::{ArrivalTrace, Uam};

struct Edf;

impl UaScheduler for Edf {
    fn name(&self) -> &str {
        "edf-test"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        let mut order: Vec<JobId> = ctx.jobs.iter().map(|j| j.id).collect();
        order.sort_by_key(|&id| {
            let j = ctx.job(id).expect("listed job");
            (j.absolute_critical_time, id)
        });
        Decision {
            order,
            ops: 1,
            ..Decision::default()
        }
    }
}

fn holder_task(name: &str, critical: u64) -> TaskSpec {
    TaskSpec::builder(name)
        .tuf(Tuf::step(1.0, critical).expect("valid tuf"))
        .uam(Uam::periodic(100_000))
        .segments(vec![
            Segment::Acquire {
                object: ObjectId::new(0),
            },
            Segment::Compute(1_000),
            Segment::Release {
                object: ObjectId::new(0),
            },
        ])
        .build()
        .expect("valid task")
}

/// Three CPUs, so all three jobs can request the semaphore concurrently —
/// the regime where unit counts matter.
fn run(capacity: u32, arrivals: [u64; 3]) -> lfrt_sim::SimOutcome {
    let tasks = vec![
        holder_task("a", 30_000),
        holder_task("b", 30_001),
        holder_task("c", 30_002),
    ];
    let traces = arrivals
        .iter()
        .map(|&t| ArrivalTrace::new(vec![t]))
        .collect();
    MpEngine::new(
        tasks,
        traces,
        SimConfig::new(SharingMode::LockBased { access_ticks: 1 })
            .object_capacities(vec![capacity]),
        3,
    )
    .expect("valid engine")
    .run(Edf)
}

#[test]
fn capacity_one_serializes_three_holders() {
    let outcome = run(1, [0, 0, 0]);
    assert_eq!(outcome.metrics.completed(), 3);
    // b and c block initially; releases wake all waiters, and the loser of
    // the re-request race blocks once more: 2 + 1 blockings.
    assert_eq!(outcome.metrics.blockings(), 3);
    // Despite three CPUs, the semaphore serializes the holds: the last
    // completes no earlier than 3000.
    let last = outcome
        .records
        .iter()
        .map(|r| r.resolved_at)
        .max()
        .expect("ran");
    assert!(last >= 3_000);
}

#[test]
fn capacity_two_admits_two_concurrent_holders() {
    let outcome = run(2, [0, 0, 0]);
    assert_eq!(outcome.metrics.completed(), 3);
    // Only the third job finds both units taken.
    assert_eq!(outcome.metrics.blockings(), 1);
}

#[test]
fn capacity_three_never_blocks() {
    let outcome = run(3, [0, 0, 0]);
    assert_eq!(outcome.metrics.completed(), 3);
    assert_eq!(outcome.metrics.blockings(), 0);
}

#[test]
fn unit_release_wakes_exactly_when_a_unit_frees() {
    // Capacity 2, staggered arrivals: a(0) and b(100) hold both units;
    // c(200) blocks until a releases at t=1000, then holds 1000 ticks.
    let outcome = run(2, [0, 100, 200]);
    assert_eq!(outcome.metrics.completed(), 3);
    let c = outcome
        .records
        .iter()
        .find(|r| r.task.index() == 2)
        .expect("ran");
    assert_eq!(c.blockings, 1);
    assert_eq!(
        c.resolved_at, 2_000,
        "woken at a's release (1000) + 1000 hold"
    );
}
