//! **Uncontended single-thread cost per operation** — the numbers the CI
//! perf-regression gate watches.
//!
//! One thread drives each lock-free structure through push/pop (or
//! insert/remove) pairs in timed batches; the per-op figure for a batch is
//! `batch wall time / ops in batch`, and the reported value is the median
//! across batches — robust against a descheduled batch on a noisy runner.
//! Uncontended cost is the one latency that is stable on a 1-CPU CI box
//! (contended behavior needs real parallelism to mean anything), which is
//! why exactly these medians feed `compare_reports` / `BENCH_baseline.json`.
//!
//! All measured values live under each point's `timing` section: they are
//! host wall-clock, excluded from the deterministic payload by design.
//!
//! The `stack`/`queue` rows use the pooled node mode (PR 9); `stack_boxed`
//! and `queue_boxed` run the same loops on the allocate/free passthrough
//! baseline, so the pool's per-op win is a same-binary diff.
//! `--assert-pooled-faster` exits 1 if a pooled median exceeds its boxed
//! twin by more than [`POOLED_TOLERANCE`] (the CI regression tripwire for
//! the pool hot path). The few-ns margin the pool wins by sits inside
//! shared-runner noise, so a strict `pooled < boxed` gate would flake; the
//! tolerance keeps the gate meaningful (a lost win shows up as a clear
//! inversion, not a 2% wobble) while the *hard* steady-state guarantee —
//! allocs/op ≈ 0 — is asserted exactly by the churn leak-smoke step.
//!
//! The `stack_elim` and `mpmc_sharded` rows run the contention-adaptive
//! layer (elimination-backoff stack, sharded MPMC) through the same
//! single-thread loops: uncontended, the elimination array is never
//! entered (first CAS succeeds) and the shard scan always hits the home
//! shard, so these rows must track `stack`/`mpmc` within noise.
//! `--assert-contention-layer` gates exactly that (the layer must be free
//! when there is no contention to adapt to).
//!
//! Usage: `cargo run -p lfrt-bench --release --bin uncontended_ops --
//! [--batches 30] [--ops 20000] [--quick] [--assert-pooled-faster]
//! [--assert-contention-layer] [--json <path>] [--trace <path>]`

use std::time::Instant;

use lfrt_bench::json::{self, Point, Report};
use lfrt_bench::{trace, Args};
use lfrt_lockfree::{
    spsc_ring, BoundedMpmcQueue, LockFreeList, LockFreeQueue, ShardedMpmcQueue, TreiberStack,
};

/// Slack for `--assert-pooled-faster`: a pooled median may sit up to this
/// fraction above its boxed twin before the gate fails. The pool's win is a
/// few ns/op — real, but within shared-CI-runner noise — so the gate only
/// flags genuine inversions; exact allocs/op enforcement lives in the
/// leak-smoke step.
const POOLED_TOLERANCE: f64 = 0.05;

/// Slack for `--assert-contention-layer`: the elimination stack and the
/// sharded queue may cost up to this fraction more than their plain
/// counterparts on the uncontended path. The layers are designed to be
/// byte-identical there (elimination is only entered after a failed CAS;
/// the home-shard hit is one hash + mask), so anything beyond noise means
/// the fast path grew a toll.
const CONTENTION_TOLERANCE: f64 = 0.05;

/// Times `batches` runs of `op_pair` (one push+pop round trip per call)
/// and returns ns/op samples, counting 2 ops per pair.
fn measure(batches: usize, ops_per_batch: usize, mut op_pair: impl FnMut(u64)) -> Vec<f64> {
    let mut samples = Vec::with_capacity(batches);
    for batch in 0..batches {
        let start = Instant::now();
        for i in 0..ops_per_batch {
            op_pair((batch * ops_per_batch + i) as u64);
        }
        let nanos = start.elapsed().as_nanos() as f64;
        samples.push(nanos / (2.0 * ops_per_batch as f64));
    }
    samples
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let mid = samples.len() / 2;
    if samples.len().is_multiple_of(2) {
        (samples[mid - 1] + samples[mid]) / 2.0
    } else {
        samples[mid]
    }
}

fn main() {
    let args = Args::from_env();
    let quick = args.quick();
    let trace = trace::Session::from_args(&args, "uncontended_ops");
    let started = Instant::now();

    let batches = args.get_usize("batches", if quick { 10 } else { 30 });
    let ops = args.get_usize("ops", if quick { 5_000 } else { 20_000 });

    println!("# Uncontended per-op cost (1 thread, median of {batches} batches x {ops} pairs)");

    let stack = TreiberStack::new();
    let stack_boxed = TreiberStack::new_boxed();
    let stack_elim = TreiberStack::with_elimination();
    let queue = LockFreeQueue::new();
    let queue_boxed = LockFreeQueue::new_boxed();
    let mpmc = BoundedMpmcQueue::new(1024);
    let mpmc_sharded = ShardedMpmcQueue::with_default_shards(1024);
    let (mut producer, mut consumer) = spsc_ring(1024);
    let list = LockFreeList::new();

    let structures: Vec<(&str, Vec<f64>)> = vec![
        (
            "stack",
            measure(batches, ops, |i| {
                stack.push(i);
                let _ = stack.pop();
            }),
        ),
        (
            "stack_boxed",
            measure(batches, ops, |i| {
                stack_boxed.push(i);
                let _ = stack_boxed.pop();
            }),
        ),
        (
            "queue",
            measure(batches, ops, |i| {
                queue.enqueue(i);
                let _ = queue.dequeue();
            }),
        ),
        (
            "queue_boxed",
            measure(batches, ops, |i| {
                queue_boxed.enqueue(i);
                let _ = queue_boxed.dequeue();
            }),
        ),
        (
            "stack_elim",
            measure(batches, ops, |i| {
                stack_elim.push(i);
                let _ = stack_elim.pop();
            }),
        ),
        (
            "mpmc",
            measure(batches, ops, |i| {
                let _ = mpmc.push(i);
                let _ = mpmc.pop();
            }),
        ),
        (
            "mpmc_sharded",
            measure(batches, ops, |i| {
                let _ = mpmc_sharded.push(i);
                let _ = mpmc_sharded.pop();
            }),
        ),
        (
            "spsc_ring",
            measure(batches, ops, |i| {
                let _ = producer.push(i);
                let _ = consumer.pop();
            }),
        ),
        // Keep the list short (key space = 64) so this measures CAS cost,
        // not O(n) traversal of an ever-growing list.
        (
            "list",
            measure(batches, ops, |i| {
                let _ = list.insert(i % 64);
                let _ = list.remove(i % 64);
            }),
        ),
    ];

    let mut report = Report::new(
        "uncontended_ops",
        "table:uncontended",
        "Single-thread ns/op medians gated by compare_reports",
    )
    .config("batches", batches)
    .config("ops_per_batch", ops);

    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "structure", "median", "min", "max"
    );
    let mut medians: Vec<(&str, f64)> = Vec::new();
    for (name, mut samples) in structures {
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let med = median(&mut samples);
        medians.push((name, med));
        println!("{name:<12} {med:>10.1} {min:>10.1} {max:>10.1}   ns/op");
        report.points.push(Point {
            params: vec![("structure".into(), name.into())],
            timing: vec![
                ("ns_per_op_median".into(), med.into()),
                ("ns_per_op_min".into(), min.into()),
                ("ns_per_op_max".into(), max.into()),
                ("batches".into(), batches.into()),
                ("ops_per_batch".into(), ops.into()),
            ],
            ..Default::default()
        });
    }

    if let Some(path) = args.json_path() {
        let meta = json::RunMeta::capture(args.threads(), quick);
        json::write_reports(&path, &[report], meta, started).expect("write json report");
    } else {
        // Still exercise the renderer so the table and JSON can't drift.
        let _ = report.to_json();
    }
    trace.finish(args.threads(), quick);

    let med = |name: &str| {
        medians
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, m)| *m)
            .expect("structure measured")
    };

    if args.get_bool("assert-contention-layer") {
        let mut failed = false;
        for (layered, plain) in [("stack_elim", "stack"), ("mpmc_sharded", "mpmc")] {
            let (l, p) = (med(layered), med(plain));
            if l <= p * (1.0 + CONTENTION_TOLERANCE) {
                println!(
                    "OK: {layered} {l:.1} ns/op within {:.0}% of {plain} {p:.1} ns/op uncontended",
                    CONTENTION_TOLERANCE * 100.0
                );
            } else {
                eprintln!(
                    "FAIL: {layered} {l:.1} ns/op is more than {:.0}% above {plain} {p:.1} ns/op \
                     — the contention layer now taxes the uncontended path",
                    CONTENTION_TOLERANCE * 100.0
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }

    if args.get_bool("assert-pooled-faster") {
        let mut failed = false;
        for (pooled, boxed) in [("stack", "stack_boxed"), ("queue", "queue_boxed")] {
            let (p, b) = (med(pooled), med(boxed));
            if p < b {
                println!("OK: {pooled} {p:.1} ns/op beats {boxed} {b:.1} ns/op");
            } else if p <= b * (1.0 + POOLED_TOLERANCE) {
                println!(
                    "OK (within {:.0}% tolerance): {pooled} {p:.1} ns/op vs {boxed} {b:.1} ns/op \
                     — inside shared-runner noise, not a lost win",
                    POOLED_TOLERANCE * 100.0
                );
            } else {
                eprintln!(
                    "FAIL: {pooled} {p:.1} ns/op is more than {:.0}% above {boxed} {b:.1} ns/op \
                     — the node pool lost its uncontended win",
                    POOLED_TOLERANCE * 100.0
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
