//! §4.1 of the paper: the preemption taxonomy of scheduler classes
//! (static / job-level dynamic / fully dynamic), Figure 6's mutual
//! preemption, and Lemma 1's bound of preemptions by scheduling events.

use lfrt_core::{Edf, Llf, Rm, RuaLockFree};
use lfrt_sim::{Engine, Segment, SharingMode, SimConfig, SimOutcome, TaskSpec, UaScheduler};
use lfrt_tuf::Tuf;
use lfrt_uam::{ArrivalTrace, Uam};

fn compute_task(name: &str, critical: u64, window: u64, compute: u64) -> TaskSpec {
    TaskSpec::builder(name)
        .tuf(Tuf::step(1.0, critical).expect("valid tuf"))
        .uam(Uam::periodic(window))
        .segments(vec![Segment::Compute(compute)])
        .build()
        .expect("valid task")
}

/// Two long jobs with nearly equal laxities plus a stream of tiny jobs whose
/// arrivals create scheduling events. Under a fully-dynamic discipline (LLF)
/// the two long jobs keep overtaking each other at every event — the mutual
/// preemption of Figure 6. Under EDF (job-level dynamic) their order is
/// fixed at release and they never swap.
fn figure6_scenario<S: UaScheduler>(scheduler: S) -> SimOutcome {
    let long_a = compute_task("long-a", 40_000, 1_000_000, 9_000);
    let long_b = compute_task("long-b", 40_100, 1_000_000, 9_000);
    let ticker = compute_task("ticker", 900, 1_000, 10);
    let tick_arrivals: Vec<u64> = (1..30).map(|k| k * 1_000).collect();
    Engine::new(
        vec![long_a, long_b, ticker],
        vec![
            ArrivalTrace::new(vec![0]),
            ArrivalTrace::new(vec![0]),
            ArrivalTrace::new(tick_arrivals),
        ],
        SimConfig::new(SharingMode::Ideal),
    )
    .expect("valid engine")
    .run(scheduler)
}

fn long_job_preemptions(outcome: &SimOutcome) -> u64 {
    outcome
        .records
        .iter()
        .filter(|r| r.task.index() < 2)
        .map(|r| r.preemptions)
        .sum()
}

#[test]
fn figure6_llf_mutually_preempts_edf_does_not() {
    let llf = figure6_scenario(Llf::new());
    let edf = figure6_scenario(Edf::new());
    assert_eq!(llf.metrics.completed(), edf.metrics.completed());
    assert!(long_job_preemptions(&llf) > 0);
    let completion = |outcome: &SimOutcome, task: usize| {
        outcome
            .records
            .iter()
            .find(|r| r.task.index() == task)
            .expect("long job resolved")
            .resolved_at
    };
    // EDF fixes the order at release: long-a (earlier deadline) finishes
    // completely before long-b executes a single tick.
    let (edf_a, edf_b) = (completion(&edf, 0), completion(&edf, 1));
    assert!(edf_b > edf_a + 8_000, "EDF serializes the long jobs");
    // LLF's laxities cross at every scheduling event, so the two jobs
    // ping-pong (Figure 6) and finish nearly together — and long-a finishes
    // far later than it would under EDF.
    let (llf_a, llf_b) = (completion(&llf, 0), completion(&llf, 1));
    assert!(
        llf_a > edf_a + 5_000,
        "mutual preemption must delay long-a: llf {llf_a} vs edf {edf_a}"
    );
    assert!(
        llf_a.abs_diff(llf_b) < 3_000,
        "ping-ponging jobs finish together: {llf_a} vs {llf_b}"
    );
}

#[test]
fn lemma1_preemptions_bounded_by_scheduling_events() {
    // Lemma 1: a job scheduled by a UA scheduler is preempted at most as
    // many times as the scheduler is invoked. Check the aggregate (which
    // dominates the per-job statement) on a random bursty workload, for
    // every fully-dynamic discipline we ship.
    let spec = lfrt_sim::workload::WorkloadSpec {
        target_load: 0.9,
        ..lfrt_sim::workload::WorkloadSpec::paper_baseline(21)
    };
    let run = |sched: &str| -> SimOutcome {
        let (tasks, traces) = spec.build().expect("valid workload");
        let engine = Engine::new(
            tasks,
            traces,
            SimConfig::new(SharingMode::LockFree { access_ticks: 10 }),
        )
        .expect("valid engine");
        match sched {
            "rua" => engine.run(RuaLockFree::new()),
            "llf" => engine.run(Llf::new()),
            _ => engine.run(Edf::new()),
        }
    };
    for sched in ["rua", "llf", "edf"] {
        let outcome = run(sched);
        assert!(
            outcome.metrics.preemptions() <= outcome.metrics.sched_invocations,
            "{sched}: {} preemptions > {} scheduler invocations",
            outcome.metrics.preemptions(),
            outcome.metrics.sched_invocations
        );
        assert!(
            outcome.metrics.preemptions() > 0,
            "{sched}: workload must preempt"
        );
    }
}

#[test]
fn rm_preemptions_bounded_by_higher_priority_releases() {
    // Static priorities: a job can only be preempted by releases of
    // higher-priority (shorter-window) tasks, so total preemptions are
    // bounded by total releases of the highest-rate task.
    let fast = compute_task("fast", 900, 1_000, 100);
    let slow = compute_task("slow", 9_000, 10_000, 3_000);
    let outcome = Engine::new(
        vec![fast, slow],
        vec![
            ArrivalTrace::new((0..50).map(|k| 500 + k * 1_000).collect()),
            ArrivalTrace::new((0..5).map(|k| k * 10_000).collect()),
        ],
        SimConfig::new(SharingMode::Ideal),
    )
    .expect("valid engine")
    .run(Rm::new());
    assert_eq!(
        outcome.metrics.completed(),
        55,
        "underloaded RM meets everything"
    );
    let slow_preemptions: u64 = outcome
        .records
        .iter()
        .filter(|r| r.task.index() == 1)
        .map(|r| r.preemptions)
        .sum();
    // 50 fast releases is the hard ceiling; each slow job (3 ms) overlaps
    // at most 4 fast windows, so 5 jobs see at most 20.
    assert!(slow_preemptions > 0);
    assert!(
        slow_preemptions <= 20,
        "static priorities: got {slow_preemptions}"
    );
    // And the fast task, being highest priority, is never preempted.
    let fast_preemptions: u64 = outcome
        .records
        .iter()
        .filter(|r| r.task.index() == 0)
        .map(|r| r.preemptions)
        .sum();
    assert_eq!(fast_preemptions, 0);
}

#[test]
fn edf_job_level_dynamic_no_mutual_preemption_between_two_jobs() {
    // Two jobs alone: under EDF the earlier-deadline job runs to completion
    // first; at most one preemption total can occur (at the second arrival).
    let a = compute_task("a", 5_000, 100_000, 2_000);
    let b = compute_task("b", 4_000, 100_000, 1_000);
    let outcome = Engine::new(
        vec![a, b],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![500])],
        SimConfig::new(SharingMode::Ideal),
    )
    .expect("valid engine")
    .run(Edf::new());
    assert_eq!(outcome.metrics.completed(), 2);
    assert!(outcome.metrics.preemptions() <= 1);
}
