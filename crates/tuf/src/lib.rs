//! Time/utility functions (TUFs) for utility-accrual real-time scheduling.
//!
//! A *time/utility function* (Jensen, Locke, Tokuda — RTSS'85) expresses the
//! utility of completing an activity as a function of its completion time.
//! Classic deadlines are the special case of a binary-valued, downward "step"
//! TUF. This crate provides the TUF shapes used in the evaluation of
//! *Lock-Free Synchronization for Dynamic Embedded Real-Time Systems*
//! (Cho, Ravindran, Jensen — DATE 2006): step, linearly-decreasing,
//! parabolic, and arbitrary piecewise-linear functions.
//!
//! Every TUF has a single *critical time* `C`: the time at which the function
//! drops to zero utility, and after which it stays at zero. Time is measured
//! in integer ticks **relative to the activity's arrival** (i.e. the argument
//! of [`Tuf::utility`] is the activity's sojourn time).
//!
//! # Examples
//!
//! ```
//! use lfrt_tuf::Tuf;
//!
//! # fn main() -> Result<(), lfrt_tuf::TufError> {
//! // A classic deadline at t = 100 with unit utility.
//! let deadline = Tuf::step(1.0, 100)?;
//! assert_eq!(deadline.utility(99), 1.0);
//! assert_eq!(deadline.utility(100), 0.0);
//!
//! // Utility decays linearly from 10 to 0 over the first 50 ticks.
//! let linear = Tuf::linear_decreasing(10.0, 50)?;
//! assert_eq!(linear.utility(25), 5.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod shape;
mod tuf;

pub use error::TufError;
pub use shape::TufShape;
pub use tuf::Tuf;
