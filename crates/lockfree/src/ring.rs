use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::utils::CachePadded;

/// Creates a bounded single-producer/single-consumer ring of the given
/// capacity, split into its two endpoints.
///
/// Both operations are **wait-free**: a push or pop completes in a constant
/// number of steps with no retry loop at all — the strongest non-blocking
/// guarantee the paper's §1.1 taxonomy discusses, achievable here because
/// each index has exactly one writer. Bounded rings like this are the
/// bread-and-butter of embedded ISR-to-task communication.
///
/// The index protocol is mirrored step for step by `lfrt-interleave`'s
/// `ModelSpscRing`, checked linearizable over its exhaustive small-bound
/// schedule space in `crates/interleave` and `tests/interleavings.rs`.
///
/// The usable capacity is `capacity` elements (one extra internal slot
/// distinguishes full from empty).
///
/// # Panics
///
/// Panics if `capacity` is zero.
///
/// # Examples
///
/// ```
/// use lfrt_lockfree::spsc_ring;
///
/// let (mut tx, mut rx) = spsc_ring(2);
/// assert!(tx.push(1).is_ok());
/// assert!(tx.push(2).is_ok());
/// assert_eq!(tx.push(3), Err(3)); // full
/// assert_eq!(rx.pop(), Some(1));
/// assert_eq!(rx.pop(), Some(2));
/// assert_eq!(rx.pop(), None);
/// ```
pub fn spsc_ring<T: Send>(capacity: usize) -> (RingProducer<T>, RingConsumer<T>) {
    assert!(capacity > 0, "capacity must be positive");
    let slots = capacity + 1;
    let shared = Arc::new(Shared {
        buffer: (0..slots)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect(),
        head: CachePadded::new(AtomicUsize::new(0)),
        tail: CachePadded::new(AtomicUsize::new(0)),
    });
    (
        RingProducer {
            shared: Arc::clone(&shared),
        },
        RingConsumer { shared },
    )
}

struct Shared<T> {
    buffer: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot to pop (owned by the consumer). Padded onto its own cache
    /// line: the producer re-reads `head` on every push, and an unpadded
    /// pair would put the consumer's store and the producer's store on the
    /// same line — steady-state SPSC streaming would then ping-pong that
    /// line on every element instead of only when an index is re-read.
    head: CachePadded<AtomicUsize>,
    /// Next slot to push (owned by the producer); padded likewise.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: head is written only by the consumer, tail only by the producer;
// each slot is accessed by exactly one side at a time under the index
// protocol; `T: Send` lets elements cross threads.
unsafe impl<T: Send> Sync for Shared<T> {}
// SAFETY: as above.
unsafe impl<T: Send> Send for Shared<T> {}

impl<T> Shared<T> {
    fn next(&self, i: usize) -> usize {
        (i + 1) % self.buffer.len()
    }
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Drain remaining initialized elements.
        let mut head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        while head != tail {
            // SAFETY: slots in [head, tail) hold initialized values that no
            // endpoint will touch again (both handles are gone).
            unsafe { (*self.buffer[head].get()).assume_init_drop() };
            head = (head + 1) % self.buffer.len();
        }
    }
}

/// The producing endpoint of an SPSC ring. `!Clone`: single producer by
/// construction.
pub struct RingProducer<T> {
    shared: Arc<Shared<T>>,
}

impl<T: Send> RingProducer<T> {
    /// Appends `value`, or returns it back if the ring is full. Wait-free.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` when the ring is full.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        // Wait-free: no retry loop, so the trace guard only ever records a
        // zero-retry completion (its latency).
        let trace = lfrt_trace::CasOp::start(lfrt_trace::Site::RingPush);
        let shared = &*self.shared;
        let tail = shared.tail.load(Ordering::Relaxed);
        let next = shared.next(tail);
        if next == shared.head.load(Ordering::Acquire) {
            trace.success(); // completed: observed full
            return Err(value);
        }
        // SAFETY: slot `tail` is outside [head, tail), so the consumer will
        // not read it until the store below publishes it.
        unsafe { (*shared.buffer[tail].get()).write(value) };
        shared.tail.store(next, Ordering::Release);
        trace.success();
        Ok(())
    }

    /// Whether a push would currently fail.
    pub fn is_full(&self) -> bool {
        let shared = &*self.shared;
        shared.next(shared.tail.load(Ordering::Relaxed)) == shared.head.load(Ordering::Acquire)
    }
}

impl<T> fmt::Debug for RingProducer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RingProducer").finish_non_exhaustive()
    }
}

/// The consuming endpoint of an SPSC ring. `!Clone`: single consumer by
/// construction.
pub struct RingConsumer<T> {
    shared: Arc<Shared<T>>,
}

impl<T: Send> RingConsumer<T> {
    /// Removes the oldest element, or `None` if the ring is empty.
    /// Wait-free.
    pub fn pop(&mut self) -> Option<T> {
        let trace = lfrt_trace::CasOp::start(lfrt_trace::Site::RingPop);
        let shared = &*self.shared;
        let head = shared.head.load(Ordering::Relaxed);
        if head == shared.tail.load(Ordering::Acquire) {
            trace.success(); // completed: observed empty
            return None;
        }
        // SAFETY: slot `head` is inside [head, tail): initialized by the
        // producer and published by its Release store; the producer will not
        // reuse it until our store below frees it.
        let value = unsafe { (*shared.buffer[head].get()).assume_init_read() };
        shared.head.store(shared.next(head), Ordering::Release);
        trace.success();
        Some(value)
    }

    /// Whether a pop would currently return `None`.
    pub fn is_empty(&self) -> bool {
        let shared = &*self.shared;
        shared.head.load(Ordering::Relaxed) == shared.tail.load(Ordering::Acquire)
    }
}

impl<T> fmt::Debug for RingConsumer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RingConsumer").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_until_full() {
        let (mut tx, mut rx) = spsc_ring(3);
        assert!(tx.push(1).is_ok());
        assert!(tx.push(2).is_ok());
        assert!(tx.push(3).is_ok());
        assert!(tx.is_full());
        assert_eq!(tx.push(4), Err(4));
        assert_eq!(rx.pop(), Some(1));
        assert!(tx.push(4).is_ok(), "slot freed");
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(3));
        assert_eq!(rx.pop(), Some(4));
        assert_eq!(rx.pop(), None);
        assert!(rx.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = spsc_ring::<u8>(0);
    }

    #[test]
    fn drop_frees_unconsumed_elements() {
        let (mut tx, rx) = spsc_ring(8);
        for i in 0..5 {
            tx.push(Box::new(i)).expect("room");
        }
        drop(tx);
        drop(rx); // remaining boxes freed exactly once
    }

    #[test]
    fn cross_thread_stream_preserves_order_and_content() {
        const N: u64 = 30_000;
        let (mut tx, mut rx) = spsc_ring(64);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                loop {
                    match tx.push(i) {
                        Ok(()) => break,
                        Err(_) => std::hint::spin_loop(),
                    }
                }
            }
        });
        let mut expected = 0;
        while expected < N {
            if let Some(v) = rx.pop() {
                assert_eq!(v, expected, "order violated");
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().expect("producer panicked");
        assert!(rx.is_empty());
    }

    #[test]
    fn capacity_one_alternates() {
        let (mut tx, mut rx) = spsc_ring(1);
        for i in 0..10 {
            assert!(tx.push(i).is_ok());
            assert_eq!(tx.push(99), Err(99));
            assert_eq!(rx.pop(), Some(i));
        }
    }
}
