//! The scheduler interface: what a utility-accrual scheduler sees at each
//! scheduling event, and what it must decide.

use lfrt_tuf::Tuf;

use crate::ids::{JobId, ObjectId, TaskId};
use crate::{SimTime, Ticks};

/// A scheduler's read-only view of one live job.
#[derive(Debug, Clone)]
pub struct JobView<'a> {
    /// The job's identity.
    pub id: JobId,
    /// The releasing task.
    pub task: TaskId,
    /// Arrival time.
    pub arrival: SimTime,
    /// Absolute critical time (`arrival + C_i`).
    pub absolute_critical_time: SimTime,
    /// The releasing task's UAM window `W_i` (static-priority baselines
    /// such as rate-monotonic order by it).
    pub window: Ticks,
    /// The job's time/utility function.
    pub tuf: &'a Tuf,
    /// Nominal remaining execution time (the scheduler's estimate).
    pub remaining: Ticks,
    /// The object this job is blocked on, if any (lock-based only).
    pub blocked_on: Option<ObjectId>,
    /// The objects this job holds locks on (lock-based only; more than one
    /// only with explicit nested critical sections).
    pub holds: Vec<ObjectId>,
}

/// Everything a scheduler sees when invoked.
///
/// Dependencies are derivable: a job with `blocked_on = Some(o)` depends on
/// the job whose `holds == Some(o)` — see [`SchedulerContext::holder_of`].
#[derive(Debug, Clone)]
pub struct SchedulerContext<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// All live jobs (ready and blocked), in job-id order.
    pub jobs: Vec<JobView<'a>>,
}

impl<'a> SchedulerContext<'a> {
    /// Looks up a job view by id.
    pub fn job(&self, id: JobId) -> Option<&JobView<'a>> {
        self.jobs.iter().find(|j| j.id == id)
    }

    /// The job currently holding the lock on `object`, if any.
    pub fn holder_of(&self, object: ObjectId) -> Option<JobId> {
        self.jobs
            .iter()
            .find(|j| j.holds.contains(&object))
            .map(|j| j.id)
    }
}

/// A scheduler's decision: the constructed schedule plus a cost receipt.
#[derive(Debug, Clone, Default)]
pub struct Decision {
    /// The schedule, head first. The engine dispatches the first *runnable*
    /// job in this order; jobs omitted here simply do not run now (RUA's
    /// "rejected" jobs — they may still run after a later event).
    pub order: Vec<JobId>,
    /// Abstract operation count of this invocation, charged as processor
    /// time by the [`OverheadModel`](crate::OverheadModel).
    pub ops: u64,
    /// Jobs the scheduler asks the engine to abort immediately — RUA's
    /// deadlock resolution (§3.3 of the paper): the abort-exception handler
    /// runs, rolls the victim back, and releases its locks.
    pub aborts: Vec<JobId>,
}

/// A utility-accrual (or baseline) scheduler.
///
/// The engine invokes [`UaScheduler::schedule`] at every scheduling event:
/// job arrivals, job departures (completion or abort), and — when the
/// sharing mode is lock-based — lock and unlock requests.
pub trait UaScheduler {
    /// A short name for reports (e.g. `"rua-lockfree"`).
    fn name(&self) -> &str;

    /// Constructs a schedule for the current situation.
    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Decision;
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfrt_tuf::Tuf;

    #[test]
    fn holder_lookup() {
        let tuf = Tuf::step(1.0, 100).expect("valid");
        let mk = |id: usize, holds: Option<usize>, blocked: Option<usize>| JobView {
            id: JobId::new(id),
            task: TaskId::new(0),
            arrival: 0,
            absolute_critical_time: 100,
            window: 100,
            tuf: &tuf,
            remaining: 10,
            blocked_on: blocked.map(ObjectId::new),
            holds: holds.map(ObjectId::new).into_iter().collect(),
        };
        let ctx = SchedulerContext {
            now: 0,
            jobs: vec![mk(0, Some(5), None), mk(1, None, Some(5))],
        };
        assert_eq!(ctx.holder_of(ObjectId::new(5)), Some(JobId::new(0)));
        assert_eq!(ctx.holder_of(ObjectId::new(6)), None);
        assert!(ctx.job(JobId::new(1)).is_some());
        assert!(ctx.job(JobId::new(9)).is_none());
    }
}
