//! Property-based tests for the UAM model, checkers, and generators.

use lfrt_uam::{
    ArrivalGenerator, ArrivalTrace, BackToBackBurst, FrontLoadedArrivals, PeriodicArrivals,
    RandomUamArrivals, Uam,
};
use proptest::prelude::*;

fn arb_uam() -> impl Strategy<Value = Uam> {
    (0u32..4, 1u32..8, 1u64..2_000).prop_map(|(l, a_extra, w)| {
        let a = l + a_extra;
        Uam::new(l, a, w).expect("valid uam")
    })
}

proptest! {
    /// The closed-form interval bound dominates any conformant trace's count.
    #[test]
    fn interval_bound_dominates_conformant_traces(
        uam in arb_uam(),
        seed in 0u64..50,
        start in 0u64..10_000,
        len in 1u64..10_000,
    ) {
        let horizon = 30_000;
        let trace = RandomUamArrivals::new(uam, seed).with_intensity(4.0).generate(horizon);
        prop_assert!(trace.conforms_to(&uam).is_ok());
        let observed = trace.count_in(start, start + len) as u64;
        prop_assert!(observed <= uam.max_arrivals_in(len),
            "observed {} > bound {}", observed, uam.max_arrivals_in(len));
    }

    /// Sliding conformance implies consecutive-window conformance.
    #[test]
    fn sliding_implies_consecutive(
        times in proptest::collection::vec(0u64..5_000, 0..100),
        a in 1u32..6,
        w in 1u64..500,
    ) {
        let uam = Uam::new(0, a, w).expect("valid");
        let trace = ArrivalTrace::new(times);
        if trace.conforms_sliding(&uam).is_ok() {
            prop_assert!(trace.conforms_to(&uam).is_ok());
        }
    }

    /// Periodic traces conform to the periodic UAM under both checkers.
    #[test]
    fn periodic_conforms(period in 1u64..1_000, horizon in 1u64..50_000) {
        let trace = PeriodicArrivals::new(period).generate(horizon);
        let uam = Uam::periodic(period);
        prop_assert!(trace.conforms_to(&uam).is_ok());
        prop_assert!(trace.conforms_sliding(&uam).is_ok());
    }

    /// Front-loaded traces are conformant and realise the per-window maximum.
    #[test]
    fn front_loaded_is_maximal(uam in arb_uam(), windows in 1u64..50) {
        let horizon = uam.window() * windows;
        let trace = FrontLoadedArrivals::new(uam).generate(horizon);
        prop_assert!(trace.conforms_to(&uam).is_ok());
        prop_assert_eq!(trace.len() as u64, u64::from(uam.max_arrivals()) * windows);
    }

    /// Back-to-back burst traces are conformant (consecutive windows) and
    /// produce the dense 2a pattern whenever the horizon is long enough.
    #[test]
    fn back_to_back_conforms(uam in arb_uam(), windows in 2u64..50) {
        let horizon = uam.window() * windows + 1;
        let trace = BackToBackBurst::new(uam).generate(horizon);
        prop_assert!(trace.conforms_to(&uam).is_ok());
        let w = uam.window();
        let dense = trace.count_in(w.saturating_sub(1), w + 1) as u64;
        prop_assert_eq!(dense, 2 * u64::from(uam.max_arrivals()));
    }

    /// Random generator output is always conformant regardless of intensity.
    #[test]
    fn random_always_conformant(uam in arb_uam(), seed in 0u64..20, intensity in 1u32..10) {
        let trace = RandomUamArrivals::new(uam, seed)
            .with_intensity(f64::from(intensity))
            .generate(20_000);
        prop_assert!(trace.conforms_to(&uam).is_ok());
        prop_assert!(trace.conforms_sliding(&uam).is_ok());
    }

    /// A fitted model always admits the trace it was fitted to, and no
    /// strictly tighter `a` does.
    #[test]
    fn fitted_model_is_tight(
        times in proptest::collection::vec(0u64..5_000, 1..100),
        w in 1u64..500,
    ) {
        let trace = ArrivalTrace::new(times);
        let fitted = Uam::fit(&trace, w, 5_000).expect("non-empty trace");
        prop_assert!(trace.conforms_to(&fitted).is_ok());
        if fitted.max_arrivals() > 1 {
            let tighter = Uam::new(0, fitted.max_arrivals() - 1, w).expect("valid");
            prop_assert!(trace.conforms_to(&tighter).is_err(), "a is minimal");
        }
    }

    /// fit_best returns the minimal-rate model among the candidates, and it
    /// always admits the trace.
    #[test]
    fn fit_best_minimizes_rate(
        times in proptest::collection::vec(0u64..5_000, 1..80),
        windows in proptest::collection::vec(1u64..800, 1..6),
    ) {
        let trace = ArrivalTrace::new(times);
        let best = Uam::fit_best(&trace, &windows, 5_000).expect("non-empty");
        prop_assert!(trace.conforms_to(&best).is_ok());
        for &w in &windows {
            let fitted = Uam::fit(&trace, w, 5_000).expect("non-empty");
            prop_assert!(best.max_rate() <= fitted.max_rate() + 1e-12);
        }
    }

    /// count_in partitions: counts over adjacent intervals add up.
    #[test]
    fn count_in_is_additive(
        times in proptest::collection::vec(0u64..10_000, 0..200),
        a in 0u64..10_000,
        b in 0u64..10_000,
        c in 0u64..10_000,
    ) {
        let mut cuts = [a, b, c];
        cuts.sort_unstable();
        let trace = ArrivalTrace::new(times);
        let whole = trace.count_in(cuts[0], cuts[2]);
        let parts = trace.count_in(cuts[0], cuts[1]) + trace.count_in(cuts[1], cuts[2]);
        prop_assert_eq!(whole, parts);
    }
}
