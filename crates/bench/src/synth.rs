//! Synthetic scheduler contexts for the scheduling-cost ablations (§3.6 /
//! §5 of the paper): job populations of controllable size and dependency
//! structure, independent of any simulation run.

use lfrt_sim::{JobId, JobView, ObjectId, SchedulerContext, TaskId};
use lfrt_tuf::Tuf;

/// Owns the TUF storage that a [`SchedulerContext`] borrows from.
#[derive(Debug)]
pub struct SyntheticWorkload {
    tufs: Vec<Tuf>,
}

impl SyntheticWorkload {
    /// Creates storage for populations up to `max_jobs` jobs, with utilities
    /// and critical times varied deterministically.
    pub fn new(max_jobs: usize) -> Self {
        let tufs = (0..max_jobs)
            .map(|i| {
                Tuf::step(1.0 + (i % 10) as f64, 10_000 + 997 * i as u64)
                    .expect("positive critical time")
            })
            .collect();
        Self { tufs }
    }

    /// A context of `n` independent jobs (no blocking) — the lock-free RUA
    /// population.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the capacity given at construction.
    pub fn independent(&self, n: usize) -> SchedulerContext<'_> {
        SchedulerContext {
            now: 0,
            jobs: (0..n).map(|i| self.view(i, None, None)).collect(),
        }
    }

    /// A context of `n` jobs forming blocking chains of length
    /// `chain_length`: within each chain, job `k` holds object `k` and is
    /// blocked on object `k+1` (held by job `k+1`); the last job of the
    /// chain runs free. This is the worst-case dependency structure that
    /// drives lock-based RUA's `O(n² log n)` cost.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds capacity or `chain_length` is zero.
    pub fn chained(&self, n: usize, chain_length: usize) -> SchedulerContext<'_> {
        assert!(chain_length > 0, "chains need at least one job");
        let jobs = (0..n)
            .map(|i| {
                let pos_in_chain = i % chain_length;
                let is_chain_tail = pos_in_chain == chain_length - 1 || i == n - 1;
                let holds = if pos_in_chain > 0 { Some(i) } else { None };
                let blocked_on = if is_chain_tail { None } else { Some(i + 1) };
                self.view(i, blocked_on, holds)
            })
            .collect();
        SchedulerContext { now: 0, jobs }
    }

    /// Like [`SyntheticWorkload::chained`], but with critical times so tight
    /// that most insertions fail the feasibility test. Rejected jobs are
    /// re-examined with their own chains instead of being skipped as
    /// already-scheduled dependents, which drives lock-based RUA toward its
    /// §3.6 worst case.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds capacity or `chain_length` is zero.
    pub fn tight_chained(&self, n: usize, chain_length: usize) -> SchedulerContext<'_> {
        let mut ctx = self.chained(n, chain_length);
        for (rank, job) in ctx.jobs.iter_mut().enumerate() {
            // Only a couple of jobs fit; everyone else is infeasible where
            // inserted and gets rejected.
            job.absolute_critical_time = 150 + (rank as u64 % 7) * 40;
        }
        ctx
    }

    fn view(&self, i: usize, blocked_on: Option<usize>, holds: Option<usize>) -> JobView<'_> {
        let tuf = &self.tufs[i];
        JobView {
            id: JobId::new(i),
            task: TaskId::new(i % 10),
            arrival: (i as u64) * 13 % 1_000,
            absolute_critical_time: tuf.critical_time() + (i as u64) * 13 % 1_000,
            window: tuf.critical_time(),
            tuf,
            remaining: 100 + (i as u64 * 37) % 400,
            blocked_on: blocked_on.map(ObjectId::new),
            holds: holds.map(ObjectId::new).into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_population_has_no_dependencies() {
        let w = SyntheticWorkload::new(32);
        let ctx = w.independent(16);
        assert_eq!(ctx.jobs.len(), 16);
        assert!(ctx
            .jobs
            .iter()
            .all(|j| j.blocked_on.is_none() && j.holds.is_empty()));
    }

    #[test]
    fn chains_link_holders_and_blockers() {
        let w = SyntheticWorkload::new(16);
        let ctx = w.chained(8, 4);
        // Job 0 blocked on object 1, held by job 1.
        let j0 = ctx.job(JobId::new(0)).expect("exists");
        let blocked_on = j0.blocked_on.expect("job 0 is blocked");
        assert_eq!(ctx.holder_of(blocked_on), Some(JobId::new(1)));
        // Chain tails run free.
        let j3 = ctx.job(JobId::new(3)).expect("exists");
        assert!(j3.blocked_on.is_none());
    }

    #[test]
    fn tight_population_mostly_rejects() {
        use lfrt_core::{RuaLockBased, RuaLockFree};
        use lfrt_sim::UaScheduler;
        let w = SyntheticWorkload::new(64);
        let relaxed = RuaLockBased::new().schedule(&w.chained(64, 8));
        let tight = RuaLockBased::new().schedule(&w.tight_chained(64, 8));
        assert!(
            tight.order.len() < relaxed.order.len(),
            "tight deadlines reject jobs"
        );
        // Rejections disable the skip rule, so the tight population charges
        // more work per admitted job.
        let lf = RuaLockFree::new().schedule(&w.tight_chained(64, 8));
        assert!(tight.ops > lf.ops, "lock-based pays for re-examined chains");
    }

    #[test]
    fn chained_context_is_acyclic() {
        use lfrt_core::dependency::dependency_chain;
        use lfrt_core::OpsCounter;
        let w = SyntheticWorkload::new(64);
        let ctx = w.chained(64, 8);
        for j in &ctx.jobs {
            let chain = dependency_chain(&ctx, j.id, &mut OpsCounter::new());
            assert!(!chain.is_cycle(), "synthetic chains must not deadlock");
        }
    }
}
