use std::cell::UnsafeCell;
use std::fmt;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::utils::Backoff;

use crate::stats::OpStats;

/// Creates a non-blocking write (NBW) register holding `initial`, split into
/// its single writer and a cloneable reader.
///
/// The NBW protocol (Kopetz & Reisinger, RTSS'93 — reference \[16\] of the
/// paper) is the classic real-time alternative the paper contrasts lock-free
/// objects against: the **writer is wait-free** (a write always completes in
/// a bounded number of steps, regardless of readers), while **readers
/// retry** when a write overlaps their read — the familiar seqlock scheme.
///
/// The version-bracket protocol is mirrored step for step by
/// `lfrt-interleave`'s `ModelNbw`; the explorer proves the bracket is
/// load-bearing by tearing an unversioned variant (`TornNbw`) on a concrete
/// replayable schedule (`crates/interleave/tests/explorer.rs`).
///
/// # Examples
///
/// ```
/// use lfrt_lockfree::nbw_register;
///
/// let (mut writer, reader) = nbw_register((0u64, 0u64));
/// writer.write((21, 42));
/// assert_eq!(reader.read(), (21, 42));
/// ```
pub fn nbw_register<T: Copy + Send>(initial: T) -> (NbwWriter<T>, NbwReader<T>) {
    let shared = Arc::new(Shared {
        version: AtomicU64::new(0),
        data: UnsafeCell::new(initial),
        stats: OpStats::new(),
    });
    (
        NbwWriter {
            shared: Arc::clone(&shared),
        },
        NbwReader { shared },
    )
}

struct Shared<T> {
    /// Even: stable; odd: a write is in progress.
    version: AtomicU64,
    data: UnsafeCell<T>,
    stats: OpStats,
}

// SAFETY: the version protocol guarantees a reader only *uses* data it read
// while no write overlapped; `T: Copy` means the speculative read itself has
// no drop/ownership hazards.
unsafe impl<T: Copy + Send> Sync for Shared<T> {}
// SAFETY: plain data plus atomics.
unsafe impl<T: Copy + Send> Send for Shared<T> {}

/// The single writer of an NBW register. Not cloneable: the protocol is
/// single-writer/multi-reader, and the type system enforces it.
pub struct NbwWriter<T> {
    shared: Arc<Shared<T>>,
}

impl<T: Copy + Send> NbwWriter<T> {
    /// Publishes `value`. Wait-free: completes in a bounded number of steps
    /// regardless of concurrent readers.
    pub fn write(&mut self, value: T) {
        let shared = &*self.shared;
        let v = shared.version.load(Ordering::Relaxed);
        debug_assert!(v.is_multiple_of(2), "writer found version mid-write");
        shared.version.store(v + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        // SAFETY: only this (unique) writer mutates `data`; readers detect
        // the overlap through the odd version and discard their copy.
        unsafe { std::ptr::write_volatile(shared.data.get(), value) };
        shared.version.store(v + 2, Ordering::Release);
    }
}

impl<T> fmt::Debug for NbwWriter<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NbwWriter").finish_non_exhaustive()
    }
}

/// A reader of an NBW register. Cloneable; reads retry while a write is in
/// flight, and the retries are counted in [`NbwReader::stats`].
pub struct NbwReader<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for NbwReader<T> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: Copy + Send> NbwReader<T> {
    /// Reads a consistent snapshot, retrying while writes overlap.
    ///
    /// Lock-free for the reader: retries are bounded by the number of
    /// overlapping writes, exactly the interference the paper's Theorem 2
    /// bounds for scheduled real-time tasks.
    pub fn read(&self) -> T {
        let shared = &*self.shared;
        let backoff = Backoff::new();
        loop {
            shared.stats.attempt();
            let v1 = shared.version.load(Ordering::Acquire);
            if !v1.is_multiple_of(2) {
                shared.stats.retry();
                backoff.spin();
                continue;
            }
            // SAFETY: a torn value is possible here, but it is only *used*
            // after the version check below confirms no write overlapped;
            // `T: Copy` makes the speculative read harmless.
            let value = unsafe { std::ptr::read_volatile(shared.data.get()) };
            fence(Ordering::Acquire);
            if shared.version.load(Ordering::Relaxed) == v1 {
                return value;
            }
            shared.stats.retry();
            backoff.spin();
        }
    }

    /// The attempt/retry counters of this register (shared by all readers).
    pub fn stats(&self) -> &OpStats {
        &self.shared.stats
    }
}

impl<T> fmt::Debug for NbwReader<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NbwReader").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_round_trip() {
        let (mut w, r) = nbw_register(7u32);
        assert_eq!(r.read(), 7);
        w.write(9);
        assert_eq!(r.read(), 9);
        assert_eq!(r.stats().retries(), 0);
    }

    #[test]
    fn readers_clone_and_share_stats() {
        let (mut w, r1) = nbw_register(0u64);
        let r2 = r1.clone();
        w.write(5);
        assert_eq!(r1.read(), 5);
        assert_eq!(r2.read(), 5);
        assert_eq!(r1.stats().attempts(), 2);
    }

    #[test]
    fn concurrent_readers_always_see_consistent_pairs() {
        // The writer publishes (i, 2i); a torn read would break the
        // invariant b == 2a.
        let (mut w, r) = nbw_register((0u64, 0u64));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..50_000 {
                        let (a, b) = r.read();
                        assert_eq!(b, 2 * a, "torn read: ({a}, {b})");
                    }
                })
            })
            .collect();
        for i in 1..=30_000u64 {
            w.write((i, 2 * i));
        }
        for h in readers {
            h.join().expect("reader panicked");
        }
    }

    #[test]
    fn writer_is_not_clonable_but_moves_across_threads() {
        let (mut w, r) = nbw_register(1u8);
        let t = std::thread::spawn(move || {
            w.write(2);
            w
        });
        let _w = t.join().expect("writer thread");
        assert_eq!(r.read(), 2);
    }
}
