//! The committed `ordlint.toml` must exactly match a clean run over the
//! workspace: zero unbaselined findings, zero stale entries. This is the
//! same check CI's ordlint job performs, pinned as a plain test so
//! `cargo test --workspace` catches drift without the extra job.

use lfrt_ordlint::{analyze_with_baseline, workspace_root};

#[test]
fn committed_baseline_matches_a_clean_run() {
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("ordlint.toml"))
        .expect("ordlint.toml is committed at the workspace root");
    let analysis = analyze_with_baseline(&root, &text).expect("workspace scan");
    assert!(
        analysis.matched.unbaselined.is_empty(),
        "unbaselined findings — run `cargo run -p lfrt-ordlint`, then either \
         fix the site or add a justified ordlint.toml entry: {:#?}",
        analysis.matched.unbaselined
    );
    assert!(
        analysis.matched.stale.is_empty(),
        "stale baseline entries match no current finding — delete them: {:#?}",
        analysis.matched.stale
    );
    assert!(
        !analysis.matched.baselined.is_empty(),
        "the workspace is known to carry justified findings; an empty match \
         means the scan roots moved"
    );
    for (finding, justification) in &analysis.matched.baselined {
        assert!(
            !justification.trim().is_empty(),
            "empty justification for {finding:?}"
        );
    }
}
