use lfrt_sim::{Decision, SchedulerContext, UaScheduler};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::construct::{sort_by_pud, RankedChain};
use crate::ops::OpsCounter;
use crate::pud::chain_pud;
use crate::schedule::TentativeSchedule;

/// Lock-free RUA with *randomized feasibility testing* — the speed/accuracy
/// tradeoff the paper's §3.6 points at ("the step of testing for schedule
/// feasibility can be optimized through randomization as in \[17\], with
/// concomitant tradeoffs").
///
/// Exact lock-free RUA verifies every entry of the tentative schedule after
/// every insertion (`O(n)` per job, the dominating `O(n²)` term). This
/// variant verifies only the inserted entry plus `samples` randomly chosen
/// entries *after* the insertion point (the only entries whose completion
/// times the insertion delays). Completion times are obtainable in
/// `O(log n)` from a positional tree augmented with remaining-time subtree
/// sums, so the charged per-insertion cost drops to `O((k+1)·log n)` and
/// the whole invocation to `O(n·k·log n)` — asymptotically below exact RUA
/// for constant `k`. (This reference implementation computes the sums with
/// a plain prefix walk and charges the abstract tree cost, the same
/// convention the other schedulers use for ordered-structure operations.)
///
/// The tradeoff: an unsampled entry may silently become infeasible, so a
/// job that exact RUA would reject can be kept and later aborted at its
/// critical time. On the workloads of the paper's evaluation the utility
/// loss is small (see `rua_behavior` tests and the `scheduler_cost` bench),
/// which is why the paper calls the optimization out as viable.
///
/// Seeded: identical inputs and seed give identical schedules.
///
/// # Examples
///
/// ```
/// use lfrt_core::RuaLockFreeSampled;
/// use lfrt_sim::UaScheduler;
///
/// assert_eq!(RuaLockFreeSampled::new(4, 7).name(), "rua-lock-free-sampled");
/// ```
#[derive(Debug)]
pub struct RuaLockFreeSampled {
    samples: usize,
    rng: StdRng,
}

impl RuaLockFreeSampled {
    /// Creates the scheduler checking `samples` random entries per
    /// insertion (plus the inserted entry itself).
    pub fn new(samples: usize, seed: u64) -> Self {
        Self {
            samples,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl UaScheduler for RuaLockFreeSampled {
    fn name(&self) -> &str {
        "rua-lock-free-sampled"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        let mut ops = OpsCounter::new();
        let mut chains: Vec<RankedChain> = ctx
            .jobs
            .iter()
            .map(|view| {
                let chain = vec![view.id];
                let pud = chain_pud(ctx, &chain, &mut ops);
                RankedChain {
                    job: view.id,
                    chain,
                    pud,
                }
            })
            .collect();
        sort_by_pud(&mut chains, &mut ops);

        let mut schedule = TentativeSchedule::new();
        for ranked in &chains {
            let Some(view) = ctx.job(ranked.job) else {
                continue;
            };
            let mut tentative = schedule.clone();
            let pos =
                tentative.insert_before(ranked.job, view.absolute_critical_time, None, &mut ops);
            if self.sampled_feasible(ctx, &tentative, pos, &mut ops) {
                schedule = tentative;
            }
        }
        Decision {
            order: schedule.jobs(),
            ops: ops.total(),
            aborts: Vec::new(),
        }
    }
}

impl RuaLockFreeSampled {
    /// Verifies the inserted entry at `pos`, then `samples` random entries
    /// after it (the only entries the insertion delays). Each verification
    /// is charged at the `O(log n)` cost of a completion-time query on a
    /// sum-augmented positional tree; the prefix walks below are this
    /// reference implementation's stand-in for those queries.
    fn sampled_feasible(
        &mut self,
        ctx: &SchedulerContext<'_>,
        tentative: &TentativeSchedule,
        pos: usize,
        ops: &mut OpsCounter,
    ) -> bool {
        let entries = tentative.entries();
        let completion_through = |end: usize| -> u64 {
            entries
                .iter()
                .take(end + 1)
                .filter_map(|e| ctx.job(e.job))
                .map(|v| v.remaining)
                .sum()
        };
        // Verify the inserted entry (one tree query).
        ops.charge_log(entries.len());
        if ctx.now + completion_through(pos) > entries[pos].effective_critical_time {
            return false;
        }
        let after = entries.len().saturating_sub(pos + 1);
        if after == 0 || self.samples == 0 {
            return true;
        }
        let mut picks: Vec<usize> = (0..self.samples)
            .map(|_| pos + 1 + self.rng.random_range(0..after))
            .collect();
        picks.sort_unstable();
        picks.dedup();
        for pick in picks {
            ops.charge_log(entries.len());
            if ctx.now + completion_through(pick) > entries[pick].effective_critical_time {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfrt_sim::{JobId, JobView, TaskId};
    use lfrt_tuf::Tuf;

    fn ctx_of<'a>(tufs: &'a [Tuf], jobs: &[(u64, u64)]) -> SchedulerContext<'a> {
        SchedulerContext {
            now: 0,
            jobs: jobs
                .iter()
                .enumerate()
                .map(|(i, &(critical, remaining))| JobView {
                    id: JobId::new(i),
                    task: TaskId::new(i),
                    arrival: 0,
                    absolute_critical_time: critical,
                    window: critical,
                    tuf: &tufs[i],
                    remaining,
                    blocked_on: None,
                    holds: Vec::new(),
                })
                .collect(),
        }
    }

    #[test]
    fn feasible_underload_schedules_everything() {
        let tufs: Vec<Tuf> = (0..5)
            .map(|i| Tuf::step(1.0 + i as f64, 10_000).expect("valid"))
            .collect();
        let jobs: Vec<(u64, u64)> = (0..5).map(|i| (2_000 + i * 1_000, 100)).collect();
        let ctx = ctx_of(&tufs, &jobs);
        let d = RuaLockFreeSampled::new(3, 1).schedule(&ctx);
        assert_eq!(d.order.len(), 5, "underload keeps every job");
    }

    #[test]
    fn inserted_entry_itself_is_always_checked_exactly() {
        // A job that cannot meet its own critical time must be rejected even
        // with zero samples.
        let tufs = vec![
            Tuf::step(1.0, 10_000).expect("valid"),
            Tuf::step(1.0, 10_000).expect("valid"),
        ];
        let ctx = ctx_of(&tufs, &[(100, 500), (10_000, 10)]);
        let d = RuaLockFreeSampled::new(0, 1).schedule(&ctx);
        assert!(
            !d.order.contains(&JobId::new(0)),
            "self-infeasible job rejected"
        );
        assert!(d.order.contains(&JobId::new(1)));
    }

    #[test]
    fn deterministic_per_seed() {
        let tufs: Vec<Tuf> = (0..20)
            .map(|i| Tuf::step(1.0 + (i % 7) as f64, 5_000).expect("valid"))
            .collect();
        let jobs: Vec<(u64, u64)> = (0..20).map(|i| (1_000 + i * 137 % 4_000, 150)).collect();
        let ctx = ctx_of(&tufs, &jobs);
        let a = RuaLockFreeSampled::new(2, 9).schedule(&ctx);
        let b = RuaLockFreeSampled::new(2, 9).schedule(&ctx);
        assert_eq!(a.order, b.order);
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn sampling_reports_fewer_ops_than_exact_on_large_contexts() {
        use crate::RuaLockFree;
        let tufs: Vec<Tuf> = (0..200)
            .map(|i| Tuf::step(1.0 + (i % 9) as f64, 100_000).expect("valid"))
            .collect();
        let jobs: Vec<(u64, u64)> = (0..200).map(|i| (50_000 + i * 211 % 50_000, 100)).collect();
        let ctx = ctx_of(&tufs, &jobs);
        let exact = RuaLockFree::new().schedule(&ctx);
        let sampled = RuaLockFreeSampled::new(2, 3).schedule(&ctx);
        assert!(
            sampled.ops * 2 < exact.ops,
            "sampling must cut the feasibility work: {} vs {}",
            sampled.ops,
            exact.ops
        );
    }
}
