//! Optional fine-grained execution tracing.
//!
//! When enabled via [`SimConfig::trace`](crate::SimConfig::trace), the
//! engine records every externally meaningful transition — releases,
//! dispatches, preemptions, lock traffic, lock-free retries, completions,
//! aborts — with its timestamp. Tests use the log to pin exact interleaving
//! semantics; [`TraceLog::render_gantt`] draws an ASCII timeline for humans.

use crate::ids::{JobId, ObjectId, TaskId};
use crate::SimTime;

/// Why a job was aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The job's critical time expired (§3.5 timer abort).
    CriticalTime,
    /// The scheduler selected the job as a deadlock victim (§3.3).
    Deadlock,
}

/// One recorded transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A job was released.
    Released {
        /// The new job.
        job: JobId,
        /// Its task.
        task: TaskId,
    },
    /// The processor switched to this job.
    Dispatched {
        /// The job now running.
        job: JobId,
    },
    /// A running job was switched out while still ready.
    Preempted {
        /// The job switched out.
        job: JobId,
    },
    /// A lock request found the object held.
    Blocked {
        /// The requesting job.
        job: JobId,
        /// The contended object.
        object: ObjectId,
    },
    /// A blocked job became ready again (the lock was released).
    Woken {
        /// The woken job.
        job: JobId,
        /// The object it was waiting for.
        object: ObjectId,
    },
    /// A lock request was granted.
    LockAcquired {
        /// The new owner.
        job: JobId,
        /// The locked object.
        object: ObjectId,
    },
    /// A lock was released.
    LockReleased {
        /// The previous owner.
        job: JobId,
        /// The unlocked object.
        object: ObjectId,
    },
    /// A lock-free access attempt failed and restarted.
    Retried {
        /// The interfered-with job.
        job: JobId,
        /// The contended object.
        object: ObjectId,
    },
    /// A job finished all segments.
    Completed {
        /// The finished job.
        job: JobId,
        /// Utility accrued.
        utility: f64,
    },
    /// A job was aborted.
    Aborted {
        /// The aborted job.
        job: JobId,
        /// Why.
        reason: AbortReason,
    },
    /// A job crashed (failure injection): halted without releasing locks.
    Crashed {
        /// The crashed job.
        job: JobId,
    },
    /// The scheduler ran.
    SchedulerInvoked {
        /// Reported operation count.
        ops: u64,
    },
}

/// A timestamped [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// When the transition happened.
    pub at: SimTime,
    /// What happened.
    pub event: TraceEvent,
}

/// The recorded transitions of a simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceLog {
    records: Vec<TraceRecord>,
}

impl TraceLog {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn push(&mut self, at: SimTime, event: TraceEvent) {
        self.records.push(TraceRecord { at, event });
    }

    /// All records, in time order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Whether any records were captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Records matching a predicate on the event.
    pub fn filter<F: Fn(&TraceEvent) -> bool>(&self, pred: F) -> Vec<TraceRecord> {
        self.records
            .iter()
            .copied()
            .filter(|r| pred(&r.event))
            .collect()
    }

    /// Reconstructs the processor's running intervals
    /// `(job, start, end)` from dispatch/stop transitions.
    pub fn running_intervals(&self) -> Vec<(JobId, SimTime, SimTime)> {
        let mut intervals = Vec::new();
        let mut current: Option<(JobId, SimTime)> = None;
        for rec in &self.records {
            match rec.event {
                TraceEvent::Dispatched { job } => {
                    if let Some((prev, since)) = current.take() {
                        if prev != job && rec.at > since {
                            intervals.push((prev, since, rec.at));
                        } else if prev == job {
                            current = Some((prev, since));
                            continue;
                        }
                    }
                    current = Some((job, rec.at));
                }
                TraceEvent::Preempted { job }
                | TraceEvent::Blocked { job, .. }
                | TraceEvent::Completed { job, .. }
                | TraceEvent::Aborted { job, .. }
                | TraceEvent::Crashed { job } => {
                    if let Some((prev, since)) = current {
                        if prev == job {
                            if rec.at > since {
                                intervals.push((prev, since, rec.at));
                            }
                            current = None;
                        }
                    }
                }
                _ => {}
            }
        }
        intervals
    }

    /// Draws an ASCII Gantt chart of the running intervals, one row per
    /// job, `width` columns across the full time span. Jobs are labelled by
    /// id; `#` marks processor time.
    ///
    /// # Examples
    ///
    /// ```
    /// use lfrt_sim::{Engine, Segment, SharingMode, SimConfig, TaskSpec};
    /// use lfrt_sim::scheduler::{Decision, SchedulerContext, UaScheduler};
    /// use lfrt_tuf::Tuf;
    /// use lfrt_uam::{ArrivalTrace, Uam};
    ///
    /// struct Fifo;
    /// impl UaScheduler for Fifo {
    ///     fn name(&self) -> &str { "fifo" }
    ///     fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
    ///         let order: Vec<_> = ctx.jobs.iter().map(|j| j.id).collect();
    ///         Decision { order, ops: 1, ..Decision::default() }
    ///     }
    /// }
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let task = TaskSpec::builder("t")
    ///     .tuf(Tuf::step(1.0, 1_000)?)
    ///     .uam(Uam::periodic(1_000))
    ///     .segments(vec![Segment::Compute(100)])
    ///     .build()?;
    /// let outcome = Engine::new(
    ///     vec![task],
    ///     vec![ArrivalTrace::new(vec![0])],
    ///     SimConfig::new(SharingMode::Ideal).trace(true),
    /// )?
    /// .run(Fifo);
    /// let chart = outcome.trace.render_gantt(40);
    /// assert!(chart.contains("J0"));
    /// assert!(chart.contains('#'));
    /// # Ok(())
    /// # }
    /// ```
    pub fn render_gantt(&self, width: usize) -> String {
        let intervals = self.running_intervals();
        if intervals.is_empty() || width == 0 {
            return String::from("(no execution recorded)\n");
        }
        let start = intervals
            .iter()
            .map(|&(_, s, _)| s)
            .min()
            .expect("non-empty");
        let end = intervals
            .iter()
            .map(|&(_, _, e)| e)
            .max()
            .expect("non-empty");
        let span = (end - start).max(1);
        let mut jobs: Vec<JobId> = intervals.iter().map(|&(j, _, _)| j).collect();
        jobs.sort_unstable();
        jobs.dedup();
        let mut out = String::new();
        out.push_str(&format!(
            "time {start}..{end} ({span} ticks, {width} cols)\n"
        ));
        for job in jobs {
            let mut row = vec![b' '; width];
            for &(j, s, e) in &intervals {
                if j != job {
                    continue;
                }
                let lo = ((s - start) as u128 * width as u128 / span as u128) as usize;
                let hi = (((e - start) as u128 * width as u128).div_ceil(span as u128)) as usize;
                for cell in row.iter_mut().take(hi.min(width)).skip(lo) {
                    *cell = b'#';
                }
            }
            out.push_str(&format!(
                "{:>6} |{}|\n",
                job.to_string(),
                String::from_utf8(row).expect("ascii")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(i: usize) -> JobId {
        JobId::new(i)
    }

    #[test]
    fn intervals_from_dispatch_sequence() {
        let mut log = TraceLog::new();
        log.push(0, TraceEvent::Dispatched { job: j(0) });
        log.push(50, TraceEvent::Preempted { job: j(0) });
        log.push(50, TraceEvent::Dispatched { job: j(1) });
        log.push(
            80,
            TraceEvent::Completed {
                job: j(1),
                utility: 1.0,
            },
        );
        log.push(80, TraceEvent::Dispatched { job: j(0) });
        log.push(
            120,
            TraceEvent::Completed {
                job: j(0),
                utility: 1.0,
            },
        );
        assert_eq!(
            log.running_intervals(),
            vec![(j(0), 0, 50), (j(1), 50, 80), (j(0), 80, 120)]
        );
    }

    #[test]
    fn redundant_dispatch_of_same_job_merges() {
        let mut log = TraceLog::new();
        log.push(0, TraceEvent::Dispatched { job: j(0) });
        log.push(30, TraceEvent::Dispatched { job: j(0) });
        log.push(
            60,
            TraceEvent::Completed {
                job: j(0),
                utility: 0.0,
            },
        );
        assert_eq!(log.running_intervals(), vec![(j(0), 0, 60)]);
    }

    #[test]
    fn gantt_renders_rows() {
        let mut log = TraceLog::new();
        log.push(0, TraceEvent::Dispatched { job: j(0) });
        log.push(50, TraceEvent::Preempted { job: j(0) });
        log.push(50, TraceEvent::Dispatched { job: j(1) });
        log.push(
            100,
            TraceEvent::Completed {
                job: j(1),
                utility: 1.0,
            },
        );
        let chart = log.render_gantt(20);
        assert!(chart.contains("J0"));
        assert!(chart.contains("J1"));
        assert!(chart.contains('#'));
        // Two job rows plus the header.
        assert_eq!(chart.lines().count(), 3);
    }

    #[test]
    fn empty_log_renders_placeholder() {
        assert!(TraceLog::new().render_gantt(10).contains("no execution"));
    }

    #[test]
    fn filter_selects_events() {
        let mut log = TraceLog::new();
        log.push(
            0,
            TraceEvent::Released {
                job: j(0),
                task: TaskId::new(0),
            },
        );
        log.push(
            1,
            TraceEvent::Retried {
                job: j(0),
                object: ObjectId::new(0),
            },
        );
        let retries = log.filter(|e| matches!(e, TraceEvent::Retried { .. }));
        assert_eq!(retries.len(), 1);
        assert_eq!(retries[0].at, 1);
    }
}
