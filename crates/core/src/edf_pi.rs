use lfrt_sim::{Decision, JobId, SchedulerContext, SimTime, UaScheduler};

use crate::dependency::{dependency_chain, Chain};
use crate::ops::OpsCounter;

/// EDF with *priority inheritance*: a lock holder inherits the earliest
/// critical time among the jobs transitively blocked on it (Sha, Rajkumar &
/// Lehoczky's protocol \[23\] of the paper, applied to deadlines).
///
/// Plain [`Edf`](crate::Edf) with locks suffers unbounded priority
/// inversion: a medium-urgency job can preempt the lock holder indefinitely
/// while the most urgent job waits — the famous Mars Pathfinder failure
/// mode (see `examples/mars_pathfinder.rs`). Inheritance bounds the
/// inversion to one critical section. RUA's dependency chains achieve the
/// same effect natively, and lock-free sharing dissolves the problem
/// entirely — this scheduler exists to measure the middle ground.
///
/// Cost: chain computation `O(n²)` plus a sort, `O(n²)` reported
/// operations.
///
/// # Examples
///
/// ```
/// use lfrt_core::EdfPi;
/// use lfrt_sim::UaScheduler;
///
/// assert_eq!(EdfPi::new().name(), "edf-pi");
/// ```
#[derive(Debug, Clone, Default)]
pub struct EdfPi {
    _private: (),
}

impl EdfPi {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl UaScheduler for EdfPi {
    fn name(&self) -> &str {
        "edf-pi"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        let mut ops = OpsCounter::new();
        // Effective deadline: own critical time, tightened by every job
        // whose dependency chain runs through this one.
        let mut effective: Vec<(JobId, SimTime)> = ctx
            .jobs
            .iter()
            .map(|j| (j.id, j.absolute_critical_time))
            .collect();
        for view in &ctx.jobs {
            let chain = dependency_chain(ctx, view.id, &mut ops);
            let Chain::Acyclic(members) = chain else {
                continue;
            };
            for member in members {
                if member == view.id {
                    continue;
                }
                if let Some(entry) = effective.iter_mut().find(|(id, _)| *id == member) {
                    ops.tick();
                    entry.1 = entry.1.min(view.absolute_critical_time);
                }
            }
        }
        effective.sort_by(|a, b| {
            ops.tick();
            (a.1, a.0).cmp(&(b.1, b.0))
        });
        Decision {
            order: effective.into_iter().map(|(id, _)| id).collect(),
            ops: ops.total(),
            aborts: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfrt_sim::{JobView, ObjectId, TaskId};
    use lfrt_tuf::Tuf;

    #[test]
    fn holder_inherits_blockers_deadline() {
        let tuf = Tuf::step(1.0, 1_000_000).expect("valid");
        let mk = |id: usize, crit: u64, blocked: Option<usize>, holds: Option<usize>| JobView {
            id: JobId::new(id),
            task: TaskId::new(id),
            arrival: 0,
            absolute_critical_time: crit,
            window: 1_000_000,
            tuf: &tuf,
            remaining: 10,
            blocked_on: blocked.map(ObjectId::new),
            holds: holds.map(ObjectId::new).into_iter().collect(),
        };
        // Low-urgency holder (crit 90k) holds O0; urgent job (crit 1k)
        // blocks on it; a medium job (crit 50k) is independent. With
        // inheritance the holder sorts FIRST (inherits 1k), ahead of the
        // medium job that would otherwise starve it.
        let ctx = SchedulerContext {
            now: 0,
            jobs: vec![
                mk(0, 90_000, None, Some(0)), // holder
                mk(1, 1_000, Some(0), None),  // urgent, blocked
                mk(2, 50_000, None, None),    // medium
            ],
        };
        let d = EdfPi::new().schedule(&ctx);
        assert_eq!(
            d.order[0],
            JobId::new(0),
            "holder inherits the urgent deadline"
        );
        assert_eq!(d.order[1], JobId::new(1));
        assert_eq!(d.order[2], JobId::new(2));
    }

    #[test]
    fn no_locks_degenerates_to_edf() {
        let tuf = Tuf::step(1.0, 1_000_000).expect("valid");
        let mk = |id: usize, crit: u64| JobView {
            id: JobId::new(id),
            task: TaskId::new(id),
            arrival: 0,
            absolute_critical_time: crit,
            window: 1_000_000,
            tuf: &tuf,
            remaining: 10,
            blocked_on: None,
            holds: Vec::new(),
        };
        let ctx = SchedulerContext {
            now: 0,
            jobs: vec![mk(0, 300), mk(1, 100), mk(2, 200)],
        };
        let d = EdfPi::new().schedule(&ctx);
        assert_eq!(d.order, vec![JobId::new(1), JobId::new(2), JobId::new(0)]);
    }

    #[test]
    fn inheritance_is_transitive() {
        let tuf = Tuf::step(1.0, 1_000_000).expect("valid");
        let mk = |id: usize, crit: u64, blocked: Option<usize>, holds: Option<usize>| JobView {
            id: JobId::new(id),
            task: TaskId::new(id),
            arrival: 0,
            absolute_critical_time: crit,
            window: 1_000_000,
            tuf: &tuf,
            remaining: 10,
            blocked_on: blocked.map(ObjectId::new),
            holds: holds.map(ObjectId::new).into_iter().collect(),
        };
        // chain: J2 (urgent) → J1 (holds O1, blocked on O0) → J0 (holds O0).
        let ctx = SchedulerContext {
            now: 0,
            jobs: vec![
                mk(0, 80_000, None, Some(0)),
                mk(1, 60_000, Some(0), Some(1)),
                mk(2, 1_000, Some(1), None),
            ],
        };
        let d = EdfPi::new().schedule(&ctx);
        assert_eq!(
            d.order[0],
            JobId::new(0),
            "deepest holder inherits transitively"
        );
    }
}
