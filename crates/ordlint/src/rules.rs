//! The ordering rules, ORD001–ORD006.
//!
//! Every rule is a *local* heuristic over one function body: cheap, fully
//! deterministic, and honest about its reach. A firing is a request for
//! review, not a proof of a bug — real but intentional patterns (a
//! constructor publishing with `Relaxed` before the object is shared, a
//! `Drop` walking nodes with exclusive access) get a justified entry in the
//! checked-in `ordlint.toml` baseline instead of a code change. The
//! store-buffer mode of `lfrt-interleave` is the dynamic complement: it
//! confirms or refutes what these rules merely suspect.
//!
//! | rule | severity | fires on |
//! |---------|----------|----------|
//! | ORD001 | error | `Relaxed` store/CAS publishing a newly allocated value |
//! | ORD002 | error | `Relaxed` load whose value is dereferenced |
//! | ORD003 | error | CAS failure ordering stronger than its success ordering |
//! | ORD004 | perf | `SeqCst` with no local store→load (Dekker) pattern |
//! | ORD005 | perf | CAS failure `Acquire`+ whose failure value is never dereferenced |
//! | ORD006 | warn | fence with no pairable atomic access in its function |

use crate::dataflow::{
    bindings, contains_word, deref_use_after, err_binding_after, propagate, Binding,
};
use crate::scan::{FnSpan, Kind, ScanResult, Site};
use crate::source::SourceFile;

/// One rule firing, anchored to a site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule ID, `ORD001`–`ORD006`.
    pub rule: &'static str,
    /// `error`, `warn`, or `perf`.
    pub severity: &'static str,
    /// File the site is in, relative to the scan root.
    pub file: String,
    /// 1-based line of the site.
    pub line: usize,
    /// Enclosing function name.
    pub function: String,
    /// Normalized receiver (empty for fences).
    pub receiver: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// The baseline key: findings and baseline entries match on it.
    pub fn key(&self) -> (String, String, String, String) {
        (
            self.rule.to_string(),
            self.file.clone(),
            self.function.clone(),
            self.receiver.clone(),
        )
    }
}

/// Strength rank used by ORD003/ORD005. `Release` and `Acquire` are
/// one-sided and incomparable in the memory model; for "failure stronger
/// than success" purposes ranking them equal is the conservative reading.
fn rank(order: &str) -> u8 {
    match order {
        "Relaxed" => 0,
        "Acquire" | "Release" => 1,
        "AcqRel" => 2,
        "SeqCst" => 3,
        _ => 0,
    }
}

const ALLOC_MARKERS: [&str; 5] = [
    "Box::new(",
    "Owned::new(",
    "Arc::new(",
    "Rc::new(",
    ".alloc(",
];

/// Runs every rule over one scanned file.
pub fn run_rules(sf: &SourceFile, scan: &ScanResult) -> Vec<Finding> {
    let mut findings = Vec::new();
    for span in &scan.functions {
        let sites: Vec<&Site> = scan
            .sites
            .iter()
            .filter(|s| s.offset >= span.start && s.offset < span.end && s.function == span.name)
            .collect();
        if sites.is_empty() {
            continue;
        }
        let binds = bindings(&sf.clean, (span.start, span.end));
        rule_ord001(sf, &sites, &binds, &mut findings);
        rule_ord002(sf, span, &sites, &binds, &mut findings);
        rule_ord003(sf, &sites, &mut findings);
        rule_ord004(sf, &sites, &mut findings);
        rule_ord005(sf, span, &sites, &mut findings);
        rule_ord006(sf, &sites, &mut findings);
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

fn emit(
    findings: &mut Vec<Finding>,
    sf: &SourceFile,
    site: &Site,
    rule: &'static str,
    severity: &'static str,
    message: String,
) {
    findings.push(Finding {
        rule,
        severity,
        file: sf.rel_path.clone(),
        line: site.line,
        function: site.function.clone(),
        receiver: site.receiver.clone(),
        message,
    });
}

/// ORD001: a `Relaxed`-published pointer to a newly allocated value lets an
/// observer dereference the allocation before its initializing stores are
/// visible — exactly the reordering `RelaxedPubStack` demonstrates under
/// the store-buffer explorer.
fn rule_ord001(sf: &SourceFile, sites: &[&Site], binds: &[Binding], findings: &mut Vec<Finding>) {
    let seeds: Vec<(String, usize)> = binds
        .iter()
        .filter(|b| {
            let rhs = &sf.clean[b.rhs.0..b.rhs.1];
            ALLOC_MARKERS.iter().any(|m| rhs.contains(m))
        })
        .map(|b| (b.name.clone(), b.offset))
        .collect();
    if seeds.is_empty() {
        return;
    }
    let tainted = propagate(&sf.clean, binds, &seeds);
    for site in sites {
        let publishes_relaxed = site.kind.is_store_like()
            && site.orderings.first().map(String::as_str) == Some("Relaxed");
        if !publishes_relaxed {
            continue;
        }
        if let Some((name, _)) = tainted
            .iter()
            .find(|(n, at)| *at < site.offset && contains_word(&site.args, n))
        {
            emit(
                findings,
                sf,
                site,
                "ORD001",
                "error",
                format!(
                    "Relaxed {} publishes newly allocated value `{name}`; \
                     an observer may dereference it before its initializing \
                     stores become visible — use Release",
                    site.method
                ),
            );
        }
    }
}

/// ORD002: dereferencing the value of a `Relaxed` load reads through a
/// pointer with no acquire edge to the stores that initialized the
/// pointee.
fn rule_ord002(
    sf: &SourceFile,
    span: &FnSpan,
    sites: &[&Site],
    binds: &[Binding],
    findings: &mut Vec<Finding>,
) {
    let fspan = (span.start, span.end);
    for site in sites {
        if site.kind != Kind::Load || site.orderings.first().map(String::as_str) != Some("Relaxed")
        {
            continue;
        }
        // (a) The loaded value is dereferenced in the same chain:
        // `x.load(Relaxed, g).deref()`.
        let tail = sf.clean[site.args_end..span.end].trim_start();
        let chain_deref = ["deref()", "deref_mut()", "as_ref()", "as_mut()"]
            .iter()
            .any(|m| tail.starts_with(&format!(".{m}")));
        // (b) The value is bound and a tainted identifier is dereferenced
        // later in the function.
        let deref_at = if chain_deref {
            Some(site.offset)
        } else {
            binds
                .iter()
                .find(|b| b.rhs.0 <= site.offset && site.offset < b.rhs.1)
                .and_then(|b| {
                    let tainted = propagate(&sf.clean, binds, &[(b.name.clone(), b.offset)]);
                    tainted
                        .iter()
                        .filter_map(|(n, at)| deref_use_after(&sf.clean, fspan, n, *at))
                        .min()
                })
        };
        if let Some(at) = deref_at {
            emit(
                findings,
                sf,
                site,
                "ORD002",
                "error",
                format!(
                    "value of Relaxed load is dereferenced (line {}); without \
                     Acquire the pointee's initialization may not be visible — \
                     use Acquire",
                    sf.line_of(at)
                ),
            );
        }
    }
}

/// ORD003: a failure ordering stronger than the success ordering buys
/// nothing (the failure path observed no new value to synchronize with)
/// and usually indicates swapped arguments.
fn rule_ord003(sf: &SourceFile, sites: &[&Site], findings: &mut Vec<Finding>) {
    for site in sites {
        if site.kind != Kind::Cas || site.orderings.len() < 2 {
            continue;
        }
        let (success, failure) = (&site.orderings[0], &site.orderings[1]);
        if rank(failure) > rank(success) {
            emit(
                findings,
                sf,
                site,
                "ORD003",
                "error",
                format!(
                    "compare_exchange failure ordering {failure} is stronger \
                     than success ordering {success}; the failure path cannot \
                     need more synchronization than the success path"
                ),
            );
        }
    }
}

/// ORD004: `SeqCst` is only distinguishable from `Acquire`/`Release` when
/// a thread's store to one location must be globally ordered before its
/// load of *another* (the Dekker/store→load pattern). A function whose
/// `SeqCst` sites show no such pattern locally — no `SeqCst` store
/// textually before a `SeqCst` load of a different receiver, and no
/// `fence(SeqCst)` — gets flagged for downgrade or justification.
fn rule_ord004(sf: &SourceFile, sites: &[&Site], findings: &mut Vec<Finding>) {
    let sc: Vec<&&Site> = sites
        .iter()
        .filter(|s| s.orderings.iter().any(|o| o == "SeqCst"))
        .collect();
    if sc.is_empty() {
        return;
    }
    if sc.iter().any(|s| s.kind == Kind::Fence) {
        return; // an explicit SC fence is the store→load barrier
    }
    let dekker = sc.iter().any(|a| {
        a.kind.is_store_like()
            && sc
                .iter()
                .any(|b| b.kind.is_load_like() && a.offset < b.offset && a.receiver != b.receiver)
    });
    if dekker {
        return;
    }
    for site in sc {
        emit(
            findings,
            sf,
            site,
            "ORD004",
            "perf",
            format!(
                "SeqCst {} with no local store\u{2192}load (Dekker) pattern: \
                 Acquire/Release appears sufficient — downgrade or justify",
                site.method
            ),
        );
    }
}

/// ORD005: an `Acquire`-or-stronger failure ordering only matters when the
/// observed (failure) value is dereferenced; feeding it back as the next
/// CAS expectation needs no synchronization, so `Relaxed` suffices.
fn rule_ord005(sf: &SourceFile, span: &FnSpan, sites: &[&Site], findings: &mut Vec<Finding>) {
    let fspan = (span.start, span.end);
    for site in sites {
        if site.kind != Kind::Cas || site.orderings.len() < 2 {
            continue;
        }
        let failure = &site.orderings[1];
        if rank(failure) < rank("Acquire") {
            continue;
        }
        let dereferenced = match err_binding_after(&sf.clean, fspan, site.args_end) {
            Some((ident, at)) => deref_use_after(&sf.clean, fspan, &ident, at).is_some(),
            None => false,
        };
        if !dereferenced {
            emit(
                findings,
                sf,
                site,
                "ORD005",
                "perf",
                format!(
                    "compare_exchange failure ordering {failure}, but the \
                     failure value is never dereferenced — Relaxed failure \
                     ordering suffices"
                ),
            );
        }
    }
}

/// ORD006: a fence orders *other* accesses; one with nothing to pair with
/// in its function is either dead or paired across functions (justify it).
fn rule_ord006(sf: &SourceFile, sites: &[&Site], findings: &mut Vec<Finding>) {
    for site in sites {
        if site.kind != Kind::Fence {
            continue;
        }
        let order = site.orderings.first().map(String::as_str).unwrap_or("");
        let store_after = sites
            .iter()
            .any(|s| s.kind != Kind::Fence && s.kind.is_store_like() && s.offset > site.offset);
        let load_before = sites
            .iter()
            .any(|s| s.kind != Kind::Fence && s.kind.is_load_like() && s.offset < site.offset);
        let any_other = sites.iter().any(|s| s.kind != Kind::Fence);
        let (unpaired, need) = match order {
            "Release" => (!store_after, "a subsequent atomic store"),
            "Acquire" => (!load_before, "a preceding atomic load"),
            "AcqRel" => (
                !store_after || !load_before,
                "a preceding load and a subsequent store",
            ),
            _ => (!any_other, "any atomic access"), // SeqCst
        };
        if unpaired {
            emit(
                findings,
                sf,
                site,
                "ORD006",
                "warn",
                format!(
                    "{order} fence with no pairable access: needs {need} in \
                     this function to order anything"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_file;

    fn check(src: &str) -> Vec<Finding> {
        let sf = SourceFile::new("t.rs", src);
        run_rules(&sf, &scan_file(&sf))
    }

    fn rules_of(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn ord001_relaxed_publication_of_allocation() {
        let fire = "
fn publish(&self) {
    let node = Box::new(Node::default());
    self.top.store(node, Relaxed);
}
";
        assert_eq!(rules_of(&check(fire)), ["ORD001"]);
        let release = "
fn publish(&self) {
    let node = Box::new(Node::default());
    self.top.store(node, Release);
}
";
        assert!(check(release).is_empty());
        // Initializing a field OF the new node with Relaxed is fine: the
        // allocation is the receiver, not the published value.
        let init = "
fn push(&self) {
    let new = Owned::new(Node::default());
    new.next.store(top, Relaxed);
    self.top.compare_exchange(top, new, Release, Relaxed, guard);
}
";
        assert!(check(init).is_empty(), "{:?}", check(init));
    }

    #[test]
    fn ord002_deref_of_relaxed_load() {
        let fire = "
fn drop(&mut self) {
    let node = self.top.load(Relaxed, guard);
    let next = node.deref().next;
}
";
        let f = check(fire);
        assert_eq!(rules_of(&f), ["ORD002"]);
        assert_eq!(f[0].receiver, "self.top");
        let acquire = "
fn walk(&self) {
    let node = self.top.load(Acquire, guard);
    let next = node.deref().next;
}
";
        assert!(check(acquire).is_empty());
        let no_deref = "
fn peek(&self) {
    let v = self.version.load(Relaxed);
    if v == 0 { return; }
}
";
        assert!(check(no_deref).is_empty());
    }

    #[test]
    fn ord003_failure_stronger_than_success() {
        // The unused Acquire failure value also fires ORD005 — the two
        // rules diagnose independent aspects of the same bad pair.
        let fire = "fn f(&self) { self.v.compare_exchange(a, b, Relaxed, Acquire); }";
        assert_eq!(rules_of(&check(fire)), ["ORD003", "ORD005"]);
        let ok = "fn f(&self) { self.v.compare_exchange(a, b, AcqRel, Acquire); }";
        assert_ne!(rules_of(&check(ok)), ["ORD003"]);
    }

    #[test]
    fn ord004_seqcst_without_dekker_pattern() {
        let fire = "fn bump(&self) { self.count.fetch_add(1, SeqCst); }";
        assert_eq!(rules_of(&check(fire)), ["ORD004"]);
        let dekker = "
fn lock(&self) {
    self.flag.store(true, SeqCst);
    if self.other.load(SeqCst) { return; }
}
";
        assert!(check(dekker).is_empty());
        let fenced = "
fn lock(&self) {
    self.flag.store(true, SeqCst);
    fence(SeqCst);
}
";
        assert!(check(fenced).is_empty());
    }

    #[test]
    fn ord005_unused_failure_value_with_acquire() {
        let fire = "
fn update(&self) {
    match self.v.compare_exchange_weak(cur, next, AcqRel, Acquire) {
        Ok(p) => return,
        Err(actual) => cur = actual,
    }
}
";
        assert_eq!(rules_of(&check(fire)), ["ORD005"]);
        let relaxed = "
fn update(&self) {
    match self.v.compare_exchange_weak(cur, next, AcqRel, Relaxed) {
        Ok(p) => return,
        Err(actual) => cur = actual,
    }
}
";
        assert!(check(relaxed).is_empty());
        let derefs = "
fn retry(&self) {
    match self.head.compare_exchange(cur, next, Release, Acquire) {
        Ok(p) => return,
        Err(seen) => { let n = seen.deref(); }
    }
}
";
        assert!(check(derefs).is_empty(), "{:?}", check(derefs));
    }

    #[test]
    fn ord006_unpaired_fences() {
        let fire = "fn f(&self) { self.v.store(1, Relaxed); fence(Release); }";
        assert_eq!(rules_of(&check(fire)), ["ORD006"]);
        let paired = "
fn write(&self) {
    let v = self.version.load(Relaxed);
    fence(Release);
    self.version.store(v, Release);
}
";
        assert!(check(paired).is_empty());
        let acquire_fire = "fn f(&self) { fence(Acquire); self.v.load(Relaxed); }";
        assert_eq!(rules_of(&check(acquire_fire)), ["ORD006"]);
    }
}
