//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::{Strategy, TestRng};

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.clone().generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { element, size }
}
