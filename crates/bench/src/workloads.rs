//! Purpose-built workloads for experiments that need direct control over
//! per-task execution time (the Figure 9 CML sweep), beyond what the
//! general [`WorkloadSpec`](lfrt_sim::workload::WorkloadSpec) recipe offers.

use lfrt_sim::{AccessKind, ObjectId, Segment, TaskSpec, Ticks};
use lfrt_tuf::Tuf;
use lfrt_uam::{ArrivalGenerator, ArrivalTrace, PeriodicArrivals, Uam};

/// A set of `n` identical periodic tasks: each job computes `compute` ticks
/// split around `accesses` writes to `objects` shared objects (round-robin),
/// with window `window`, critical time `critical`, unit-step TUFs, and
/// phases staggered by `window / n`.
///
/// The approximate load is `n · compute / window`.
///
/// # Panics
///
/// Panics if `n`, `window`, `critical`, or `compute` is zero.
pub fn uniform_periodic(
    n: usize,
    compute: Ticks,
    window: Ticks,
    critical: Ticks,
    accesses: usize,
    objects: usize,
    horizon: Ticks,
) -> (Vec<TaskSpec>, Vec<ArrivalTrace>) {
    assert!(n > 0 && window > 0 && critical > 0 && compute > 0);
    let mut tasks = Vec::with_capacity(n);
    let mut traces = Vec::with_capacity(n);
    for i in 0..n {
        let mut segments = Vec::new();
        let chunks = accesses as Ticks + 1;
        let base = compute / chunks;
        let rem = compute % chunks;
        for c in 0..chunks {
            let chunk = base + u64::from(c < rem);
            if chunk > 0 {
                segments.push(Segment::Compute(chunk));
            }
            if c < accesses as Ticks && objects > 0 {
                let object = (i + c as usize) % objects;
                segments.push(Segment::Access {
                    object: ObjectId::new(object),
                    kind: AccessKind::Write,
                });
            }
        }
        tasks.push(
            TaskSpec::builder(format!("u{i}"))
                .tuf(Tuf::step(1.0, critical).expect("critical > 0"))
                .uam(Uam::periodic(window))
                .segments(segments)
                .build()
                .expect("non-empty segments"),
        );
        let phase = (window / n as u64) * i as u64;
        traces.push(PeriodicArrivals::with_phase(window, phase).generate(horizon));
    }
    (tasks, traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_requested_shape() {
        let (tasks, traces) = uniform_periodic(10, 100, 10_000, 9_000, 4, 10, 100_000);
        assert_eq!(tasks.len(), 10);
        for t in &tasks {
            assert_eq!(t.compute_ticks(), 100);
            assert_eq!(t.access_count(), 4);
            assert_eq!(t.tuf().critical_time(), 9_000);
        }
        // Staggered phases: first arrivals differ.
        assert_ne!(traces[0].times()[0], traces[1].times()[0]);
        // Load = 10 * 100 / 10_000 = 0.1.
        let load: f64 = tasks.iter().map(TaskSpec::approximate_load).sum::<f64>();
        assert!((load - 10.0 * 100.0 / 9_000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_accesses_supported() {
        let (tasks, _) = uniform_periodic(2, 50, 1_000, 900, 0, 0, 5_000);
        assert_eq!(tasks[0].access_count(), 0);
    }
}
