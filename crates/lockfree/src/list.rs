use std::fmt;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};

use crossbeam::epoch::{self, Atomic, Guard, Owned, Shared};
use crossbeam::utils::Backoff;

use crate::pool::{self, RawPool};
use crate::stats::OpStats;

/// A lock-free sorted linked list (set of `u64` keys).
///
/// Lock-free linked lists are the third classic structure the paper's §1.1
/// surveys (Valois, PODC'95 \[26\]); this implementation follows the
/// refinement by Harris: logically delete a node by marking its `next`
/// pointer (the mark is packed into the pointer's low tag bit), then
/// physically unlink during traversal. Memory is reclaimed through
/// `crossbeam`'s epochs.
///
/// All three operations (`insert`, `remove`, `contains`) are lock-free:
/// some operation always completes; an individual operation retries when a
/// concurrent CAS wins, and every retry is counted in [`LockFreeList::stats`].
///
/// # Examples
///
/// ```
/// use lfrt_lockfree::LockFreeList;
///
/// let list = LockFreeList::new();
/// assert!(list.insert(3));
/// assert!(list.insert(1));
/// assert!(!list.insert(3), "duplicate");
/// assert!(list.contains(1));
/// assert!(list.remove(1));
/// assert!(!list.contains(1));
/// ```
pub struct LockFreeList {
    head: Atomic<Node>,
    stats: OpStats,
    /// Node allocations come from (and unlinked nodes recycle into) this
    /// epoch-integrated pool; see [`crate::pool`].
    pool: &'static RawPool,
}

struct Node {
    key: u64,
    next: Atomic<Node>,
}

/// Tag bit 1 on `next` marks the owning node as logically deleted.
const MARK: usize = 1;

// SAFETY: all shared mutation is CAS on `Atomic` pointers; reclamation is
// epoch-protected; keys are plain `u64`s.
unsafe impl Send for LockFreeList {}
// SAFETY: as above.
unsafe impl Sync for LockFreeList {}

impl LockFreeList {
    /// Creates an empty list whose nodes come from (and recycle into) the
    /// shared epoch-integrated node pool — allocation-free in steady state.
    pub fn new() -> Self {
        Self {
            head: Atomic::null(),
            stats: OpStats::new(),
            pool: RawPool::of::<Node>(),
        }
    }

    /// Acquires a block from the pool and initializes it as a node.
    fn alloc_node(&self, key: u64) -> Owned<Node> {
        let block = self.pool.acquire().cast::<Node>();
        // SAFETY: `acquire` hands out an exclusively owned, properly
        // aligned global-allocator block of `Node`'s layout; `write`
        // initializes every field without reading the old contents.
        unsafe {
            block.write(Node {
                key,
                next: Atomic::null(),
            });
            Owned::from_raw(block)
        }
    }

    /// Inserts `key`; returns `false` if it was already present.
    pub fn insert(&self, key: u64) -> bool {
        let mut trace = lfrt_trace::CasOp::start(lfrt_trace::Site::ListInsert);
        let guard = &epoch::pin();
        let mut new = self.alloc_node(key);
        let backoff = Backoff::new();
        loop {
            self.stats.attempt();
            trace.attempt();
            let Some((prev, curr)) = self.search(key, guard) else {
                self.stats.retry();
                trace.retry();
                backoff.spin();
                continue;
            };
            // SAFETY: `curr` protected by `guard`.
            if let Some(node) = unsafe { curr.as_ref() } {
                if node.key == key {
                    trace.success(); // completed: key already present
                    return false;
                }
            }
            new.next.store(curr, Relaxed);
            match prev.compare_exchange(curr, new, Release, Relaxed, guard) {
                Ok(_) => {
                    trace.success();
                    return true;
                }
                Err(e) => {
                    new = e.new;
                    self.stats.retry();
                    trace.retry();
                    backoff.spin();
                }
            }
        }
    }

    /// Removes `key`; returns `false` if it was absent.
    pub fn remove(&self, key: u64) -> bool {
        let mut trace = lfrt_trace::CasOp::start(lfrt_trace::Site::ListRemove);
        let guard = &epoch::pin();
        let backoff = Backoff::new();
        loop {
            self.stats.attempt();
            trace.attempt();
            let Some((prev, curr)) = self.search(key, guard) else {
                self.stats.retry();
                trace.retry();
                backoff.spin();
                continue;
            };
            // SAFETY: `curr` protected by `guard`.
            let Some(node) = (unsafe { curr.as_ref() }) else {
                trace.success(); // completed: key absent
                return false;
            };
            if node.key != key {
                trace.success(); // completed: key absent
                return false;
            }
            let next = node.next.load(Acquire, guard);
            if next.tag() & MARK != 0 {
                // Someone else is already deleting it.
                self.stats.retry();
                trace.retry();
                backoff.spin();
                continue;
            }
            // Logical deletion: mark the node's next pointer.
            if node
                .next
                .compare_exchange(
                    next,
                    next.with_tag(next.tag() | MARK),
                    Release,
                    Relaxed,
                    guard,
                )
                .is_err()
            {
                self.stats.retry();
                trace.retry();
                backoff.spin();
                continue;
            }
            // Physical unlink (best effort; search() also helps).
            if prev
                .compare_exchange(curr, next.with_tag(0), Release, Relaxed, guard)
                .is_ok()
            {
                // SAFETY: unlinked; a node is a plain key plus a pointer
                // (nothing to drop), so it recycles into the pool after the
                // same grace period that used to gate its free.
                unsafe { guard.defer_recycle(curr, pool::recycle_raw, self.pool.ctx()) };
            }
            trace.success();
            return true;
        }
    }

    /// The node pool backing this list (for stats and teardown accounting).
    pub fn node_pool(&self) -> &'static RawPool {
        self.pool
    }

    /// Whether `key` is present (and not logically deleted).
    pub fn contains(&self, key: u64) -> bool {
        let guard = &epoch::pin();
        let mut curr = self.head.load(Acquire, guard);
        // SAFETY: every dereferenced pointer was loaded under `guard`.
        while let Some(node) = unsafe { curr.as_ref() } {
            let next = node.next.load(Acquire, guard);
            if node.key >= key {
                return node.key == key && next.tag() & MARK == 0;
            }
            curr = next.with_tag(0);
        }
        false
    }

    /// Snapshot of the current keys, in order (racy under concurrency).
    pub fn to_vec(&self) -> Vec<u64> {
        let guard = &epoch::pin();
        let mut out = Vec::new();
        let mut curr = self.head.load(Acquire, guard);
        // SAFETY: protected by `guard`.
        while let Some(node) = unsafe { curr.as_ref() } {
            let next = node.next.load(Acquire, guard);
            if next.tag() & MARK == 0 {
                out.push(node.key);
            }
            curr = next.with_tag(0);
        }
        out
    }

    /// Number of (unmarked) keys — a racy snapshot.
    pub fn len(&self) -> usize {
        self.to_vec().len()
    }

    /// Whether the list is observed empty.
    pub fn is_empty(&self) -> bool {
        self.to_vec().is_empty()
    }

    /// The attempt/retry counters of this list.
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }

    /// Finds the first node with `node.key >= key`, unlinking marked nodes
    /// along the way. Returns `(prev_link, curr)` where `*prev_link`'s
    /// successor is `curr`; `None` means a helping CAS failed and the caller
    /// should restart.
    fn search<'g>(
        &'g self,
        key: u64,
        guard: &'g Guard,
    ) -> Option<(&'g Atomic<Node>, Shared<'g, Node>)> {
        let mut prev: &Atomic<Node> = &self.head;
        let mut curr = prev.load(Acquire, guard);
        loop {
            // SAFETY: protected by `guard`.
            let Some(node) = (unsafe { curr.as_ref() }) else {
                return Some((prev, curr));
            };
            let next = node.next.load(Acquire, guard);
            if next.tag() & MARK != 0 {
                // Help unlink the logically deleted node.
                match prev.compare_exchange(
                    curr.with_tag(0),
                    next.with_tag(0),
                    Release,
                    Relaxed,
                    guard,
                ) {
                    Ok(_) => {
                        // SAFETY: unlinked; trivially droppable node, so
                        // recycle it after its grace period (see `remove`).
                        unsafe { guard.defer_recycle(curr, pool::recycle_raw, self.pool.ctx()) };
                        curr = next.with_tag(0);
                        continue;
                    }
                    Err(_) => return None,
                }
            }
            if node.key >= key {
                return Some((prev, curr));
            }
            prev = &node.next;
            curr = next.with_tag(0);
        }
    }
}

impl Default for LockFreeList {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for LockFreeList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockFreeList")
            .field("stats", &self.stats.snapshot())
            .finish_non_exhaustive()
    }
}

impl Drop for LockFreeList {
    fn drop(&mut self) {
        // SAFETY: `&mut self` guarantees exclusive access.
        unsafe {
            let guard = epoch::unprotected();
            let mut node = self.head.load(Relaxed, guard);
            while !node.is_null() {
                let next = node.deref().next.load(Relaxed, guard).with_tag(0);
                drop(node.into_owned());
                node = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sorted_insertion() {
        let list = LockFreeList::new();
        for k in [5u64, 1, 9, 3, 7] {
            assert!(list.insert(k));
        }
        assert_eq!(list.to_vec(), vec![1, 3, 5, 7, 9]);
        assert_eq!(list.len(), 5);
    }

    #[test]
    fn duplicates_rejected() {
        let list = LockFreeList::new();
        assert!(list.insert(4));
        assert!(!list.insert(4));
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn remove_and_contains() {
        let list = LockFreeList::new();
        for k in 0..10 {
            list.insert(k);
        }
        assert!(list.remove(5));
        assert!(!list.remove(5));
        assert!(!list.contains(5));
        assert!(list.contains(4));
        assert_eq!(list.to_vec(), vec![0, 1, 2, 3, 4, 6, 7, 8, 9]);
    }

    #[test]
    fn remove_head_and_tail() {
        let list = LockFreeList::new();
        for k in [1u64, 2, 3] {
            list.insert(k);
        }
        assert!(list.remove(1));
        assert!(list.remove(3));
        assert_eq!(list.to_vec(), vec![2]);
    }

    #[test]
    fn empty_list_operations() {
        let list = LockFreeList::new();
        assert!(list.is_empty());
        assert!(!list.contains(0));
        assert!(!list.remove(0));
    }

    #[test]
    fn drop_frees_all_nodes() {
        let list = LockFreeList::new();
        for k in 0..100 {
            list.insert(k);
        }
        drop(list);
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 500;
        let list = Arc::new(LockFreeList::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let list = Arc::clone(&list);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        assert!(list.insert(t * PER_THREAD + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("inserter panicked");
        }
        let v = list.to_vec();
        assert_eq!(v.len() as u64, THREADS * PER_THREAD);
        assert!(v.windows(2).all(|w| w[0] < w[1]), "sorted and unique");
    }

    #[test]
    fn concurrent_insert_remove_churn() {
        let list = Arc::new(LockFreeList::new());
        for k in 0..200 {
            list.insert(k);
        }
        let inserter = {
            let list = Arc::clone(&list);
            std::thread::spawn(move || {
                for k in 200..700u64 {
                    list.insert(k);
                }
            })
        };
        let remover = {
            let list = Arc::clone(&list);
            std::thread::spawn(move || {
                let mut removed = 0;
                for k in 0..200u64 {
                    if list.remove(k) {
                        removed += 1;
                    }
                }
                removed
            })
        };
        inserter.join().expect("inserter panicked");
        let removed = remover.join().expect("remover panicked");
        assert_eq!(removed, 200);
        let v = list.to_vec();
        assert_eq!(v, (200..700).collect::<Vec<_>>());
    }
}
