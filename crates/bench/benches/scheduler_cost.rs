//! The §3.6/§5 cost ablation: lock-based RUA's `O(n² log n)` scheduling
//! cost versus lock-free RUA's `O(n²)` versus EDF's `O(n log n)`, measured
//! both in wall-clock time (Criterion) and in the reported operation counts
//! (printed once per population size).
//!
//! Lock-based RUA is benchmarked on populations with deep dependency
//! chains — the structure that exists *because* of locks; lock-free RUA and
//! EDF see independent jobs, the only structure possible without locks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lfrt_bench::synth::SyntheticWorkload;
use lfrt_core::{Edf, RuaLockBased, RuaLockFree, RuaLockFreeSampled};
use lfrt_sim::UaScheduler;

fn scheduler_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_cost");
    let workload = SyntheticWorkload::new(256);
    for &n in &[8usize, 16, 32, 64, 128, 256] {
        let chained = workload.chained(n, (n / 4).max(2));
        let tight = workload.tight_chained(n, (n / 4).max(2));
        let independent = workload.independent(n);

        // Print the abstract operation counts once per size: the honest
        // asymptotic comparison charged by the simulator's overhead model.
        let ops_lb = RuaLockBased::new().schedule(&chained).ops;
        let ops_lb_tight = RuaLockBased::new().schedule(&tight).ops;
        let ops_lf = RuaLockFree::new().schedule(&independent).ops;
        let ops_sampled = RuaLockFreeSampled::new(2, 1).schedule(&independent).ops;
        let ops_edf = Edf::new().schedule(&independent).ops;
        println!(
            "n = {n:>3}: ops lock-based = {ops_lb:>8} (tight {ops_lb_tight:>8}), lock-free = {ops_lf:>8}, sampled(k=2) = {ops_sampled:>7}, edf = {ops_edf:>6}"
        );

        group.bench_with_input(BenchmarkId::new("rua_lock_based", n), &n, |b, _| {
            let mut s = RuaLockBased::new();
            b.iter(|| std::hint::black_box(s.schedule(&chained)));
        });
        group.bench_with_input(BenchmarkId::new("rua_lock_based_tight", n), &n, |b, _| {
            let mut s = RuaLockBased::new();
            b.iter(|| std::hint::black_box(s.schedule(&tight)));
        });
        group.bench_with_input(BenchmarkId::new("rua_lock_free", n), &n, |b, _| {
            let mut s = RuaLockFree::new();
            b.iter(|| std::hint::black_box(s.schedule(&independent)));
        });
        group.bench_with_input(BenchmarkId::new("rua_lock_free_sampled", n), &n, |b, _| {
            let mut s = RuaLockFreeSampled::new(2, 1);
            b.iter(|| std::hint::black_box(s.schedule(&independent)));
        });
        group.bench_with_input(BenchmarkId::new("edf", n), &n, |b, _| {
            let mut s = Edf::new();
            b.iter(|| std::hint::black_box(s.schedule(&independent)));
        });
    }
    group.finish();
}

criterion_group!(benches, scheduler_cost);
criterion_main!(benches);
