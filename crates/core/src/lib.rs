//! The RUA utility-accrual schedulers — the primary contribution of
//! *Lock-Free Synchronization for Dynamic Embedded Real-Time Systems*
//! (Cho, Ravindran, Jensen — DATE 2006).
//!
//! RUA (Wu, Ravindran, Jensen, Balli — RTCSA'04) maximizes total accrued
//! utility for arbitrarily-shaped TUFs under mutual-exclusion object
//! sharing. Its major steps at every scheduling event are:
//!
//! 1. compute each job's *dependency chain* (who must run before whom to
//!    respect lock ownership) — [`dependency`];
//! 2. compute each chain's *potential utility density* (utility per unit
//!    time of running the job and everything it depends on) — [`pud`];
//! 3. detect and resolve deadlocks (cycles in the chains) — [`deadlock`];
//! 4. examine chains in decreasing-PUD order, tentatively inserting each
//!    into an earliest-critical-time-first schedule while respecting
//!    dependencies, keeping the insertion only if the schedule stays
//!    feasible — [`schedule`].
//!
//! The paper's observation: with lock-free object sharing, dependencies
//! never arise, collapsing every chain to a single job — steps 1 and 3
//! vanish and the algorithm drops from `O(n² log n)` to `O(n²)`. This crate
//! implements both variants plus an EDF baseline, all against the
//! [`UaScheduler`](lfrt_sim::UaScheduler) interface of the simulator, and
//! each reports an honest operation count so the simulator can charge
//! scheduling overhead at the algorithms' true asymptotic growth.
//!
//! * [`RuaLockBased`] — full RUA with dependency chains (`O(n² log n)`);
//! * [`RuaLockFree`] — lock-free RUA, chains collapsed (`O(n²)`);
//! * [`Edf`] — earliest-critical-time-first, the underload-optimal baseline
//!   that RUA defaults to for step TUFs without sharing;
//! * [`Lbesa`] — Locke's best-effort scheduler (shed-lowest-density), the
//!   other classic UA algorithm, as a cross-check;
//! * [`Rm`], [`Llf`] — the static and fully-dynamic priority baselines of
//!   the paper's §4.1 preemption taxonomy.
//!
//! # Examples
//!
//! ```
//! use lfrt_core::RuaLockFree;
//! use lfrt_sim::{Engine, Segment, SharingMode, SimConfig, TaskSpec};
//! use lfrt_tuf::Tuf;
//! use lfrt_uam::{ArrivalTrace, Uam};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let task = TaskSpec::builder("sensor")
//!     .tuf(Tuf::linear_decreasing(10.0, 1_000)?)
//!     .uam(Uam::new(1, 2, 1_000)?)
//!     .segments(vec![Segment::Compute(100)])
//!     .build()?;
//! let outcome = Engine::new(
//!     vec![task],
//!     vec![ArrivalTrace::new(vec![0, 500])],
//!     SimConfig::new(SharingMode::LockFree { access_ticks: 5 }),
//! )?
//! .run(RuaLockFree::new());
//! assert_eq!(outcome.metrics.completed(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod construct;
pub mod deadlock;
pub mod dependency;
mod edf;
mod edf_pi;
mod lbesa;
mod llf;
mod lock_based;
mod lock_free;
mod lock_free_sampled;
mod ops;
pub mod pud;
mod rm;
pub mod schedule;

pub use edf::Edf;
pub use edf_pi::EdfPi;
pub use lbesa::Lbesa;
pub use llf::Llf;
pub use lock_based::RuaLockBased;
pub use lock_free::RuaLockFree;
pub use lock_free_sampled::RuaLockFreeSampled;
pub use ops::OpsCounter;
pub use rm::Rm;
