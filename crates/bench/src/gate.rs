//! The CI perf-regression gate: extracts the few metrics that are honest on
//! a 1-CPU CI runner from a full report document, compares them against a
//! committed baseline (`BENCH_baseline.json`), and fails past a threshold.
//!
//! **Gated metrics** (see ISSUE/EXPERIMENTS for why exactly these):
//!
//! * `uncontended_ops/<structure>/ns_per_op_median` — single-threaded
//!   median cost per operation for each lock-free structure. Uncontended
//!   numbers are stable on one CPU; contended deltas are not observable
//!   there and are deliberately *not* gated.
//! * `churn_footprint/peak_growth_bytes` — peak live heap growth of the
//!   allocation-churn workload: the reclamation regression canary.
//! * `churn_footprint/pool_churn/<structure>/allocs_per_op` — steady-state
//!   allocator calls per push+pop pair, pooled and boxed (PR 9). Values are
//!   floored at [`ALLOCS_PER_OP_FLOOR`] on extraction: the pooled rates sit
//!   at ~0.0 where relative deltas are meaningless jitter, so the gate
//!   compares against the floor and only a real regression (a pooled
//!   structure re-heating the allocator toward the boxed ~1.0) trips it.
//!
//! The baseline file is a small standalone document:
//!
//! ```text
//! {
//!   "schema_version": 1,
//!   "kind": "lfrt-bench-baseline",
//!   "meta": { "git_rev": "...", "threads": N, "quick": bool },
//!   "gate_metrics": { "<key>": <value>, ... }
//! }
//! ```
//!
//! written by `compare_reports --write-baseline` (the re-baseline
//! workflow; see README). Comparison is asymmetric on purpose: only
//! *worse* (larger) values past the threshold fail; improvements and
//! metrics present only in the fresh report are reported but pass — adding
//! a structure must not break CI before the baseline catches up. A metric
//! present in the baseline but missing from the fresh report **fails**:
//! silently losing coverage is itself a regression.

use crate::json::Json;

/// Relative-regression threshold the gate defaults to: 15% worse fails.
pub const DEFAULT_THRESHOLD: f64 = 0.15;

/// Extraction floor for the `allocs_per_op` metrics (see module docs).
pub const ALLOCS_PER_OP_FLOOR: f64 = 0.05;

/// Flat `key -> value` view of the gated metrics of a document.
pub type Metrics = Vec<(String, f64)>;

/// Pulls the gated metrics out of a full report document (the
/// `paper_all --json` / single-binary `--json` format).
pub fn extract(doc: &Json) -> Metrics {
    let mut out = Metrics::new();
    let Some(experiments) = doc.get("experiments").and_then(Json::as_array) else {
        return out;
    };
    for exp in experiments {
        let name = exp.get("experiment").and_then(Json::as_str).unwrap_or("");
        let Some(points) = exp.get("points").and_then(Json::as_array) else {
            continue;
        };
        match name {
            "uncontended_ops" => {
                for point in points {
                    let structure = point
                        .get("params")
                        .and_then(|p| p.get("structure"))
                        .and_then(Json::as_str);
                    let median = point
                        .get("timing")
                        .and_then(|t| t.get("ns_per_op_median"))
                        .and_then(Json::as_f64);
                    if let (Some(structure), Some(median)) = (structure, median) {
                        out.push((format!("{name}/{structure}/ns_per_op_median"), median));
                    }
                }
            }
            "churn_footprint" => {
                for point in points {
                    if let Some(peak) = point
                        .get("timing")
                        .and_then(|t| t.get("peak_growth_bytes"))
                        .and_then(Json::as_f64)
                    {
                        out.push((format!("{name}/peak_growth_bytes"), peak));
                    }
                    let row = point
                        .get("params")
                        .and_then(|p| p.get("pool_churn"))
                        .and_then(Json::as_str);
                    let apo = point
                        .get("timing")
                        .and_then(|t| t.get("allocs_per_op"))
                        .and_then(Json::as_f64);
                    if let (Some(row), Some(apo)) = (row, apo) {
                        out.push((
                            format!("{name}/pool_churn/{row}/allocs_per_op"),
                            apo.max(ALLOCS_PER_OP_FLOOR),
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Parses the committed baseline document into its gated metrics.
///
/// # Errors
///
/// Returns a description of what is malformed.
pub fn baseline_metrics(doc: &Json) -> Result<Metrics, String> {
    if doc.get("kind").and_then(Json::as_str) != Some("lfrt-bench-baseline") {
        return Err("not a baseline document (missing kind = lfrt-bench-baseline)".into());
    }
    let Some(Json::Obj(fields)) = doc.get("gate_metrics") else {
        return Err("baseline document has no gate_metrics object".into());
    };
    fields
        .iter()
        .map(|(k, v)| {
            v.as_f64()
                .map(|v| (k.clone(), v))
                .ok_or_else(|| format!("gate metric {k} is not a number"))
        })
        .collect()
}

/// Renders the baseline document for `metrics` (the `--write-baseline`
/// output).
pub fn baseline_document(metrics: &Metrics, git_rev: &str, threads: usize, quick: bool) -> Json {
    Json::Obj(vec![
        ("schema_version".into(), 1u64.into()),
        ("kind".into(), "lfrt-bench-baseline".into()),
        (
            "meta".into(),
            Json::Obj(vec![
                ("generator".into(), "lfrt-bench".into()),
                ("git_rev".into(), git_rev.into()),
                ("threads".into(), threads.into()),
                ("quick".into(), quick.into()),
            ]),
        ),
        (
            "gate_metrics".into(),
            Json::Obj(
                metrics
                    .iter()
                    .map(|(k, v)| (k.clone(), (*v).into()))
                    .collect(),
            ),
        ),
    ])
}

/// One gate comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Metric key (`experiment/point/metric`).
    pub key: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value (after any `--scale` injection).
    pub fresh: f64,
    /// `(fresh - baseline) / baseline`; positive is worse.
    pub delta: f64,
    /// Whether this row alone fails the gate.
    pub regressed: bool,
}

/// Result of one gate run.
#[derive(Debug, Clone, Default)]
pub struct Outcome {
    /// Per-metric comparisons, in baseline order.
    pub rows: Vec<Row>,
    /// Metrics in the fresh report with no baseline (pass, but should
    /// prompt a re-baseline).
    pub unbaselined: Vec<String>,
    /// Failures: regressed rows and baseline metrics missing from the
    /// fresh report. Empty means the gate passes.
    pub failures: Vec<String>,
}

/// Compares fresh metrics against the baseline at `threshold` (relative).
pub fn compare(baseline: &Metrics, fresh: &Metrics, threshold: f64) -> Outcome {
    let mut out = Outcome::default();
    for (key, base) in baseline {
        let Some((_, measured)) = fresh.iter().find(|(k, _)| k == key) else {
            out.failures.push(format!(
                "{key}: present in baseline but missing from report"
            ));
            continue;
        };
        let delta = if *base != 0.0 {
            (measured - base) / base
        } else if *measured == 0.0 {
            0.0
        } else {
            f64::INFINITY
        };
        let regressed = delta > threshold;
        if regressed {
            out.failures.push(format!(
                "{key}: {measured:.2} vs baseline {base:.2} (+{:.1}% > {:.0}% threshold)",
                delta * 100.0,
                threshold * 100.0
            ));
        }
        out.rows.push(Row {
            key: key.clone(),
            baseline: *base,
            fresh: *measured,
            delta,
            regressed,
        });
    }
    for (key, _) in fresh {
        if !baseline.iter().any(|(k, _)| k == key) {
            out.unbaselined.push(key.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn report_doc(stack_ns: f64, peak: f64) -> Json {
        parse(&format!(
            r#"{{
              "schema_version": 1,
              "meta": {{"generator": "lfrt-bench"}},
              "experiments": [
                {{
                  "experiment": "uncontended_ops",
                  "figure": "table:uncontended",
                  "title": "t",
                  "config": {{}},
                  "points": [
                    {{"params": {{"structure": "stack"}}, "seeds": [], "metrics": {{}},
                      "timing": {{"ns_per_op_median": {stack_ns}}}}}
                  ]
                }},
                {{
                  "experiment": "churn_footprint",
                  "figure": "table:churn",
                  "title": "t",
                  "config": {{}},
                  "points": [
                    {{"params": {{"threads": 4}}, "seeds": [], "metrics": {{}},
                      "timing": {{"peak_growth_bytes": {peak}}}}},
                    {{"params": {{"pool_churn": "stack_pooled"}}, "seeds": [], "metrics": {{}},
                      "timing": {{"allocs_per_op": 0.0}}}},
                    {{"params": {{"pool_churn": "stack_boxed"}}, "seeds": [], "metrics": {{}},
                      "timing": {{"allocs_per_op": 1.0}}}}
                  ]
                }}
              ]
            }}"#
        ))
        .expect("valid test doc")
    }

    #[test]
    fn extracts_the_two_gated_experiments() {
        let metrics = extract(&report_doc(27.5, 400000.0));
        assert_eq!(
            metrics,
            vec![
                ("uncontended_ops/stack/ns_per_op_median".to_string(), 27.5),
                ("churn_footprint/peak_growth_bytes".to_string(), 400000.0),
                (
                    // Floored: the measured 0.0 compares as the floor so
                    // near-zero jitter cannot divide by zero or explode.
                    "churn_footprint/pool_churn/stack_pooled/allocs_per_op".to_string(),
                    ALLOCS_PER_OP_FLOOR,
                ),
                (
                    "churn_footprint/pool_churn/stack_boxed/allocs_per_op".to_string(),
                    1.0,
                ),
            ]
        );
    }

    #[test]
    fn pooled_allocs_regression_to_boxed_rates_fails_the_gate() {
        let base = extract(&report_doc(27.5, 400000.0));
        let mut fresh = base.clone();
        // The pool stops recycling: pooled allocs/op jumps to the boxed ~1.0.
        for (k, v) in &mut fresh {
            if k.ends_with("stack_pooled/allocs_per_op") {
                *v = 1.0;
            }
        }
        let outcome = compare(&base, &fresh, DEFAULT_THRESHOLD);
        assert_eq!(outcome.failures.len(), 1);
        assert!(outcome.failures[0].contains("stack_pooled/allocs_per_op"));
    }

    #[test]
    fn baseline_roundtrips_through_its_document() {
        let metrics = extract(&report_doc(27.5, 400000.0));
        let doc = baseline_document(&metrics, "abc", 4, true);
        let parsed = parse(&doc.to_string_pretty()).expect("baseline parses");
        assert_eq!(baseline_metrics(&parsed).expect("well-formed"), metrics);
        // A full report is not a baseline.
        assert!(baseline_metrics(&report_doc(1.0, 1.0)).is_err());
    }

    #[test]
    fn within_threshold_passes_and_improvement_passes() {
        let base = extract(&report_doc(27.5, 400000.0));
        let fresh = extract(&report_doc(29.0, 200000.0)); // +5.5%, -50%
        let outcome = compare(&base, &fresh, DEFAULT_THRESHOLD);
        assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
        assert_eq!(outcome.rows.len(), 4);
        assert!(!outcome.rows[0].regressed);
    }

    #[test]
    fn injected_2x_regression_fails() {
        let base = extract(&report_doc(27.5, 400000.0));
        let fresh = extract(&report_doc(55.0, 400000.0)); // 2x slower stack
        let outcome = compare(&base, &fresh, DEFAULT_THRESHOLD);
        assert_eq!(outcome.failures.len(), 1);
        assert!(outcome.failures[0].contains("uncontended_ops/stack"));
        assert!(outcome.rows[0].regressed);
    }

    #[test]
    fn missing_metric_fails_but_new_metric_passes() {
        let base = vec![
            ("uncontended_ops/stack/ns_per_op_median".to_string(), 27.5),
            ("uncontended_ops/gone/ns_per_op_median".to_string(), 10.0),
        ];
        let fresh = vec![
            ("uncontended_ops/stack/ns_per_op_median".to_string(), 27.0),
            ("uncontended_ops/new/ns_per_op_median".to_string(), 5.0),
        ];
        let outcome = compare(&base, &fresh, DEFAULT_THRESHOLD);
        assert_eq!(outcome.failures.len(), 1);
        assert!(outcome.failures[0].contains("gone"));
        assert_eq!(
            outcome.unbaselined,
            vec!["uncontended_ops/new/ns_per_op_median".to_string()]
        );
    }

    #[test]
    fn zero_baseline_edge_cases() {
        let base = vec![("churn_footprint/peak_growth_bytes".to_string(), 0.0)];
        let ok = vec![("churn_footprint/peak_growth_bytes".to_string(), 0.0)];
        assert!(compare(&base, &ok, DEFAULT_THRESHOLD).failures.is_empty());
        let bad = vec![("churn_footprint/peak_growth_bytes".to_string(), 1.0)];
        assert_eq!(compare(&base, &bad, DEFAULT_THRESHOLD).failures.len(), 1);
    }
}
