//! **Figure 9** — Critical-time Miss Load (CML) versus mean job execution
//! time for ideal, lock-free, and lock-based RUA.
//!
//! The CML of a scheduler is the approximate load `AL = Σ uᵢ/Cᵢ` *after
//! which* it begins to miss critical times. An ideal scheduler has CML 1.0;
//! real implementations fall short for small job execution times because
//! per-event overhead (scheduling plus object access) eats the budget.
//!
//! For each mean execution time the binary binary-searches the largest AL at
//! which no critical time is missed, under:
//!
//! * **ideal RUA** — zero-cost objects (scheduler overhead still charged);
//! * **lock-free RUA** — `s`-tick accesses with retry semantics;
//! * **lock-based RUA** — `r`-tick critical sections, blocking, and
//!   lock/unlock scheduler activations.
//!
//! Expected shape (paper): lock-free tracks ideal closely and reaches CML
//! ≈ 1 around 10 µs jobs; lock-based needs jobs ~100× longer.
//!
//! Usage: `cargo run -p lfrt-bench --release --bin fig9_cml
//! [-- --r 400 --s 5 --nsop 0.2] [--json <path>] [--threads N] [--quick]`
//! (times in ticks = µs).

use lfrt_bench::json::{self, Point, Report};
use lfrt_bench::runner::Sweep;
use lfrt_bench::workloads::uniform_periodic;
use lfrt_bench::{table, Args};
use lfrt_core::{RuaLockBased, RuaLockFree, RuaLockFreeSampled};
use lfrt_sim::{Engine, OverheadModel, SharingMode, SimConfig, UaScheduler};

const TASKS: usize = 10;
const OBJECTS: usize = 10;
const ACCESSES: usize = 4;

#[derive(Clone, Copy)]
enum Discipline {
    Ideal,
    LockFree { s: u64 },
    LockFreeSampled { s: u64 },
    LockBased { r: u64 },
}

fn main() {
    let started = std::time::Instant::now();
    let args = Args::from_env();
    let trace = lfrt_bench::trace::Session::from_args(&args, "fig9_cml");
    let quick = args.quick();
    let r = args.get_u64("r", 400);
    let s = args.get_u64("s", 5);
    let ticks_per_op = args.get_f64("nsop", 0.2);
    // Bisection iterations: 7 resolves AL to ~0.01, 5 to ~0.04 (quick).
    let iters = args.get_u64("iters", if quick { 5 } else { 7 }) as u32;

    println!("# Figure 9: Critical-time Miss Load (1 tick = 1 µs)");
    println!("# r = {r} µs, s = {s} µs, scheduler overhead = {ticks_per_op} µs/op");

    let exec_times: Vec<u64> = if quick {
        vec![5, 20, 100, 500, 2_000]
    } else {
        vec![5, 10, 20, 50, 100, 200, 500, 1_000, 2_000]
    };

    // One point per (execution time, discipline); each runs its own
    // bisection, so the pool load-balances the expensive long-horizon cells.
    const DISCIPLINE_NAMES: [&str; 4] = ["ideal", "lock_free", "lock_free_sampled", "lock_based"];
    let points: Vec<(u64, usize)> = exec_times
        .iter()
        .flat_map(|&exec| (0..4).map(move |d| (exec, d)))
        .collect();
    let results = Sweep::new("fig9", points)
        .threads(args.threads())
        .run(|&(exec, d)| {
            let discipline = match d {
                0 => Discipline::Ideal,
                1 => Discipline::LockFree { s },
                2 => Discipline::LockFreeSampled { s },
                _ => Discipline::LockBased { r },
            };
            cml(exec, discipline, ticks_per_op, iters)
        });

    let mut report = Report::new("fig9_cml", "9", "CML vs mean job execution time")
        .config("r_ticks", r)
        .config("s_ticks", s)
        .config("ticks_per_op", ticks_per_op)
        .config("bisection_iters", u64::from(iters))
        .config("num_tasks", TASKS)
        .config("num_objects", OBJECTS)
        .config("accesses_per_job", ACCESSES);

    let mut rows = Vec::new();
    for (i, &exec) in exec_times.iter().enumerate() {
        let cmls = &results[i * 4..(i + 1) * 4];
        let mut row = vec![exec.to_string()];
        row.extend(cmls.iter().map(|c| format!("{c:.2}")));
        rows.push(row);
        report.points.push(Point {
            params: vec![("exec_us".into(), exec.into())],
            seeds: Vec::new(), // deterministic periodic workload, seedless
            metrics: DISCIPLINE_NAMES
                .iter()
                .zip(cmls)
                .map(|(name, &cml)| (format!("cml_{name}"), cml.into()))
                .collect(),
            timing: Vec::new(),
        });
    }
    table::print(
        "Figure 9: CML vs mean job execution time (µs)",
        &[
            "exec (µs)",
            "ideal RUA",
            "lock-free RUA",
            "lf sampled (§3.6)",
            "lock-based RUA",
        ],
        &rows,
    );
    println!("\nshape check: lock-free ≈ ideal; lock-based needs far longer jobs to reach 1.0.");

    if let Some(path) = args.json_path() {
        let meta = json::RunMeta::capture(args.threads(), quick);
        json::write_reports(&path, &[report], meta, started).expect("write JSON report");
    }
    trace.finish(args.threads(), args.quick());
}

/// Binary-searches the largest AL at which the discipline misses no
/// critical times (`iters` bisection steps after the 1.2 probe).
fn cml(exec: u64, discipline: Discipline, ticks_per_op: f64, iters: u32) -> f64 {
    let mut lo = 0.0f64; // no-miss
    let mut hi = 1.2f64; // assume misses at 1.2 (checked below)
    if !misses(exec, discipline, hi, ticks_per_op) {
        return hi;
    }
    for _ in 0..iters {
        let mid = 0.5 * (lo + hi);
        if misses(exec, discipline, mid, ticks_per_op) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    lo
}

fn misses(exec: u64, discipline: Discipline, load: f64, ticks_per_op: f64) -> bool {
    if load <= 0.0 {
        return false;
    }
    // AL = N·exec / C with C = 0.9·W  =>  W = N·exec / (0.9·load).
    let window = ((TASKS as f64 * exec as f64) / (0.9 * load)).round() as u64;
    let window = window.max(TASKS as u64);
    let critical = ((0.9 * window as f64).round() as u64).max(exec + 1);
    // Enough windows for ~40 jobs per task.
    let horizon = window * 40;
    let (tasks, traces) =
        uniform_periodic(TASKS, exec, window, critical, ACCESSES, OBJECTS, horizon);
    let sharing = match discipline {
        Discipline::Ideal => SharingMode::Ideal,
        Discipline::LockFree { s } | Discipline::LockFreeSampled { s } => {
            SharingMode::LockFree { access_ticks: s }
        }
        Discipline::LockBased { r } => SharingMode::LockBased { access_ticks: r },
    };
    let config = SimConfig::new(sharing)
        .overhead(OverheadModel::per_op(ticks_per_op))
        .record_jobs(false);
    let metrics = match discipline {
        Discipline::LockBased { .. } => run(tasks, traces, config, RuaLockBased::new()),
        Discipline::LockFreeSampled { .. } => {
            run(tasks, traces, config, RuaLockFreeSampled::new(2, 1))
        }
        _ => run(tasks, traces, config, RuaLockFree::new()),
    };
    metrics.aborted() > 0
}

fn run<S: UaScheduler>(
    tasks: Vec<lfrt_sim::TaskSpec>,
    traces: Vec<lfrt_uam::ArrivalTrace>,
    config: SimConfig,
    scheduler: S,
) -> lfrt_sim::SimMetrics {
    Engine::new(tasks, traces, config)
        .expect("valid engine")
        .run(scheduler)
        .metrics
}
