//! Function extraction and per-body feature scanning.
//!
//! One pass over each cleaned file recovers the item structure the rules
//! need: every function body with its impl-qualified name (`Type::method`)
//! and visibility, plus the lexical features inside each body — call
//! sites, loops, CAS sites, backoff pacing, blocking/allocation tokens,
//! `defer_destroy` sites, and epoch-guard bindings with their taint and
//! escapes. Like `ordlint`, everything runs on blanked text
//! (`lfrt_srcscan::source`) so strings and comments can't fake a site,
//! and `#[cfg(test)]` items are skipped entirely.

use lfrt_srcscan::lex::{is_ident_char, matching, matching_back, prev_sig, receiver_chain};
use lfrt_srcscan::source::SourceFile;

/// How a call site names its callee — drives resolution precedence in
/// [`crate::callgraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallStyle {
    /// `Qualifier::name(...)` — an associated fn or module-qualified free
    /// fn; resolved exactly.
    Path,
    /// `self.name(...)` — resolved within the enclosing impl type.
    SelfMethod,
    /// `receiver.name(...)` with any other receiver — resolved by name
    /// against every known method, behind the ubiquity denylist.
    Method,
    /// `name(...)` — resolved against free fns.
    Bare,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee identifier as written.
    pub name: String,
    /// `Qualifier` of a [`CallStyle::Path`] call (`epoch`, `Owned`, ...);
    /// the enclosing impl type for [`CallStyle::SelfMethod`].
    pub qualifier: Option<String>,
    /// Resolution style.
    pub style: CallStyle,
    /// Byte offset of the callee identifier.
    pub offset: usize,
}

/// A named token occurrence (blocking primitive, allocation, escape use).
#[derive(Debug, Clone)]
pub struct TokenSite {
    /// The token (`lock`, `Box::new`, a tainted identifier, ...).
    pub token: String,
    /// Byte offset.
    pub offset: usize,
}

/// A `compare_exchange[_weak]` call site.
#[derive(Debug, Clone)]
pub struct CasSite {
    /// Byte offset of the method identifier.
    pub offset: usize,
    /// Normalized receiver chain (`self.top`, `REGISTRY`, ...).
    pub receiver: String,
}

/// An unbounded-iteration construct (`loop` or `while`; `for` is bounded
/// by its iterator and exempt).
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// Byte offset of the `loop`/`while` keyword.
    pub offset: usize,
    /// `"loop"` or `"while"`.
    pub kind: &'static str,
    /// Half-open byte range of the body braces (condition included for
    /// `while`, so a CAS in the condition counts as inside).
    pub span: (usize, usize),
}

/// One scanned function with everything the rules consume.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Qualified name: `Type::name` inside an impl/trait block, bare name
    /// for free fns.
    pub qname: String,
    /// Bare name.
    pub name: String,
    /// Whether the fn is `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// Whether the fn is defined inside an impl or trait block.
    pub is_method: bool,
    /// 1-based line of the body's opening brace.
    pub line: usize,
    /// Half-open byte range of the body (including braces).
    pub span: (usize, usize),
    /// Call sites, in source order.
    pub calls: Vec<Call>,
    /// `loop`/`while` constructs.
    pub loops: Vec<LoopInfo>,
    /// Blocking-primitive call tokens (`lock`, `park`, `sleep`, ...).
    pub blocking: Vec<TokenSite>,
    /// Heap-allocation tokens (`Box::new`, `vec!`, `.to_vec(`, ...).
    pub allocs: Vec<TokenSite>,
    /// Backoff pacing calls (`.spin(`/`.snooze(`) by offset.
    pub pacing: Vec<usize>,
    /// Retirement call sites (`defer_destroy`/`defer_recycle`), with the
    /// call token.
    pub defers: Vec<TokenSite>,
    /// CAS sites.
    pub cas: Vec<CasSite>,
    /// Guard-derived pointers used after the guard's scope (PRG003).
    pub guard_escapes: Vec<TokenSite>,
}

/// Blocking-primitive call names (PRG002). Whole-identifier matched, so
/// `try_lock` — the non-blocking probe the epoch collector uses — never
/// matches `lock`.
const BLOCKING_CALLS: [&str; 9] = [
    "lock",
    "park",
    "park_timeout",
    "sleep",
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "join",
];

/// Allocating `Qualifier::name` associated calls (PRG006). The two
/// `alloc::*` entries catch raw global-allocator calls — the pool's cold
/// paths are deliberately spelled `std::alloc::alloc`/`std::alloc::dealloc`
/// so the immediate path segment matches here (`dealloc` counts too: any
/// allocator round trip breaks a no_alloc contract).
const ALLOC_PATH_CALLS: [(&str, &str); 12] = [
    ("alloc", "alloc"),
    ("alloc", "dealloc"),
    ("Box", "new"),
    ("Box", "leak"),
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Arc", "new"),
    ("Rc", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
];

/// Allocating method names (PRG006).
const ALLOC_METHODS: [&str; 4] = ["to_vec", "to_owned", "to_string", "collect"];

/// Allocating macros (PRG006).
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

const KEYWORDS: [&str; 25] = [
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "fn", "let",
    "as", "in", "move", "ref", "mut", "dyn", "where", "unsafe", "impl", "use", "pub", "const",
    "static", "await",
];

/// Scans one cleaned file into its function inventory.
pub fn scan_file(sf: &SourceFile) -> Vec<FnInfo> {
    let spans = fn_spans(sf);
    spans
        .into_iter()
        .map(|s| {
            let mut info = FnInfo {
                qname: s.qname,
                name: s.name,
                is_pub: s.is_pub,
                is_method: s.is_method,
                line: sf.line_of(s.start),
                span: (s.start, s.end),
                calls: Vec::new(),
                loops: Vec::new(),
                blocking: Vec::new(),
                allocs: Vec::new(),
                pacing: Vec::new(),
                defers: Vec::new(),
                cas: Vec::new(),
                guard_escapes: Vec::new(),
            };
            scan_body(sf, &mut info);
            guard_escapes(sf, &mut info);
            info
        })
        .collect()
}

struct RawSpan {
    qname: String,
    name: String,
    is_pub: bool,
    is_method: bool,
    start: usize,
    end: usize,
}

/// First pass: function body spans with impl-qualified names, visibility,
/// and `#[cfg(test)]` skipping. Nested fns get the innermost enclosing
/// impl's qualification (same as their parent).
fn fn_spans(sf: &SourceFile) -> Vec<RawSpan> {
    let bytes = sf.clean.as_bytes();
    let mut out = Vec::new();
    // (qname, name, is_pub, is_method, depth, start)
    let mut fn_stack: Vec<(String, String, bool, bool, usize, usize)> = Vec::new();
    let mut impl_stack: Vec<(String, usize)> = Vec::new();
    let mut pending_fn: Option<(String, bool)> = None;
    let mut pending_impl: Option<String> = None;
    let mut awaiting_fn_name = false;
    let mut item_pub = false;
    let mut skip_pending = false;
    let mut skip_depth: Option<usize> = None;
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'{' => {
                depth += 1;
                let fn_pending = pending_fn.take();
                let impl_pending = pending_impl.take();
                if skip_pending {
                    skip_pending = false;
                    skip_depth = Some(depth);
                } else if let Some((name, is_pub)) = fn_pending {
                    let (qname, is_method) = match impl_stack.last() {
                        Some((ty, _)) => (format!("{ty}::{name}"), true),
                        None => (name.clone(), false),
                    };
                    fn_stack.push((qname, name, is_pub, is_method, depth, i));
                } else if let Some(ty) = impl_pending {
                    impl_stack.push((ty, depth));
                }
                item_pub = false;
                i += 1;
            }
            b'}' => {
                if let Some((qname, name, is_pub, is_method, d, start)) = fn_stack.last().cloned() {
                    if d == depth {
                        fn_stack.pop();
                        if skip_depth.is_none() {
                            out.push(RawSpan {
                                qname,
                                name,
                                is_pub,
                                is_method,
                                start,
                                end: i + 1,
                            });
                        }
                    }
                }
                if impl_stack.last().is_some_and(|&(_, d)| d == depth) {
                    impl_stack.pop();
                }
                if skip_depth == Some(depth) {
                    skip_depth = None;
                }
                depth = depth.saturating_sub(1);
                item_pub = false;
                i += 1;
            }
            b';' => {
                // A trait method declaration (or `impl Trait for X;`-style
                // nonsense) ends without a body.
                pending_fn = None;
                item_pub = false;
                i += 1;
            }
            b'#' if sf.clean[i..].starts_with("#[cfg(test)]") && skip_depth.is_none() => {
                skip_pending = true;
                i += "#[cfg(test)]".len();
            }
            _ if is_ident_char(b) && (i == 0 || !is_ident_char(bytes[i - 1])) => {
                let start = i;
                while i < bytes.len() && is_ident_char(bytes[i]) {
                    i += 1;
                }
                let word = &sf.clean[start..i];
                if awaiting_fn_name {
                    awaiting_fn_name = false;
                    pending_fn = Some((word.to_string(), item_pub));
                    item_pub = false;
                    continue;
                }
                match word {
                    "fn" => awaiting_fn_name = true,
                    "pub" => {
                        // `pub(crate)`/`pub(super)` are not public API.
                        let mut j = i;
                        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                            j += 1;
                        }
                        item_pub = bytes.get(j) != Some(&b'(');
                    }
                    // A return-position/argument-position `impl Trait`
                    // appears only after `fn name` is pending; the guard
                    // below keeps it from opening a phantom impl block.
                    "impl" | "trait" if pending_fn.is_none() && skip_depth.is_none() => {
                        pending_impl = impl_type(&sf.clean[i..]);
                    }
                    _ => {}
                }
            }
            _ => i += 1,
        }
    }
    out
}

/// Extracts the implemented type's name from an impl/trait header (the
/// text after the keyword, up to the body brace): the last path segment of
/// the type after a top-level `for` (if any), generics stripped.
/// `impl<T: Send> ConcurrentQueue<T> for LockedQueue<T>` → `LockedQueue`;
/// `impl fmt::Debug for NbwWriter<T>` → `NbwWriter`; `trait Queue<T>` →
/// `Queue`.
fn impl_type(after_kw: &str) -> Option<String> {
    let header_end = after_kw.find('{').unwrap_or(after_kw.len());
    let mut s = after_kw[..header_end].trim();
    // Leading generic parameters.
    if let Some(rest) = s.strip_prefix('<') {
        let mut d = 1usize;
        let mut cut = rest.len();
        for (k, c) in rest.char_indices() {
            match c {
                '<' => d += 1,
                '>' => {
                    d -= 1;
                    if d == 0 {
                        cut = k + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        s = rest[cut..].trim_start();
    }
    // A top-level ` for ` splits trait from implementing type.
    let bytes = s.as_bytes();
    let mut d = 0usize;
    let mut k = 0usize;
    while k < bytes.len() {
        match bytes[k] {
            b'<' => d += 1,
            b'>' => d = d.saturating_sub(1),
            b'f' if d == 0
                && s[k..].starts_with("for")
                && (k == 0 || !is_ident_char(bytes[k - 1]))
                && !is_ident_char(*bytes.get(k + 3).unwrap_or(&b' ')) =>
            {
                s = s[k + 3..].trim_start();
                break;
            }
            _ => {}
        }
        k += 1;
    }
    // Trailing where clause, bounds, generics.
    let s = s.split("where").next().unwrap_or(s).trim();
    let s = s.split(':').next().unwrap_or(s).trim();
    let base = s.split('<').next().unwrap_or(s).trim();
    let name = base
        .rsplit("::")
        .next()
        .unwrap_or(base)
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim();
    if name.is_empty() || !name.bytes().all(is_ident_char) {
        return None;
    }
    Some(name.to_string())
}

/// Second pass over one body: calls, loops, and token features.
fn scan_body(sf: &SourceFile, info: &mut FnInfo) {
    let clean = &sf.clean;
    let bytes = clean.as_bytes();
    let (body_start, body_end) = info.span;
    let mut i = body_start + 1;
    let mut last_word = String::new();
    while i < body_end.saturating_sub(1) {
        let b = bytes[i];
        if !(is_ident_char(b) && (i == 0 || !is_ident_char(bytes[i - 1]))) {
            i += 1;
            continue;
        }
        let start = i;
        while i < body_end && is_ident_char(bytes[i]) {
            i += 1;
        }
        let word = &clean[start..i];
        // Loops.
        if word == "loop" || word == "while" {
            if let Some(open) = loop_body_brace(bytes, clean, i, body_end) {
                if let Some(close) = matching(bytes, open, b'{', b'}') {
                    info.loops.push(LoopInfo {
                        offset: start,
                        kind: if word == "loop" { "loop" } else { "while" },
                        span: (start, close + 1),
                    });
                }
            }
            last_word = word.to_string();
            continue;
        }
        // Macros: `name!(...)` — only the allocating ones matter.
        if bytes.get(i) == Some(&b'!') {
            if ALLOC_MACROS.contains(&word) {
                info.allocs.push(TokenSite {
                    token: format!("{word}!"),
                    offset: start,
                });
            }
            last_word = word.to_string();
            continue;
        }
        // Call sites: identifier (+ optional turbofish) followed by `(`,
        // not a keyword, not a definition (`fn name(`).
        let mut k = i;
        while k < body_end && bytes[k].is_ascii_whitespace() {
            k += 1;
        }
        if clean[k..].starts_with("::<") {
            if let Some(close) = matching(&bytes[..body_end], k + 2, b'<', b'>') {
                k = close + 1;
                while k < body_end && bytes[k].is_ascii_whitespace() {
                    k += 1;
                }
            }
        }
        let is_call = bytes.get(k) == Some(&b'(') && !KEYWORDS.contains(&word) && last_word != "fn";
        if is_call {
            let prev = prev_sig(bytes, start);
            let (style, qualifier) = if prev == Some(b'.') {
                if self_receiver(bytes, start) {
                    (CallStyle::SelfMethod, None)
                } else {
                    (CallStyle::Method, None)
                }
            } else if path_qualified(bytes, start) {
                (CallStyle::Path, path_qualifier(clean, start))
            } else {
                (CallStyle::Bare, None)
            };
            if BLOCKING_CALLS.contains(&word) {
                info.blocking.push(TokenSite {
                    token: word.to_string(),
                    offset: start,
                });
            }
            if word == "compare_exchange" || word == "compare_exchange_weak" {
                let receiver = if style == CallStyle::Method || style == CallStyle::SelfMethod {
                    receiver_chain(clean, start).0
                } else {
                    String::new()
                };
                info.cas.push(CasSite {
                    offset: start,
                    receiver,
                });
            }
            if word == "spin" || word == "snooze" {
                info.pacing.push(start);
            }
            if word == "defer_destroy" || word == "defer_recycle" {
                info.defers.push(TokenSite {
                    token: word.to_string(),
                    offset: start,
                });
            }
            let is_alloc = match style {
                CallStyle::Path => qualifier
                    .as_deref()
                    .is_some_and(|q| ALLOC_PATH_CALLS.contains(&(q, word))),
                CallStyle::Method | CallStyle::SelfMethod => ALLOC_METHODS.contains(&word),
                CallStyle::Bare => false,
            };
            if is_alloc {
                let token = match &qualifier {
                    Some(q) => format!("{q}::{word}"),
                    None => format!(".{word}()"),
                };
                info.allocs.push(TokenSite {
                    token,
                    offset: start,
                });
            }
            info.calls.push(Call {
                name: word.to_string(),
                qualifier,
                style,
                offset: start,
            });
        }
        last_word = word.to_string();
    }
}

/// The next `{` at or after `from` (skipping everything else — `while`
/// conditions cannot contain a bare block).
fn next_brace(bytes: &[u8], from: usize, end: usize) -> Option<usize> {
    (from..end).find(|&k| bytes[k] == b'{')
}

/// The opening brace of a `loop`/`while` body, searching from just past
/// the keyword. Skips header-position `unsafe { .. }` blocks — as in
/// `while let Some(r) = unsafe { p.as_ref() } { .. }` — which are the one
/// kind of block expression Rust allows in a loop header without
/// parentheses; taking the first `{` there would truncate the loop span
/// to the header block and hide every CAS in the real body.
fn loop_body_brace(bytes: &[u8], clean: &str, from: usize, end: usize) -> Option<usize> {
    let mut from = from;
    loop {
        let open = next_brace(bytes, from, end)?;
        if prev_word(clean, open) == Some("unsafe") {
            from = matching(bytes, open, b'{', b'}')? + 1;
            continue;
        }
        return Some(open);
    }
}

/// The identifier immediately (modulo whitespace) before `offset`, if any.
fn prev_word(clean: &str, offset: usize) -> Option<&str> {
    let bytes = clean.as_bytes();
    let mut i = offset;
    while i > 0 && bytes[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    let end = i;
    while i > 0 && is_ident_char(bytes[i - 1]) {
        i -= 1;
    }
    (i < end).then(|| &clean[i..end])
}

/// Whether the method call at `name_start` has exactly `self` as its
/// receiver (`self.m(...)`, not `self.field.m(...)`).
fn self_receiver(bytes: &[u8], name_start: usize) -> bool {
    let mut i = name_start;
    while i > 0 && bytes[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    if i == 0 || bytes[i - 1] != b'.' {
        return false;
    }
    i -= 1;
    while i > 0 && bytes[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    if i < 4 || &bytes[i - 4..i] != b"self" {
        return false;
    }
    let before = i - 4;
    if before > 0 && (is_ident_char(bytes[before - 1]) || bytes[before - 1] == b'.') {
        return false;
    }
    true
}

/// Whether the call at `name_start` is `Qualifier::name(...)`.
fn path_qualified(bytes: &[u8], name_start: usize) -> bool {
    name_start >= 2 && &bytes[name_start - 2..name_start] == b"::"
}

/// The immediate qualifier of a path call: the path segment right before
/// the final `::` (`epoch::pin` → `epoch`, `lfrt_trace::CasOp::start` →
/// `CasOp`, `Shared::<T>::null` → `Shared`).
fn path_qualifier(clean: &str, name_start: usize) -> Option<String> {
    let bytes = clean.as_bytes();
    let mut i = name_start.checked_sub(2)?;
    // A turbofish between qualifier and name: `Q::<T>::name`.
    if i > 0 && bytes[i - 1] == b'>' {
        i = matching_back(bytes, i - 1, b'<', b'>')?;
        if i >= 2 && &bytes[i - 2..i] == b"::" {
            i -= 2;
        }
    }
    let end = i;
    let mut start = end;
    while start > 0 && is_ident_char(bytes[start - 1]) {
        start -= 1;
    }
    if start == end {
        return None;
    }
    Some(clean[start..end].to_string())
}

/// PRG003 detection: for each `let g = [&]epoch::pin();` binding, compute
/// the guard's lexical scope (its innermost block, shortened by a
/// `drop(g)`), taint identifiers bound from statements mentioning the
/// guard, and record word-uses of tainted identifiers past the scope end.
fn guard_escapes(sf: &SourceFile, info: &mut FnInfo) {
    let clean = &sf.clean;
    let bytes = clean.as_bytes();
    let (body_start, body_end) = info.span;
    let pins: Vec<usize> = info
        .calls
        .iter()
        .filter(|c| c.name == "pin" && c.style == CallStyle::Path)
        .map(|c| c.offset)
        .collect();
    for pin_offset in pins {
        let bind_stmt = stmt_start(bytes, body_start, pin_offset);
        let Some(guard) = let_binding_ident(clean, bind_stmt, pin_offset) else {
            continue;
        };
        // Scope: innermost block containing the binding...
        let mut scope_end = enclosing_block_end(bytes, body_start, body_end, pin_offset);
        // ...shortened by an explicit `drop(guard)`.
        for c in &info.calls {
            if c.name == "drop" && c.style == CallStyle::Bare && c.offset > pin_offset {
                if let Some(open) = next_paren(bytes, c.offset, body_end) {
                    if let Some(close) = matching(bytes, open, b'(', b')') {
                        if clean[open + 1..close].trim() == guard && close < scope_end {
                            scope_end = close + 1;
                        }
                    }
                }
            }
        }
        // Taint: identifiers bound or assigned from a statement whose RHS
        // mentions the guard inside its scope.
        let mut tainted: Vec<String> = Vec::new();
        for use_offset in word_occurrences(clean, &guard, pin_offset + 1, scope_end) {
            let s = stmt_start(bytes, body_start, use_offset);
            if let Some(ident) = let_binding_ident(clean, s, use_offset)
                .or_else(|| assignment_ident(clean, s, use_offset))
            {
                if ident != guard && !tainted.contains(&ident) {
                    tainted.push(ident);
                }
            }
        }
        // Escapes: any word-use of a tainted identifier after the scope.
        for t in &tainted {
            for esc in word_occurrences(clean, t, scope_end, body_end) {
                info.guard_escapes.push(TokenSite {
                    token: t.clone(),
                    offset: esc,
                });
            }
        }
    }
    info.guard_escapes.sort_by_key(|t| t.offset);
    info.guard_escapes.dedup_by(|a, b| a.offset == b.offset);
}

/// Start of the statement containing `offset`: just past the previous
/// `;`, `{`, or `}` in the body.
fn stmt_start(bytes: &[u8], body_start: usize, offset: usize) -> usize {
    (body_start..offset)
        .rev()
        .find(|&k| matches!(bytes[k], b';' | b'{' | b'}'))
        .map_or(body_start, |k| k + 1)
}

/// If the statement starting at `stmt` is `let [mut] IDENT = ...` (a plain
/// identifier pattern, not a destructuring), the identifier.
fn let_binding_ident(clean: &str, stmt: usize, limit: usize) -> Option<String> {
    let s = clean[stmt..limit].trim_start();
    let rest = s.strip_prefix("let")?;
    if rest.bytes().next().is_some_and(is_ident_char) {
        return None; // `letx`-style non-keyword
    }
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let ident: String = rest
        .bytes()
        .take_while(|&b| is_ident_char(b))
        .map(|b| b as char)
        .collect();
    if ident.is_empty() {
        return None;
    }
    let after = rest[ident.len()..].trim_start();
    // Plain binding only: `=` (type-ascribed or not), never `(`/`{` of a
    // destructuring pattern like `let Some(x) =`.
    if after.starts_with('=') || after.starts_with(':') {
        Some(ident)
    } else {
        None
    }
}

/// If the statement starting at `stmt` is `IDENT = ...` (simple
/// assignment, not `==`), the identifier.
fn assignment_ident(clean: &str, stmt: usize, limit: usize) -> Option<String> {
    let s = clean[stmt..limit].trim_start();
    let ident: String = s
        .bytes()
        .take_while(|&b| is_ident_char(b))
        .map(|b| b as char)
        .collect();
    if ident.is_empty() || ident == "let" {
        return None;
    }
    let after = s[ident.len()..].trim_start();
    if after.starts_with('=') && !after.starts_with("==") {
        Some(ident)
    } else {
        None
    }
}

/// Byte offset just past the closing brace of the innermost block
/// containing `offset`.
fn enclosing_block_end(bytes: &[u8], body_start: usize, body_end: usize, offset: usize) -> usize {
    let mut stack: Vec<usize> = Vec::new();
    let mut innermost_open = body_start;
    let mut i = body_start;
    while i < offset {
        match bytes[i] {
            b'{' => stack.push(i),
            b'}' => {
                stack.pop();
            }
            _ => {}
        }
        i += 1;
    }
    if let Some(&open) = stack.last() {
        innermost_open = open;
    }
    matching(bytes, innermost_open, b'{', b'}').map_or(body_end, |c| c + 1)
}

fn next_paren(bytes: &[u8], from: usize, end: usize) -> Option<usize> {
    (from..end).find(|&k| bytes[k] == b'(')
}

/// Word-boundary occurrences of `ident` in `clean[from..to]`.
fn word_occurrences(clean: &str, ident: &str, from: usize, to: usize) -> Vec<usize> {
    let bytes = clean.as_bytes();
    let mut out = Vec::new();
    let to = to.min(clean.len());
    if from >= to {
        return out;
    }
    let mut search = from;
    while let Some(pos) = clean[search..to].find(ident) {
        let at = search + pos;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1]);
        let after = at + ident.len();
        let after_ok = after >= bytes.len() || !is_ident_char(bytes[after]);
        if before_ok && after_ok {
            out.push(at);
        }
        search = at + ident.len().max(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<FnInfo> {
        scan_file(&SourceFile::new("t.rs", src))
    }

    #[test]
    fn qualifies_methods_with_their_impl_type() {
        let src = "
pub struct S;
impl S {
    pub fn op(&self) { self.helper(); }
    fn helper(&self) {}
}
impl<T: Send> Default for Q<T> {
    fn default() -> Self { Q::new() }
}
fn free() {}
";
        let fns = scan(src);
        let names: Vec<(&str, bool, bool)> = fns
            .iter()
            .map(|f| (f.qname.as_str(), f.is_pub, f.is_method))
            .collect();
        assert_eq!(
            names,
            [
                ("S::op", true, true),
                ("S::helper", false, true),
                ("Q::default", false, true),
                ("free", false, false),
            ]
        );
    }

    #[test]
    fn call_styles_are_classified() {
        let src = "
impl S {
    fn op(&self) {
        self.own();
        other.method();
        epoch::pin();
        Owned::new(1);
        free_call();
        self.field.chained();
    }
}
";
        let f = &scan(src)[0];
        let styles: Vec<(&str, CallStyle)> =
            f.calls.iter().map(|c| (c.name.as_str(), c.style)).collect();
        assert_eq!(
            styles,
            [
                ("own", CallStyle::SelfMethod),
                ("method", CallStyle::Method),
                ("pin", CallStyle::Path),
                ("new", CallStyle::Path),
                ("free_call", CallStyle::Bare),
                ("chained", CallStyle::Method),
            ]
        );
        assert_eq!(f.calls[2].qualifier.as_deref(), Some("epoch"));
        assert_eq!(f.calls[3].qualifier.as_deref(), Some("Owned"));
    }

    #[test]
    fn loops_cas_pacing_and_blocking_tokens() {
        let src = "
impl S {
    fn paced(&self) {
        let backoff = Backoff::new();
        loop {
            match self.top.compare_exchange_weak(a, b, AcqRel, Relaxed) {
                Ok(_) => return,
                Err(_) => backoff.spin(),
            }
        }
    }
    fn blocking(&self) {
        let g = self.inner.lock().unwrap();
        for x in g.iter() {}
    }
}
";
        let fns = scan(src);
        let paced = &fns[0];
        assert_eq!(paced.loops.len(), 1);
        assert_eq!(paced.loops[0].kind, "loop");
        assert_eq!(paced.cas.len(), 1);
        assert_eq!(paced.cas[0].receiver, "self.top");
        assert_eq!(paced.pacing.len(), 1);
        let blocking = &fns[1];
        assert_eq!(blocking.blocking.len(), 1);
        assert_eq!(blocking.blocking[0].token, "lock");
        assert!(blocking.loops.is_empty(), "for loops are bounded: exempt");
    }

    #[test]
    fn while_let_unsafe_header_does_not_truncate_the_loop_span() {
        let src = "
fn walk(mut cursor: Shared<Record>) -> bool {
    while let Some(record) = unsafe { cursor.as_ref() } {
        if record.in_use.compare_exchange(false, true, Acquire, Relaxed).is_ok() {
            return true;
        }
        cursor = record.next.load(Acquire);
    }
    false
}
";
        let f = &scan(src)[0];
        assert_eq!(f.loops.len(), 1);
        assert_eq!(f.loops[0].kind, "while");
        assert_eq!(f.cas.len(), 1);
        let (lo, hi) = f.loops[0].span;
        assert!(
            lo <= f.cas[0].offset && f.cas[0].offset < hi,
            "the CAS in the while-let body must fall inside the loop span"
        );
    }

    #[test]
    fn try_lock_is_not_a_blocking_token() {
        let src = "fn f() { if let Some(g) = ORPHANS.try_lock() { g.len(); } }";
        assert!(scan(src)[0].blocking.is_empty());
    }

    #[test]
    fn alloc_tokens() {
        let src = "
fn f() {
    let a = Box::new(1);
    let b = vec![1, 2];
    let c = xs.to_vec();
    let d = std::mem::size_of::<u64>();
}
";
        let tokens: Vec<String> = scan(src)[0]
            .allocs
            .iter()
            .map(|t| t.token.clone())
            .collect();
        assert_eq!(tokens, ["Box::new", "vec!", ".to_vec()"]);
    }

    #[test]
    fn guard_escape_out_of_block_and_after_drop() {
        let src = "
impl S {
    fn block_escape(&self) -> u64 {
        let p;
        {
            let guard = epoch::pin();
            p = self.head.load(Acquire, &guard).as_raw();
        }
        unsafe { *p }
    }
    fn drop_escape(&self) -> u64 {
        let guard = epoch::pin();
        let p = self.head.load(Acquire, &guard).as_raw();
        drop(guard);
        unsafe { *p }
    }
    fn clean(&self) -> u64 {
        let guard = epoch::pin();
        let p = self.head.load(Acquire, &guard).as_raw();
        unsafe { *p }
    }
}
";
        let fns = scan(src);
        assert_eq!(fns[0].guard_escapes.len(), 1, "{:?}", fns[0].guard_escapes);
        assert_eq!(fns[0].guard_escapes[0].token, "p");
        assert_eq!(fns[1].guard_escapes.len(), 1, "{:?}", fns[1].guard_escapes);
        assert!(
            fns[2].guard_escapes.is_empty(),
            "{:?}",
            fns[2].guard_escapes
        );
    }

    #[test]
    fn cfg_test_functions_are_skipped() {
        let src = "
fn real() {}
#[cfg(test)]
mod tests {
    fn fake() { x.lock(); }
}
";
        let fns = scan(src);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].qname, "real");
    }

    #[test]
    fn return_position_impl_trait_does_not_open_an_impl_block() {
        let src = "
fn make() -> impl Iterator<Item = u64> {
    (0..3).map(|x| x)
}
fn after() {}
";
        let fns = scan(src);
        let names: Vec<&str> = fns.iter().map(|f| f.qname.as_str()).collect();
        assert_eq!(names, ["make", "after"]);
    }
}
