//! Instrumented lock-free shared objects and their lock-based counterparts.
//!
//! The evaluation of *Lock-Free Synchronization for Dynamic Embedded
//! Real-Time Systems* (Cho, Ravindran, Jensen — DATE 2006) shares
//! Michael–Scott queues (Michael & Scott, JPDC'98 \[21\]) among tasks, and
//! measures the lock-free access time `s` against the lock-based access time
//! `r`. This crate provides real, CAS-based implementations of those objects
//! on `std::sync::atomic`, with epoch-based memory reclamation from
//! `crossbeam`, plus mutex-based counterparts on `parking_lot`:
//!
//! * [`LockFreeQueue`] — the Michael–Scott multi-producer/multi-consumer
//!   FIFO queue used throughout the paper's experiments;
//! * [`TreiberStack`] — Treiber's lock-free stack (IBM RJ 5118 \[25\]);
//! * [`CasRegister`] — a single-word read-modify-write register, the
//!   primitive form of the paper's "continuously access, check, and retry"
//!   loop;
//! * [`LockFreeList`] — a sorted lock-free linked list (Valois, PODC'95
//!   \[26\], with Harris's marked-pointer deletion);
//! * [`AtomicSnapshot`] — a lock-free multi-cell consistent snapshot
//!   (double-collect), the "snapshot abstraction" of the paper's §7 future
//!   work;
//! * [`BoundedMpmcQueue`] — a bounded lock-free multi-producer/
//!   multi-consumer queue (Vyukov's sequence-stamped ring) — no allocation
//!   after construction, the embedded-friendly sibling of the MS queue;
//! * [`ShardedMpmcQueue`] — N independent `BoundedMpmcQueue` shards with
//!   per-thread enqueue affinity and a stealing dequeue scan (FIFO per
//!   shard, not globally) — the contention-adaptive MPMC layer;
//! * [`elimination`] — the elimination-backoff exchanger behind
//!   [`TreiberStack::with_elimination`]: colliding push/pop pairs exchange
//!   directly instead of re-contending the stack head;
//! * [`spsc_ring`] — a bounded wait-free single-producer/single-consumer
//!   ring, the classic embedded ISR-to-task channel;
//! * [`nbw_register`] — the non-blocking write protocol (Kopetz &
//!   Reisinger, RTSS'93 \[16\]): wait-free single writer, retrying readers —
//!   the wait-free scheme the paper contrasts lock-free sharing against;
//! * [`LockedQueue`], [`LockedStack`] — mutual-exclusion counterparts;
//! * [`OpStats`] — per-object attempt/retry counters, the measured analogue
//!   of the retry count `f_i` bounded by the paper's Theorem 2;
//! * [`pool`] — epoch-recycling node pools (the paper's type-stable memory):
//!   stack/queue/list nodes are recycled through the epoch grace period
//!   instead of freed, making steady-state hot paths allocation-free.
//!
//! # Examples
//!
//! ```
//! use lfrt_lockfree::{ConcurrentQueue, LockFreeQueue};
//!
//! let q = LockFreeQueue::new();
//! q.enqueue(1);
//! q.enqueue(2);
//! assert_eq!(q.dequeue(), Some(1));
//! assert_eq!(q.dequeue(), Some(2));
//! assert_eq!(q.dequeue(), None);
//! ```

#![warn(missing_docs)]
// This crate contains the only `unsafe` code in the workspace: the epoch-based
// lock-free queue and stack. Every unsafe block carries a safety comment.

pub mod elimination;
mod list;
mod locked;
mod mpmc;
mod nbw;
mod object;
pub mod pool;
mod queue;
mod register;
mod ring;
pub mod sharded;
mod snapshot;
mod stack;
mod stats;

pub use elimination::EliminationArray;
pub use list::LockFreeList;
pub use locked::{LockedQueue, LockedStack};
pub use mpmc::BoundedMpmcQueue;
pub use nbw::{nbw_register, NbwReader, NbwWriter};
pub use object::{ConcurrentQueue, ConcurrentStack};
pub use pool::{PoolStats, RawPool};
pub use queue::LockFreeQueue;
pub use register::CasRegister;
pub use ring::{spsc_ring, RingConsumer, RingProducer};
pub use sharded::ShardedMpmcQueue;
pub use snapshot::AtomicSnapshot;
pub use stack::TreiberStack;
pub use stats::{OpStats, StatsSnapshot};
