use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crossbeam::utils::CachePadded;

/// Stripes per [`OpStats`] (power of two). Sixteen keeps cross-thread
/// collisions rare at the thread counts the experiments use while costing
/// only `16 * 128` bytes per instrumented object.
const STRIPES: usize = 16;

/// Monotone thread counter backing the per-thread stripe choice.
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's Fibonacci-hashed ordinal, computed once (see
    /// [`thread_hash`]).
    static HASH: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The calling thread's Fibonacci-hashed process-wide ordinal, the one
/// lane-selection hash every striping layer in the crate shares: the
/// [`OpStats`] counter stripes mask it to [`STRIPES`], the node pool's
/// telemetry shards (`crate::pool`) mask it to their shard count, and the
/// sharded MPMC queue (`crate::sharded`) masks it to its shard count for
/// enqueue affinity. Hashing one monotone ordinal — instead of, say, a
/// per-layer round-robin counter — keeps the layers consistent (a thread
/// occupies the *same relative lane* everywhere) and spreads consecutive
/// ordinals across any power-of-two lane count (Fibonacci hashing), with
/// no global counter drifting on thread churn.
#[inline]
pub(crate) fn thread_hash() -> usize {
    HASH.with(|s| {
        let cached = s.get();
        if cached != usize::MAX {
            return cached;
        }
        let ordinal = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
        let hashed = (ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15_u64 as usize)) >> 7;
        s.set(hashed);
        hashed
    })
}

#[inline]
fn stripe_index() -> usize {
    thread_hash() & (STRIPES - 1)
}

/// One cache line of counters; each thread hammers only its own stripe.
#[derive(Debug, Default)]
struct Stripe {
    attempts: AtomicU64,
    retries: AtomicU64,
}

/// Attempt/retry counters for a lock-free object.
///
/// A *retry* is a failed pass through an operation's CAS loop — the quantity
/// the paper bounds per job in Theorem 2. An *attempt* counts every pass, so
/// `attempts == successes + retries` and a contention-free run has
/// `retries == 0`.
///
/// Counters are **striped**: each thread picks one of [`STRIPES`]
/// cache-line-padded counter pairs by a hash of its thread ordinal, so the
/// bookkeeping inside a CAS loop touches a line no other core is writing —
/// a shared `fetch_add` here would reintroduce exactly the cache-line
/// ping-pong the lock-free fast path exists to avoid. Reads
/// ([`OpStats::attempts`], [`OpStats::snapshot`], …) sum over the stripes.
///
/// Counters use relaxed atomics: they are monotone statistics, not
/// synchronization.
#[derive(Debug)]
pub struct OpStats {
    stripes: Box<[CachePadded<Stripe>; STRIPES]>,
}

impl Default for OpStats {
    fn default() -> Self {
        Self {
            stripes: Box::new(std::array::from_fn(|_| CachePadded::default())),
        }
    }
}

impl OpStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one pass through an operation loop.
    #[inline]
    pub fn attempt(&self) {
        self.stripes[stripe_index()]
            .attempts
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one failed pass (the operation will retry).
    #[inline]
    pub fn retry(&self) {
        self.stripes[stripe_index()]
            .retries
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Total passes through operation loops so far.
    pub fn attempts(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.attempts.load(Ordering::Relaxed))
            .sum()
    }

    /// Total failed passes (retries) so far.
    pub fn retries(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.retries.load(Ordering::Relaxed))
            .sum()
    }

    /// Total successful operations so far.
    pub fn successes(&self) -> u64 {
        let snap = self.snapshot();
        snap.successes()
    }

    /// Takes a consistent-enough snapshot for reporting.
    ///
    /// All retry stripes are read **before** any attempt stripe. Every
    /// `retry()` is preceded by an `attempt()` on the same stripe, so
    /// attempts read later can only be larger: a snapshot can never report
    /// `retries > attempts`, no matter how many operations race with it.
    /// (Reading attempts first had exactly that torn-read bug: an
    /// attempt+retry pair landing between the two loads inflated retries
    /// past the already-read attempts. Regression test:
    /// `stats::tests::snapshot_never_tears_under_concurrency`.)
    pub fn snapshot(&self) -> StatsSnapshot {
        let retries = self.retries();
        let attempts = self.attempts();
        StatsSnapshot { attempts, retries }
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        for stripe in self.stripes.iter() {
            stripe.attempts.store(0, Ordering::Relaxed);
            stripe.retries.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of [`OpStats`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Total passes through operation loops.
    pub attempts: u64,
    /// Total failed passes.
    pub retries: u64,
}

impl StatsSnapshot {
    /// Successful operations in this snapshot.
    pub fn successes(&self) -> u64 {
        self.attempts.saturating_sub(self.retries)
    }

    /// Mean retries per successful operation, or zero if none succeeded.
    pub fn retries_per_op(&self) -> f64 {
        let ok = self.successes();
        if ok == 0 {
            0.0
        } else {
            self.retries as f64 / ok as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate() {
        let s = OpStats::new();
        s.attempt();
        s.attempt();
        s.retry();
        assert_eq!(s.attempts(), 2);
        assert_eq!(s.retries(), 1);
        assert_eq!(s.successes(), 1);
    }

    #[test]
    fn snapshot_and_reset() {
        let s = OpStats::new();
        s.attempt();
        s.retry();
        let snap = s.snapshot();
        assert_eq!(
            snap,
            StatsSnapshot {
                attempts: 1,
                retries: 1
            }
        );
        assert_eq!(snap.successes(), 0);
        assert_eq!(snap.retries_per_op(), 0.0);
        s.reset();
        assert_eq!(s.attempts(), 0);
        assert_eq!(s.retries(), 0);
    }

    #[test]
    fn retries_per_op() {
        let snap = StatsSnapshot {
            attempts: 30,
            retries: 10,
        };
        assert!((snap.retries_per_op() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stripes_from_many_threads_sum_exactly() {
        const THREADS: usize = 8;
        const OPS: u64 = 10_000;
        let s = Arc::new(OpStats::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..OPS {
                        s.attempt();
                        if i % 3 == 0 {
                            s.retry();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("counter thread panicked");
        }
        assert_eq!(s.attempts(), THREADS as u64 * OPS);
        assert_eq!(s.retries(), THREADS as u64 * OPS.div_ceil(3));
    }

    /// Regression test for the snapshot torn read: retries must be loaded
    /// before attempts, otherwise an `attempt(); retry();` pair landing
    /// between the two loads yields a snapshot with `retries > attempts`
    /// (i.e. `successes()` silently saturating at zero).
    #[test]
    fn snapshot_never_tears_under_concurrency() {
        let s = Arc::new(OpStats::new());
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        s.attempt();
                        s.retry();
                    }
                })
            })
            .collect();
        for _ in 0..50_000 {
            let snap = s.snapshot();
            assert!(
                snap.retries <= snap.attempts,
                "torn snapshot: {} retries > {} attempts",
                snap.retries,
                snap.attempts
            );
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().expect("writer panicked");
        }
    }
}
