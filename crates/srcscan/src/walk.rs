//! Deterministic source inventory.
//!
//! Both checkers must scan the same files in the same order on every
//! machine (findings are diffed against committed baselines, so ordering
//! and coverage are part of the contract). The walk sorts directory
//! entries and emits `/`-separated paths relative to the scan root.

use std::io;
use std::path::{Path, PathBuf};

use crate::source::SourceFile;

/// Recursively collects every `.rs` file under `dir`, sorted.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk.
pub fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Loads `paths` as [`SourceFile`]s with paths relative to `root`.
///
/// # Errors
///
/// Propagates I/O errors from file reads.
pub fn load_files(root: &Path, paths: Vec<PathBuf>) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let raw = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push(SourceFile::new(rel, raw));
    }
    Ok(files)
}

/// Loads every `.rs` file under each of `dirs` (skipping directories that
/// do not exist), with paths relative to `root`.
///
/// # Errors
///
/// Propagates I/O errors from the walk and file reads.
pub fn collect_dirs(root: &Path, dirs: &[PathBuf]) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    for dir in dirs {
        if dir.is_dir() {
            walk_rs(dir, &mut paths)?;
        }
    }
    load_files(root, paths)
}

/// Loads every `.rs` file under `root` recursively — the fixture-directory
/// mode of both checkers.
///
/// # Errors
///
/// Propagates I/O errors from the walk and file reads.
pub fn collect_recursive(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    walk_rs(root, &mut paths)?;
    load_files(root, paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_dirs_are_skipped_not_errors() {
        let missing = PathBuf::from("/definitely/not/a/real/dir");
        let files = collect_dirs(Path::new("/"), &[missing]).unwrap();
        assert!(files.is_empty());
    }
}
