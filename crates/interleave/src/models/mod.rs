//! Shim models mirroring `crates/lockfree`, step for step.
//!
//! Each model re-expresses one real algorithm over [`crate::Atomic`] cells
//! and an append-only [`crate::Arena`] (the stand-in for epoch
//! reclamation), with one instrumented step per atomic operation of the
//! real code. The "Step structure" doc section of each `crates/lockfree`
//! source file enumerates those steps; model code carries matching `S1`/
//! `E1`/`D1`-style comments, so a divergence between model and
//! implementation is a reviewable diff, not a guess.
//!
//! Each model declares the *real* code's memory orderings through the
//! `_ord` operations, so the same model explores soundly under sequential
//! consistency and under [`crate::Config::store_buffer`]'s weak-memory mode.
//!
//! [`buggy`] holds intentionally broken variants — the seeded bugs that
//! prove the explorer actually catches ABA, lost updates, torn reads, and
//! (under the store-buffer mode) `Relaxed`-publication reorderings.
//! [`pool`] carries its twins inline: the reuse-before-grace and
//! stale-pop-overflow bugs live beside the faithful pool models as
//! alternate constructors, since they differ only in reclamation policy.
//! [`elimination`] and [`sharded`] follow the same inline-twin pattern for
//! the contention layer: the exchange-slot ABA, the lost-elimination
//! double-return, and the shard-scan lost-item bug.

pub mod buggy;
pub mod elimination;
pub mod mpmc;
pub mod nbw;
pub mod pool;
pub mod queue;
pub mod register;
pub mod ring;
pub mod sharded;
pub mod stack;

pub use elimination::ModelElimStack;
pub use mpmc::ModelMpmcQueue;
pub use nbw::ModelNbw;
pub use pool::{ModelOverflow, ModelPoolStack};
pub use queue::ModelMsQueue;
pub use register::ModelCasRegister;
pub use ring::ModelSpscRing;
pub use sharded::ModelShardedQueue;
pub use stack::ModelTreiberStack;
