//! Deadlock detection and victim selection (§3.3 of the paper).
//!
//! RUA resolves deadlocks — cycles in the dependency graph, possible only
//! with nested critical sections — by aborting the job on the cycle that
//! would contribute the least utility. The comparisons of the paper exclude
//! nested sections, so this module is never triggered there; it is
//! implemented and tested for completeness with §3's full description.

use lfrt_sim::{JobId, SchedulerContext};

use crate::dependency::Chain;
use crate::ops::OpsCounter;
use crate::pud::chain_pud;

/// Picks the deadlock victim from a detected cycle: the job whose singleton
/// PUD (its own utility density) is lowest — the member "likely to
/// contribute the least utility" (§3.3). Ties break toward the higher job
/// id (the younger job).
///
/// Returns `None` if the chain is not a cycle or the cycle is empty.
pub fn select_victim(
    ctx: &SchedulerContext<'_>,
    chain: &Chain,
    ops: &mut OpsCounter,
) -> Option<JobId> {
    if !chain.is_cycle() {
        return None;
    }
    chain
        .jobs()
        .iter()
        .map(|&job| (chain_pud(ctx, &[job], ops), job))
        .min_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("PUDs are finite")
                .then(b.1.cmp(&a.1))
        })
        .map(|(_, job)| job)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfrt_sim::{JobView, ObjectId, TaskId};
    use lfrt_tuf::Tuf;

    #[test]
    fn victim_is_lowest_pud_member() {
        let high = Tuf::step(100.0, 1_000).expect("valid");
        let low = Tuf::step(1.0, 1_000).expect("valid");
        let mk = |id: usize, tuf, blocked: usize, holds: usize| JobView {
            id: JobId::new(id),
            task: TaskId::new(0),
            arrival: 0,
            absolute_critical_time: 1_000,
            window: 1_000,
            tuf,
            remaining: 10,
            blocked_on: Some(ObjectId::new(blocked)),
            holds: vec![ObjectId::new(holds)],
        };
        let ctx = SchedulerContext {
            now: 0,
            jobs: vec![mk(1, &high, 2, 1), mk(2, &low, 1, 2)],
        };
        let cycle = Chain::Cycle(vec![JobId::new(1), JobId::new(2)]);
        let victim = select_victim(&ctx, &cycle, &mut OpsCounter::new());
        assert_eq!(victim, Some(JobId::new(2)), "low-utility member dies");
    }

    #[test]
    fn acyclic_chain_has_no_victim() {
        let tuf = Tuf::step(1.0, 1_000).expect("valid");
        let ctx = SchedulerContext {
            now: 0,
            jobs: Vec::new(),
        };
        let _ = &tuf;
        let chain = Chain::Acyclic(vec![JobId::new(1)]);
        assert_eq!(select_victim(&ctx, &chain, &mut OpsCounter::new()), None);
    }

    #[test]
    fn tie_breaks_toward_younger_job() {
        let tuf = Tuf::step(1.0, 1_000).expect("valid");
        let mk = |id: usize| JobView {
            id: JobId::new(id),
            task: TaskId::new(0),
            arrival: 0,
            absolute_critical_time: 1_000,
            window: 1_000,
            tuf: &tuf,
            remaining: 10,
            blocked_on: Some(ObjectId::new(0)),
            holds: vec![ObjectId::new(1)],
        };
        let ctx = SchedulerContext {
            now: 0,
            jobs: vec![mk(1), mk(2)],
        };
        let cycle = Chain::Cycle(vec![JobId::new(1), JobId::new(2)]);
        let victim = select_victim(&ctx, &cycle, &mut OpsCounter::new());
        assert_eq!(victim, Some(JobId::new(2)));
    }
}
