//! Name-based call-graph construction and reachability.
//!
//! The graph is built from the [`crate::scan`] call sites with a
//! resolution precedence that trades a little recall for a lot of
//! precision:
//!
//! 1. `Qualifier::name(...)` resolves exactly: to `Qualifier::name` if
//!    that type has such an associated fn, otherwise (module qualifiers
//!    like `epoch::pin`) to free fns named `name`.
//! 2. `self.name(...)` resolves within the enclosing impl type only.
//! 3. `receiver.name(...)` with any other receiver resolves to *every*
//!    known method named `name` — except names on the ubiquity denylist
//!    (`len`, `is_empty`, `push`, ...), which overwhelmingly hit std
//!    types and would otherwise wire, say, a `Vec::is_empty` call to
//!    `LockedQueue::is_empty` and poison every reachability query.
//! 4. `name(...)` resolves to free fns named `name`.
//!
//! Known blind spots (documented in DESIGN.md §6b): trait-object dispatch
//! (`dyn ConcurrentQueue` calls are denylisted or unresolvable by
//! design), macro-generated calls (`thread_local!` initializer bodies are
//! item-level, so the trace ring's registration lock and the epoch
//! record acquisition are reachable only at thread birth, not through
//! any edge), and function pointers.

use std::collections::HashMap;

use crate::scan::{Call, CallStyle, FnInfo};

/// Method names too ubiquitous on std types to resolve by name alone.
/// Applies only to unqualified non-`self` method calls (style 3 above);
/// `Type::name(...)` and `self.name(...)` still resolve these exactly.
pub const METHOD_DENYLIST: [&str; 50] = [
    "new",
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "contains",
    "contains_key",
    "clone",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "collect",
    "extend",
    "map",
    "filter",
    "take",
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "to_vec",
    "to_string",
    "to_owned",
    "drain",
    "is_null",
    "as_ref",
    "as_raw",
    "as_mut",
    "deref",
    "with",
    "try_with",
    "write",
    "read",
];

/// The call graph over every scanned function, by flat index.
#[derive(Debug, Default)]
pub struct Graph {
    /// Adjacency: callee indices per function.
    pub edges: Vec<Vec<usize>>,
    by_qname: HashMap<String, Vec<usize>>,
    methods_by_name: HashMap<String, Vec<usize>>,
    free_by_name: HashMap<String, Vec<usize>>,
}

impl Graph {
    /// Builds the graph over `fns` (one flat list across all files).
    pub fn build(fns: &[FnInfo]) -> Self {
        let mut g = Graph {
            edges: vec![Vec::new(); fns.len()],
            ..Graph::default()
        };
        for (i, f) in fns.iter().enumerate() {
            g.by_qname.entry(f.qname.clone()).or_default().push(i);
            if f.is_method {
                g.methods_by_name.entry(f.name.clone()).or_default().push(i);
            } else {
                g.free_by_name.entry(f.name.clone()).or_default().push(i);
            }
        }
        for (i, f) in fns.iter().enumerate() {
            let caller_type = f
                .qname
                .strip_suffix(&format!("::{}", f.name))
                .map(String::from);
            let mut callees: Vec<usize> = f
                .calls
                .iter()
                .flat_map(|c| g.resolve(c, caller_type.as_deref()))
                .collect();
            callees.sort_unstable();
            callees.dedup();
            callees.retain(|&c| c != i);
            g.edges[i] = callees;
        }
        g
    }

    /// All function indices with qualified name `qname`.
    pub fn by_qname(&self, qname: &str) -> &[usize] {
        self.by_qname.get(qname).map_or(&[], |v| v.as_slice())
    }

    fn resolve(&self, call: &Call, caller_type: Option<&str>) -> Vec<usize> {
        match call.style {
            CallStyle::Path => {
                if let Some(q) = &call.qualifier {
                    let q = if q == "Self" {
                        caller_type.unwrap_or(q)
                    } else {
                        q
                    };
                    if let Some(hits) = self.by_qname.get(&format!("{q}::{}", call.name)) {
                        return hits.clone();
                    }
                }
                // Module-qualified free fn (`epoch::pin`, `trace::emit`).
                self.free_by_name
                    .get(&call.name)
                    .cloned()
                    .unwrap_or_default()
            }
            CallStyle::SelfMethod => caller_type
                .and_then(|t| self.by_qname.get(&format!("{t}::{}", call.name)))
                .cloned()
                .unwrap_or_default(),
            CallStyle::Method => {
                if METHOD_DENYLIST.contains(&call.name.as_str()) {
                    Vec::new()
                } else {
                    self.methods_by_name
                        .get(&call.name)
                        .cloned()
                        .unwrap_or_default()
                }
            }
            CallStyle::Bare => self
                .free_by_name
                .get(&call.name)
                .cloned()
                .unwrap_or_default(),
        }
    }

    /// BFS from `roots`; returns, for every reached function (roots
    /// included), the path of function indices from a root to it.
    pub fn reachable(&self, roots: &[usize]) -> HashMap<usize, Vec<usize>> {
        let mut paths: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut queue: std::collections::VecDeque<usize> = Default::default();
        for &r in roots {
            if let std::collections::hash_map::Entry::Vacant(e) = paths.entry(r) {
                e.insert(vec![r]);
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            let base = paths[&n].clone();
            for &m in &self.edges[n] {
                if let std::collections::hash_map::Entry::Vacant(e) = paths.entry(m) {
                    let mut p = base.clone();
                    p.push(m);
                    e.insert(p);
                    queue.push_back(m);
                }
            }
        }
        paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfrt_srcscan::source::SourceFile;

    fn fns(src: &str) -> Vec<FnInfo> {
        crate::scan::scan_file(&SourceFile::new("t.rs", src))
    }

    #[test]
    fn denylist_blocks_only_unqualified_method_calls() {
        let src = "
impl LockedQueue {
    pub fn is_empty(&self) -> bool { self.inner.lock().unwrap().is_empty() }
}
impl LockFreeList {
    pub fn probe(&self) -> bool { self.to_vec_helper().is_empty() }
    pub fn exact(&self) -> bool { LockedQueue::is_empty(self) }
    fn to_vec_helper(&self) -> Vec<u64> { Vec::new() }
}
";
        let fns = fns(src);
        let g = Graph::build(&fns);
        let idx = |q: &str| g.by_qname(q)[0];
        // `.is_empty()` on a Vec receiver: denylisted, no edge to the
        // locking method.
        assert!(!g.edges[idx("LockFreeList::probe")].contains(&idx("LockedQueue::is_empty")));
        // Self-call resolves within the impl type.
        assert!(g.edges[idx("LockFreeList::probe")].contains(&idx("LockFreeList::to_vec_helper")));
        // Fully qualified call resolves exactly even for denylisted names.
        assert!(g.edges[idx("LockFreeList::exact")].contains(&idx("LockedQueue::is_empty")));
    }

    #[test]
    fn reachability_paths_lead_from_root() {
        let src = "
fn a() { b(); }
fn b() { c(); }
fn c() {}
fn unrelated() {}
";
        let fns = fns(src);
        let g = Graph::build(&fns);
        let a = g.by_qname("a")[0];
        let c = g.by_qname("c")[0];
        let reached = g.reachable(&[a]);
        assert_eq!(reached.len(), 3);
        assert_eq!(reached[&c].len(), 3, "a -> b -> c");
    }
}
