//! Model of the bounded MPMC queue (Vyukov's sequence-stamped ring),
//! mirroring `crates/lockfree/src/mpmc.rs`.

use crate::atomic::Atomic;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};

struct Slot {
    sequence: Atomic<usize>,
    value: Atomic<u64>,
}

/// Bounded multi-producer/multi-consumer queue: each slot's sequence
/// counter encodes whose turn it is, producers claim slots by CAS on the
/// tail ticket, consumers by CAS on the head ticket.
///
/// The reload branches (`seq` ahead of the ticket) deliberately do **not**
/// call [`crate::spin_hint`]: a reload re-reads an index another thread
/// already advanced, so the retry makes progress on its own — parking
/// there would report false livelocks.
pub struct ModelMpmcQueue {
    slots: Vec<Slot>,
    head: Atomic<usize>,
    tail: Atomic<usize>,
}

impl ModelMpmcQueue {
    /// A queue holding up to `capacity` elements (rounded up to the next
    /// power of two with a minimum of 2, like the real queue).
    ///
    /// The minimum-2 floor is load-bearing: exploring this model at a
    /// single slot produced the non-linearizable history (second push
    /// claims the unconsumed first element's slot) that revealed the same
    /// defect in `crates/lockfree`'s `BoundedMpmcQueue::new`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let cap = capacity.next_power_of_two().max(2);
        Self {
            // Construction runs on the controller: the initial sequence
            // stamps are not scheduled steps, matching the real `new`.
            slots: (0..cap)
                .map(|i| Slot {
                    sequence: Atomic::new(i),
                    value: Atomic::new(0),
                })
                .collect(),
            head: Atomic::new(0),
            tail: Atomic::new(0),
        }
    }

    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    /// Mirrors `BoundedMpmcQueue::push`.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` when the queue is full.
    pub fn push(&self, value: u64) -> Result<(), u64> {
        let mask = self.mask();
        // P1: `self.tail.load(Relaxed)` — the ticket guess.
        let mut tail = self.tail.load_ord(Relaxed);
        loop {
            let slot = &self.slots[tail & mask];
            // P2: `slot.sequence.load(Acquire)`.
            let seq = slot.sequence.load_ord(Acquire);
            match seq as isize - tail as isize {
                0 => {
                    // P3: `self.tail.compare_exchange_weak(tail, tail + 1,
                    // Relaxed, Relaxed)` — claim the slot (the model CAS
                    // never fails spuriously).
                    match self.tail.compare_exchange_ord(
                        tail,
                        tail.wrapping_add(1),
                        Relaxed,
                        Relaxed,
                    ) {
                        Ok(_) => {
                            // Slot write: exclusive by the ticket hand-off
                            // (like the queue's post-CAS data take) — not a
                            // step.
                            slot.value.store_plain(value);
                            // P4: `slot.sequence.store(tail + 1, Release)` —
                            // hand the slot to consumers.
                            slot.sequence.store_ord(tail.wrapping_add(1), Release);
                            return Ok(());
                        }
                        Err(actual) => tail = actual,
                    }
                }
                d if d < 0 => return Err(value), // a full lap behind: full
                _ => {
                    // P5: another producer advanced; reload and retry.
                    tail = self.tail.load_ord(Relaxed);
                }
            }
        }
    }

    /// Mirrors `BoundedMpmcQueue::pop`.
    pub fn pop(&self) -> Option<u64> {
        let mask = self.mask();
        // C1: `self.head.load(Relaxed)` — the ticket guess.
        let mut head = self.head.load_ord(Relaxed);
        loop {
            let slot = &self.slots[head & mask];
            // C2: `slot.sequence.load(Acquire)`.
            let seq = slot.sequence.load_ord(Acquire);
            match seq as isize - (head.wrapping_add(1)) as isize {
                0 => {
                    // C3: `self.head.compare_exchange_weak(head, head + 1,
                    // Relaxed, Relaxed)`.
                    match self.head.compare_exchange_ord(
                        head,
                        head.wrapping_add(1),
                        Relaxed,
                        Relaxed,
                    ) {
                        Ok(_) => {
                            // Slot read: exclusive by the hand-off — not a
                            // step.
                            let value = slot.value.load_plain();
                            // C4: `slot.sequence.store(head + mask + 1,
                            // Release)` — free the slot for the next lap.
                            slot.sequence
                                .store_ord(head.wrapping_add(mask + 1), Release);
                            return Some(value);
                        }
                        Err(actual) => head = actual,
                    }
                }
                d if d < 0 => return None, // nothing published yet: empty
                _ => {
                    // C5: another consumer advanced; reload and retry.
                    head = self.head.load_ord(Relaxed);
                }
            }
        }
    }

    /// Post-check helper: remaining published elements oldest-first,
    /// without scheduling (single-threaded use only).
    pub fn drain_plain(&self) -> Vec<u64> {
        let mask = self.mask();
        let mut out = Vec::new();
        let mut head = self.head.load_plain();
        let tail = self.tail.load_plain();
        while head != tail {
            let slot = &self.slots[head & mask];
            if slot.sequence.load_plain() == head.wrapping_add(1) {
                out.push(slot.value.load_plain());
            }
            head = head.wrapping_add(1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_capacity() {
        // Capacity 1 rounds up to the 2-slot minimum (see `new`).
        let q = ModelMpmcQueue::new(1);
        assert_eq!(q.push(1), Ok(()));
        assert_eq!(q.push(2), Ok(()));
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.drain_plain(), vec![1, 2]);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push(3), Ok(()));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn wraparound_reuses_slots() {
        let q = ModelMpmcQueue::new(2);
        for lap in 0..20 {
            assert_eq!(q.push(lap), Ok(()));
            assert_eq!(q.pop(), Some(lap));
        }
    }
}
