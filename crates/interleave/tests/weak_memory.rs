//! Store-buffer (weak-memory) exploration tests: the seeded reordering bugs
//! must be caught with a replayable schedule under
//! [`Config::store_buffer`] while (a) the *same* models pass every
//! sequentially consistent schedule — proving SC exploration alone cannot
//! see these bugs — and (b) their fixed counterparts pass the same
//! store-buffer bounds. The faithful mirrors of `crates/lockfree` re-run
//! under the orderings the real code declares and must stay green.

use std::sync::{Arc, Mutex};

use lfrt_interleave::models::buggy::{FencelessNbw, RelaxedPubStack};
use lfrt_interleave::models::{
    ModelCasRegister, ModelMpmcQueue, ModelMsQueue, ModelNbw, ModelSpscRing, ModelTreiberStack,
};
use lfrt_interleave::{explore, replay_in, Config, FailureKind, MemoryMode, Plan, FLUSH_BASE};

fn store_buffer_mode() -> MemoryMode {
    MemoryMode::StoreBuffer {
        bound: MemoryMode::DEFAULT_BOUND,
    }
}

/// One producer publishes a node, one reader dereferences whatever top it
/// sees. The reader must observe either "no node yet" or the fully
/// initialized payload — never the slot's stale zero sentinel.
fn pub_stack_scenario(make: fn(usize) -> RelaxedPubStack) -> Plan {
    let stack = Arc::new(make(1));
    let producer = Arc::clone(&stack);
    let reader = Arc::clone(&stack);
    Plan::new()
        .thread(move || producer.push(0, 42))
        .thread(move || {
            let seen = reader.peek();
            assert!(
                seen.is_none() || seen == Some(42),
                "dereferenced a published but uninitialized node: {seen:?}"
            );
        })
}

#[test]
fn relaxed_publication_passes_every_sc_schedule() {
    // The demonstrator that this bug is invisible to PR 2's checker: under
    // sequential consistency the publication cannot overtake the
    // initialization, so exhaustive SC exploration is green.
    explore(&Config::exhaustive("relaxed-pub-sc"), || {
        pub_stack_scenario(RelaxedPubStack::relaxed)
    })
    .assert_ok();
}

#[test]
fn relaxed_publication_caught_by_store_buffer_with_replayable_schedule() {
    let report = explore(&Config::store_buffer("relaxed-pub-weak"), || {
        pub_stack_scenario(RelaxedPubStack::relaxed)
    });
    let failure = report.assert_fails();
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("uninitialized node"),
        "{failure:?}"
    );
    // The schedule is genuinely weak: it contains at least one flush
    // decision committing a buffered store out of line.
    assert!(
        failure.schedule.steps().iter().any(|&id| id >= FLUSH_BASE),
        "failing schedule {} has no flush decision",
        failure.schedule
    );
    // And it replays, deterministically, under the same memory mode.
    let err = std::panic::catch_unwind(|| {
        replay_in(store_buffer_mode(), &failure.schedule, || {
            pub_stack_scenario(RelaxedPubStack::relaxed)
        })
    })
    .expect_err("replay must reproduce the weak-memory failure");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("uninitialized node"), "{msg}");
}

#[test]
fn release_publication_passes_the_same_store_buffer_bounds() {
    explore(&Config::store_buffer("release-pub-weak"), || {
        pub_stack_scenario(RelaxedPubStack::release)
    })
    .assert_ok();
}

#[test]
fn weak_schedule_refuses_sc_replay() {
    let report = explore(&Config::store_buffer("relaxed-pub-weak-replay"), || {
        pub_stack_scenario(RelaxedPubStack::relaxed)
    });
    let failure = report.assert_fails();
    let err = std::panic::catch_unwind(|| {
        replay_in(MemoryMode::Sc, &failure.schedule, || {
            pub_stack_scenario(RelaxedPubStack::relaxed)
        })
    })
    .expect_err("a flush-bearing schedule must not replay under SC");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("MemoryMode::Sc"), "{msg}");
}

/// The store-buffer config shared by the NBW pair: the reader's retry loop
/// multiplied by flush decisions makes exhaustive weak exploration explode
/// (minutes per run), so the pair runs CHESS-bounded at 3 preemptions —
/// flush steps taken while another thread could continue count as
/// preemptions, and the seeded fence bug needs only 2, so the bound is
/// comfortable. Bug and fix run under the *same* bounds.
fn nbw_store_buffer(name: &'static str) -> Config {
    Config {
        preemption_bound: Some(3),
        ..Config::store_buffer(name)
    }
}

/// One writer, one reader; the reader must never return a torn pair.
fn nbw_scenario(fenced: bool) -> Plan {
    let nbw = Arc::new(if fenced {
        FencelessNbw::fixed(0, 0)
    } else {
        FencelessNbw::new(0, 0)
    });
    let writer = Arc::clone(&nbw);
    let reader = Arc::clone(&nbw);
    Plan::new()
        .thread(move || writer.write(1, 2))
        .thread(move || {
            let got = reader.read();
            assert!(got == (0, 0) || got == (1, 2), "torn NBW read: {got:?}");
        })
}

#[test]
fn fenceless_nbw_passes_every_sc_schedule() {
    explore(&Config::exhaustive("fenceless-nbw-sc"), || {
        nbw_scenario(false)
    })
    .assert_ok();
}

#[test]
fn fenceless_nbw_caught_by_store_buffer() {
    let report = explore(&nbw_store_buffer("fenceless-nbw-weak"), || {
        nbw_scenario(false)
    });
    let failure = report.assert_fails();
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(failure.message.contains("torn NBW read"), "{failure:?}");
    assert!(
        failure.schedule.steps().iter().any(|&id| id >= FLUSH_BASE),
        "failing schedule {} has no flush decision",
        failure.schedule
    );
}

#[test]
fn fenced_nbw_passes_the_same_store_buffer_bounds() {
    explore(&nbw_store_buffer("fenced-nbw-weak"), || nbw_scenario(true)).assert_ok();
}

// ---------------------------------------------------------------------------
// The faithful mirrors, re-run under the orderings the real code declares.
// Scenarios are deliberately small: flush decisions multiply the tree.
// ---------------------------------------------------------------------------

#[test]
fn treiber_stack_sound_under_store_buffer() {
    explore(&Config::store_buffer("treiber-weak"), || {
        let stack = Arc::new(ModelTreiberStack::new());
        let pusher = Arc::clone(&stack);
        let popper = Arc::clone(&stack);
        let popped = Arc::new(Mutex::new(None));
        let result = Arc::clone(&popped);
        let check_stack = Arc::clone(&stack);
        let check_popped = Arc::clone(&popped);
        Plan::new()
            .thread(move || pusher.push(7))
            .thread(move || {
                *result.lock().unwrap() = popper.pop();
            })
            .check(move || {
                let popped = *check_popped.lock().unwrap();
                let remaining = check_stack.drain_plain();
                match popped {
                    Some(7) => assert!(remaining.is_empty(), "popped yet still present"),
                    None => assert_eq!(remaining, vec![7], "push lost"),
                    other => panic!("popped a value never pushed: {other:?}"),
                }
            })
    })
    .assert_ok();
}

#[test]
fn ms_queue_sound_under_store_buffer() {
    explore(&Config::store_buffer("ms-queue-weak"), || {
        let queue = Arc::new(ModelMsQueue::new());
        let producer = Arc::clone(&queue);
        let consumer = Arc::clone(&queue);
        let got = Arc::new(Mutex::new(None));
        let result = Arc::clone(&got);
        let check_queue = Arc::clone(&queue);
        let check_got = Arc::clone(&got);
        Plan::new()
            .thread(move || producer.enqueue(5))
            .thread(move || {
                *result.lock().unwrap() = consumer.dequeue();
            })
            .check(move || {
                let got = *check_got.lock().unwrap();
                let remaining = check_queue.drain_plain();
                match got {
                    Some(5) => assert!(remaining.is_empty(), "dequeued yet still queued"),
                    None => assert_eq!(remaining, vec![5], "enqueue lost"),
                    other => panic!("dequeued a value never enqueued: {other:?}"),
                }
            })
    })
    .assert_ok();
}

#[test]
fn spsc_ring_sound_under_store_buffer() {
    explore(&Config::store_buffer("spsc-ring-weak"), || {
        let ring = Arc::new(ModelSpscRing::new(1));
        let producer = Arc::clone(&ring);
        let consumer = Arc::clone(&ring);
        let got = Arc::new(Mutex::new(Vec::new()));
        let result = Arc::clone(&got);
        let check_ring = Arc::clone(&ring);
        let check_got = Arc::clone(&got);
        Plan::new()
            .thread(move || {
                // A push failure would be legitimate under buffered `head`
                // frees (the producer may conservatively see the ring as
                // full); here the ring starts empty, so it cannot happen.
                producer.push(7).expect("empty ring cannot be full");
            })
            .thread(move || {
                if let Some(v) = consumer.pop() {
                    result.lock().unwrap().push(v);
                }
            })
            .check(move || {
                let mut seen = check_got.lock().unwrap().clone();
                seen.extend(check_ring.drain_plain());
                // Conservation + no tearing: the pushed value is popped or
                // still present, exactly once, never mangled.
                assert_eq!(seen, vec![7], "ring lost or tore the element");
            })
    })
    .assert_ok();
}

#[test]
fn nbw_register_sound_under_store_buffer() {
    // Same CHESS bound as the NBW bug/fix pair, for the same tree-size
    // reason; `fenceless_nbw_caught_by_store_buffer` is the evidence this
    // bound reaches the reorderings that matter for this shape.
    explore(&nbw_store_buffer("nbw-weak"), || {
        let nbw = Arc::new(ModelNbw::new(0, 0));
        let writer = Arc::clone(&nbw);
        let reader = Arc::clone(&nbw);
        Plan::new()
            .thread(move || writer.write(1, 2))
            .thread(move || {
                let got = reader.read();
                assert!(got == (0, 0) || got == (1, 2), "torn NBW read: {got:?}");
            })
    })
    .assert_ok();
}

#[test]
fn cas_register_sound_under_store_buffer() {
    explore(&Config::store_buffer("cas-register-weak"), || {
        let reg = Arc::new(ModelCasRegister::new(0));
        let mut plan = Plan::new();
        for _ in 0..2 {
            let reg = Arc::clone(&reg);
            plan = plan.thread(move || {
                reg.update(|v| v + 1);
            });
        }
        let reg = Arc::clone(&reg);
        plan.check(move || assert_eq!(reg.load_plain(), 2, "lost update"))
    })
    .assert_ok();
}

#[test]
fn mpmc_queue_sound_under_store_buffer() {
    explore(&Config::store_buffer("mpmc-weak"), || {
        let queue = Arc::new(ModelMpmcQueue::new(2));
        let producer = Arc::clone(&queue);
        let consumer = Arc::clone(&queue);
        let got = Arc::new(Mutex::new(None));
        let result = Arc::clone(&got);
        let check_queue = Arc::clone(&queue);
        let check_got = Arc::clone(&got);
        Plan::new()
            .thread(move || {
                producer.push(9).expect("2-capacity queue cannot be full");
            })
            .thread(move || {
                *result.lock().unwrap() = consumer.pop();
            })
            .check(move || {
                let got = *check_got.lock().unwrap();
                let remaining = check_queue.drain_plain();
                match got {
                    Some(9) => assert!(remaining.is_empty(), "popped yet still queued"),
                    None => assert_eq!(remaining, vec![9], "push lost"),
                    other => panic!("popped a value never pushed: {other:?}"),
                }
            })
    })
    .assert_ok();
}
