//! ORD006 fixture: fences with nothing to pair with in their function.

fn dead_release_fence(v: &AtomicU64) {
    v.store(1, Relaxed);
    fence(Release);
}

fn dead_acquire_fence(v: &AtomicU64) {
    fence(Acquire);
    let _ = v.load(Relaxed);
}

fn seqlock_writer(version: &AtomicU64) {
    let v = version.load(Relaxed);
    fence(Release);
    version.store(next, Release);
}
