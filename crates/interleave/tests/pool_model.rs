//! Pool-mirror exploration: the two seeded reclamation bugs must be caught
//! with deterministically replayable schedules, and the faithful pool
//! models must survive the same scenarios — and survive them under *every*
//! memory mode (SC, TSO-style store buffer, ARM/POWER-class relaxed), since
//! the pool's safety argument ("reuse is gated on the same epoch advance
//! that gates the free") is a claim about weak memory too.

use std::sync::{Arc, Mutex};

use lfrt_interleave::models::{ModelOverflow, ModelPoolStack};
use lfrt_interleave::{explore, replay, Config, FailureKind, MemoryMode, Plan};

type Cell = Arc<Mutex<Vec<u64>>>;

fn cell() -> Cell {
    Arc::new(Mutex::new(Vec::new()))
}

fn conservation_check(pushed: Vec<u64>, popped: Vec<Cell>, remaining: Vec<u64>) {
    let mut seen: Vec<u64> = popped
        .iter()
        .flat_map(|c| c.lock().unwrap().clone())
        .chain(remaining)
        .collect();
    seen.sort_unstable();
    let mut expected = pushed;
    expected.sort_unstable();
    assert_eq!(seen, expected, "elements lost or duplicated");
}

/// The CHESS preemption bound shared by every cross-mode run, so the
/// faithful-pass cells are comparable to the buggy-catch cells (the weak
/// modes explode without one; 3 preemptions reach every seeded hazard of
/// this shape, as `tests/weak_memory.rs` establishes for retry loops).
const BOUND: Option<usize> = Some(3);

fn config(name: &'static str, memory: MemoryMode) -> Config {
    Config {
        memory,
        preemption_bound: BOUND,
        ..Config::exhaustive(name)
    }
}

fn all_modes() -> [(&'static str, MemoryMode); 3] {
    [
        ("sc", MemoryMode::Sc),
        (
            "tso",
            MemoryMode::StoreBuffer {
                bound: MemoryMode::DEFAULT_BOUND,
            },
        ),
        (
            "relaxed",
            MemoryMode::Relaxed {
                bound: MemoryMode::DEFAULT_BOUND,
                window: MemoryMode::DEFAULT_WINDOW,
            },
        ),
    ]
}

/// Reuse-before-grace on the pooled stack. Scenario: stack `[1, 2]` (2 on
/// top); t0 pops once; t1 pops twice then pushes 3. With immediate reuse
/// the push re-acquires the very node t0's parked pop still points at
/// (A → B → A), its CAS succeeds against the recycled node, and an element
/// is duplicated. With grace-deferred recycling the node sits in limbo for
/// the whole exploration, so the schedule is harmless.
mod reuse_before_grace {
    use super::*;

    fn scenario(immediate: bool) -> Plan {
        let stack = Arc::new(if immediate {
            ModelPoolStack::immediate_reuse()
        } else {
            ModelPoolStack::new()
        });
        stack.push(1);
        stack.push(2);
        let (pop0, pop1) = (cell(), cell());
        let s0 = Arc::clone(&stack);
        let r0 = Arc::clone(&pop0);
        let s1 = Arc::clone(&stack);
        let r1 = Arc::clone(&pop1);
        Plan::new()
            .thread(move || {
                let popped = s0.pop();
                r0.lock().unwrap().extend(popped);
            })
            .thread(move || {
                let mut out = Vec::new();
                out.extend(s1.pop());
                out.extend(s1.pop());
                s1.push(3);
                r1.lock().unwrap().extend(out);
            })
            .check(move || {
                conservation_check(
                    vec![1, 2, 3],
                    vec![pop0.clone(), pop1.clone()],
                    stack.drain_plain(),
                );
            })
    }

    #[test]
    fn immediate_reuse_is_caught_and_replayable() {
        let report = explore(&Config::exhaustive("pool-reuse-before-grace"), || {
            scenario(true)
        });
        let failure = report.assert_fails();
        assert_eq!(failure.kind, FailureKind::Panic);
        assert!(
            failure.message.contains("lost or duplicated"),
            "{failure:?}"
        );
        let schedule = failure.schedule.clone();
        let err = std::panic::catch_unwind(move || replay(&schedule, || scenario(true)))
            .expect_err("replay must reproduce the reuse corruption");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lost or duplicated"), "{msg}");
    }

    #[test]
    fn grace_deferred_recycling_survives_every_memory_mode() {
        for (mode_name, memory) in all_modes() {
            explore(
                &config(
                    Box::leak(format!("pool-grace-{mode_name}").into_boxed_str()),
                    memory,
                ),
                || scenario(false),
            )
            .assert_ok();
        }
    }
}

/// Grace-expired reuse is *allowed*: nodes recycled while every thread was
/// quiescent may be re-acquired concurrently, and the faithful model must
/// stay sound doing so under every memory mode — this is the pool's steady
/// state (hit path), where no allocation happens at all.
mod steady_state_hit_path {
    use super::*;

    fn scenario() -> Plan {
        let stack = Arc::new(ModelPoolStack::new());
        // Warm the cache the way the real pool does: churn, then quiesce
        // (grace advances), leaving two reusable nodes and an empty stack.
        stack.push(1);
        stack.push(2);
        assert_eq!(stack.pop(), Some(2));
        assert_eq!(stack.pop(), Some(1));
        stack.advance_grace_plain();

        let (pop0, pop1) = (cell(), cell());
        let s0 = Arc::clone(&stack);
        let r0 = Arc::clone(&pop0);
        let s1 = Arc::clone(&stack);
        let r1 = Arc::clone(&pop1);
        Plan::new()
            .thread(move || {
                s0.push(10);
                let popped = s0.pop();
                r0.lock().unwrap().extend(popped);
            })
            .thread(move || {
                s1.push(11);
                let popped = s1.pop();
                r1.lock().unwrap().extend(popped);
            })
            .check(move || {
                conservation_check(
                    vec![10, 11],
                    vec![pop0.clone(), pop1.clone()],
                    stack.drain_plain(),
                );
                // Handout invariant: both pushes were cache hits (no node
                // created beyond the warm-up two) and every node is in
                // exactly one place.
                let (live, cached, limbo, created) = stack.accounting_plain();
                assert_eq!(created, 2, "steady state must be allocation-free");
                assert_eq!(
                    live + cached + limbo,
                    created,
                    "a node leaked or is in two places"
                );
            })
    }

    #[test]
    fn cache_hits_stay_sound_under_every_memory_mode() {
        for (mode_name, memory) in all_modes() {
            explore(
                &config(
                    Box::leak(format!("pool-steady-{mode_name}").into_boxed_str()),
                    memory,
                ),
                scenario,
            )
            .assert_ok();
        }
    }
}

/// Stale chain-word read on the overflow stack. Scenario: overflow `[1, 0]`
/// (1 at the head); t0 refills once; t1 refills twice and spills a segment
/// back. Under the superseded pop-one protocol t0 reads segment 1's chain
/// word *before* its pop CAS; t1 popping both segments and re-pushing 1
/// makes that parked CAS succeed with the *stale* word, splicing segment 0
/// — which t1 still owns — back into the overflow (double ownership; in the
/// real code the stale read itself targets memory whose new owner may be
/// overwriting or freeing it). The faithful detach-all refill never reads a
/// chain word before owning the whole chain, so no interleaving can splice.
mod overflow_stale_pop {
    use super::*;

    type SegCell = Arc<Mutex<Vec<usize>>>;

    fn seg_cell() -> SegCell {
        Arc::new(Mutex::new(Vec::new()))
    }

    fn scenario(faithful: bool) -> Plan {
        let overflow = Arc::new(if faithful {
            ModelOverflow::new(2)
        } else {
            ModelOverflow::stale_pop(2)
        });
        overflow.push(0);
        overflow.push(1);
        let (own0, own1) = (seg_cell(), seg_cell());
        let o0 = Arc::clone(&overflow);
        let c0 = Arc::clone(&own0);
        let o1 = Arc::clone(&overflow);
        let c1 = Arc::clone(&own1);
        Plan::new()
            .thread(move || {
                c0.lock().unwrap().extend(o0.pop());
            })
            .thread(move || {
                // Under detach-all either pop may see the overflow
                // transiently empty (the other refiller holds the whole
                // chain), so both are Options; under pop-one the first
                // always succeeds, which is what lets the seeded schedule
                // park t0 across t1's pop-pop-push.
                let first = o1.pop();
                let second = o1.pop();
                if let Some(seg) = first {
                    o1.push(seg); // spill the first segment back
                }
                c1.lock().unwrap().extend(second);
            })
            .check(move || {
                let mut seen: Vec<usize> = own0
                    .lock()
                    .unwrap()
                    .iter()
                    .chain(own1.lock().unwrap().iter())
                    .copied()
                    .chain(overflow.drain_plain())
                    .collect();
                seen.sort_unstable();
                assert_eq!(
                    seen,
                    vec![0, 1],
                    "segment lost or doubly owned after the spill race"
                );
            })
    }

    #[test]
    fn stale_pop_is_caught_and_replayable() {
        let report = explore(&Config::exhaustive("pool-overflow-stale-pop"), || {
            scenario(false)
        });
        let failure = report.assert_fails();
        assert_eq!(failure.kind, FailureKind::Panic);
        assert!(failure.message.contains("doubly owned"), "{failure:?}");
        let schedule = failure.schedule.clone();
        let err = std::panic::catch_unwind(move || replay(&schedule, || scenario(false)))
            .expect_err("replay must reproduce the stale-chain splice");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("doubly owned"), "{msg}");
    }

    #[test]
    fn detach_all_refill_survives_every_memory_mode() {
        for (mode_name, memory) in all_modes() {
            explore(
                &config(
                    Box::leak(format!("pool-overflow-{mode_name}").into_boxed_str()),
                    memory,
                ),
                || scenario(true),
            )
            .assert_ok();
        }
    }
}
