//! Schedule exploration: exhaustive DFS and bounded-preemption search.

use std::str::FromStr;

use crate::runtime::{
    decision_thread, run_once, MemoryMode, Outcome, Plan, FLUSH_BASE, REORDER_BASE,
};
use crate::schedule::Schedule;

/// Exploration settings.
#[derive(Debug, Clone)]
pub struct Config {
    /// Name of the scenario; used for failing-schedule artifacts
    /// (`$INTERLEAVE_FAILURE_DIR/<name>.schedule`) and error messages.
    pub name: &'static str,
    /// Maximum preemptions per schedule, CHESS-style (Musuvathi & Qadeer):
    /// a preemption is switching away from a thread that could have
    /// continued. `None` explores exhaustively. Small bounds (2–3) catch
    /// almost all known concurrency bugs at a fraction of the cost.
    ///
    /// Under a store-buffer memory mode a flush step taken while the
    /// last-run thread is still enabled counts as a preemption too, so
    /// bounded search under-explores weak behaviors — prefer exhaustive
    /// exploration (with tight scenarios) for weak-memory runs.
    pub preemption_bound: Option<usize>,
    /// Hard cap on explored schedules; exceeding it panics so an
    /// accidentally unbounded test fails loudly instead of hanging CI.
    pub max_schedules: usize,
    /// Per-execution decision budget; schedules that exceed it (unfair
    /// spinning) are pruned, not failed.
    pub max_steps: usize,
    /// The memory model executions run under; [`MemoryMode::Sc`] unless the
    /// config asks for store buffering.
    pub memory: MemoryMode,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            name: "interleave",
            preemption_bound: None,
            max_schedules: 500_000,
            max_steps: 10_000,
            memory: MemoryMode::Sc,
        }
    }
}

impl Config {
    /// An exhaustive-exploration config with the given scenario name.
    pub fn exhaustive(name: &'static str) -> Self {
        Self {
            name,
            ..Self::default()
        }
    }

    /// A bounded-preemption config: explores every schedule with at most
    /// `bound` preemptions.
    pub fn preemptions(name: &'static str, bound: usize) -> Self {
        Self {
            name,
            preemption_bound: Some(bound),
            ..Self::default()
        }
    }

    /// An exhaustive config running under [`MemoryMode::StoreBuffer`] with
    /// the default buffer depth: `Relaxed`/`Release` stores made through the
    /// `_ord` operations commit at explicit flush steps the explorer
    /// enumerates alongside thread steps.
    pub fn store_buffer(name: &'static str) -> Self {
        Self {
            name,
            memory: MemoryMode::StoreBuffer {
                bound: MemoryMode::DEFAULT_BOUND,
            },
            ..Self::default()
        }
    }

    /// An exhaustive config running under [`MemoryMode::Relaxed`]
    /// (ARM/POWER-class) with the default buffer depth and stale-value
    /// window: on top of the store-buffer flush steps, `Relaxed` loads may
    /// be granted *stale-read* decisions (ids ≥ [`crate::REORDER_BASE`])
    /// returning values up to [`MemoryMode::DEFAULT_WINDOW`] versions old —
    /// the load–load/load–store reorderings TSO forbids.
    pub fn relaxed(name: &'static str) -> Self {
        Self {
            name,
            memory: MemoryMode::Relaxed {
                bound: MemoryMode::DEFAULT_BOUND,
                window: MemoryMode::DEFAULT_WINDOW,
            },
            ..Self::default()
        }
    }
}

/// Why a schedule failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// A model thread or post-check panicked.
    Panic,
    /// Every unfinished thread was spin-parked with nobody to unblock it.
    Livelock,
}

/// A failing interleaving: replay it with [`replay`] or
/// `INTERLEAVE_SCHEDULE=<schedule> cargo test <name>` patterns built on it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The exact interleaving that failed.
    pub schedule: Schedule,
    /// The panic message, or a livelock description.
    pub message: String,
    /// Panic or livelock.
    pub kind: FailureKind,
}

/// The outcome of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Scenario name from the [`Config`].
    pub name: &'static str,
    /// Number of complete schedules executed.
    pub schedules: usize,
    /// Schedules cut off by the step budget (unfair spinning).
    pub pruned: usize,
    /// The first failing schedule, if any. Exploration stops at the first
    /// failure.
    pub failure: Option<Failure>,
}

impl Report {
    /// Asserts the exploration found no failure.
    ///
    /// On failure, writes `<name>.schedule` under `$INTERLEAVE_FAILURE_DIR`
    /// (when set — CI uploads that directory as an artifact) and panics with
    /// the replayable schedule string.
    pub fn assert_ok(&self) {
        if let Some(failure) = &self.failure {
            persist_failure(self.name, failure);
            panic!(
                "scenario '{}' failed after {} schedules ({:?}): {}\n\
                 replay with schedule string: {}",
                self.name, self.schedules, failure.kind, failure.message, failure.schedule
            );
        }
    }

    /// Asserts the exploration *did* find a failure (for seeded-bug models)
    /// and returns it.
    pub fn assert_fails(&self) -> &Failure {
        self.failure.as_ref().unwrap_or_else(|| {
            panic!(
                "scenario '{}' unexpectedly passed all {} schedules ({} pruned)",
                self.name, self.schedules, self.pruned
            )
        })
    }
}

fn persist_failure(name: &str, failure: &Failure) {
    let Ok(dir) = std::env::var("INTERLEAVE_FAILURE_DIR") else {
        return;
    };
    if dir.is_empty() {
        return;
    }
    let _ = std::fs::create_dir_all(&dir);
    let body = format!(
        "scenario: {name}\nkind: {:?}\nschedule: {}\nmessage: {}\n",
        failure.kind, failure.schedule, failure.message
    );
    let _ = std::fs::write(format!("{dir}/{name}.schedule"), body);
}

/// One decision point on the DFS stack.
struct Frame {
    /// Enabled threads at this decision (sorted).
    enabled: Vec<usize>,
    /// Visit order over indices into `enabled`: the default continuation
    /// first, then the remaining indices ascending. The first child taken
    /// need not be index 0 (the default prefers the last-run thread), so
    /// siblings must be enumerated as a permutation, not a suffix.
    order: Vec<usize>,
    /// Position in `order` of the choice taken on the current path.
    pos: usize,
    /// The previously scheduled thread when this decision was reached.
    last: Option<usize>,
    /// Preemptions accumulated on the path *before* this decision.
    preemptions: usize,
}

impl Frame {
    /// The thread id chosen on the current path.
    fn chosen(&self) -> usize {
        self.enabled[self.order[self.pos]]
    }

    /// Whether picking `enabled[idx]` here preempts a runnable thread.
    /// Decisions are resolved to the thread they step ([`decision_thread`]):
    /// granting the last-run thread a *stale* read continues it — no
    /// preemption — while a flush (no thread) taken where it could have
    /// continued is one.
    fn preempts(&self, idx: usize) -> bool {
        match self.last {
            Some(last) => {
                self.enabled.contains(&last) && decision_thread(self.enabled[idx]) != Some(last)
            }
            None => false,
        }
    }
}

/// Explores interleavings of the scenario produced by `factory`, depth-first,
/// until the tree is exhausted or a failure is found.
///
/// `factory` is called once per schedule and must build an identical
/// [`Plan`] every time (same threads, same initial state); nondeterministic
/// factories make replay meaningless and are detected as enabled-set
/// mismatches.
pub fn explore<F: FnMut() -> Plan>(config: &Config, mut factory: F) -> Report {
    let mut stack: Vec<Frame> = Vec::new();
    let mut schedules = 0usize;
    let mut pruned = 0usize;

    loop {
        assert!(
            schedules < config.max_schedules,
            "scenario '{}' exceeded max_schedules = {} (tighten the bounds \
             or set a preemption_bound)",
            config.name,
            config.max_schedules
        );
        schedules += 1;
        // Progress heartbeat for diagnosing explosively large trees:
        // `INTERLEAVE_DEBUG=1 cargo test ...` prints one line per 10k
        // schedules.
        if std::env::var_os("INTERLEAVE_DEBUG").is_some() && schedules.is_multiple_of(10_000) {
            eprintln!(
                "[interleave] {}: {} schedules, stack depth {}",
                config.name,
                schedules,
                stack.len()
            );
        }

        let mut depth = 0usize;
        let result = run_once(
            factory(),
            config.max_steps,
            config.memory,
            &mut |enabled, last| {
                let k = depth;
                depth += 1;
                if k < stack.len() {
                    let frame = &stack[k];
                    assert_eq!(
                        frame.enabled, enabled,
                        "scenario '{}' is nondeterministic: decision {k} saw \
                     enabled set {enabled:?}, previously {:?} — model state \
                     must be a pure function of the schedule",
                        config.name, frame.enabled
                    );
                    frame.chosen()
                } else {
                    // Default continuation: keep running the last thread when
                    // possible (zero preemptions), else the lowest enabled tid.
                    // Bounded-preemption search stays sound because the default
                    // suffix never adds a preemption.
                    let chosen = match last {
                        Some(l) if enabled.contains(&l) => l,
                        _ => enabled[0],
                    };
                    let preemptions = stack
                        .last()
                        .map(|f| f.preemptions + usize::from(f.preempts(f.order[f.pos])))
                        .unwrap_or(0);
                    let first = enabled.iter().position(|&t| t == chosen).unwrap();
                    let mut order = vec![first];
                    order.extend((0..enabled.len()).filter(|&i| i != first));
                    stack.push(Frame {
                        enabled: enabled.to_vec(),
                        order,
                        pos: 0,
                        last,
                        preemptions,
                    });
                    chosen
                }
            },
        );

        match result.outcome {
            Outcome::Ok => {}
            Outcome::Pruned => pruned += 1,
            Outcome::Failed(message) => {
                return Report {
                    name: config.name,
                    schedules,
                    pruned,
                    failure: Some(Failure {
                        schedule: schedule_of(&stack, depth),
                        message,
                        kind: FailureKind::Panic,
                    }),
                };
            }
            Outcome::Livelock => {
                return Report {
                    name: config.name,
                    schedules,
                    pruned,
                    failure: Some(Failure {
                        schedule: schedule_of(&stack, depth),
                        message: "livelock: every unfinished thread was \
                                  spin-parked with nobody left to make progress"
                            .to_string(),
                        kind: FailureKind::Livelock,
                    }),
                };
            }
        }

        // The run may have ended before consuming the whole stored prefix
        // (e.g. a shorter path after backtracking); drop unreached frames.
        stack.truncate(depth);

        if !advance(&mut stack, config.preemption_bound) {
            return Report {
                name: config.name,
                schedules,
                pruned,
                failure: None,
            };
        }
    }
}

/// Moves the DFS stack to the next unexplored path. Returns `false` when the
/// tree is exhausted.
fn advance(stack: &mut Vec<Frame>, preemption_bound: Option<usize>) -> bool {
    while let Some(mut frame) = stack.pop() {
        let mut next = frame.pos + 1;
        while next < frame.order.len() {
            let cost = frame.preemptions + usize::from(frame.preempts(frame.order[next]));
            if preemption_bound.is_none_or(|bound| cost <= bound) {
                frame.pos = next;
                stack.push(frame);
                return true;
            }
            next += 1;
        }
    }
    false
}

fn schedule_of(stack: &[Frame], depth: usize) -> Schedule {
    Schedule::new(
        stack[..depth.min(stack.len())]
            .iter()
            .map(Frame::chosen)
            .collect(),
    )
}

/// Re-runs the exact interleaving described by `schedule` (as printed by a
/// failing exploration) under [`MemoryMode::Sc`]. Decisions beyond the
/// schedule's end fall back to the default continuation, so a prefix is
/// enough to reach the bug.
///
/// # Panics
///
/// Panics with the model's failure message if the execution fails — i.e. a
/// replayed failing schedule fails again, as a normal test failure — and
/// panics if the schedule diverges from the model's enabled sets.
pub fn replay<F: FnOnce() -> Plan>(schedule: &Schedule, factory: F) {
    replay_in(MemoryMode::Sc, schedule, factory);
}

/// [`replay`] under an explicit memory mode: a schedule found by a
/// [`Config::store_buffer`] exploration contains flush decisions (ids ≥
/// [`crate::FLUSH_BASE`]), one found by a [`Config::relaxed`] exploration
/// may additionally contain stale-read decisions (ids ≥
/// [`crate::REORDER_BASE`]), and either only replays under a mode that
/// models those steps.
///
/// # Panics
///
/// As [`replay`]; additionally panics up front when `schedule` contains
/// flush decisions but `memory` is [`MemoryMode::Sc`], or stale-read
/// decisions but `memory` keeps no version window.
pub fn replay_in<F: FnOnce() -> Plan>(memory: MemoryMode, schedule: &Schedule, factory: F) {
    let steps = schedule.steps();
    if memory == MemoryMode::Sc {
        if let Some(flush) = steps.iter().find(|&&id| id >= FLUSH_BASE) {
            panic!(
                "schedule {schedule} contains flush decision {flush} but is \
                 being replayed under MemoryMode::Sc — use replay_in with the \
                 store-buffer mode that produced it"
            );
        }
    }
    let windowless = !matches!(memory, MemoryMode::Relaxed { window, .. } if window > 0);
    if windowless {
        if let Some(reorder) = steps.iter().find(|&&id| id >= REORDER_BASE) {
            panic!(
                "schedule {schedule} contains stale-read decision {reorder} \
                 but is being replayed under {memory:?}, which models no load \
                 reordering — use replay_in with the relaxed mode that \
                 produced it"
            );
        }
    }
    let mut depth = 0usize;
    let result = run_once(
        factory(),
        10_000 + steps.len(),
        memory,
        &mut |enabled, last| {
            let k = depth;
            depth += 1;
            match steps.get(k) {
                Some(&tid) => {
                    assert!(
                        enabled.contains(&tid),
                        "schedule diverged at decision {k}: wants decision {tid}, \
                         enabled {enabled:?}"
                    );
                    tid
                }
                None => match last {
                    Some(l) if enabled.contains(&l) => l,
                    _ => enabled[0],
                },
            }
        },
    );
    match result.outcome {
        Outcome::Ok => {}
        Outcome::Failed(message) => panic!("replay of schedule {schedule} failed: {message}"),
        Outcome::Livelock => panic!("replay of schedule {schedule} livelocked"),
        Outcome::Pruned => panic!("replay of schedule {schedule} exceeded the step budget"),
    }
}

/// Parses a schedule string and replays it (convenience for pasting the
/// string printed by [`Report::assert_ok`]).
///
/// # Panics
///
/// Panics on an unparsable schedule string, and as [`replay`] does.
pub fn replay_str<F: FnOnce() -> Plan>(schedule: &str, factory: F) {
    let schedule = Schedule::from_str(schedule)
        .unwrap_or_else(|e| panic!("bad schedule string {schedule:?}: {e}"));
    replay(&schedule, factory);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::Atomic;
    use std::sync::Arc;

    /// Two racing unsynchronized increments: load + store. The lost-update
    /// interleaving must be found by exhaustive search.
    fn racy_counter_plan() -> Plan {
        let counter = Arc::new(Atomic::new(0u64));
        let mk = |c: Arc<Atomic<u64>>| {
            move || {
                let v = c.load();
                c.store(v + 1);
            }
        };
        let check = {
            let c = Arc::clone(&counter);
            move || assert_eq!(c.load_plain(), 2, "lost update")
        };
        Plan::new()
            .thread(mk(Arc::clone(&counter)))
            .thread(mk(Arc::clone(&counter)))
            .check(check)
    }

    #[test]
    fn finds_lost_update_and_replays_it() {
        let report = explore(&Config::exhaustive("racy-counter"), racy_counter_plan);
        let failure = report.assert_fails();
        assert_eq!(failure.kind, FailureKind::Panic);
        assert!(failure.message.contains("lost update"), "{failure:?}");
        // The failing schedule replays to the same failure.
        let err = std::panic::catch_unwind(|| replay(&failure.schedule, racy_counter_plan))
            .expect_err("replay must reproduce the failure");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lost update"), "{msg}");
    }

    /// CAS-based increments: no schedule loses an update.
    fn cas_counter_plan() -> Plan {
        let counter = Arc::new(Atomic::new(0u64));
        let mk = |c: Arc<Atomic<u64>>| {
            move || loop {
                let v = c.load();
                if c.compare_exchange(v, v + 1).is_ok() {
                    return;
                }
            }
        };
        let check = {
            let c = Arc::clone(&counter);
            move || assert_eq!(c.load_plain(), 2)
        };
        Plan::new()
            .thread(mk(Arc::clone(&counter)))
            .thread(mk(Arc::clone(&counter)))
            .check(check)
    }

    #[test]
    fn cas_counter_survives_exhaustive_exploration() {
        let report = explore(&Config::exhaustive("cas-counter"), cas_counter_plan);
        report.assert_ok();
        assert!(report.schedules > 1, "must explore more than one schedule");
    }

    #[test]
    fn preemption_bound_zero_runs_threads_sequentially() {
        // With no preemptions allowed, each thread runs to completion before
        // the next starts: exactly n! thread orders minus shared prefixes —
        // for the racy counter the bug needs a preemption, so it passes.
        let report = explore(
            &Config::preemptions("racy-counter-pb0", 0),
            racy_counter_plan,
        );
        assert!(report.failure.is_none(), "pb=0 cannot interleave mid-op");
        // Two threads, two orders.
        assert_eq!(report.schedules, 2);
    }

    #[test]
    fn preemption_bound_one_finds_the_lost_update() {
        let report = explore(
            &Config::preemptions("racy-counter-pb1", 1),
            racy_counter_plan,
        );
        assert!(report.failure.is_some(), "one preemption exposes the race");
    }

    #[test]
    fn exhaustive_schedule_count_matches_interleaving_math() {
        // Two threads, two steps each, no early termination:
        // C(4,2) = 6 distinct interleavings.
        let plan = || {
            let a = Arc::new(Atomic::new(0u64));
            let mk = |c: Arc<Atomic<u64>>| {
                move || {
                    c.fetch_add(1);
                    c.fetch_add(1);
                }
            };
            Plan::new()
                .thread(mk(Arc::clone(&a)))
                .thread(mk(Arc::clone(&a)))
        };
        let report = explore(&Config::exhaustive("count-check"), plan);
        report.assert_ok();
        assert_eq!(report.schedules, 6);
    }

    #[test]
    fn livelock_is_reported_with_schedule() {
        let plan = || {
            let flag = Arc::new(Atomic::new(false));
            let f = Arc::clone(&flag);
            Plan::new().thread(move || loop {
                if f.load() {
                    return;
                }
                crate::runtime::spin_hint();
            })
        };
        let report = explore(&Config::exhaustive("lonely-spinner"), plan);
        let failure = report.assert_fails();
        assert_eq!(failure.kind, FailureKind::Livelock);
    }

    #[test]
    fn replay_str_parses_and_runs() {
        replay_str("0.0.1.1", || {
            let a = Arc::new(Atomic::new(0u64));
            let mk = |c: Arc<Atomic<u64>>| {
                move || {
                    c.fetch_add(1);
                    c.fetch_add(1);
                }
            };
            Plan::new()
                .thread(mk(Arc::clone(&a)))
                .thread(mk(Arc::clone(&a)))
        });
    }
}
