use crate::ids::{JobId, ObjectId, TaskId};
use crate::segment::Segment;
use crate::task::SharingMode;
use crate::{SimTime, Ticks};

/// The lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Eligible to run (possibly mid-segment).
    Ready,
    /// Blocked waiting for the lock on the given object (lock-based only).
    Blocked(ObjectId),
    /// Finished all segments.
    Completed,
    /// Aborted at its critical time (§3.5).
    Aborted,
    /// Crashed (failure injection): halted forever without releasing locks
    /// or running the abort handler.
    Crashed,
}

impl JobPhase {
    /// Whether the job is still live (ready or blocked).
    pub fn is_live(&self) -> bool {
        matches!(self, JobPhase::Ready | JobPhase::Blocked(_))
    }
}

/// One invocation of a task — the simulator's unit of scheduling.
///
/// Execution progress is tracked per segment; a lock-free access in flight
/// remembers the object version it started from so the engine can detect
/// interference and charge a retry.
#[derive(Debug, Clone)]
pub struct Job {
    /// This job's identity.
    pub id: JobId,
    /// The releasing task.
    pub task: TaskId,
    /// Arrival (release) time.
    pub arrival: SimTime,
    /// Absolute critical time (`arrival + C_i`).
    pub absolute_critical_time: SimTime,
    /// Lifecycle state.
    pub phase: JobPhase,
    /// Index of the segment currently executing.
    pub seg_idx: usize,
    /// Ticks of progress within the current segment (or current attempt, for
    /// lock-free accesses).
    pub seg_progress: Ticks,
    /// Object version observed when the in-flight lock-free access started.
    pub access_start_version: Option<u64>,
    /// Objects this job currently holds locks on, in acquisition order.
    /// Flat [`Segment::Access`] critical sections hold exactly one; explicit
    /// [`Segment::Acquire`]/[`Segment::Release`] pairs may nest.
    pub holds: Vec<ObjectId>,
    /// Lock-free retries suffered so far (the `f_i` of Theorem 2).
    pub retries: u64,
    /// Times this job blocked on a lock (lock-based only).
    pub blockings: u64,
    /// Times this job was preempted (switched out mid-execution while still
    /// ready) — the quantity Lemma 1 bounds by the scheduling-event count.
    pub preemptions: u64,
    /// Context-dependent execution scale: actual compute durations are the
    /// nominal plan times this factor (1.0 = as estimated). Schedulers are
    /// never shown this — their estimates stay nominal.
    pub exec_scale: f64,
    /// Total ticks actually executed so far (drives crash injection).
    pub executed: Ticks,
    /// Completion or abort time, once resolved.
    pub resolved_at: Option<SimTime>,
}

impl Job {
    pub(crate) fn new(id: JobId, task: TaskId, arrival: SimTime, critical_time: Ticks) -> Self {
        Self {
            id,
            task,
            arrival,
            absolute_critical_time: arrival.saturating_add(critical_time),
            phase: JobPhase::Ready,
            seg_idx: 0,
            seg_progress: 0,
            access_start_version: None,
            holds: Vec::new(),
            retries: 0,
            blockings: 0,
            preemptions: 0,
            exec_scale: 1.0,
            executed: 0,
            resolved_at: None,
        }
    }

    /// Nominal remaining execution under `mode`: the sum of remaining
    /// segment durations (accesses at their no-retry cost), minus progress
    /// in the current segment. This is the execution-time *estimate* a UA
    /// scheduler sees.
    pub fn remaining_exec(&self, segments: &[Segment], mode: SharingMode) -> Ticks {
        let mut total: Ticks = 0;
        for (i, seg) in segments.iter().enumerate().skip(self.seg_idx) {
            let dur = match seg {
                Segment::Compute(t) => *t,
                Segment::Access { .. } => mode.access_cost(),
                Segment::Acquire { .. } | Segment::Release { .. } => 0,
            };
            if i == self.seg_idx {
                total += dur.saturating_sub(self.seg_progress);
            } else {
                total += dur;
            }
        }
        total
    }

    /// Sojourn time if the job resolved, else `None`.
    pub fn sojourn(&self) -> Option<Ticks> {
        self.resolved_at.map(|t| t - self.arrival)
    }
}

/// The per-job outcome record kept by the simulator for analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobRecord {
    /// The job's identity.
    pub id: JobId,
    /// The releasing task.
    pub task: TaskId,
    /// Arrival time.
    pub arrival: SimTime,
    /// Completion or abort time.
    pub resolved_at: SimTime,
    /// Whether the job completed (vs. aborted at its critical time).
    pub completed: bool,
    /// Utility accrued (zero when aborted).
    pub utility: f64,
    /// Lock-free retries suffered (the measured `f_i`).
    pub retries: u64,
    /// Times the job blocked on a lock.
    pub blockings: u64,
    /// Times the job was preempted while ready (Lemma 1's quantity).
    pub preemptions: u64,
}

impl JobRecord {
    /// The job's sojourn time (arrival to resolution).
    pub fn sojourn(&self) -> Ticks {
        self.resolved_at - self.arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::AccessKind;

    fn segs() -> Vec<Segment> {
        vec![
            Segment::Compute(50),
            Segment::Access {
                object: ObjectId::new(0),
                kind: AccessKind::Write,
            },
            Segment::Compute(30),
        ]
    }

    #[test]
    fn remaining_exec_counts_modes() {
        let job = Job::new(JobId::new(0), TaskId::new(0), 100, 1_000);
        assert_eq!(
            job.remaining_exec(&segs(), SharingMode::LockFree { access_ticks: 7 }),
            87
        );
        assert_eq!(
            job.remaining_exec(&segs(), SharingMode::LockBased { access_ticks: 20 }),
            100
        );
        assert_eq!(job.remaining_exec(&segs(), SharingMode::Ideal), 80);
    }

    #[test]
    fn remaining_exec_subtracts_progress() {
        let mut job = Job::new(JobId::new(0), TaskId::new(0), 0, 1_000);
        job.seg_idx = 0;
        job.seg_progress = 20;
        assert_eq!(job.remaining_exec(&segs(), SharingMode::Ideal), 60);
        job.seg_idx = 2;
        job.seg_progress = 10;
        assert_eq!(job.remaining_exec(&segs(), SharingMode::Ideal), 20);
    }

    #[test]
    fn phase_liveness() {
        assert!(JobPhase::Ready.is_live());
        assert!(JobPhase::Blocked(ObjectId::new(0)).is_live());
        assert!(!JobPhase::Completed.is_live());
        assert!(!JobPhase::Aborted.is_live());
    }

    #[test]
    fn critical_time_is_absolute() {
        let job = Job::new(JobId::new(1), TaskId::new(0), 250, 1_000);
        assert_eq!(job.absolute_critical_time, 1_250);
        assert_eq!(job.sojourn(), None);
    }
}
