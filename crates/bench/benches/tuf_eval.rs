//! Micro-benchmarks for TUF evaluation and UAM trace checking — the inner
//! loops of PUD computation and workload validation.

use criterion::{criterion_group, criterion_main, Criterion};
use lfrt_tuf::Tuf;
use lfrt_uam::{ArrivalGenerator, RandomUamArrivals, Uam};

fn tuf_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("tuf_eval");
    let step = Tuf::step(10.0, 1_000).expect("valid");
    let parabolic = Tuf::parabolic(10.0, 1_000).expect("valid");
    let piecewise =
        Tuf::piecewise((0..16).map(|i| (i * 60, 16.0 - i as f64)).collect(), 1_000).expect("valid");
    group.bench_function("step", |b| {
        b.iter(|| std::hint::black_box(step.utility(std::hint::black_box(500))));
    });
    group.bench_function("parabolic", |b| {
        b.iter(|| std::hint::black_box(parabolic.utility(std::hint::black_box(500))));
    });
    group.bench_function("piecewise_16pt", |b| {
        b.iter(|| std::hint::black_box(piecewise.utility(std::hint::black_box(500))));
    });
    group.finish();
}

fn uam_check(c: &mut Criterion) {
    let uam = Uam::new(1, 3, 1_000).expect("valid");
    let trace = RandomUamArrivals::new(uam, 7)
        .with_intensity(3.0)
        .generate(1_000_000);
    c.bench_function("uam_conformance_1k_windows", |b| {
        b.iter(|| std::hint::black_box(trace.conforms_to(&uam)).is_ok());
    });
}

criterion_group!(benches, tuf_eval, uam_check);
criterion_main!(benches);
