//! Trace-log integration tests: the fine-grained transition log is
//! internally consistent with the aggregated metrics and with the engine's
//! locking protocol.

use lfrt_sim::{
    AccessKind, Decision, Engine, JobId, ObjectId, SchedulerContext, Segment, SharingMode,
    SimConfig, TaskSpec, TraceEvent, UaScheduler,
};
use lfrt_tuf::Tuf;
use lfrt_uam::{ArrivalTrace, Uam};

struct Edf;

impl UaScheduler for Edf {
    fn name(&self) -> &str {
        "edf-test"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        let mut order: Vec<JobId> = ctx.jobs.iter().map(|j| j.id).collect();
        order.sort_by_key(|&id| {
            let j = ctx.job(id).expect("listed job");
            (j.absolute_critical_time, id)
        });
        Decision {
            order,
            ops: 1,
            ..Decision::default()
        }
    }
}

fn task(name: &str, critical: u64, segments: Vec<Segment>) -> TaskSpec {
    TaskSpec::builder(name)
        .tuf(Tuf::step(1.0, critical).expect("valid tuf"))
        .uam(Uam::periodic(100_000))
        .segments(segments)
        .build()
        .expect("valid task")
}

fn access(object: usize) -> Segment {
    Segment::Access {
        object: ObjectId::new(object),
        kind: AccessKind::Write,
    }
}

#[test]
fn lock_traffic_is_balanced_and_ordered() {
    let holder = task("holder", 50_000, vec![Segment::Compute(10), access(0)]);
    let contender = task("contender", 1_000, vec![access(0)]);
    let outcome = Engine::new(
        vec![holder, contender],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![50])],
        SimConfig::new(SharingMode::LockBased { access_ticks: 100 }).trace(true),
    )
    .expect("valid engine")
    .run(Edf);
    let log = &outcome.trace;
    assert!(!log.is_empty());

    let acquires = log.filter(|e| matches!(e, TraceEvent::LockAcquired { .. }));
    let releases = log.filter(|e| matches!(e, TraceEvent::LockReleased { .. }));
    assert_eq!(
        acquires.len(),
        releases.len(),
        "every acquire has a release"
    );
    assert_eq!(acquires.len(), 2);

    // The contender blocks, then wakes when the holder releases, in order.
    let blocked = log.filter(|e| matches!(e, TraceEvent::Blocked { .. }));
    let woken = log.filter(|e| matches!(e, TraceEvent::Woken { .. }));
    assert_eq!(blocked.len(), 1);
    assert_eq!(woken.len(), 1);
    assert!(blocked[0].at < woken[0].at);
    // The wake coincides with the holder's release of object 0.
    assert_eq!(woken[0].at, releases[0].at);
}

#[test]
fn retry_events_match_metrics() {
    let victim = task("victim", 50_000, vec![Segment::Compute(10), access(0)]);
    let interferer = task("interferer", 500, vec![access(0)]);
    let outcome = Engine::new(
        vec![victim, interferer],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![50])],
        SimConfig::new(SharingMode::LockFree { access_ticks: 100 }).trace(true),
    )
    .expect("valid engine")
    .run(Edf);
    let retried = outcome
        .trace
        .filter(|e| matches!(e, TraceEvent::Retried { .. }));
    assert_eq!(retried.len() as u64, outcome.metrics.retries());
    assert_eq!(retried.len(), 1);
}

#[test]
fn release_and_completion_events_match_metrics() {
    let t = task("t", 1_000, vec![Segment::Compute(100)]);
    let outcome = Engine::new(
        vec![t],
        vec![ArrivalTrace::new(vec![0, 1_000, 2_000])],
        SimConfig::new(SharingMode::Ideal).trace(true),
    )
    .expect("valid engine")
    .run(Edf);
    let released = outcome
        .trace
        .filter(|e| matches!(e, TraceEvent::Released { .. }));
    let completed = outcome
        .trace
        .filter(|e| matches!(e, TraceEvent::Completed { .. }));
    assert_eq!(released.len() as u64, outcome.metrics.released());
    assert_eq!(completed.len() as u64, outcome.metrics.completed());
    // Scheduler invocations are traced one-for-one.
    let invoked = outcome
        .trace
        .filter(|e| matches!(e, TraceEvent::SchedulerInvoked { .. }));
    assert_eq!(invoked.len() as u64, outcome.metrics.sched_invocations);
}

#[test]
fn gantt_shows_preemption_pattern() {
    let long = task("long", 50_000, vec![Segment::Compute(1_000)]);
    let short = task("short", 300, vec![Segment::Compute(100)]);
    let outcome = Engine::new(
        vec![long, short],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![200])],
        SimConfig::new(SharingMode::Ideal).trace(true),
    )
    .expect("valid engine")
    .run(Edf);
    let intervals = outcome.trace.running_intervals();
    // long runs 0..200, short 200..300, long 300..1100.
    assert_eq!(intervals.len(), 3);
    assert_eq!(intervals[0], (JobId::new(0), 0, 200));
    assert_eq!(intervals[1], (JobId::new(1), 200, 300));
    assert_eq!(intervals[2], (JobId::new(0), 300, 1_100));
    let chart = outcome.trace.render_gantt(44);
    assert_eq!(chart.lines().count(), 3, "header + two job rows:\n{chart}");
}

#[test]
fn tracing_disabled_keeps_log_empty() {
    let t = task("t", 1_000, vec![Segment::Compute(100)]);
    let outcome = Engine::new(
        vec![t],
        vec![ArrivalTrace::new(vec![0])],
        SimConfig::new(SharingMode::Ideal),
    )
    .expect("valid engine")
    .run(Edf);
    assert!(outcome.trace.is_empty());
}
