//! Pool teardown accounting under a counting allocator.
//!
//! A pooled structure never returns node blocks to the allocator on the hot
//! path — they park in per-thread caches and the overflow stack. This binary
//! installs a counting `#[global_allocator]` and proves the other half of
//! that bargain: [`RawPool::purge`] hands **every** block back, so the pool
//! is a cache, not a leak.
//!
//! The payload type is `#[repr(align(32))]`, which makes the node layout's
//! alignment 32 — an alignment nothing else in this binary allocates with —
//! so the counter isolates pool blocks exactly without guessing sizes. This
//! test binary contains only this test (the allocator telemetry is global).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::epoch;
use lfrt_lockfree::TreiberStack;

/// Counts alloc/dealloc calls whose layout alignment is 32 — i.e. exactly
/// the pool blocks for `Node<Payload>` below.
struct CountingAlloc;

static ALIGN32_ALLOCS: AtomicUsize = AtomicUsize::new(0);
static ALIGN32_FREES: AtomicUsize = AtomicUsize::new(0);

// SAFETY: defers entirely to `System`; the counters are plain atomics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if layout.align() == 32 {
            ALIGN32_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if layout.align() == 32 {
            ALIGN32_FREES.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Over-aligned payload: stamps the node layout with align 32 so the
/// counting allocator can single it out.
#[repr(align(32))]
struct Payload {
    _bytes: [u8; 24],
}

/// Drives the collector until `done()` holds or a generous bound is hit.
fn collect_until(done: impl Fn() -> bool) -> bool {
    for _ in 0..10_000 {
        if done() {
            return true;
        }
        epoch::pin().flush();
        std::thread::yield_now();
    }
    done()
}

#[test]
fn purge_returns_every_pooled_block_to_the_allocator() {
    // Deep enough to overflow the local cache and exercise spill segments.
    const N: usize = 256;

    let stack = TreiberStack::new();
    let pool = stack.node_pool();
    let recycles_before = pool.stats().recycles;

    for _ in 0..N {
        stack.push(Payload { _bytes: [0; 24] });
    }
    for _ in 0..N {
        assert!(stack.pop().is_some());
    }
    // Collection runs the deferred recyclers on this thread, so all N blocks
    // land in this thread's cache and the pool's overflow stack.
    assert!(
        collect_until(|| pool.stats().recycles >= recycles_before + N),
        "popped nodes never recycled into the pool"
    );

    let outstanding =
        ALIGN32_ALLOCS.load(Ordering::Relaxed) - ALIGN32_FREES.load(Ordering::Relaxed);
    assert!(
        outstanding >= N,
        "expected at least {N} pooled blocks outstanding, saw {outstanding}"
    );
    assert_eq!(
        pool.stats().misses,
        outstanding,
        "every outstanding block is accounted for by a pool miss"
    );

    // SAFETY: the stack is empty and this thread is the only one that ever
    // touched the pool, so nothing concurrently acquires or recycles.
    let purged = unsafe { pool.purge() };
    assert_eq!(
        purged, outstanding,
        "purge must drain the caller cache and the overflow stack completely"
    );
    assert_eq!(
        ALIGN32_ALLOCS.load(Ordering::Relaxed),
        ALIGN32_FREES.load(Ordering::Relaxed),
        "after purge, every block the pool ever allocated has been freed"
    );
}
