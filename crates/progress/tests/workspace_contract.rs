//! The checked-in `progress.toml` must hold against the checked-in
//! sources: zero unbaselined findings, zero stale baseline entries, and
//! every baseline entry actually absorbing a live finding. Also proves
//! the staleness contract end to end: deleting one justified entry flips
//! the analysis to failing.

use std::path::{Path, PathBuf};

use lfrt_progress::{analyze, report};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

fn manifest_text() -> String {
    std::fs::read_to_string(repo_root().join("progress.toml")).expect("progress.toml")
}

#[test]
fn committed_manifest_is_clean_and_every_baseline_entry_is_live() {
    let analysis = analyze(&repo_root(), &manifest_text()).expect("workspace analysis");
    assert!(
        report::is_clean(&analysis),
        "workspace progress check failed: unbaselined={:?} stale={:?} undeclared={:?} \
         unresolved={:?}",
        analysis.matched.unbaselined,
        analysis.matched.stale,
        analysis.undeclared,
        analysis.unresolved
    );
    assert!(
        !analysis.matched.baselined.is_empty(),
        "the justified baseline should absorb the known acquire_record/search findings"
    );
}

#[test]
fn deleting_a_justified_baseline_entry_fails_the_run() {
    let text = manifest_text();
    let marker = "detail = \"REGISTRY\"";
    let start = text.find("[[baseline]]").expect("baseline section");
    let entry_start = text[..text.find(marker).expect("REGISTRY entry")]
        .rfind("[[baseline]]")
        .expect("entry header");
    assert!(entry_start >= start);
    let entry_end = text[entry_start + 1..]
        .find("[[baseline]]")
        .map_or(text.len(), |k| entry_start + 1 + k);
    let mut pruned = String::new();
    pruned.push_str(&text[..entry_start]);
    pruned.push_str(&text[entry_end..]);

    let analysis = analyze(&repo_root(), &pruned).expect("workspace analysis");
    assert!(
        !report::is_clean(&analysis),
        "removing a justification must surface its finding again"
    );
    assert!(analysis
        .matched
        .unbaselined
        .iter()
        .any(|f| f.rule == "PRG001" && f.detail == "REGISTRY"));
}
