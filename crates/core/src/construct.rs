//! Shared schedule-construction logic (§3.4 of the paper), used by both the
//! lock-based and lock-free RUA variants.

use lfrt_sim::{JobId, SchedulerContext};

use crate::ops::OpsCounter;
use crate::schedule::TentativeSchedule;

/// A chain ready for insertion: the owning job, its dependency chain (head
/// first; a singleton under lock-free sharing), and its PUD.
#[derive(Debug, Clone)]
pub(crate) struct RankedChain {
    pub job: JobId,
    pub chain: Vec<JobId>,
    pub pud: f64,
}

/// Sorts chains by non-increasing PUD (ties toward the lower job id),
/// charging one operation per comparison.
pub(crate) fn sort_by_pud(chains: &mut [RankedChain], ops: &mut OpsCounter) {
    chains.sort_by(|a, b| {
        ops.tick();
        b.pud
            .partial_cmp(&a.pud)
            .expect("PUDs are finite")
            .then(a.job.cmp(&b.job))
    });
}

/// Examines chains in the given (non-increasing PUD) order, inserting each
/// job with its dependents into a tentative copy of the schedule at their
/// critical-time positions while respecting dependency order, and keeping
/// each insertion only if the tentative schedule remains feasible.
///
/// This is the paper's §3.4 procedure, including the removal/reinsertion of
/// already-present dependents (Figure 5) and the critical-time advancement
/// of Figure 4.
pub(crate) fn build_schedule(
    ctx: &SchedulerContext<'_>,
    chains: &[RankedChain],
    ops: &mut OpsCounter,
) -> TentativeSchedule {
    let mut schedule = TentativeSchedule::new();
    for ranked in chains {
        // A job already inserted as someone else's dependent is settled.
        if schedule.position(ranked.job, ops).is_some() {
            continue;
        }
        let mut tentative = schedule.clone();
        ops.add(tentative.len() as u64); // copying the schedule costs O(n)
                                         // Insert from the tail of the chain (the job itself) toward the head
                                         // (its deepest dependent); every next member must precede the last.
        let mut limit: Option<usize> = None;
        for &member in ranked.chain.iter().rev() {
            let Some(view) = ctx.job(member) else {
                continue;
            };
            match tentative.position(member, ops) {
                Some(pos) => match limit {
                    Some(lim) if pos > lim => {
                        // Figure 5 Case 2: the dependent sits after the job
                        // that needs it; move it forward, advancing its
                        // effective critical time to the successor's.
                        let entry = tentative.remove(pos, ops);
                        let new_pos = tentative.insert_before(
                            member,
                            entry.effective_critical_time,
                            Some(lim),
                            ops,
                        );
                        limit = Some(new_pos);
                    }
                    _ => limit = Some(pos),
                },
                None => {
                    let pos =
                        tentative.insert_before(member, view.absolute_critical_time, limit, ops);
                    limit = Some(pos);
                }
            }
        }
        if tentative.is_feasible(ctx, ops) {
            schedule = tentative;
            lfrt_trace::emit(
                lfrt_trace::EventKind::SchedAdmit,
                lfrt_trace::Site::Sched,
                ranked.chain.len() as u64,
            );
        } else {
            lfrt_trace::emit(
                lfrt_trace::EventKind::SchedAbort,
                lfrt_trace::Site::Sched,
                ranked.chain.len() as u64,
            );
        }
    }
    schedule
}
