//! §3.5 abort-handler accounting: the exception handler runs immediately at
//! the abort, consumes processor time (a kernel-busy window), and restores
//! consistency by releasing held locks.

use lfrt_sim::{
    Decision, Engine, JobId, ObjectId, SchedulerContext, Segment, SharingMode, SimConfig, TaskSpec,
    UaScheduler,
};
use lfrt_tuf::Tuf;
use lfrt_uam::{ArrivalTrace, Uam};

struct Edf;

impl UaScheduler for Edf {
    fn name(&self) -> &str {
        "edf-test"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        let mut order: Vec<JobId> = ctx.jobs.iter().map(|j| j.id).collect();
        order.sort_by_key(|&id| {
            let j = ctx.job(id).expect("listed job");
            (j.absolute_critical_time, id)
        });
        Decision {
            order,
            ops: 1,
            ..Decision::default()
        }
    }
}

#[test]
fn handler_time_delays_the_next_job() {
    // "doomed" can never finish (compute > critical time); its abort at
    // t=500 runs a 300-tick handler, during which "next" cannot progress.
    let doomed = TaskSpec::builder("doomed")
        .tuf(Tuf::step(1.0, 500).expect("valid tuf"))
        .uam(Uam::periodic(100_000))
        .segments(vec![Segment::Compute(10_000)])
        .abort_handler_ticks(300)
        .build()
        .expect("valid task");
    let next = TaskSpec::builder("next")
        .tuf(Tuf::step(1.0, 50_000).expect("valid tuf"))
        .uam(Uam::periodic(100_000))
        .segments(vec![Segment::Compute(100)])
        .build()
        .expect("valid task");
    let outcome = Engine::new(
        vec![doomed, next],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![490])],
        SimConfig::new(SharingMode::Ideal),
    )
    .expect("valid engine")
    .run(Edf);
    let doomed_rec = outcome
        .records
        .iter()
        .find(|r| r.task.index() == 0)
        .expect("ran");
    assert!(!doomed_rec.completed);
    assert_eq!(doomed_rec.resolved_at, 500);
    let next_rec = outcome
        .records
        .iter()
        .find(|r| r.task.index() == 1)
        .expect("ran");
    // "next" arrives at 490 but "doomed" has the earlier critical time and
    // keeps the CPU; the abort at 500 is followed by the 300-tick handler,
    // so "next" runs 800..900.
    assert_eq!(
        next_rec.resolved_at, 900,
        "the handler's 300 ticks must be charged"
    );
}

#[test]
fn zero_handler_time_costs_nothing() {
    let doomed = TaskSpec::builder("doomed")
        .tuf(Tuf::step(1.0, 500).expect("valid tuf"))
        .uam(Uam::periodic(100_000))
        .segments(vec![Segment::Compute(10_000)])
        .build()
        .expect("valid task");
    let next = TaskSpec::builder("next")
        .tuf(Tuf::step(1.0, 50_000).expect("valid tuf"))
        .uam(Uam::periodic(100_000))
        .segments(vec![Segment::Compute(100)])
        .build()
        .expect("valid task");
    let outcome = Engine::new(
        vec![doomed, next],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![490])],
        SimConfig::new(SharingMode::Ideal),
    )
    .expect("valid engine")
    .run(Edf);
    let next_rec = outcome
        .records
        .iter()
        .find(|r| r.task.index() == 1)
        .expect("ran");
    // Without a handler, "next" starts right at the abort: 500..600.
    assert_eq!(next_rec.resolved_at, 600);
}

#[test]
fn handler_releases_lock_before_waiter_resumes() {
    // Two CPUs so the waiter can request while the holder is mid-section:
    // the holder aborts at its critical time with a 200-tick handler; the
    // waiter is woken at the abort but cannot execute until the handler's
    // kernel window ends.
    let holder = TaskSpec::builder("holder")
        .tuf(Tuf::step(1.0, 500).expect("valid tuf"))
        .uam(Uam::periodic(100_000))
        .segments(vec![Segment::Access {
            object: ObjectId::new(0),
            kind: lfrt_sim::AccessKind::Write,
        }])
        .abort_handler_ticks(200)
        .build()
        .expect("valid task");
    let waiter = TaskSpec::builder("waiter")
        .tuf(Tuf::step(1.0, 50_000).expect("valid tuf"))
        .uam(Uam::periodic(100_000))
        .segments(vec![Segment::Access {
            object: ObjectId::new(0),
            kind: lfrt_sim::AccessKind::Write,
        }])
        .build()
        .expect("valid task");
    let outcome = lfrt_sim::mp::MpEngine::new(
        vec![holder, waiter],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![10])],
        SimConfig::new(SharingMode::LockBased {
            access_ticks: 1_000,
        }),
        2,
    )
    .expect("valid engine")
    .run(Edf);
    let waiter_rec = outcome
        .records
        .iter()
        .find(|r| r.task.index() == 1)
        .expect("ran");
    assert!(waiter_rec.completed);
    // Abort at 500 + 200 handler + 1000 critical section = 1700.
    assert_eq!(waiter_rec.resolved_at, 1_700);
    assert_eq!(waiter_rec.blockings, 1);
}
