/// The shape of a time/utility function over `[0, C)`, where `C` is the
/// critical time held by the enclosing [`Tuf`](crate::Tuf).
///
/// All shapes evaluate to zero at and after the critical time; the variants
/// only describe behaviour strictly before it.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TufShape {
    /// Binary-valued downward step: constant `height` before the critical
    /// time, zero afterwards. This is the classic deadline.
    Step {
        /// Utility accrued by completing before the critical time.
        height: f64,
    },
    /// Utility decays linearly from `initial` at `t = 0` to `final_utility`
    /// just before the critical time (then drops to zero).
    Linear {
        /// Utility at completion time zero.
        initial: f64,
        /// Utility approached as completion time nears the critical time.
        final_utility: f64,
    },
    /// Downward parabola `u(t) = peak · (1 − (t/C)²)` — non-increasing, with
    /// maximum `peak` at `t = 0`. Models "soft" time constraints such as the
    /// AWACS association-quality TUF in the paper's Figure 1.
    Parabolic {
        /// Utility at completion time zero.
        peak: f64,
    },
    /// Exponential decay `u(t) = initial · e^(−rate·t)` — the "value
    /// evaporates" constraints of the TUF literature (e.g. stale sensor
    /// fusion). Non-increasing for `rate ≥ 0`.
    Exponential {
        /// Utility at completion time zero.
        initial: f64,
        /// Decay rate per tick (must be finite and non-negative).
        rate: f64,
    },
    /// Arbitrary piecewise-linear function through the given `(time, utility)`
    /// control points, linearly interpolated. Before the first point the
    /// utility is the first point's utility; between the last point and the
    /// critical time it is the last point's utility.
    PiecewiseLinear {
        /// Strictly time-increasing control points within `[0, C)`.
        points: Vec<(u64, f64)>,
    },
}

impl TufShape {
    /// Evaluates the shape at sojourn time `t`, given the critical time `c`.
    ///
    /// Returns zero for `t >= c`. The caller (i.e. [`Tuf`](crate::Tuf))
    /// guarantees `c > 0` and that all utilities are finite and non-negative.
    pub(crate) fn eval(&self, t: u64, c: u64) -> f64 {
        if t >= c {
            return 0.0;
        }
        match self {
            TufShape::Step { height } => *height,
            TufShape::Linear {
                initial,
                final_utility,
            } => {
                let frac = t as f64 / c as f64;
                initial + (final_utility - initial) * frac
            }
            TufShape::Parabolic { peak } => {
                let frac = t as f64 / c as f64;
                peak * (1.0 - frac * frac)
            }
            TufShape::Exponential { initial, rate } => initial * (-rate * t as f64).exp(),
            TufShape::PiecewiseLinear { points } => piecewise_eval(points, t),
        }
    }

    /// Maximum utility the shape can yield anywhere in `[0, C)`.
    pub(crate) fn max_utility(&self) -> f64 {
        match self {
            TufShape::Step { height } => *height,
            TufShape::Linear {
                initial,
                final_utility,
            } => initial.max(*final_utility),
            TufShape::Parabolic { peak } => *peak,
            TufShape::Exponential { initial, .. } => *initial,
            TufShape::PiecewiseLinear { points } => {
                points.iter().map(|&(_, u)| u).fold(0.0, f64::max)
            }
        }
    }

    /// Whether the shape is non-increasing over `[0, C)`.
    ///
    /// Non-increasing TUFs are the precondition of the paper's Lemmas 4 and 5
    /// (shorter sojourn times always accrue at least as much utility).
    pub(crate) fn is_non_increasing(&self) -> bool {
        match self {
            TufShape::Step { .. } | TufShape::Parabolic { .. } | TufShape::Exponential { .. } => {
                true
            }
            TufShape::Linear {
                initial,
                final_utility,
            } => final_utility <= initial,
            TufShape::PiecewiseLinear { points } => points.windows(2).all(|w| w[1].1 <= w[0].1),
        }
    }

    /// All utility values that define the shape, for validation.
    pub(crate) fn utility_values(&self) -> Vec<f64> {
        match self {
            TufShape::Step { height } => vec![*height],
            TufShape::Linear {
                initial,
                final_utility,
            } => vec![*initial, *final_utility],
            TufShape::Parabolic { peak } => vec![*peak],
            TufShape::Exponential { initial, .. } => vec![*initial],
            TufShape::PiecewiseLinear { points } => points.iter().map(|&(_, u)| u).collect(),
        }
    }
}

fn piecewise_eval(points: &[(u64, f64)], t: u64) -> f64 {
    debug_assert!(!points.is_empty());
    if t <= points[0].0 {
        return points[0].1;
    }
    if t >= points[points.len() - 1].0 {
        return points[points.len() - 1].1;
    }
    // Find the segment containing t.
    let idx = points.partition_point(|&(pt, _)| pt <= t);
    let (t0, u0) = points[idx - 1];
    let (t1, u1) = points[idx];
    debug_assert!(t0 <= t && t < t1);
    let frac = (t - t0) as f64 / (t1 - t0) as f64;
    u0 + (u1 - u0) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_is_flat_then_zero() {
        let s = TufShape::Step { height: 3.0 };
        assert_eq!(s.eval(0, 10), 3.0);
        assert_eq!(s.eval(9, 10), 3.0);
        assert_eq!(s.eval(10, 10), 0.0);
        assert_eq!(s.eval(u64::MAX, 10), 0.0);
    }

    #[test]
    fn linear_interpolates_endpoints() {
        let s = TufShape::Linear {
            initial: 10.0,
            final_utility: 0.0,
        };
        assert_eq!(s.eval(0, 100), 10.0);
        assert!((s.eval(50, 100) - 5.0).abs() < 1e-12);
        assert!((s.eval(99, 100) - 0.1).abs() < 1e-12);
        assert_eq!(s.eval(100, 100), 0.0);
    }

    #[test]
    fn linear_can_increase() {
        let s = TufShape::Linear {
            initial: 1.0,
            final_utility: 5.0,
        };
        assert!(s.eval(80, 100) > s.eval(10, 100));
        assert!(!s.is_non_increasing());
    }

    #[test]
    fn parabolic_peaks_at_zero() {
        let s = TufShape::Parabolic { peak: 8.0 };
        assert_eq!(s.eval(0, 100), 8.0);
        assert!((s.eval(50, 100) - 6.0).abs() < 1e-12); // 8 * (1 - 0.25)
        assert!(s.eval(99, 100) > 0.0);
        assert_eq!(s.eval(100, 100), 0.0);
        assert!(s.is_non_increasing());
    }

    #[test]
    fn exponential_decays_and_zeroes_at_critical_time() {
        let s = TufShape::Exponential {
            initial: 8.0,
            rate: 0.001,
        };
        assert_eq!(s.eval(0, 10_000), 8.0);
        let mid = s.eval(693, 10_000); // half-life ≈ ln2/0.001 ≈ 693
        assert!((mid - 4.0).abs() < 0.01, "got {mid}");
        assert_eq!(s.eval(10_000, 10_000), 0.0);
        assert!(s.is_non_increasing());
        assert_eq!(s.max_utility(), 8.0);
    }

    #[test]
    fn piecewise_interpolation_and_clamping() {
        let s = TufShape::PiecewiseLinear {
            points: vec![(10, 4.0), (20, 2.0), (30, 2.0)],
        };
        assert_eq!(s.eval(0, 100), 4.0); // before first point
        assert_eq!(s.eval(10, 100), 4.0);
        assert!((s.eval(15, 100) - 3.0).abs() < 1e-12);
        assert_eq!(s.eval(25, 100), 2.0);
        assert_eq!(s.eval(90, 100), 2.0); // after last point, before C
        assert_eq!(s.eval(100, 100), 0.0);
        assert!(s.is_non_increasing());
    }

    #[test]
    fn piecewise_non_monotone_detected() {
        let s = TufShape::PiecewiseLinear {
            points: vec![(0, 1.0), (10, 3.0)],
        };
        assert!(!s.is_non_increasing());
    }

    #[test]
    fn max_utility_per_shape() {
        assert_eq!(TufShape::Step { height: 2.0 }.max_utility(), 2.0);
        assert_eq!(
            TufShape::Linear {
                initial: 1.0,
                final_utility: 7.0
            }
            .max_utility(),
            7.0
        );
        assert_eq!(TufShape::Parabolic { peak: 5.0 }.max_utility(), 5.0);
        let pw = TufShape::PiecewiseLinear {
            points: vec![(0, 1.0), (5, 9.0), (10, 2.0)],
        };
        assert_eq!(pw.max_utility(), 9.0);
    }
}
