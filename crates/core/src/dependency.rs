//! Dependency-chain computation (§3.1 of the paper).
//!
//! A job `J` blocked on an object depends on the object's lock holder, which
//! may itself be blocked, and so on. The *dependency chain* of `J` is the
//! sequence `⟨head, …, J⟩` where `head` is the deepest dependency (a job
//! that is not blocked): each element must execute (at least far enough to
//! release its lock) before its successor.

use lfrt_sim::{JobId, SchedulerContext};

use crate::ops::OpsCounter;

/// The result of following a job's dependency edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Chain {
    /// The acyclic chain `⟨head, …, job⟩`, head (deepest dependency) first.
    Acyclic(Vec<JobId>),
    /// A cycle was found (only possible with nested critical sections): the
    /// jobs on the cycle, in discovery order.
    Cycle(Vec<JobId>),
}

impl Chain {
    /// The chain's jobs regardless of cyclicity.
    pub fn jobs(&self) -> &[JobId] {
        match self {
            Chain::Acyclic(v) | Chain::Cycle(v) => v,
        }
    }

    /// Whether a deadlock (cycle) was detected.
    pub fn is_cycle(&self) -> bool {
        matches!(self, Chain::Cycle(_))
    }
}

/// Computes the dependency chain of `job` by following
/// `blocked_on → holder` edges, charging one operation per hop.
///
/// Returns [`Chain::Cycle`] if the edges loop — the deadlock condition of
/// §3.3, which cannot arise without nested critical sections but is detected
/// for completeness.
pub fn dependency_chain(ctx: &SchedulerContext<'_>, job: JobId, ops: &mut OpsCounter) -> Chain {
    let mut chain = vec![job];
    let mut current = job;
    loop {
        ops.tick();
        let view = match ctx.job(current) {
            Some(v) => v,
            None => break,
        };
        let Some(object) = view.blocked_on else { break };
        let Some(holder) = ctx.holder_of(object) else {
            // The holder resolved between state updates; treat as chain end.
            break;
        };
        if chain.contains(&holder) {
            // Found a cycle: report the jobs from the first occurrence on.
            let start = chain.iter().position(|&j| j == holder).expect("contained");
            return Chain::Cycle(chain[start..].to_vec());
        }
        chain.push(holder);
        current = holder;
    }
    // Stored ⟨job, …, head⟩; the paper's convention is head first.
    chain.reverse();
    Chain::Acyclic(chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfrt_sim::{JobView, ObjectId, TaskId};
    use lfrt_tuf::Tuf;

    fn ctx_with<'a>(
        tuf: &'a Tuf,
        jobs: Vec<(usize, Option<usize>, Option<usize>)>, // (id, blocked_on, holds)
    ) -> SchedulerContext<'a> {
        SchedulerContext {
            now: 0,
            jobs: jobs
                .into_iter()
                .map(|(id, blocked, holds)| JobView {
                    id: JobId::new(id),
                    task: TaskId::new(0),
                    arrival: 0,
                    absolute_critical_time: 1_000,
                    window: 1_000,
                    tuf,
                    remaining: 10,
                    blocked_on: blocked.map(ObjectId::new),
                    holds: holds.map(ObjectId::new).into_iter().collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn unblocked_job_is_its_own_chain() {
        let tuf = Tuf::step(1.0, 1_000).expect("valid");
        let ctx = ctx_with(&tuf, vec![(0, None, None)]);
        let mut ops = OpsCounter::new();
        let chain = dependency_chain(&ctx, JobId::new(0), &mut ops);
        assert_eq!(chain, Chain::Acyclic(vec![JobId::new(0)]));
        assert!(ops.total() >= 1);
    }

    #[test]
    fn transitive_chain_head_first() {
        // The paper's §3.1 example: T1 waits on R1 held by T2; T2 waits on
        // R2 held by T3. T1's chain is ⟨T3, T2, T1⟩.
        let tuf = Tuf::step(1.0, 1_000).expect("valid");
        let ctx = ctx_with(
            &tuf,
            vec![
                (1, Some(1), None),    // T1 blocked on R1
                (2, Some(2), Some(1)), // T2 holds R1, blocked on R2
                (3, None, Some(2)),    // T3 holds R2
            ],
        );
        let mut ops = OpsCounter::new();
        let chain = dependency_chain(&ctx, JobId::new(1), &mut ops);
        assert_eq!(
            chain,
            Chain::Acyclic(vec![JobId::new(3), JobId::new(2), JobId::new(1)])
        );
        // T2's own chain is ⟨T3, T2⟩, T3's is ⟨T3⟩.
        let chain2 = dependency_chain(&ctx, JobId::new(2), &mut OpsCounter::new());
        assert_eq!(chain2, Chain::Acyclic(vec![JobId::new(3), JobId::new(2)]));
        let chain3 = dependency_chain(&ctx, JobId::new(3), &mut OpsCounter::new());
        assert_eq!(chain3, Chain::Acyclic(vec![JobId::new(3)]));
    }

    #[test]
    fn cycle_detected() {
        // T1 holds O1, waits O2; T2 holds O2, waits O1 — a deadlock (needs
        // nested sections, which the simulator excludes, but the detector
        // must still work per §3.3).
        let tuf = Tuf::step(1.0, 1_000).expect("valid");
        let ctx = ctx_with(&tuf, vec![(1, Some(2), Some(1)), (2, Some(1), Some(2))]);
        let chain = dependency_chain(&ctx, JobId::new(1), &mut OpsCounter::new());
        assert!(chain.is_cycle());
        assert_eq!(chain.jobs(), &[JobId::new(1), JobId::new(2)]);
    }

    #[test]
    fn self_cycle_detected() {
        // A job blocked on an object it also holds (pathological nesting).
        let tuf = Tuf::step(1.0, 1_000).expect("valid");
        let ctx = ctx_with(&tuf, vec![(1, Some(1), Some(1))]);
        let chain = dependency_chain(&ctx, JobId::new(1), &mut OpsCounter::new());
        assert!(chain.is_cycle());
        assert_eq!(chain.jobs(), &[JobId::new(1)]);
    }

    #[test]
    fn missing_holder_ends_chain() {
        let tuf = Tuf::step(1.0, 1_000).expect("valid");
        let ctx = ctx_with(&tuf, vec![(1, Some(7), None)]);
        let chain = dependency_chain(&ctx, JobId::new(1), &mut OpsCounter::new());
        assert_eq!(chain, Chain::Acyclic(vec![JobId::new(1)]));
    }
}
