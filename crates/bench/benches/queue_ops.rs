//! Criterion micro-benchmarks for the Figure 8 building blocks: lock-free
//! versus mutex-based queue operations, uncontended and contended, plus the
//! CAS register retry loop.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lfrt_lockfree::{
    nbw_register, spsc_ring, AtomicSnapshot, BoundedMpmcQueue, CasRegister, ConcurrentQueue,
    LockFreeList, LockFreeQueue, LockedQueue,
};

fn uncontended(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_uncontended");
    group.bench_function("lockfree_enq_deq", |b| {
        let q = LockFreeQueue::new();
        b.iter(|| {
            q.enqueue(std::hint::black_box(1u64));
            std::hint::black_box(q.dequeue());
        });
    });
    group.bench_function("locked_enq_deq", |b| {
        let q = LockedQueue::new();
        b.iter(|| {
            q.enqueue(std::hint::black_box(1u64));
            std::hint::black_box(q.dequeue());
        });
    });
    group.finish();
}

fn contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_contended_4_threads");
    group.sample_size(20);
    for name in ["lockfree", "locked"] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, &name| {
            b.iter_custom(|iters| {
                let queue: Arc<dyn ConcurrentQueue<u64>> = match name {
                    "lockfree" => Arc::new(LockFreeQueue::new()),
                    _ => Arc::new(LockedQueue::new()),
                };
                let stop = Arc::new(AtomicBool::new(false));
                let workers: Vec<_> = (0..3)
                    .map(|w| {
                        let queue = Arc::clone(&queue);
                        let stop = Arc::clone(&stop);
                        std::thread::spawn(move || {
                            let mut i = w as u64;
                            while !stop.load(Ordering::Relaxed) {
                                queue.enqueue(i);
                                let _ = queue.dequeue();
                                i = i.wrapping_add(1);
                            }
                        })
                    })
                    .collect();
                let start = std::time::Instant::now();
                for i in 0..iters {
                    queue.enqueue(i);
                    let _ = queue.dequeue();
                }
                let elapsed = start.elapsed();
                stop.store(true, Ordering::Relaxed);
                for w in workers {
                    w.join().expect("worker panicked");
                }
                elapsed
            });
        });
    }
    group.finish();
}

fn cas_register(c: &mut Criterion) {
    c.bench_function("cas_register_update", |b| {
        let r = CasRegister::new(0);
        b.iter(|| std::hint::black_box(r.update(|v| v.wrapping_add(1))));
    });
}

fn other_structures(c: &mut Criterion) {
    let mut group = c.benchmark_group("structures_uncontended");
    group.bench_function("mpmc_push_pop", |b| {
        let q = BoundedMpmcQueue::new(64);
        b.iter(|| {
            let _ = q.push(std::hint::black_box(1u64));
            std::hint::black_box(q.pop());
        });
    });
    group.bench_function("spsc_push_pop", |b| {
        let (mut tx, mut rx) = spsc_ring(64);
        b.iter(|| {
            let _ = tx.push(std::hint::black_box(1u64));
            std::hint::black_box(rx.pop());
        });
    });
    group.bench_function("nbw_write_read", |b| {
        let (mut w, r) = nbw_register((0u64, 0u64));
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            w.write((i, i));
            std::hint::black_box(r.read());
        });
    });
    group.bench_function("snapshot_scan_8_cells", |b| {
        let snap = AtomicSnapshot::new(8);
        b.iter(|| std::hint::black_box(snap.scan()));
    });
    group.bench_function("list_insert_remove_128", |b| {
        let list = LockFreeList::new();
        for k in (0..256).step_by(2) {
            list.insert(k);
        }
        let mut k = 1u64;
        b.iter(|| {
            k = (k + 2) % 256;
            list.insert(std::hint::black_box(k));
            list.remove(std::hint::black_box(k));
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    uncontended,
    contended,
    cas_register,
    other_structures
);
criterion_main!(benches);
