//! Sequential reference models for the linearizability checker.
//!
//! One spec per shared-object family in `crates/lockfree`: FIFO queue
//! (Michael–Scott, Vyukov bounded), LIFO stack (Treiber), single-word
//! register (CAS register), bounded FIFO with full/empty responses
//! (SPSC ring, bounded MPMC), and a pair register (the NBW protocol's
//! two-word payload, where torn reads show up as impossible pairs).

use std::collections::VecDeque;

use crate::linear::SeqSpec;

/// An unbounded FIFO queue of `u64`s.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct QueueSpec(VecDeque<u64>);

/// Queue invocations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueOp {
    /// Append a value at the tail.
    Enqueue(u64),
    /// Remove the head value, if any.
    Dequeue,
}

/// Queue responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueRet {
    /// An enqueue completed.
    Pushed,
    /// A dequeue returned this head (or `None` on empty).
    Popped(Option<u64>),
}

impl QueueSpec {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SeqSpec for QueueSpec {
    type Op = QueueOp;
    type Ret = QueueRet;

    fn apply(&mut self, op: &QueueOp) -> QueueRet {
        match op {
            QueueOp::Enqueue(v) => {
                self.0.push_back(*v);
                QueueRet::Pushed
            }
            QueueOp::Dequeue => QueueRet::Popped(self.0.pop_front()),
        }
    }
}

/// A LIFO stack of `u64`s.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct StackSpec(Vec<u64>);

/// Stack invocations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StackOp {
    /// Push a value.
    Push(u64),
    /// Pop the top value, if any.
    Pop,
}

/// Stack responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StackRet {
    /// A push completed.
    Pushed,
    /// A pop returned this top (or `None` on empty).
    Popped(Option<u64>),
}

impl StackSpec {
    /// An empty stack.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SeqSpec for StackSpec {
    type Op = StackOp;
    type Ret = StackRet;

    fn apply(&mut self, op: &StackOp) -> StackRet {
        match op {
            StackOp::Push(v) => {
                self.0.push(*v);
                StackRet::Pushed
            }
            StackOp::Pop => StackRet::Popped(self.0.pop()),
        }
    }
}

/// A single-word read-modify-write register (the `CasRegister` spec).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct RegisterSpec(u64);

/// Register invocations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegisterOp {
    /// Read the value.
    Load,
    /// Overwrite the value.
    Store(u64),
    /// Atomically add, returning the previous value (`update(|v| v + k)`).
    Add(u64),
}

/// Register responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegisterRet {
    /// The value read.
    Value(u64),
    /// A store completed.
    Stored,
    /// The value an `Add` replaced.
    Replaced(u64),
}

impl RegisterSpec {
    /// A register holding `initial`.
    pub fn new(initial: u64) -> Self {
        Self(initial)
    }
}

impl SeqSpec for RegisterSpec {
    type Op = RegisterOp;
    type Ret = RegisterRet;

    fn apply(&mut self, op: &RegisterOp) -> RegisterRet {
        match op {
            RegisterOp::Load => RegisterRet::Value(self.0),
            RegisterOp::Store(v) => {
                self.0 = *v;
                RegisterRet::Stored
            }
            RegisterOp::Add(k) => {
                let prev = self.0;
                self.0 += k;
                RegisterRet::Replaced(prev)
            }
        }
    }
}

/// A bounded FIFO queue (SPSC ring / bounded MPMC spec): pushes report
/// whether they fit, pops report the head.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BoundedQueueSpec {
    items: VecDeque<u64>,
    capacity: usize,
}

/// Bounded-queue invocations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundedOp {
    /// Try to append a value.
    Push(u64),
    /// Remove the head value, if any.
    Pop,
}

/// Bounded-queue responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundedRet {
    /// Whether the push fit (`false` = full, value handed back).
    Pushed(bool),
    /// The popped head (or `None` on empty).
    Popped(Option<u64>),
}

impl BoundedQueueSpec {
    /// An empty bounded queue of the given capacity.
    pub fn new(capacity: usize) -> Self {
        Self {
            items: VecDeque::new(),
            capacity,
        }
    }
}

impl SeqSpec for BoundedQueueSpec {
    type Op = BoundedOp;
    type Ret = BoundedRet;

    fn apply(&mut self, op: &BoundedOp) -> BoundedRet {
        match op {
            BoundedOp::Push(v) => {
                if self.items.len() < self.capacity {
                    self.items.push_back(*v);
                    BoundedRet::Pushed(true)
                } else {
                    BoundedRet::Pushed(false)
                }
            }
            BoundedOp::Pop => BoundedRet::Popped(self.items.pop_front()),
        }
    }
}

/// An atomic pair register: the NBW protocol's spec. A torn read surfaces
/// as a pair that was never written.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct PairSpec(u64, u64);

/// Pair-register invocations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PairOp {
    /// Publish a pair.
    Write(u64, u64),
    /// Read the current pair.
    Read,
}

/// Pair-register responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PairRet {
    /// A write completed.
    Written,
    /// The pair read.
    Pair(u64, u64),
}

impl PairSpec {
    /// A register holding `(a, b)`.
    pub fn new(a: u64, b: u64) -> Self {
        Self(a, b)
    }
}

impl SeqSpec for PairSpec {
    type Op = PairOp;
    type Ret = PairRet;

    fn apply(&mut self, op: &PairOp) -> PairRet {
        match op {
            PairOp::Write(a, b) => {
                self.0 = *a;
                self.1 = *b;
                PairRet::Written
            }
            PairOp::Read => PairRet::Pair(self.0, self.1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_is_fifo() {
        let mut q = QueueSpec::new();
        assert_eq!(q.apply(&QueueOp::Enqueue(1)), QueueRet::Pushed);
        assert_eq!(q.apply(&QueueOp::Enqueue(2)), QueueRet::Pushed);
        assert_eq!(q.apply(&QueueOp::Dequeue), QueueRet::Popped(Some(1)));
        assert_eq!(q.apply(&QueueOp::Dequeue), QueueRet::Popped(Some(2)));
        assert_eq!(q.apply(&QueueOp::Dequeue), QueueRet::Popped(None));
    }

    #[test]
    fn stack_is_lifo() {
        let mut s = StackSpec::new();
        s.apply(&StackOp::Push(1));
        s.apply(&StackOp::Push(2));
        assert_eq!(s.apply(&StackOp::Pop), StackRet::Popped(Some(2)));
        assert_eq!(s.apply(&StackOp::Pop), StackRet::Popped(Some(1)));
        assert_eq!(s.apply(&StackOp::Pop), StackRet::Popped(None));
    }

    #[test]
    fn register_add_returns_previous() {
        let mut r = RegisterSpec::new(10);
        assert_eq!(r.apply(&RegisterOp::Add(5)), RegisterRet::Replaced(10));
        assert_eq!(r.apply(&RegisterOp::Load), RegisterRet::Value(15));
        assert_eq!(r.apply(&RegisterOp::Store(1)), RegisterRet::Stored);
        assert_eq!(r.apply(&RegisterOp::Load), RegisterRet::Value(1));
    }

    #[test]
    fn bounded_queue_reports_full() {
        let mut q = BoundedQueueSpec::new(1);
        assert_eq!(q.apply(&BoundedOp::Push(1)), BoundedRet::Pushed(true));
        assert_eq!(q.apply(&BoundedOp::Push(2)), BoundedRet::Pushed(false));
        assert_eq!(q.apply(&BoundedOp::Pop), BoundedRet::Popped(Some(1)));
        assert_eq!(q.apply(&BoundedOp::Pop), BoundedRet::Popped(None));
    }

    #[test]
    fn pair_register_round_trips() {
        let mut p = PairSpec::new(0, 0);
        assert_eq!(p.apply(&PairOp::Write(3, 6)), PairRet::Written);
        assert_eq!(p.apply(&PairOp::Read), PairRet::Pair(3, 6));
    }
}
