//! Offline stand-in for the `criterion` crate.
//!
//! Provides the `criterion_group!`/`criterion_main!` harness surface this
//! workspace's benches use (`bench_function`, `benchmark_group`,
//! `bench_with_input`, `Bencher::iter`/`iter_custom`, `BenchmarkId`), but
//! with a deliberately tiny measurement budget: each benchmark runs a short
//! warm-up plus a handful of timed batches and prints the mean ns/iter.
//! There is no statistical analysis, no outlier filtering, and no report
//! output — for real numbers, see the `lfrt-bench` experiment binaries,
//! which carry their own statistics ([`Summary`-based] CIs) and JSON output.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Runs one benchmark's closure under timing.
pub struct Bencher {
    /// Iterations per timed batch.
    batch: u64,
    /// Timed batches.
    batches: u32,
    /// Collected per-iteration nanoseconds, one entry per batch.
    samples: Vec<f64>,
}

impl Bencher {
    fn new(batch: u64, batches: u32) -> Self {
        Self {
            batch,
            batches,
            samples: Vec::new(),
        }
    }

    /// Times `f`, called `batch` times per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        for _ in 0..self.batch.min(1_000) {
            std::hint::black_box(f());
        }
        for _ in 0..self.batches {
            let t0 = Instant::now();
            for _ in 0..self.batch {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed();
            self.samples.push(dt.as_nanos() as f64 / self.batch as f64);
        }
    }

    /// Times a closure that runs `iters` iterations itself and returns the
    /// elapsed time (for setups the harness must not time).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        for _ in 0..self.batches {
            let dt = f(self.batch);
            self.samples.push(dt.as_nanos() as f64 / self.batch as f64);
        }
    }

    fn mean_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count (scales this stand-in's batch count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let full = format!("{}/{}", self.name, id);
        let batches = (self.sample_size / 2).clamp(3, 20) as u32;
        self.criterion.run_one(&full, batches, &mut f);
    }

    /// Benchmarks `f` with `input` under `id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id.id.clone(), |b| f(b, input));
    }

    /// Ends the group (formatting no-op in this stand-in).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Benchmarks `f` under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        self.run_one(name, 10, &mut f);
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 20,
        }
    }

    fn run_one(&mut self, name: &str, batches: u32, f: &mut dyn FnMut(&mut Bencher)) {
        // Calibrate the batch size so one batch costs roughly a millisecond.
        let mut probe = Bencher::new(1, 1);
        f(&mut probe);
        let per_iter = probe.mean_ns().max(1.0);
        let batch = ((1_000_000.0 / per_iter) as u64).clamp(1, 100_000);
        let mut bencher = Bencher::new(batch, batches);
        f(&mut bencher);
        println!("{name:<50} {:>12.1} ns/iter", bencher.mean_ns());
    }
}

/// Collects benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_compiles_and_runs() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("add", |b| b.iter(|| std::hint::black_box(2) * 3));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| n * 2);
        });
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter_custom(|iters| {
                let t0 = std::time::Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(n + 1);
                }
                t0.elapsed()
            });
        });
        group.finish();
    }
}
