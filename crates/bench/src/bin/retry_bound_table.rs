//! **Theorem 2 audit** — analytic retry bound versus measured retries, per
//! task, on an adversarial UAM workload.
//!
//! For every task the table reports the Theorem 2 bound
//! `f_i ≤ 3a_i + Σ_{j≠i} 2a_j(⌈C_i/W_j⌉+1)`, the worst and mean retries
//! measured across that task's jobs under lock-free RUA, and the headroom.
//! The bound must never be exceeded; the adversarial back-to-back arrival
//! pattern (from the theorem's own proof) pushes measurements toward it.
//!
//! Usage: `cargo run -p lfrt-bench --release --bin retry_bound_table --
//! [--seed 5] [--s 200] [--adversarial true] [--json <path>] [--threads N]
//! [--quick]`

use lfrt_analysis::RetryBoundInput;
use lfrt_bench::json::{self, Point, Report};
use lfrt_bench::runner::Sweep;
use lfrt_bench::{table, Args};
use lfrt_core::RuaLockFree;
use lfrt_sim::workload::{ArrivalStyle, TufClass, WorkloadSpec};
use lfrt_sim::{Engine, SharingMode, SimConfig};
use lfrt_uam::Uam;

fn main() {
    let started = std::time::Instant::now();
    let args = Args::from_env();
    let trace = lfrt_bench::trace::Session::from_args(&args, "retry_bound_table");
    let quick = args.quick();
    let seed = args.get_u64("seed", 5);
    let s = args.get_u64("s", 200);
    let adversarial = args.get_str("adversarial", "true") == "true";
    let horizon = args.get_u64("horizon", if quick { 150_000 } else { 400_000 });

    let spec = WorkloadSpec {
        num_tasks: 8,
        num_objects: 1, // one object: maximal interference
        accesses_per_job: 4,
        tuf_class: TufClass::Step,
        target_load: 0.9,
        window_range: (5_000, 20_000),
        max_burst: 2,
        critical_time_frac: 0.9,
        arrival_style: if adversarial {
            ArrivalStyle::BackToBackBurst
        } else {
            ArrivalStyle::RandomUam { intensity: 3.0 }
        },
        horizon,
        read_fraction: 0.0,
        seed,
    };
    println!("# Theorem 2 audit: retry bound vs measurement");
    println!(
        "# s = {s} µs, {} arrivals, seed {seed}",
        if adversarial {
            "adversarial back-to-back"
        } else {
            "random UAM"
        }
    );

    let (tasks, traces) = spec.build().expect("valid workload");
    let params: Vec<(Uam, u64)> = tasks
        .iter()
        .map(|t| (*t.uam(), t.tuf().critical_time()))
        .collect();
    // One simulation feeds every row; a single-point sweep keeps the shared
    // runner/flag surface (`--threads` is simply moot here).
    let outcome = Sweep::new("theorem2", vec![seed])
        .threads(args.threads())
        .run(|&seed_| {
            assert_eq!(seed_, seed);
            Engine::new(
                tasks.clone(),
                traces.clone(),
                SimConfig::new(SharingMode::LockFree { access_ticks: s }),
            )
            .expect("valid engine")
            .run(RuaLockFree::new())
        })
        .pop()
        .expect("one outcome");

    let mut report = Report::new(
        "retry_bound_table",
        "table:theorem2",
        "Theorem 2 retry-bound audit",
    )
    .config("seed", seed)
    .config("s_ticks", s)
    .config("adversarial", adversarial)
    .config("horizon", horizon)
    .config("num_tasks", 8u64);

    let mut rows = Vec::new();
    let mut violated = false;
    for (i, task) in tasks.iter().enumerate() {
        let bound = RetryBoundInput::for_task(&params, i).retry_bound();
        let task_records: Vec<_> = outcome
            .records
            .iter()
            .filter(|r| r.task.index() == i)
            .collect();
        let max = task_records.iter().map(|r| r.retries).max().unwrap_or(0);
        let mean = if task_records.is_empty() {
            0.0
        } else {
            task_records.iter().map(|r| r.retries).sum::<u64>() as f64 / task_records.len() as f64
        };
        violated |= max > bound;
        rows.push(vec![
            task.name().to_string(),
            format!("{}", task.uam().max_arrivals()),
            format!("{}", task.uam().window()),
            format!("{}", task.tuf().critical_time()),
            bound.to_string(),
            max.to_string(),
            format!("{mean:.2}"),
            task_records.len().to_string(),
        ]);
        report.points.push(Point {
            params: vec![("task".into(), task.name().into())],
            seeds: vec![seed],
            metrics: vec![
                (
                    "max_arrivals".into(),
                    u64::from(task.uam().max_arrivals()).into(),
                ),
                ("window".into(), task.uam().window().into()),
                ("critical_time".into(), task.tuf().critical_time().into()),
                ("retry_bound".into(), bound.into()),
                ("max_measured".into(), max.into()),
                ("mean_measured".into(), mean.into()),
                ("jobs".into(), task_records.len().into()),
                ("bound_holds".into(), (max <= bound).into()),
            ],
            timing: Vec::new(),
        });
    }
    table::print(
        "Theorem 2: analytic bound vs measured lock-free retries",
        &[
            "task",
            "a_i",
            "W_i",
            "C_i",
            "bound f_i",
            "max meas.",
            "mean meas.",
            "jobs",
        ],
        &rows,
    );
    println!(
        "\nresult: bound {}",
        if violated {
            "VIOLATED — investigate!"
        } else {
            "holds for every job"
        }
    );

    if let Some(path) = args.json_path() {
        let meta = json::RunMeta::capture(args.threads(), quick);
        json::write_reports(&path, &[report], meta, started).expect("write JSON report");
    }
    trace.finish(args.threads(), args.quick());
    assert!(!violated, "Theorem 2 bound violated");
}
