//! **Figure 14** — AUR and CMR across a load sweep (AL 0.1–1.1) with
//! heterogeneous TUFs, plus the increasing-readers variant.
//!
//! The paper repeated the Figures 10–13 experiments with an increasing
//! number of reader tasks instead of objects and observed the same trends;
//! Figure 14 is the published snapshot (heterogeneous TUFs, AL 0.1–1.1).
//! This binary reproduces both views:
//!
//! 1. AUR/CMR versus load at a fixed population (10 tasks, 10 objects);
//! 2. AUR/CMR versus the number of reader tasks at fixed load.
//!
//! Expected shape (paper): lock-free dominates lock-based across the whole
//! load range and for every reader population.
//!
//! Usage: `cargo run -p lfrt-bench --release --bin fig14_readers --
//! [--seeds 5] [--r 400] [--s 5]`

use lfrt_bench::stats::Summary;
use lfrt_bench::{table, Args};
use lfrt_core::{RuaLockBased, RuaLockFree};
use lfrt_sim::workload::{ArrivalStyle, TufClass, WorkloadSpec};
use lfrt_sim::{Engine, OverheadModel, SharingMode, SimConfig, UaScheduler};

fn main() {
    let args = Args::from_env();
    let seeds = args.get_u64("seeds", 5);
    let r = args.get_u64("r", 400);
    let s = args.get_u64("s", 5);

    println!("# Figure 14: load sweep and reader sweep (heterogeneous TUFs)");
    println!("# r = {r} µs, s = {s} µs, {seeds} seeds per point");

    let mut rows = Vec::new();
    for load10 in [1u64, 3, 5, 7, 9, 11] {
        let load = load10 as f64 / 10.0;
        let (lf, lb) = sweep_point(10, load, seeds, r, s);
        rows.push(vec![
            format!("{load:.1}"),
            lf.0.display(3),
            lb.0.display(3),
            lf.1.display(3),
            lb.1.display(3),
        ]);
    }
    table::print(
        "Figure 14a: AUR and CMR vs load (10 tasks, 10 objects)",
        &["AL", "AUR lock-free", "AUR lock-based", "CMR lock-free", "CMR lock-based"],
        &rows,
    );

    let mut rows = Vec::new();
    for readers in [4usize, 6, 8, 10, 12, 14] {
        let (lf, lb) = sweep_point(readers, 0.8, seeds, r, s);
        rows.push(vec![
            readers.to_string(),
            lf.0.display(3),
            lb.0.display(3),
            lf.1.display(3),
            lb.1.display(3),
        ]);
    }
    table::print(
        "Figure 14b: AUR and CMR vs reader tasks (AL = 0.8)",
        &["readers", "AUR lock-free", "AUR lock-based", "CMR lock-free", "CMR lock-based"],
        &rows,
    );
    println!("\nshape check: lock-free dominates across the load range and all populations.");
}

type Point = (Summary, Summary); // (AUR, CMR)

fn sweep_point(tasks: usize, load: f64, seeds: u64, r: u64, s: u64) -> (Point, Point) {
    let mut lf_aur = Vec::new();
    let mut lf_cmr = Vec::new();
    let mut lb_aur = Vec::new();
    let mut lb_cmr = Vec::new();
    for seed in 0..seeds {
        let spec = WorkloadSpec {
            num_tasks: tasks,
            num_objects: 10,
            accesses_per_job: 6,
            tuf_class: TufClass::Heterogeneous,
            target_load: load,
            window_range: (6_000, 18_000),
            max_burst: 2,
            critical_time_frac: 0.9,
            arrival_style: ArrivalStyle::RandomUam { intensity: 4.0 },
            horizon: 1_000_000,
            read_fraction: 0.0,
            seed: seed + 1000,
        };
        let lf = run(&spec, SharingMode::LockFree { access_ticks: s }, RuaLockFree::new());
        lf_aur.push(lf.aur());
        lf_cmr.push(lf.cmr());
        let lb = run(&spec, SharingMode::LockBased { access_ticks: r }, RuaLockBased::new());
        lb_aur.push(lb.aur());
        lb_cmr.push(lb.cmr());
    }
    (
        (Summary::of(&lf_aur), Summary::of(&lf_cmr)),
        (Summary::of(&lb_aur), Summary::of(&lb_cmr)),
    )
}

fn run<S: UaScheduler>(
    spec: &WorkloadSpec,
    sharing: SharingMode,
    scheduler: S,
) -> lfrt_sim::SimMetrics {
    let (tasks, traces) = spec.build().expect("valid workload");
    Engine::new(
        tasks,
        traces,
        SimConfig::new(sharing)
            .overhead(OverheadModel::per_op(0.2))
            .record_jobs(false),
    )
    .expect("valid engine")
    .run(scheduler)
    .metrics
}
