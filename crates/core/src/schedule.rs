//! The earliest-critical-time-first tentative schedule (§3.4 of the paper).
//!
//! RUA builds its output by tentatively inserting each job (with its
//! dependents) into an ECF-ordered list, resolving conflicts between the
//! critical-time order and the dependency order by *advancing* a dependent's
//! effective critical time (Figures 4 and 5 of the paper), and keeping the
//! insertion only if every entry can still finish by its effective critical
//! time.

use lfrt_sim::{JobId, SchedulerContext, SimTime};

use crate::ops::OpsCounter;

/// One entry of the tentative schedule: a job with its (possibly advanced)
/// effective critical time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// The scheduled job.
    pub job: JobId,
    /// The critical time used for ordering and feasibility — advanced below
    /// the job's own critical time when a dependent must precede a
    /// shorter-deadline successor.
    pub effective_critical_time: SimTime,
}

/// An ECF-ordered tentative schedule.
///
/// Lookup, insert, and remove are charged at their `O(log n)` textbook cost
/// through the caller's [`OpsCounter`], matching the paper's §3.6 cost
/// accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TentativeSchedule {
    entries: Vec<Entry>,
}

impl TentativeSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// The entries, head (next to run) first.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// The scheduled jobs, head first.
    pub fn jobs(&self) -> Vec<JobId> {
        self.entries.iter().map(|e| e.job).collect()
    }

    /// Number of scheduled jobs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Position of `job`, if scheduled.
    pub fn position(&self, job: JobId, ops: &mut OpsCounter) -> Option<usize> {
        ops.charge_log(self.entries.len());
        self.entries.iter().position(|e| e.job == job)
    }

    /// Inserts `job` with critical time `critical`, at its ECF position but
    /// never at or after `limit` (the position of the already-inserted
    /// successor that depends on it). When the ECF position would violate
    /// the limit, the job is placed immediately before the successor with
    /// its effective critical time advanced to the successor's (the paper's
    /// Figure 4 "Case 2"). Returns the insertion position.
    pub fn insert_before(
        &mut self,
        job: JobId,
        critical: SimTime,
        limit: Option<usize>,
        ops: &mut OpsCounter,
    ) -> usize {
        ops.charge_log(self.entries.len());
        let mut effective = critical;
        // First index whose effective critical time is >= ours: inserting
        // there keeps ECF order and puts us before equal-critical entries.
        let ecf_pos = self
            .entries
            .partition_point(|e| e.effective_critical_time < critical);
        let pos = match limit {
            Some(lim) if ecf_pos > lim => {
                // Dependency order wins: advance the critical time.
                effective = effective.min(self.entries[lim].effective_critical_time);
                lim
            }
            _ => ecf_pos,
        };
        self.entries.insert(
            pos,
            Entry {
                job,
                effective_critical_time: effective,
            },
        );
        pos
    }

    /// Removes the entry at `pos` and returns it.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of bounds.
    pub fn remove(&mut self, pos: usize, ops: &mut OpsCounter) -> Entry {
        ops.charge_log(self.entries.len());
        self.entries.remove(pos)
    }

    /// Tests feasibility: walking the schedule head-to-tail and accumulating
    /// each job's remaining execution time from `ctx.now`, every entry must
    /// finish at or before its effective critical time. Charges one
    /// operation per entry.
    ///
    /// Jobs missing from the context are skipped (they resolved since the
    /// schedule was copied).
    pub fn is_feasible(&self, ctx: &SchedulerContext<'_>, ops: &mut OpsCounter) -> bool {
        let mut elapsed: u64 = 0;
        for entry in &self.entries {
            ops.tick();
            let Some(view) = ctx.job(entry.job) else {
                continue;
            };
            elapsed += view.remaining;
            if ctx.now + elapsed > entry.effective_critical_time {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfrt_sim::{JobView, TaskId};
    use lfrt_tuf::Tuf;

    fn j(i: usize) -> JobId {
        JobId::new(i)
    }

    #[test]
    fn ecf_order_maintained() {
        let mut s = TentativeSchedule::new();
        let mut ops = OpsCounter::new();
        s.insert_before(j(1), 300, None, &mut ops);
        s.insert_before(j(2), 100, None, &mut ops);
        s.insert_before(j(3), 200, None, &mut ops);
        assert_eq!(s.jobs(), vec![j(2), j(3), j(1)]);
    }

    #[test]
    fn tie_inserts_before_equal_entries() {
        let mut s = TentativeSchedule::new();
        let mut ops = OpsCounter::new();
        s.insert_before(j(1), 100, None, &mut ops);
        s.insert_before(j(2), 100, None, &mut ops);
        assert_eq!(s.jobs(), vec![j(2), j(1)]);
    }

    #[test]
    fn dependency_limit_advances_critical_time() {
        // Paper Figure 4, Case 2: dependent T2 (C=500) must precede T1
        // (C=200); T2 is inserted before T1 with C2 := C1 = 200.
        let mut s = TentativeSchedule::new();
        let mut ops = OpsCounter::new();
        let p1 = s.insert_before(j(1), 200, None, &mut ops);
        let p2 = s.insert_before(j(2), 500, Some(p1), &mut ops);
        assert_eq!(p2, 0);
        assert_eq!(s.jobs(), vec![j(2), j(1)]);
        assert_eq!(s.entries()[0].effective_critical_time, 200);
    }

    #[test]
    fn dependency_limit_case_one_keeps_ecf_position() {
        // Case 1: C2 < C1 — ECF order already satisfies the dependency.
        let mut s = TentativeSchedule::new();
        let mut ops = OpsCounter::new();
        let p1 = s.insert_before(j(1), 500, None, &mut ops);
        let p2 = s.insert_before(j(2), 200, Some(p1), &mut ops);
        assert_eq!(p2, 0);
        assert_eq!(s.entries()[0].effective_critical_time, 200, "unchanged");
    }

    #[test]
    fn remove_and_position() {
        let mut s = TentativeSchedule::new();
        let mut ops = OpsCounter::new();
        s.insert_before(j(1), 100, None, &mut ops);
        s.insert_before(j(2), 200, None, &mut ops);
        assert_eq!(s.position(j(2), &mut ops), Some(1));
        let removed = s.remove(1, &mut ops);
        assert_eq!(removed.job, j(2));
        assert_eq!(s.position(j(2), &mut ops), None);
        assert_eq!(s.len(), 1);
    }

    fn feasibility_ctx<'a>(tuf: &'a Tuf, remainings: &[(usize, u64)]) -> SchedulerContext<'a> {
        SchedulerContext {
            now: 0,
            jobs: remainings
                .iter()
                .map(|&(id, remaining)| JobView {
                    id: JobId::new(id),
                    task: TaskId::new(0),
                    arrival: 0,
                    absolute_critical_time: 1_000,
                    window: 1_000,
                    tuf,
                    remaining,
                    blocked_on: None,
                    holds: Vec::new(),
                })
                .collect(),
        }
    }

    #[test]
    fn feasibility_accumulates_remaining() {
        let tuf = Tuf::step(1.0, 1_000).expect("valid");
        let ctx = feasibility_ctx(&tuf, &[(1, 100), (2, 100)]);
        let mut s = TentativeSchedule::new();
        let mut ops = OpsCounter::new();
        s.insert_before(j(1), 100, None, &mut ops);
        s.insert_before(j(2), 200, None, &mut ops);
        assert!(s.is_feasible(&ctx, &mut ops));
        // Tighten: second job's critical time now too early (cumulative
        // 200 > 150).
        let mut s2 = TentativeSchedule::new();
        s2.insert_before(j(1), 100, None, &mut ops);
        s2.insert_before(j(2), 150, None, &mut ops);
        assert!(!s2.is_feasible(&ctx, &mut ops));
    }

    #[test]
    fn empty_schedule_is_feasible() {
        let tuf = Tuf::step(1.0, 1_000).expect("valid");
        let ctx = feasibility_ctx(&tuf, &[]);
        assert!(TentativeSchedule::new().is_feasible(&ctx, &mut OpsCounter::new()));
    }
}
