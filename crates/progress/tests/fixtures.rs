//! Fixture tests: every progress rule fires at exactly the expected file
//! lines — no more, no fewer — over the seeded-violation sources in
//! `tests/fixtures/`, and each broken twin's clean twin stays silent.
//! (The fixture directory has no `crates/` subdirectory, so [`analyze`]
//! walks it recursively and puts every file in the coverage scope.)

use std::path::{Path, PathBuf};

use lfrt_progress::{analyze, Analysis};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn manifest_text() -> String {
    std::fs::read_to_string(fixtures_root().join("progress.toml")).expect("fixture manifest")
}

fn run() -> Analysis {
    analyze(&fixtures_root(), &manifest_text()).expect("fixture analysis")
}

/// `(rule, line, detail)` triples of every unbaselined finding in one
/// fixture file, in report order.
fn findings_in(analysis: &Analysis, file: &str) -> Vec<(String, usize, String)> {
    analysis
        .matched
        .unbaselined
        .iter()
        .filter(|f| f.file == file)
        .map(|f| (f.rule.clone(), f.line, f.detail.clone()))
        .collect()
}

fn triples(raw: &[(&str, usize, &str)]) -> Vec<(String, usize, String)> {
    raw.iter()
        .map(|(r, l, d)| (r.to_string(), *l, d.to_string()))
        .collect()
}

#[test]
fn fixture_manifest_covers_the_fixture_api_exactly() {
    let analysis = run();
    assert_eq!(analysis.undeclared, Vec::<String>::new());
    assert_eq!(analysis.unresolved, Vec::<String>::new());
    assert_eq!(analysis.ops.len(), 17);
}

#[test]
fn prg001_fires_on_the_unpaced_cas_loop_only() {
    assert_eq!(
        findings_in(&run(), "prg001.rs"),
        triples(&[("PRG001", 11, "self.head")])
    );
}

#[test]
fn prg002_fires_per_declared_class() {
    // The same `.lock()` helper body appears under both types; only the
    // lock_free-declared op's copy fires.
    let analysis = run();
    assert_eq!(
        findings_in(&analysis, "prg002.rs"),
        triples(&[("PRG002", 14, "lock")])
    );
    let f = &analysis
        .matched
        .unbaselined
        .iter()
        .find(|f| f.rule == "PRG002")
        .unwrap();
    assert_eq!(f.function, "Prg002Broken::sample");
    assert!(f.message.contains("Prg002Broken::op"));
    assert!(!f.message.contains("Prg002Blocking"));
}

#[test]
fn prg003_fires_on_block_and_drop_escapes_only() {
    assert_eq!(
        findings_in(&run(), "prg003.rs"),
        triples(&[("PRG003", 10, "shared"), ("PRG003", 17, "shared")])
    );
}

#[test]
fn prg004_fires_on_retire_before_unlink_only() {
    // Both retirement flavors fire, each carrying its own call token as the
    // finding detail; the unlink-first twins stay silent.
    let analysis = run();
    assert_eq!(
        findings_in(&analysis, "prg004.rs"),
        triples(&[
            ("PRG004", 10, "defer_destroy"),
            ("PRG004", 38, "defer_recycle"),
        ])
    );
    let f = &analysis
        .matched
        .unbaselined
        .iter()
        .find(|f| f.rule == "PRG004")
        .unwrap();
    assert_eq!(f.function, "Prg004Broken::op");
}

#[test]
fn prg005_fires_only_under_a_wait_free_declaration() {
    assert_eq!(
        findings_in(&run(), "prg005.rs"),
        triples(&[("PRG005", 10, "loop")])
    );
}

#[test]
fn prg006_fires_through_a_call_graph_hop() {
    // The classic `Box::new` and the pool spill path's raw
    // `std::alloc::alloc` both fire; the cache-hit twin (index bookkeeping
    // only) stays silent.
    let analysis = run();
    assert_eq!(
        findings_in(&analysis, "prg006.rs"),
        triples(&[("PRG006", 12, "Box::new"), ("PRG006", 38, "alloc::alloc"),])
    );
    let f = &analysis
        .matched
        .unbaselined
        .iter()
        .find(|f| f.rule == "PRG006")
        .unwrap();
    assert_eq!(f.function, "Prg006Broken::record");
}

#[test]
fn total_finding_count_is_pinned() {
    let analysis = run();
    assert_eq!(
        analysis.matched.unbaselined.len(),
        9,
        "one per seeded violation"
    );
    assert_eq!(analysis.matched.baselined.len(), 0);
    assert_eq!(analysis.matched.stale.len(), 0);
}

#[test]
fn baseline_entry_absorbs_a_finding_and_unused_entries_go_stale() {
    let mut text = manifest_text();
    text.push_str(
        "\n[[baseline]]\n\
         rule = \"PRG001\"\n\
         file = \"prg001.rs\"\n\
         function = \"Prg001Broken::update\"\n\
         detail = \"self.head\"\n\
         justification = \"seeded fixture, intentionally unpaced\"\n\
         \n\
         [[baseline]]\n\
         rule = \"PRG001\"\n\
         file = \"prg001.rs\"\n\
         function = \"Prg001Clean::update\"\n\
         detail = \"self.head\"\n\
         justification = \"matches nothing: the clean twin never fires\"\n",
    );
    let analysis = analyze(&fixtures_root(), &text).expect("fixture analysis");
    assert!(findings_in(&analysis, "prg001.rs").is_empty());
    assert_eq!(analysis.matched.baselined.len(), 1);
    assert_eq!(
        analysis.matched.stale.len(),
        1,
        "the clean-twin entry is stale"
    );
    assert_eq!(analysis.matched.stale[0].function, "Prg001Clean::update");
}
