//! End-to-end explorer tests: the seeded-bug models must fail with a
//! replayable schedule, and the faithful models must survive the *same*
//! scenarios. This is the evidence that green explorations of the mirrored
//! algorithms mean something.

use std::sync::{Arc, Mutex};

use lfrt_interleave::models::buggy::{AbaStack, RacyStack, TornNbw};
use lfrt_interleave::models::{ModelNbw, ModelTreiberStack};
use lfrt_interleave::{explore, replay, Config, FailureKind, Plan};

/// A per-thread result cell, written after a thread's last model step.
type Cell = Arc<Mutex<Vec<u64>>>;

fn cell() -> Cell {
    Arc::new(Mutex::new(Vec::new()))
}

fn conservation_check(pushed: Vec<u64>, popped: Vec<Cell>, remaining: Vec<u64>) {
    let mut seen: Vec<u64> = popped
        .iter()
        .flat_map(|c| c.lock().unwrap().clone())
        .chain(remaining)
        .collect();
    seen.sort_unstable();
    let mut expected = pushed;
    expected.sort_unstable();
    assert_eq!(seen, expected, "elements lost or duplicated");
}

/// Two overlapping pops on the store-instead-of-CAS stack can both detach
/// the same node; on the real protocol they cannot.
mod racy_pop {
    use super::*;

    fn scenario(stack_is_buggy: bool) -> Plan {
        // Shared setup: stack holds [1, 2] (2 on top), two threads pop once.
        let (pop0, pop1) = (cell(), cell());
        let (buggy, good): (Option<Arc<RacyStack>>, Option<Arc<ModelTreiberStack>>) =
            if stack_is_buggy {
                (Some(Arc::new(RacyStack::new())), None)
            } else {
                (None, Some(Arc::new(ModelTreiberStack::new())))
            };
        let push = |v: u64| match (&buggy, &good) {
            (Some(s), _) => s.push(v),
            (_, Some(s)) => s.push(v),
            _ => unreachable!(),
        };
        push(1);
        push(2);
        let mut plan = Plan::new();
        for results in [&pop0, &pop1] {
            let results = Arc::clone(results);
            let (buggy, good) = (buggy.clone(), good.clone());
            plan = plan.thread(move || {
                let popped = match (&buggy, &good) {
                    (Some(s), _) => s.pop(),
                    (_, Some(s)) => s.pop(),
                    _ => unreachable!(),
                };
                results.lock().unwrap().extend(popped);
            });
        }
        plan.check(move || {
            let remaining = match (&buggy, &good) {
                (Some(s), _) => s.drain_plain(),
                (_, Some(s)) => s.drain_plain(),
                _ => unreachable!(),
            };
            conservation_check(vec![1, 2], vec![pop0.clone(), pop1.clone()], remaining);
        })
    }

    #[test]
    fn buggy_stack_duplicates_an_element() {
        let report = explore(&Config::exhaustive("racy-pop-buggy"), || scenario(true));
        let failure = report.assert_fails();
        assert_eq!(failure.kind, FailureKind::Panic);
        assert!(
            failure.message.contains("lost or duplicated"),
            "{failure:?}"
        );
        // The printed schedule replays to the same failure, deterministically.
        let schedule = failure.schedule.clone();
        let err = std::panic::catch_unwind(move || replay(&schedule, || scenario(true)))
            .expect_err("replay must reproduce the failure");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lost or duplicated"), "{msg}");
    }

    #[test]
    fn real_protocol_survives_the_same_scenario() {
        explore(&Config::exhaustive("racy-pop-good"), || scenario(false)).assert_ok();
    }
}

/// The classic ABA: a pop parked between reading `next` and its CAS, while
/// the other thread pops twice and pushes a recycled node carrying the same
/// index. Immediate reuse corrupts the stack; the append-only arena (the
/// model's epoch reclamation) is immune by construction.
mod aba {
    use super::*;

    /// Stack [1, 2] (2 on top); t0 pops once; t1 pops twice then pushes 3.
    fn buggy_scenario() -> Plan {
        let stack = Arc::new(AbaStack::new());
        stack.push(1);
        stack.push(2);
        let (pop0, pop1) = (cell(), cell());
        let s0 = Arc::clone(&stack);
        let r0 = Arc::clone(&pop0);
        let s1 = Arc::clone(&stack);
        let r1 = Arc::clone(&pop1);
        Plan::new()
            .thread(move || {
                let popped = s0.pop();
                r0.lock().unwrap().extend(popped);
            })
            .thread(move || {
                let mut out = Vec::new();
                out.extend(s1.pop());
                out.extend(s1.pop());
                s1.push(3);
                r1.lock().unwrap().extend(out);
            })
            .check(move || {
                conservation_check(
                    vec![1, 2, 3],
                    vec![pop0.clone(), pop1.clone()],
                    stack.drain_plain(),
                );
            })
    }

    fn good_scenario() -> Plan {
        let stack = Arc::new(ModelTreiberStack::new());
        stack.push(1);
        stack.push(2);
        let (pop0, pop1) = (cell(), cell());
        let s0 = Arc::clone(&stack);
        let r0 = Arc::clone(&pop0);
        let s1 = Arc::clone(&stack);
        let r1 = Arc::clone(&pop1);
        Plan::new()
            .thread(move || {
                let popped = s0.pop();
                r0.lock().unwrap().extend(popped);
            })
            .thread(move || {
                let mut out = Vec::new();
                out.extend(s1.pop());
                out.extend(s1.pop());
                s1.push(3);
                r1.lock().unwrap().extend(out);
            })
            .check(move || {
                conservation_check(
                    vec![1, 2, 3],
                    vec![pop0.clone(), pop1.clone()],
                    stack.drain_plain(),
                );
            })
    }

    #[test]
    fn immediate_reuse_is_caught_and_replayable() {
        let report = explore(&Config::exhaustive("aba-reuse"), buggy_scenario);
        let failure = report.assert_fails();
        assert_eq!(failure.kind, FailureKind::Panic);
        let schedule = failure.schedule.clone();
        let err = std::panic::catch_unwind(move || replay(&schedule, buggy_scenario))
            .expect_err("replay must reproduce the ABA corruption");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lost or duplicated"), "{msg}");
    }

    #[test]
    fn epoch_style_reclamation_survives_the_same_scenario() {
        explore(&Config::exhaustive("aba-epochs"), good_scenario).assert_ok();
    }
}

/// A reader overlapping the two payload stores sees a mixed pair unless the
/// version protocol brackets the write.
mod torn_read {
    use super::*;

    #[test]
    fn unversioned_register_tears() {
        let report = explore(&Config::exhaustive("nbw-torn"), || {
            let reg = Arc::new(TornNbw::new(0, 0));
            let w = Arc::clone(&reg);
            let r = Arc::clone(&reg);
            Plan::new().thread(move || w.write(1, 2)).thread(move || {
                let (a, b) = r.read();
                assert!(
                    (a, b) == (0, 0) || (a, b) == (1, 2),
                    "torn read: ({a}, {b})"
                );
            })
        });
        let failure = report.assert_fails();
        assert!(failure.message.contains("torn read"), "{failure:?}");
    }

    #[test]
    fn version_protocol_survives_the_same_scenario() {
        explore(&Config::exhaustive("nbw-versioned"), || {
            let reg = Arc::new(ModelNbw::new(0, 0));
            let w = Arc::clone(&reg);
            let r = Arc::clone(&reg);
            Plan::new().thread(move || w.write(1, 2)).thread(move || {
                let (a, b) = r.read();
                assert!(
                    (a, b) == (0, 0) || (a, b) == (1, 2),
                    "torn read: ({a}, {b})"
                );
            })
        })
        .assert_ok();
    }
}

/// Failing schedules are persisted for CI artifact upload when
/// `INTERLEAVE_FAILURE_DIR` is set.
#[test]
fn failure_artifacts_are_written_when_requested() {
    let dir = std::env::temp_dir().join(format!("interleave-artifacts-{}", std::process::id()));
    // Env vars are process-global; tests in this binary run on threads, but
    // no other test reads this variable, so the set/remove pair is safe.
    std::env::set_var("INTERLEAVE_FAILURE_DIR", &dir);
    let report = explore(&Config::exhaustive("artifact-demo"), || {
        let reg = Arc::new(TornNbw::new(0, 0));
        let w = Arc::clone(&reg);
        let r = Arc::clone(&reg);
        Plan::new().thread(move || w.write(1, 2)).thread(move || {
            let (a, b) = r.read();
            assert!((a, b) == (0, 0) || (a, b) == (1, 2), "torn");
        })
    });
    let result = std::panic::catch_unwind(|| report.assert_ok());
    std::env::remove_var("INTERLEAVE_FAILURE_DIR");
    assert!(result.is_err(), "exploration must have failed");
    let body = std::fs::read_to_string(dir.join("artifact-demo.schedule"))
        .expect("failure artifact written");
    assert!(body.contains("schedule: "), "{body}");
    let _ = std::fs::remove_dir_all(&dir);
}
