use lfrt_sim::{Decision, JobId, SchedulerContext, UaScheduler};

use crate::ops::OpsCounter;

/// Least-laxity-first: the classic *fully-dynamic priority* baseline
/// (§4.1's third scheduler class).
///
/// A job's laxity is `critical time − now − remaining work`; it shrinks for
/// whichever job is *not* running, so two jobs with similar laxities keep
/// overtaking each other — the mutual-preemption behaviour of the paper's
/// Figure 6 that static and job-level-dynamic schedulers cannot exhibit.
/// UA schedulers such as RUA share this class, which is why Lemma 1 bounds
/// their preemptions by scheduling events rather than by releases.
///
/// Cost: one sort, `O(n log n)` reported operations.
///
/// # Examples
///
/// ```
/// use lfrt_core::Llf;
/// use lfrt_sim::UaScheduler;
///
/// assert_eq!(Llf::new().name(), "llf");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Llf {
    _private: (),
}

impl Llf {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl UaScheduler for Llf {
    fn name(&self) -> &str {
        "llf"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        let mut ops = OpsCounter::new();
        let laxity = |id: JobId| -> Option<(i128, JobId)> {
            let j = ctx.job(id)?;
            let slack = i128::from(j.absolute_critical_time)
                - i128::from(ctx.now)
                - i128::from(j.remaining);
            Some((slack, id))
        };
        let mut order: Vec<JobId> = ctx.jobs.iter().map(|j| j.id).collect();
        order.sort_by(|&a, &b| {
            ops.tick();
            laxity(a).cmp(&laxity(b))
        });
        Decision {
            order,
            ops: ops.total(),
            aborts: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfrt_sim::{JobView, TaskId};
    use lfrt_tuf::Tuf;

    #[test]
    fn least_laxity_goes_first() {
        let tuf = Tuf::step(1.0, 10_000).expect("valid");
        let mk = |id: usize, crit: u64, remaining: u64| JobView {
            id: JobId::new(id),
            task: TaskId::new(id),
            arrival: 0,
            absolute_critical_time: crit,
            window: 10_000,
            tuf: &tuf,
            remaining,
            blocked_on: None,
            holds: Vec::new(),
        };
        // Job 1 has the later deadline but so much remaining work that its
        // laxity (5000-0-4900=100) undercuts job 0's (1000-0-10=990).
        let ctx = SchedulerContext {
            now: 0,
            jobs: vec![mk(0, 1_000, 10), mk(1, 5_000, 4_900)],
        };
        let decision = Llf::new().schedule(&ctx);
        assert_eq!(decision.order[0], JobId::new(1));
    }

    #[test]
    fn negative_laxity_sorts_first() {
        let tuf = Tuf::step(1.0, 10_000).expect("valid");
        let mk = |id: usize, crit: u64, remaining: u64| JobView {
            id: JobId::new(id),
            task: TaskId::new(id),
            arrival: 0,
            absolute_critical_time: crit,
            window: 10_000,
            tuf: &tuf,
            remaining,
            blocked_on: None,
            holds: Vec::new(),
        };
        // Job 0 is already doomed (laxity −900); it still sorts first.
        let ctx = SchedulerContext {
            now: 0,
            jobs: vec![mk(0, 100, 1_000), mk(1, 5_000, 10)],
        };
        let decision = Llf::new().schedule(&ctx);
        assert_eq!(decision.order[0], JobId::new(0));
    }
}
