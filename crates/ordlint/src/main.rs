//! `lfrt-ordlint` — the memory-ordering lint binary.
//!
//! ```text
//! cargo run -p lfrt-ordlint                      # lint the workspace
//! cargo run -p lfrt-ordlint -- --list            # + full site inventory
//! cargo run -p lfrt-ordlint -- --json report.json
//! cargo run -p lfrt-ordlint -- --root DIR --baseline FILE
//! ```
//!
//! Exit status: 0 when every finding is baselined (with justification) and
//! no baseline entry is stale; 1 otherwise; 2 on I/O or parse errors.

use std::path::PathBuf;
use std::process::ExitCode;

use lfrt_bench::Args;
use lfrt_ordlint::{analyze_with_baseline, report, workspace_root};

fn main() -> ExitCode {
    let args = Args::from_env();
    let root = match args.get_str("root", "") {
        s if s.is_empty() => workspace_root(),
        s => PathBuf::from(s),
    };
    let baseline_path = match args.get_str("baseline", "") {
        s if s.is_empty() => root.join("ordlint.toml"),
        s => PathBuf::from(s),
    };
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => {
            eprintln!("ordlint: cannot read {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };
    let analysis = match analyze_with_baseline(&root, &baseline_text) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ordlint: {e}");
            return ExitCode::from(2);
        }
    };
    let list = args.get_str("list", "false") == "true";
    print!("{}", report::render_text(&analysis, list));
    let json_path = args.get_str("json", "");
    if !json_path.is_empty() {
        let doc = report::to_json(&analysis).to_string_pretty();
        if let Err(e) = std::fs::write(&json_path, doc) {
            eprintln!("ordlint: cannot write {json_path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("ordlint: wrote {json_path}");
    }
    if report::is_clean(&analysis.matched) {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
