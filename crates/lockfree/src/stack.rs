use std::fmt;
use std::mem::ManuallyDrop;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};

use crossbeam::epoch::{self, Atomic, Guard, Owned};
use crossbeam::utils::Backoff;

use crate::elimination::EliminationArray;
use crate::object::ConcurrentStack;
use crate::pool::{self, RawPool};
use crate::stats::OpStats;

/// Treiber's lock-free LIFO stack (R. K. Treiber, IBM RJ 5118, 1986).
///
/// Push and pop are single-CAS operations on the top-of-stack pointer; a
/// retry happens whenever a concurrent operation changes the top between the
/// read and the CAS — precisely the interference the paper's Theorem 2
/// bounds per job under the UAM.
///
/// The push/pop step structure — load the top, publish `next`, CAS the top —
/// is mirrored step for step by `lfrt-interleave`'s `ModelTreiberStack`
/// (with the epoch reclamation modeled as an append-only arena), and that
/// model's small-bound interleavings are explored exhaustively in
/// `crates/interleave` and this crate's `tests/interleavings.rs`.
///
/// # Examples
///
/// ```
/// use lfrt_lockfree::TreiberStack;
///
/// let s = TreiberStack::new();
/// s.push(1);
/// s.push(2);
/// assert_eq!(s.pop(), Some(2));
/// assert_eq!(s.pop(), Some(1));
/// assert_eq!(s.pop(), None);
/// ```
pub struct TreiberStack<T> {
    top: Atomic<Node<T>>,
    stats: OpStats,
    /// Node allocations come from (and retired nodes recycle into) this
    /// epoch-integrated pool; see [`crate::pool`]. [`TreiberStack::new`]
    /// uses the pooled mode, [`TreiberStack::new_boxed`] the passthrough
    /// (allocate/free) baseline.
    pool: &'static RawPool,
    /// Contention side channel ([`TreiberStack::with_elimination`]): a
    /// colliding push/pop pair exchanges directly instead of re-contending
    /// `top`. `None` (the default) leaves the retry loops exactly as they
    /// were — the elimination probe sits strictly inside the CAS-failure
    /// arm, so the uncontended path never touches it either way.
    elim: Option<EliminationArray>,
}

struct Node<T> {
    /// `ManuallyDrop` because the popping thread moves the payload out with
    /// `ptr::read`; the node's own drop must then skip it.
    data: ManuallyDrop<T>,
    next: Atomic<Node<T>>,
}

// SAFETY: elements are handed to exactly one popper and reclamation is
// epoch-protected; thread-safety reduces to `T: Send`.
unsafe impl<T: Send> Send for TreiberStack<T> {}
// SAFETY: as above; all shared-state mutation goes through atomics.
unsafe impl<T: Send> Sync for TreiberStack<T> {}

impl<T> TreiberStack<T> {
    /// Creates an empty stack whose nodes come from (and recycle into) the
    /// shared epoch-integrated node pool — allocation-free in steady state.
    pub fn new() -> Self {
        Self::with_pool(RawPool::of::<Node<T>>())
    }

    /// Creates an empty stack on the *boxed* baseline: every node is
    /// allocated from and freed to the global allocator, exactly the
    /// pre-pool behavior. Exists so the benches can measure the pool's win.
    pub fn new_boxed() -> Self {
        Self::with_pool(RawPool::of_boxed::<Node<T>>())
    }

    /// Creates an empty pooled stack with an elimination-backoff layer
    /// ([`crate::elimination`]): after a failed head CAS (and its backoff
    /// spin), a push parks its node in the exchanger and a pop scans it, so
    /// colliding inverse operations pair off without re-contending `top`.
    /// Uncontended operations never enter the exchanger — their instruction
    /// sequence is identical to [`TreiberStack::new`]'s.
    ///
    /// Eliminated nodes recycle straight into the node pool (no grace
    /// period needed: an exchanged node was never published to the stack,
    /// so no other thread can hold a reference to it).
    pub fn with_elimination() -> Self {
        let mut stack = Self::with_pool(RawPool::of::<Node<T>>());
        stack.elim = Some(EliminationArray::new());
        stack
    }

    fn with_pool(pool: &'static RawPool) -> Self {
        Self {
            top: Atomic::null(),
            stats: OpStats::new(),
            pool,
            elim: None,
        }
    }

    /// Acquires a block from the pool and initializes it as a node.
    fn alloc_node(&self, value: T) -> Owned<Node<T>> {
        let block = self.pool.acquire().cast::<Node<T>>();
        // SAFETY: `acquire` hands out an exclusively owned, properly
        // aligned global-allocator block of `Node<T>`'s layout; `write`
        // initializes every field without reading the old contents.
        unsafe {
            block.write(Node {
                data: ManuallyDrop::new(value),
                next: Atomic::null(),
            });
            Owned::from_raw(block)
        }
    }

    /// Pushes `value` on top of the stack.
    pub fn push(&self, value: T) {
        let guard = &epoch::pin();
        self.push_in(value, guard);
    }

    /// Pushes every value of `values`, amortizing the epoch pin (and the
    /// pool's segment refill) across the whole batch: one pin, not one per
    /// element. Elements are pushed in iteration order, so they pop in
    /// reverse.
    pub fn push_n<I: IntoIterator<Item = T>>(&self, values: I) {
        let guard = &epoch::pin();
        for value in values {
            self.push_in(value, guard);
        }
    }

    fn push_in(&self, value: T, guard: &Guard) {
        let mut trace = lfrt_trace::CasOp::start(lfrt_trace::Site::StackPush);
        let mut new = self.alloc_node(value);
        // Bounded exponential backoff between passes: pure spinning, no
        // atomics, so the loop's step structure (and its interleave mirror)
        // is unchanged — only the retry *pacing* under contention is.
        let backoff = Backoff::new();
        loop {
            self.stats.attempt();
            trace.attempt();
            let top = self.top.load(Acquire, guard);
            new.next.store(top, Relaxed);
            match self.top.compare_exchange(top, new, Release, Relaxed, guard) {
                Ok(_) => {
                    trace.success();
                    return;
                }
                Err(e) => {
                    new = e.new;
                    self.stats.retry();
                    trace.retry();
                    backoff.spin();
                    // Contended pass: offer the node to a colliding pop
                    // before re-contending `top`. The exchanger never
                    // dereferences the pointer; ownership either transfers
                    // wholesale (push done) or stays with us (retry).
                    if let Some(elim) = &self.elim {
                        let raw = new.into_shared(guard).as_raw().cast_mut();
                        if elim.try_eliminate_push(raw.cast()) {
                            trace.success();
                            return;
                        }
                        // SAFETY: the cancel CAS succeeded, so no popper
                        // ever observed the offer — the node is still
                        // exclusively ours and still fully initialized.
                        new = unsafe { Owned::from_raw(raw) };
                    }
                }
            }
        }
    }

    /// Pops the top element, or returns `None` if the stack is empty.
    pub fn pop(&self) -> Option<T> {
        let guard = &epoch::pin();
        self.pop_in(guard)
    }

    /// Pops up to `n` elements under a single epoch pin, stopping early if
    /// the stack is observed empty. Returns the popped elements in pop
    /// order. (The returned `Vec` is the one allocation of the batch.)
    pub fn pop_n(&self, n: usize) -> Vec<T> {
        let guard = &epoch::pin();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.pop_in(guard) {
                Some(v) => out.push(v),
                None => break,
            }
        }
        out
    }

    fn pop_in(&self, guard: &Guard) -> Option<T> {
        let mut trace = lfrt_trace::CasOp::start(lfrt_trace::Site::StackPop);
        let backoff = Backoff::new();
        loop {
            self.stats.attempt();
            trace.attempt();
            let top = self.top.load(Acquire, guard);
            // SAFETY: protected by `guard`; `as_ref` handles null.
            let Some(top_ref) = (unsafe { top.as_ref() }) else {
                trace.success(); // completed: observed empty
                return None;
            };
            let next = top_ref.next.load(Relaxed, guard);
            match self
                .top
                .compare_exchange(top, next, Release, Relaxed, guard)
            {
                Ok(_) => {
                    // SAFETY: winning the CAS unlinked `top`; we are the only
                    // thread that will ever read its payload. `ManuallyDrop`
                    // guarantees the node's deferred reclamation will not
                    // drop the payload a second time.
                    let data = unsafe { ManuallyDrop::into_inner(std::ptr::read(&top_ref.data)) };
                    // SAFETY: the node is unlinked and its payload moved out
                    // (the leftover fields are trivially droppable), so it
                    // can recycle into the pool once all pinned threads move
                    // on — the same grace period that used to gate its free.
                    unsafe { guard.defer_recycle(top, pool::recycle_raw, self.pool.ctx()) };
                    trace.success();
                    return Some(data);
                }
                Err(_) => {
                    self.stats.retry();
                    trace.retry();
                    backoff.spin();
                    // Contended pass: claim a colliding push's offer instead
                    // of re-contending `top`.
                    if let Some(elim) = &self.elim {
                        if let Some(raw) = elim.try_eliminate_pop() {
                            let node = raw.cast::<Node<T>>();
                            // SAFETY: winning the claim CAS (Acquire, paired
                            // with the offer's Release) transferred the node
                            // to us exclusively; the payload read happens
                            // strictly after that CAS — reading it off the
                            // scan probe instead would be the exchange-slot
                            // ABA the interleave twin seeds.
                            let data =
                                unsafe { ManuallyDrop::into_inner(std::ptr::read(&(*node).data)) };
                            // SAFETY: an exchanged node was never published
                            // to the stack, so no epoch grace is owed:
                            // recycle it into the pool directly. Its payload
                            // has just been moved out and its remaining
                            // fields are trivially droppable.
                            unsafe { pool::recycle_raw(node.cast(), self.pool.ctx()) };
                            trace.success();
                            return Some(data);
                        }
                    }
                }
            }
        }
    }

    /// The node pool backing this stack (for stats and teardown accounting).
    pub fn node_pool(&self) -> &'static RawPool {
        self.pool
    }

    /// The elimination layer, if this stack was built
    /// [`TreiberStack::with_elimination`] (for hit-rate telemetry).
    pub fn elimination(&self) -> Option<&EliminationArray> {
        self.elim.as_ref()
    }

    /// Whether the stack is observed empty (a snapshot under concurrency).
    pub fn is_empty(&self) -> bool {
        let guard = &epoch::pin();
        self.top.load(Acquire, guard).is_null()
    }

    /// The attempt/retry counters of this stack.
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }
}

impl<T> Default for TreiberStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for TreiberStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TreiberStack")
            .field("stats", &self.stats.snapshot())
            .finish_non_exhaustive()
    }
}

impl<T> Drop for TreiberStack<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` guarantees exclusive access. Remaining nodes
        // still own their payloads, so drop them explicitly (ManuallyDrop
        // would otherwise leak them).
        unsafe {
            let guard = epoch::unprotected();
            let mut node = self.top.load(Relaxed, guard);
            while !node.is_null() {
                let next = node.deref().next.load(Relaxed, guard);
                let mut owned = node.into_owned();
                ManuallyDrop::drop(&mut owned.data);
                drop(owned);
                node = next;
            }
        }
    }
}

impl<T: Send> ConcurrentStack<T> for TreiberStack<T> {
    fn push(&self, value: T) {
        TreiberStack::push(self, value);
    }

    fn pop(&self) -> Option<T> {
        TreiberStack::pop(self)
    }

    fn is_empty(&self) -> bool {
        TreiberStack::is_empty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lifo_order_single_thread() {
        let s = TreiberStack::new();
        for i in 0..100 {
            s.push(i);
        }
        for i in (0..100).rev() {
            assert_eq!(s.pop(), Some(i));
        }
        assert_eq!(s.pop(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn no_retries_without_contention() {
        let s = TreiberStack::new();
        for i in 0..50 {
            s.push(i);
        }
        while s.pop().is_some() {}
        assert_eq!(s.stats().retries(), 0);
    }

    #[test]
    fn drop_releases_remaining_elements() {
        let s = TreiberStack::new();
        for i in 0..10 {
            s.push(Box::new(i));
        }
        drop(s);
    }

    #[test]
    fn batched_push_pop_round_trip() {
        let s = TreiberStack::new();
        s.push_n(0..100);
        let popped = s.pop_n(60);
        assert_eq!(popped, (40..100).rev().collect::<Vec<_>>());
        let rest = s.pop_n(1000);
        assert_eq!(rest, (0..40).rev().collect::<Vec<_>>());
        assert!(s.pop_n(5).is_empty());
        assert!(s.is_empty());
    }

    #[test]
    fn boxed_baseline_behaves_identically() {
        let s = TreiberStack::new_boxed();
        s.push_n(0..50);
        for i in (0..50).rev() {
            assert_eq!(s.pop(), Some(i));
        }
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn elimination_stack_behaves_like_plain_single_thread() {
        let s = TreiberStack::with_elimination();
        s.push_n(0..100);
        for i in (0..100).rev() {
            assert_eq!(s.pop(), Some(i));
        }
        assert_eq!(s.pop(), None);
        // Single-threaded there is no CAS failure, so the exchanger is
        // never entered: the fast path is the plain stack's.
        let elim = s.elimination().expect("elimination layer present");
        assert_eq!(elim.hits(), 0);
        assert_eq!(elim.misses(), 0);
        assert_eq!(s.stats().retries(), 0);
    }

    #[test]
    fn elimination_stack_conserves_elements_under_contention() {
        const THREADS: usize = 4;
        const PER_THREAD: usize = 2_000;
        let s = Arc::new(TreiberStack::with_elimination());
        let handles: Vec<_> = (0..THREADS)
            .map(|p| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..PER_THREAD {
                        s.push(p * PER_THREAD + i);
                        if let Some(v) = s.pop() {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect();
        while let Some(v) = s.pop() {
            all.push(v);
        }
        all.sort_unstable();
        let expected: Vec<usize> = (0..THREADS * PER_THREAD).collect();
        assert_eq!(all, expected);
        assert!(s.is_empty());
    }

    #[test]
    fn concurrent_element_conservation() {
        const THREADS: usize = 4;
        const PER_THREAD: usize = 2_000;
        let s = Arc::new(TreiberStack::new());
        let producers: Vec<_> = (0..THREADS)
            .map(|p| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        s.push(p * PER_THREAD + i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..THREADS)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while got.len() < PER_THREAD {
                        if let Some(v) = s.pop() {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        for h in producers {
            h.join().expect("producer panicked");
        }
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|h| h.join().expect("consumer panicked"))
            .collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..THREADS * PER_THREAD).collect();
        assert_eq!(all, expected);
        assert!(s.is_empty());
    }
}
