//! Online admission control: use the analysis crate's sufficient
//! schedulability test (built from Theorem 2 and the §5 worst cases) as an
//! admission gate, then verify by simulation that everything it admitted
//! meets every critical time.
//!
//! The gate tries to add tasks one at a time; the first rejected task shows
//! where the worst-case budget runs out, and the admitted prefix is then
//! run under lock-free RUA to confirm zero critical-time misses.
//!
//! Run with: `cargo run --release --example admission_gate`

use lockfree_rt::analysis::admission::{admit, AdmissionTask, Discipline};
use lockfree_rt::core::RuaLockFree;
use lockfree_rt::sim::{AccessKind, Engine, ObjectId, Segment, SharingMode, SimConfig, TaskSpec};
use lockfree_rt::tuf::Tuf;
use lockfree_rt::uam::{ArrivalGenerator, RandomUamArrivals, Uam};

const S: u64 = 25; // lock-free access time, µs

fn candidate(i: usize) -> Result<TaskSpec, Box<dyn std::error::Error>> {
    // Progressively heavier candidates: windows shrink, compute grows.
    let window = 120_000 - (i as u64) * 9_000;
    let compute = 2_000 + (i as u64) * 900;
    Ok(TaskSpec::builder(format!("task{i}"))
        .tuf(Tuf::step(10.0 - i as f64 * 0.5, window * 9 / 10)?)
        .uam(Uam::new(1, 2, window)?)
        .segments(vec![
            Segment::Compute(compute / 2),
            Segment::Access {
                object: ObjectId::new(i % 3),
                kind: AccessKind::Write,
            },
            Segment::Compute(compute - compute / 2),
        ])
        .build()?)
}

fn to_admission(tasks: &[TaskSpec]) -> Vec<AdmissionTask> {
    tasks
        .iter()
        .map(|t| AdmissionTask {
            uam: *t.uam(),
            critical_time: t.tuf().critical_time(),
            compute: t.compute_ticks(),
            accesses: t.access_count() as u64,
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut accepted: Vec<TaskSpec> = Vec::new();
    println!("admission gate (lock-free, s = {S} µs):");
    for i in 0..12 {
        let task = candidate(i)?;
        let mut trial = accepted.clone();
        trial.push(task.clone());
        let report = admit(
            &to_admission(&trial),
            Discipline::LockFree { access_ticks: S },
        );
        let verdict = &report.per_task[trial.len() - 1];
        if report.all_admitted() {
            println!(
                "  + {}: worst-case sojourn {:>7} µs of {:>7} µs budget — admitted",
                task.name(),
                verdict.worst_sojourn,
                verdict.critical_time
            );
            accepted = trial;
        } else {
            println!(
                "  - {}: admitting it would overrun someone's budget — rejected",
                task.name()
            );
        }
    }
    println!(
        "\n{} of 12 candidates admitted; simulating 2 s to verify…",
        accepted.len()
    );

    let horizon = 2_000_000;
    let traces = accepted
        .iter()
        .enumerate()
        .map(|(i, t)| {
            RandomUamArrivals::new(*t.uam(), i as u64)
                .with_intensity(4.0)
                .generate(horizon)
        })
        .collect();
    let outcome = Engine::new(
        accepted,
        traces,
        SimConfig::new(SharingMode::LockFree { access_ticks: S }),
    )?
    .run(RuaLockFree::new());
    println!(
        "released {}, completed {}, aborted {} — CMR {:.3}",
        outcome.metrics.released(),
        outcome.metrics.completed(),
        outcome.metrics.aborted(),
        outcome.metrics.cmr()
    );
    assert_eq!(
        outcome.metrics.aborted(),
        0,
        "the admission test is sufficient"
    );
    println!("every admitted job met its critical time ✓");
    Ok(())
}
