//! Machine-readable experiment results.
//!
//! Every experiment binary can emit its results as JSON (flag `--json
//! <path>`) next to the human-readable text tables, so benchmark
//! trajectories can be recorded per commit (`BENCH_*.json`) and diffed by
//! CI. The format is hand-rolled (the build environment is offline, so no
//! serde_json) but deliberately tiny: an ordered [`Json`] value tree, a
//! canonical pretty-printer, and a strict parser for round-tripping.
//!
//! # Document schema (`schema_version` 1)
//!
//! ```text
//! {
//!   "schema_version": 1,
//!   "meta": {                      // run provenance — NOT deterministic
//!     "generator": "lfrt-bench",
//!     "git_rev": "<rev or unknown>",
//!     "threads": N,                // worker threads used by the sweep
//!     "quick": bool,               // reduced-resolution CI mode?
//!     "duration_secs": float       // wall-clock for the whole run
//!   },
//!   "experiments": [               // one entry per experiment (figure/table)
//!     {
//!       "experiment": "fig10_13_aur_cmr",  // binary name
//!       "figure": "12",                    // paper figure/table key
//!       "title": "...",
//!       "config": { ... },                 // resolved parameters
//!       "points": [
//!         {
//!           "params": { "objects": 4 },    // the sweep coordinates
//!           "seeds": [0, 1, 2],            // ascending; [] if seedless
//!           "metrics": { ... },            // DETERMINISTIC results; summary
//!                                          // stats carry mean/std_dev/ci95/n
//!                                          // plus the seed-ordered samples
//!           "timing": { ... }              // host wall-clock measurements —
//!                                          // NOT deterministic; omitted when
//!                                          // the experiment has none
//!         }
//!       ]
//!     }
//!   ]
//! }
//! ```
//!
//! **Determinism contract:** for a fixed command line, everything under
//! `experiments` *except* the `timing` objects is a pure function of the
//! experiment's seeds — independent of `--threads`, wall-clock, and host.
//! [`payload`] extracts exactly that deterministic subtree; CI asserts its
//! bytes match across `--threads 1` and `--threads 8`.

use std::fmt::Write as _;

use crate::stats::Summary;

/// An ordered JSON value (object keys keep insertion order, so documents
/// print byte-identically for identical content).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always stored as `f64`; printed as an integer when whole).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Num(f64::from(v))
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl From<&Summary> for Json {
    /// `{mean, std_dev, ci95, n}` — attach the raw samples with
    /// [`summary_of`] when they exist.
    fn from(s: &Summary) -> Self {
        Json::Obj(vec![
            ("mean".into(), s.mean.into()),
            ("std_dev".into(), s.std_dev.into()),
            ("ci95".into(), s.ci95.into()),
            ("n".into(), s.n.into()),
        ])
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// Summarizes `samples` (mean/std-dev/95% CI) and keeps the raw,
/// seed-ordered samples alongside, so the JSON is both diffable at a glance
/// and fully reproducible.
pub fn summary_of(samples: &[f64]) -> Json {
    let s = Summary::of(samples);
    let Json::Obj(mut fields) = Json::from(&s) else {
        unreachable!("Summary is an object")
    };
    fields.push((
        "samples".into(),
        Json::Arr(samples.iter().map(|&v| Json::Num(v)).collect()),
    ));
    Json::Obj(fields)
}

impl Json {
    /// Member lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and `\n` line endings — the
    /// canonical on-disk form (equal values always print equal bytes).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Scalar-only arrays print inline; nested ones one-per-line.
                let inline = items
                    .iter()
                    .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)));
                if inline {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write(out, depth + 1);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        indent(out, depth + 1);
                        item.write(out, depth + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    indent(out, depth);
                    out.push(']');
                }
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    indent(out, depth + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no NaN/Inf; results should never produce them, but a
        // corrupt document would be worse than an honest null.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        // Rust's shortest-roundtrip float formatting: deterministic and
        // parses back to the identical bit pattern.
        let _ = write!(out, "{v}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document (strict; trailing content is an error).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII slice");
        text.parse::<f64>().map(Json::Num).map_err(|_| ParseError {
            message: format!("invalid number '{text}'"),
            offset: start,
        })
    }
}

/// One experiment's results: a figure or table of the paper.
#[derive(Debug, Clone)]
pub struct Report {
    /// The experiment binary's name, e.g. `fig10_13_aur_cmr`.
    pub experiment: String,
    /// The paper figure/table key, e.g. `12` or `table:theorem2`.
    pub figure: String,
    /// Human-readable title.
    pub title: String,
    /// Resolved configuration (flag values, derived constants).
    pub config: Vec<(String, Json)>,
    /// The sweep's data points, in deterministic sweep order.
    pub points: Vec<Point>,
}

/// One sweep point of a [`Report`].
#[derive(Debug, Clone, Default)]
pub struct Point {
    /// Sweep coordinates (e.g. `objects`, `load`).
    pub params: Vec<(String, Json)>,
    /// The seeds aggregated into this point, ascending; empty if seedless.
    pub seeds: Vec<u64>,
    /// Deterministic results (identical for every `--threads` value).
    pub metrics: Vec<(String, Json)>,
    /// Host wall-clock measurements (non-deterministic; may be empty).
    pub timing: Vec<(String, Json)>,
}

impl Report {
    /// A report with no points yet.
    pub fn new(
        experiment: impl Into<String>,
        figure: impl Into<String>,
        title: impl Into<String>,
    ) -> Self {
        Self {
            experiment: experiment.into(),
            figure: figure.into(),
            title: title.into(),
            config: Vec::new(),
            points: Vec::new(),
        }
    }

    /// Appends a config entry (builder-style).
    pub fn config(mut self, key: impl Into<String>, value: impl Into<Json>) -> Self {
        self.config.push((key.into(), value.into()));
        self
    }

    /// Renders to the `experiments[i]` JSON shape.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("experiment".into(), self.experiment.as_str().into()),
            ("figure".into(), self.figure.as_str().into()),
            ("title".into(), self.title.as_str().into()),
            ("config".into(), Json::Obj(self.config.clone())),
            (
                "points".into(),
                Json::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            let mut fields = vec![
                                ("params".into(), Json::Obj(p.params.clone())),
                                (
                                    "seeds".into(),
                                    Json::Arr(p.seeds.iter().map(|&s| s.into()).collect()),
                                ),
                                ("metrics".into(), Json::Obj(p.metrics.clone())),
                            ];
                            if !p.timing.is_empty() {
                                fields.push(("timing".into(), Json::Obj(p.timing.clone())));
                            }
                            Json::Obj(fields)
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Run provenance recorded under `meta` (see the module docs: `meta` is
/// explicitly outside the determinism contract).
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// `git rev-parse HEAD` of the working tree, or `unknown`.
    pub git_rev: String,
    /// Worker threads used by the sweeps.
    pub threads: usize,
    /// Whether `--quick` reduced resolution.
    pub quick: bool,
    /// Wall-clock duration of the whole run, seconds.
    pub duration_secs: f64,
}

impl RunMeta {
    /// Captures provenance for a run that used `threads` workers.
    pub fn capture(threads: usize, quick: bool) -> Self {
        Self {
            git_rev: git_rev(),
            threads,
            quick,
            duration_secs: 0.0,
        }
    }
}

/// Best-effort `git rev-parse HEAD` (short); `unknown` outside a checkout.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Assembles the full document from per-experiment reports.
pub fn document(reports: &[Report], meta: &RunMeta) -> Json {
    Json::Obj(vec![
        ("schema_version".into(), 1u64.into()),
        (
            "meta".into(),
            Json::Obj(vec![
                ("generator".into(), "lfrt-bench".into()),
                ("git_rev".into(), meta.git_rev.as_str().into()),
                ("threads".into(), meta.threads.into()),
                ("quick".into(), meta.quick.into()),
                ("duration_secs".into(), meta.duration_secs.into()),
            ]),
        ),
        (
            "experiments".into(),
            Json::Arr(reports.iter().map(Report::to_json).collect()),
        ),
    ])
}

/// The deterministic subtree of a document: its `experiments` array with
/// every `timing` member removed. Byte-identical across `--threads` values
/// for the same command line (the determinism contract CI enforces).
pub fn payload(doc: &Json) -> Json {
    fn strip(value: &Json) -> Json {
        match value {
            Json::Obj(fields) => Json::Obj(
                fields
                    .iter()
                    .filter(|(k, _)| k != "timing")
                    .map(|(k, v)| (k.clone(), strip(v)))
                    .collect(),
            ),
            Json::Arr(items) => Json::Arr(items.iter().map(strip).collect()),
            other => other.clone(),
        }
    }
    strip(doc.get("experiments").unwrap_or(&Json::Arr(Vec::new())))
}

/// Writes `reports` to `path`, stamping `meta` with `duration_secs`.
///
/// # Errors
///
/// Propagates I/O errors from writing `path`.
pub fn write_reports(
    path: &std::path::Path,
    reports: &[Report],
    mut meta: RunMeta,
    started: std::time::Instant,
) -> std::io::Result<()> {
    meta.duration_secs = started.elapsed().as_secs_f64();
    std::fs::write(path, document(reports, &meta).to_string_pretty())?;
    eprintln!(
        "wrote {} experiment(s) to {}",
        reports.len(),
        path.display()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> Json {
        let mut report = Report::new("fig_x", "7", "a title").config("seeds", 2u64);
        report.points.push(Point {
            params: vec![("objects".into(), 4u64.into())],
            seeds: vec![0, 1],
            metrics: vec![("aur".into(), summary_of(&[0.5, 0.75]))],
            timing: vec![("ns".into(), 12.5.into())],
        });
        document(
            &[report],
            &RunMeta {
                git_rev: "abc123".into(),
                threads: 2,
                quick: true,
                duration_secs: 0.25,
            },
        )
    }

    #[test]
    fn round_trips_exactly() {
        let doc = sample_doc();
        let text = doc.to_string_pretty();
        let reparsed = parse(&text).expect("own output must parse");
        assert_eq!(reparsed, doc);
        // And printing again is byte-identical (canonical form).
        assert_eq!(reparsed.to_string_pretty(), text);
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let text = r#"{"a": "x\n\"y\"A", "b": [-1.5e3, 0.25, 7], "c": null, "d": true}"#;
        let v = parse(text).expect("valid document");
        assert_eq!(v.get("a").and_then(Json::as_str), Some("x\n\"y\"A"));
        assert_eq!(
            v.get("b").and_then(Json::as_array).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("b").unwrap().as_array().unwrap()[0].as_f64(),
            Some(-1500.0)
        );
        assert_eq!(v.get("c"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn whole_floats_print_as_integers() {
        assert_eq!(Json::Num(3.0).to_string_pretty(), "3\n");
        assert_eq!(Json::Num(0.5).to_string_pretty(), "0.5\n");
        assert_eq!(Json::Num(-2.0).to_string_pretty(), "-2\n");
    }

    #[test]
    fn payload_strips_timing_only() {
        let doc = sample_doc();
        let payload = payload(&doc);
        let text = payload.to_string_pretty();
        assert!(!text.contains("timing"));
        assert!(
            !text.contains("duration_secs"),
            "meta must not leak into payload"
        );
        assert!(text.contains("metrics"));
        assert!(text.contains("samples"));
    }

    #[test]
    fn summary_of_embeds_ordered_samples() {
        let json = summary_of(&[1.0, 2.0, 3.0]);
        assert_eq!(json.get("n").and_then(Json::as_f64), Some(3.0));
        let samples = json
            .get("samples")
            .and_then(Json::as_array)
            .expect("samples");
        let values: Vec<f64> = samples.iter().filter_map(Json::as_f64).collect();
        assert_eq!(values, vec![1.0, 2.0, 3.0]);
    }
}
