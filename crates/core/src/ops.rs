/// An abstract operation counter.
///
/// Schedulers report how much work an invocation performed; the simulator's
/// [`OverheadModel`](lfrt_sim::OverheadModel) converts the count into
/// charged processor time. To keep the charge faithful to the paper's §3.6
/// cost analysis, structure operations (ordered-list lookup/insert/remove)
/// are charged at their `O(log n)` textbook cost via
/// [`OpsCounter::charge_log`], regardless of how the host data structure
/// happens to be implemented.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpsCounter {
    count: u64,
}

impl OpsCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one unit of work (a comparison, a pointer chase, …).
    #[inline]
    pub fn tick(&mut self) {
        self.count += 1;
    }

    /// Records `n` units of work.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// Charges the `O(log n)` cost of one ordered-structure operation on a
    /// structure currently holding `len` items (minimum 1 unit).
    #[inline]
    pub fn charge_log(&mut self, len: usize) {
        self.count += (usize::BITS - len.leading_zeros()).max(1) as u64;
    }

    /// The accumulated count.
    #[inline]
    pub fn total(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut c = OpsCounter::new();
        c.tick();
        c.add(5);
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn log_charge_grows_logarithmically() {
        let mut c = OpsCounter::new();
        c.charge_log(0);
        assert_eq!(c.total(), 1); // minimum one unit
        let mut c = OpsCounter::new();
        c.charge_log(1);
        let one = c.total();
        let mut c = OpsCounter::new();
        c.charge_log(1024);
        let big = c.total();
        assert!(big > one);
        assert!(big <= 16, "log-scale, not linear");
    }
}
