use std::cell::UnsafeCell;
use std::fmt;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};

use crossbeam::epoch::{self, Atomic, Guard, Owned, Shared};
use crossbeam::utils::Backoff;

use crate::object::ConcurrentQueue;
use crate::pool::{self, RawPool};
use crate::stats::OpStats;

/// The Michael–Scott lock-free FIFO queue (Michael & Scott, JPDC'98).
///
/// Multi-producer, multi-consumer, linearizable, and lock-free: some
/// operation always completes in a finite number of steps; an individual
/// operation may retry when a concurrent operation wins its CAS. Memory is
/// reclaimed with `crossbeam`'s epoch scheme: a dequeued node is retired
/// via `defer_destroy` and freed once two epoch advances guarantee no
/// pinned thread can still hold a reference — so sustained traffic runs in
/// bounded space, where the paper's QNX prototype used type-stable node
/// pools to the same end (no use-after-free, no unbounded growth).
///
/// Retries are counted in an [`OpStats`] readable via
/// [`LockFreeQueue::stats`] — the measured analogue of the retry count `f_i`
/// that the paper's Theorem 2 bounds under the UAM.
///
/// The enqueue/dequeue step structure (E1–E5/D1–D5 below, including the
/// lagging-tail help protocol) is mirrored step for step by
/// `lfrt-interleave`'s `ModelMsQueue`, whose interleavings are checked for
/// linearizability in `crates/interleave` and `tests/interleavings.rs`.
///
/// # Examples
///
/// ```
/// use lfrt_lockfree::LockFreeQueue;
///
/// let q = LockFreeQueue::new();
/// q.enqueue("job");
/// assert_eq!(q.dequeue(), Some("job"));
/// assert!(q.is_empty());
/// ```
pub struct LockFreeQueue<T> {
    head: Atomic<Node<T>>,
    tail: Atomic<Node<T>>,
    stats: OpStats,
    /// Node allocations come from (and retired sentinels recycle into)
    /// this epoch-integrated pool; see [`crate::pool`].
    pool: &'static RawPool,
}

struct Node<T> {
    /// `None` only for the sentinel. Wrapped in `UnsafeCell` because the
    /// dequeuer that wins the head CAS takes the value out of what is, from
    /// the type system's perspective, a shared node.
    data: UnsafeCell<Option<T>>,
    next: Atomic<Node<T>>,
}

// SAFETY: the queue hands each element to exactly one consumer, and nodes are
// reclaimed through the epoch scheme, so sending the queue (or sharing it)
// across threads is sound exactly when `T` itself can move between threads.
unsafe impl<T: Send> Send for LockFreeQueue<T> {}
// SAFETY: as above; all shared-state mutation goes through atomics.
unsafe impl<T: Send> Sync for LockFreeQueue<T> {}

impl<T> LockFreeQueue<T> {
    /// Creates an empty queue whose nodes come from (and recycle into) the
    /// shared epoch-integrated node pool — allocation-free in steady state.
    pub fn new() -> Self {
        Self::with_pool(RawPool::of::<Node<T>>())
    }

    /// Creates an empty queue on the *boxed* baseline: every node is
    /// allocated from and freed to the global allocator, exactly the
    /// pre-pool behavior. Exists so the benches can measure the pool's win.
    pub fn new_boxed() -> Self {
        Self::with_pool(RawPool::of_boxed::<Node<T>>())
    }

    fn with_pool(pool: &'static RawPool) -> Self {
        let queue = Self {
            head: Atomic::null(),
            tail: Atomic::null(),
            stats: OpStats::new(),
            pool,
        };
        let sentinel = queue.alloc_node(None);
        // SAFETY: the queue is not yet shared; no other thread can observe
        // these stores, so the unprotected guard is sound.
        let guard = unsafe { epoch::unprotected() };
        let sentinel = sentinel.into_shared(guard);
        queue.head.store(sentinel, Relaxed);
        queue.tail.store(sentinel, Relaxed);
        queue
    }

    /// Acquires a block from the pool and initializes it as a node
    /// (`None` = sentinel).
    fn alloc_node(&self, value: Option<T>) -> Owned<Node<T>> {
        let block = self.pool.acquire().cast::<Node<T>>();
        // SAFETY: `acquire` hands out an exclusively owned, properly
        // aligned global-allocator block of `Node<T>`'s layout; `write`
        // initializes every field without reading the old contents.
        unsafe {
            block.write(Node {
                data: UnsafeCell::new(value),
                next: Atomic::null(),
            });
            Owned::from_raw(block)
        }
    }

    /// Appends `value` at the tail.
    ///
    /// Lock-free: retries only when a concurrent enqueue wins the tail CAS;
    /// each retry is recorded in [`LockFreeQueue::stats`].
    pub fn enqueue(&self, value: T) {
        let guard = &epoch::pin();
        self.enqueue_in(value, guard);
    }

    /// Enqueues every value of `values` in iteration order, amortizing the
    /// epoch pin (and the pool's segment refill) across the whole batch:
    /// one pin, not one per element. Not atomic — a concurrent dequeuer may
    /// observe a prefix of the batch.
    pub fn enqueue_batch<I: IntoIterator<Item = T>>(&self, values: I) {
        let guard = &epoch::pin();
        for value in values {
            self.enqueue_in(value, guard);
        }
    }

    fn enqueue_in(&self, value: T, guard: &Guard) {
        let mut trace = lfrt_trace::CasOp::start(lfrt_trace::Site::QueueEnqueue);
        let new = self.alloc_node(Some(value)).into_shared(guard);
        // Backoff paces contended retries without touching shared state;
        // the loop's step structure (mirrored by `ModelMsQueue`) is intact.
        let backoff = Backoff::new();
        loop {
            self.stats.attempt();
            trace.attempt();
            let tail = self.tail.load(Acquire, guard);
            // SAFETY: `tail` was read under `guard`, so the node cannot have
            // been reclaimed; head/tail are never null after construction.
            let tail_ref = unsafe { tail.deref() };
            let next = tail_ref.next.load(Acquire, guard);
            if !next.is_null() {
                // Tail pointer lags behind the real tail: help advance it.
                let _ = self
                    .tail
                    .compare_exchange(tail, next, Release, Relaxed, guard);
                self.stats.retry();
                trace.retry();
                backoff.spin();
                continue;
            }
            match tail_ref
                .next
                .compare_exchange(Shared::null(), new, Release, Relaxed, guard)
            {
                Ok(_) => {
                    // Swing the tail; failure is benign (someone helped).
                    let _ = self
                        .tail
                        .compare_exchange(tail, new, Release, Relaxed, guard);
                    trace.success();
                    return;
                }
                Err(_) => {
                    self.stats.retry();
                    trace.retry();
                    backoff.spin();
                }
            }
        }
    }

    /// Removes and returns the element at the head, or `None` if empty.
    pub fn dequeue(&self) -> Option<T> {
        let guard = &epoch::pin();
        self.dequeue_in(guard)
    }

    /// Dequeues up to `n` elements under a single epoch pin, stopping early
    /// if the queue is observed empty. Returns the elements in FIFO order.
    /// (The returned `Vec` is the one allocation of the batch.)
    pub fn dequeue_batch(&self, n: usize) -> Vec<T> {
        let guard = &epoch::pin();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.dequeue_in(guard) {
                Some(v) => out.push(v),
                None => break,
            }
        }
        out
    }

    fn dequeue_in(&self, guard: &Guard) -> Option<T> {
        let mut trace = lfrt_trace::CasOp::start(lfrt_trace::Site::QueueDequeue);
        let backoff = Backoff::new();
        loop {
            self.stats.attempt();
            trace.attempt();
            let head = self.head.load(Acquire, guard);
            // SAFETY: protected by `guard`; never null after construction.
            let head_ref = unsafe { head.deref() };
            let next = head_ref.next.load(Acquire, guard);
            // SAFETY: protected by `guard`.
            let Some(next_ref) = (unsafe { next.as_ref() }) else {
                trace.success(); // completed: observed empty
                return None;
            };
            let tail = self.tail.load(Acquire, guard);
            if tail == head {
                // Tail lags behind a non-empty queue: help advance it.
                let _ = self
                    .tail
                    .compare_exchange(tail, next, Release, Relaxed, guard);
            }
            match self
                .head
                .compare_exchange(head, next, Release, Relaxed, guard)
            {
                Ok(_) => {
                    // SAFETY: winning the head CAS grants exclusive ownership
                    // of `next`'s payload: `next` is now the sentinel, whose
                    // data is never read again by any other operation.
                    let data = unsafe { (*next_ref.data.get()).take() };
                    debug_assert!(data.is_some(), "non-sentinel node had no data");
                    // SAFETY: `head` (the retiring sentinel) is unlinked and
                    // its data slot holds `None` (taken by the dequeue that
                    // made it the sentinel, or never set), so skipping its
                    // destructor is sound and it can recycle into the pool
                    // once all pinned threads move on — the same grace
                    // period that used to gate its free.
                    unsafe { guard.defer_recycle(head, pool::recycle_raw, self.pool.ctx()) };
                    trace.success();
                    return data;
                }
                Err(_) => {
                    self.stats.retry();
                    trace.retry();
                    backoff.spin();
                }
            }
        }
    }

    /// The node pool backing this queue (for stats and teardown accounting).
    pub fn node_pool(&self) -> &'static RawPool {
        self.pool
    }

    /// Whether the queue is observed empty (a snapshot; other threads may
    /// mutate concurrently).
    pub fn is_empty(&self) -> bool {
        let guard = &epoch::pin();
        let head = self.head.load(Acquire, guard);
        // SAFETY: protected by `guard`; never null after construction.
        let head_ref = unsafe { head.deref() };
        head_ref.next.load(Acquire, guard).is_null()
    }

    /// The attempt/retry counters of this queue.
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }
}

impl<T> Default for LockFreeQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for LockFreeQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockFreeQueue")
            .field("stats", &self.stats.snapshot())
            .finish_non_exhaustive()
    }
}

impl<T> Drop for LockFreeQueue<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` guarantees exclusive access; no other thread
        // can be inside an operation, so walking and freeing without epoch
        // protection is sound. Only nodes still *linked* are freed here —
        // nodes already retired by `dequeue` belong to the epoch collector,
        // which frees them after their grace period (they are unreachable
        // from `head`, so there is no double free).
        unsafe {
            let guard = epoch::unprotected();
            let mut node = self.head.load(Relaxed, guard);
            while !node.is_null() {
                let next = node.deref().next.load(Relaxed, guard);
                drop(node.into_owned());
                node = next;
            }
        }
    }
}

impl<T: Send> ConcurrentQueue<T> for LockFreeQueue<T> {
    fn enqueue(&self, value: T) {
        LockFreeQueue::enqueue(self, value);
    }

    fn dequeue(&self) -> Option<T> {
        LockFreeQueue::dequeue(self)
    }

    fn is_empty(&self) -> bool {
        LockFreeQueue::is_empty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let q = LockFreeQueue::new();
        for i in 0..100 {
            q.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn empty_reports_none_and_is_empty() {
        let q: LockFreeQueue<u32> = LockFreeQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.dequeue(), None);
        q.enqueue(1);
        assert!(!q.is_empty());
        q.dequeue();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_enqueue_dequeue() {
        let q = LockFreeQueue::new();
        q.enqueue(1);
        q.enqueue(2);
        assert_eq!(q.dequeue(), Some(1));
        q.enqueue(3);
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), Some(3));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn no_retries_without_contention() {
        let q = LockFreeQueue::new();
        for i in 0..50 {
            q.enqueue(i);
        }
        while q.dequeue().is_some() {}
        assert_eq!(q.stats().retries(), 0);
    }

    #[test]
    fn drop_releases_remaining_elements() {
        // Boxed values make leaks visible to sanitizers/miri.
        let q = LockFreeQueue::new();
        for i in 0..10 {
            q.enqueue(Box::new(i));
        }
        drop(q); // must free the 10 boxes and all nodes
    }

    #[test]
    fn batched_enqueue_dequeue_round_trip() {
        let q = LockFreeQueue::new();
        q.enqueue_batch(0..100);
        assert_eq!(q.dequeue_batch(60), (0..60).collect::<Vec<_>>());
        assert_eq!(q.dequeue_batch(1000), (60..100).collect::<Vec<_>>());
        assert!(q.dequeue_batch(5).is_empty());
        assert!(q.is_empty());
    }

    #[test]
    fn boxed_baseline_behaves_identically() {
        let q = LockFreeQueue::new_boxed();
        q.enqueue_batch(0..50);
        for i in 0..50 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn concurrent_element_conservation() {
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 2_000;
        let q = Arc::new(LockFreeQueue::new());
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    q.enqueue(p * PER_PRODUCER + i);
                }
            }));
        }
        let consumers: Vec<_> = (0..PRODUCERS)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while got.len() < PER_PRODUCER {
                        if let Some(v) = q.dequeue() {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            h.join().expect("producer panicked");
        }
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|h| h.join().expect("consumer panicked"))
            .collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..PRODUCERS * PER_PRODUCER).collect();
        assert_eq!(all, expected, "every element delivered exactly once");
        assert!(q.is_empty());
    }

    #[test]
    fn per_producer_fifo_preserved() {
        // With one producer and one consumer, global FIFO must hold even
        // under concurrency.
        let q = Arc::new(LockFreeQueue::new());
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    q.enqueue(i);
                }
            })
        };
        let mut last = None;
        let mut seen = 0;
        while seen < 10_000 {
            if let Some(v) = q.dequeue() {
                if let Some(prev) = last {
                    assert!(v > prev, "FIFO violated: {v} after {prev}");
                }
                last = Some(v);
                seen += 1;
            }
        }
        producer.join().expect("producer panicked");
    }
}
