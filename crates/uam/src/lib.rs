//! The unimodal arbitrary arrival model (UAM).
//!
//! The UAM (Hermant & Le Lann, ICDCS'98) describes activity arrivals by a
//! tuple `⟨l, a, W⟩`: during **any** sliding time window of length `W`, at
//! most `a` and at least `l` jobs of the task arrive. Jobs may arrive
//! simultaneously. The model subsumes the periodic model (`⟨1, 1, W⟩`) and
//! sporadic models as special cases while admitting far more adversarial
//! behaviour — which is exactly the "stronger adversary" that the retry bound
//! of *Lock-Free Synchronization for Dynamic Embedded Real-Time Systems*
//! (Cho, Ravindran, Jensen — DATE 2006) is proved against.
//!
//! This crate provides:
//!
//! * [`Uam`] — the model itself, with the window-counting helpers used by the
//!   paper's Theorem 2 and Lemmas 4–5;
//! * [`ArrivalTrace`] — a concrete, sorted arrival sequence together with a
//!   sliding-window conformance checker;
//! * generators ([`PeriodicArrivals`], [`FrontLoadedArrivals`],
//!   [`BackToBackBurst`], [`RandomUamArrivals`]) producing traces that are
//!   UAM-conformant *by construction* and verified by the checker, including
//!   the adversarial back-to-back burst pattern from the Theorem 2 proof.
//!
//! # Examples
//!
//! ```
//! use lfrt_uam::{ArrivalGenerator, RandomUamArrivals, Uam};
//!
//! # fn main() -> Result<(), lfrt_uam::UamError> {
//! let uam = Uam::new(1, 3, 1_000)?; // at most 3 arrivals per any 1000-tick window
//! let trace = RandomUamArrivals::new(uam, 42).generate(10_000);
//! assert!(trace.conforms_to(&uam).is_ok());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod generator;
mod model;
mod stats;
mod trace;
mod window;

pub use error::{UamError, UamViolation};
pub use generator::{
    ArrivalGenerator, BackToBackBurst, FrontLoadedArrivals, JitteredPeriodic, PeriodicArrivals,
    RandomUamArrivals,
};
pub use model::Uam;
pub use stats::TraceStats;
pub use trace::ArrivalTrace;
pub use window::SlidingWindowCounter;
