use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(usize);

        impl $name {
            /// Creates an id from a raw index.
            #[inline]
            pub const fn new(index: usize) -> Self {
                Self(index)
            }

            /// The raw index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                Self(index)
            }
        }
    };
}

id_type!(
    /// Identifies a task (a recurrent activity with a TUF and a UAM).
    TaskId,
    "T"
);
id_type!(
    /// Identifies a job — one invocation of a task, the unit of scheduling.
    JobId,
    "J"
);
id_type!(
    /// Identifies a sequentially-shared object (e.g. a queue).
    ObjectId,
    "O"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_display() {
        let t = TaskId::new(3);
        assert_eq!(t.index(), 3);
        assert_eq!(t.to_string(), "T3");
        assert_eq!(JobId::new(7).to_string(), "J7");
        assert_eq!(ObjectId::from(1).to_string(), "O1");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(JobId::new(1) < JobId::new(2));
    }
}
