//! **Figure 14** — AUR and CMR across a load sweep (AL 0.1–1.1) with
//! heterogeneous TUFs, plus the increasing-readers variant.
//!
//! The paper repeated the Figures 10–13 experiments with an increasing
//! number of reader tasks instead of objects and observed the same trends;
//! Figure 14 is the published snapshot (heterogeneous TUFs, AL 0.1–1.1).
//! This binary reproduces both views:
//!
//! 1. AUR/CMR versus load at a fixed population (10 tasks, 10 objects);
//! 2. AUR/CMR versus the number of reader tasks at fixed load.
//!
//! Expected shape (paper): lock-free dominates lock-based across the whole
//! load range and for every reader population.
//!
//! Usage: `cargo run -p lfrt-bench --release --bin fig14_readers --
//! [--seeds 5] [--r 400] [--s 5] [--json <path>] [--threads N] [--quick]`

use lfrt_bench::json::{self, Point, Report};
use lfrt_bench::runner::Sweep;
use lfrt_bench::stats::Summary;
use lfrt_bench::{table, Args};
use lfrt_core::{RuaLockBased, RuaLockFree};
use lfrt_sim::workload::{ArrivalStyle, TufClass, WorkloadSpec};
use lfrt_sim::{Engine, OverheadModel, SharingMode, SimConfig, UaScheduler};

/// AUR and CMR samples for the four (scheduler × metric) columns of one
/// (tasks, load, seed) run.
type Cell = [f64; 4];

fn main() {
    let started = std::time::Instant::now();
    let args = Args::from_env();
    let trace = lfrt_bench::trace::Session::from_args(&args, "fig14_readers");
    let quick = args.quick();
    let seeds = args.get_u64("seeds", if quick { 2 } else { 5 });
    let r = args.get_u64("r", 400);
    let s = args.get_u64("s", 5);
    let horizon = args.get_u64("horizon", if quick { 200_000 } else { 1_000_000 });
    let threads = args.threads();

    println!("# Figure 14: load sweep and reader sweep (heterogeneous TUFs)");
    println!("# r = {r} µs, s = {s} µs, {seeds} seeds per point");

    let loads: Vec<f64> = if quick {
        vec![0.3, 0.7, 1.1]
    } else {
        vec![0.1, 0.3, 0.5, 0.7, 0.9, 1.1]
    };
    let reader_counts: Vec<usize> = if quick {
        vec![4, 10, 14]
    } else {
        vec![4, 6, 8, 10, 12, 14]
    };

    // Both panels share one sweep so the pool drains a single work list:
    // (tasks, load, seed), with panel a varying load and panel b tasks.
    let mut points: Vec<(usize, f64, u64)> = Vec::new();
    for &load in &loads {
        points.extend((0..seeds).map(|seed| (10usize, load, seed)));
    }
    for &readers in &reader_counts {
        points.extend((0..seeds).map(|seed| (readers, 0.8, seed)));
    }
    let results = Sweep::new("fig14", points)
        .threads(threads)
        .run(|&(tasks, load, seed)| {
            let spec = WorkloadSpec {
                num_tasks: tasks,
                num_objects: 10,
                accesses_per_job: 6,
                tuf_class: TufClass::Heterogeneous,
                target_load: load,
                window_range: (6_000, 18_000),
                max_burst: 2,
                critical_time_frac: 0.9,
                arrival_style: ArrivalStyle::RandomUam { intensity: 4.0 },
                horizon,
                read_fraction: 0.0,
                seed: seed + 1000,
            };
            let lf = run(
                &spec,
                SharingMode::LockFree { access_ticks: s },
                RuaLockFree::new(),
            );
            let lb = run(
                &spec,
                SharingMode::LockBased { access_ticks: r },
                RuaLockBased::new(),
            );
            [lf.aur(), lb.aur(), lf.cmr(), lb.cmr()]
        });
    let (load_cells, reader_cells) = results.split_at(loads.len() * seeds as usize);

    let common = |report: Report| {
        report
            .config("seeds", seeds)
            .config("r_ticks", r)
            .config("s_ticks", s)
            .config("horizon", horizon)
            .config("tufs", "Heterogeneous")
    };
    let mut report_a = common(Report::new(
        "fig14_readers",
        "14a",
        "AUR and CMR vs load (10 tasks, 10 objects)",
    ));
    let mut report_b = common(Report::new(
        "fig14_readers",
        "14b",
        "AUR and CMR vs reader tasks (AL = 0.8)",
    ));

    let mut rows = Vec::new();
    for (i, &load) in loads.iter().enumerate() {
        let chunk = &load_cells[i * seeds as usize..(i + 1) * seeds as usize];
        rows.push(row(format!("{load:.1}"), chunk));
        report_a
            .points
            .push(point(vec![("load".into(), load.into())], seeds, chunk));
    }
    table::print(
        "Figure 14a: AUR and CMR vs load (10 tasks, 10 objects)",
        &[
            "AL",
            "AUR lock-free",
            "AUR lock-based",
            "CMR lock-free",
            "CMR lock-based",
        ],
        &rows,
    );

    let mut rows = Vec::new();
    for (i, &readers) in reader_counts.iter().enumerate() {
        let chunk = &reader_cells[i * seeds as usize..(i + 1) * seeds as usize];
        rows.push(row(readers.to_string(), chunk));
        report_b.points.push(point(
            vec![("readers".into(), readers.into())],
            seeds,
            chunk,
        ));
    }
    table::print(
        "Figure 14b: AUR and CMR vs reader tasks (AL = 0.8)",
        &[
            "readers",
            "AUR lock-free",
            "AUR lock-based",
            "CMR lock-free",
            "CMR lock-based",
        ],
        &rows,
    );
    println!("\nshape check: lock-free dominates across the load range and all populations.");

    if let Some(path) = args.json_path() {
        let meta = json::RunMeta::capture(threads, quick);
        json::write_reports(&path, &[report_a, report_b], meta, started)
            .expect("write JSON report");
    }
    trace.finish(args.threads(), args.quick());
}

fn column(cells: &[Cell], j: usize) -> Vec<f64> {
    cells.iter().map(|c| c[j]).collect()
}

fn row(label: String, cells: &[Cell]) -> Vec<String> {
    let mut row = vec![label];
    row.extend((0..4).map(|j| Summary::of(&column(cells, j)).display(3)));
    row
}

fn point(params: Vec<(String, json::Json)>, seeds: u64, cells: &[Cell]) -> Point {
    Point {
        params,
        seeds: (0..seeds).map(|s| s + 1000).collect(),
        metrics: vec![
            ("aur_lock_free".into(), json::summary_of(&column(cells, 0))),
            ("aur_lock_based".into(), json::summary_of(&column(cells, 1))),
            ("cmr_lock_free".into(), json::summary_of(&column(cells, 2))),
            ("cmr_lock_based".into(), json::summary_of(&column(cells, 3))),
        ],
        timing: Vec::new(),
    }
}

fn run<S: UaScheduler>(
    spec: &WorkloadSpec,
    sharing: SharingMode,
    scheduler: S,
) -> lfrt_sim::SimMetrics {
    let (tasks, traces) = spec.build().expect("valid workload");
    Engine::new(
        tasks,
        traces,
        SimConfig::new(sharing)
            .overhead(OverheadModel::per_op(0.2))
            .record_jobs(false),
    )
    .expect("valid engine")
    .run(scheduler)
    .metrics
}
