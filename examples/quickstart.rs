//! Quickstart: define tasks with TUFs and UAM arrivals, run them under
//! lock-free RUA on the simulator, and check the Theorem 2 retry bound.
//!
//! Run with: `cargo run --example quickstart`

use lockfree_rt::analysis::RetryBoundInput;
use lockfree_rt::core::RuaLockFree;
use lockfree_rt::sim::{AccessKind, Engine, ObjectId, Segment, SharingMode, SimConfig, TaskSpec};
use lockfree_rt::tuf::Tuf;
use lockfree_rt::uam::{ArrivalGenerator, RandomUamArrivals, Uam};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two tasks share one lock-free queue (object 0).
    //
    // "sensor" is a bursty task: up to 3 jobs per 10 ms window, classic
    // deadline (step TUF) at 8 ms, 1 ms of work around a queue write.
    let sensor = TaskSpec::builder("sensor")
        .tuf(Tuf::step(10.0, 8_000)?)
        .uam(Uam::new(1, 3, 10_000)?)
        .segments(vec![
            Segment::Compute(500),
            Segment::Access {
                object: ObjectId::new(0),
                kind: AccessKind::Write,
            },
            Segment::Compute(500),
        ])
        .build()?;

    // "planner" is periodic: utility decays linearly, so finishing earlier
    // is worth more.
    let planner = TaskSpec::builder("planner")
        .tuf(Tuf::linear_decreasing(25.0, 20_000)?)
        .uam(Uam::periodic(20_000))
        .segments(vec![
            Segment::Compute(2_000),
            Segment::Access {
                object: ObjectId::new(0),
                kind: AccessKind::Write,
            },
            Segment::Compute(2_000),
        ])
        .build()?;

    // Seeded, UAM-conformant arrival traces over 200 ms.
    let horizon = 200_000;
    let sensor_trace = RandomUamArrivals::new(*sensor.uam(), 42)
        .with_intensity(2.0)
        .generate(horizon);
    let planner_trace = RandomUamArrivals::new(*planner.uam(), 43).generate(horizon);
    assert!(sensor_trace.conforms_to(sensor.uam()).is_ok());

    // Theorem 2: bound the sensor's lock-free retries analytically.
    let bound = RetryBoundInput {
        own_max_arrivals: sensor.uam().max_arrivals(),
        critical_time: sensor.tuf().critical_time(),
        others: vec![*planner.uam()],
    }
    .retry_bound();

    // Simulate under lock-free RUA with 20 µs per queue access.
    let outcome = Engine::new(
        vec![sensor, planner],
        vec![sensor_trace, planner_trace],
        SimConfig::new(SharingMode::LockFree { access_ticks: 20 }),
    )?
    .run(RuaLockFree::new());

    println!("released : {}", outcome.metrics.released());
    println!("completed: {}", outcome.metrics.completed());
    println!("AUR      : {:.3}", outcome.metrics.aur());
    println!("CMR      : {:.3}", outcome.metrics.cmr());
    println!(
        "retries  : {} (Theorem 2 bound per sensor job: {bound})",
        outcome.metrics.retries()
    );

    let worst_sensor_retries = outcome
        .records
        .iter()
        .filter(|r| r.task.index() == 0)
        .map(|r| r.retries)
        .max()
        .unwrap_or(0);
    assert!(worst_sensor_retries <= bound, "Theorem 2 must hold");
    println!("worst sensor job retries: {worst_sensor_retries} <= {bound}  ✓");
    Ok(())
}
