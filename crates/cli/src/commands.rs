//! The `lfrt` subcommands, written as pure functions from parsed arguments
//! (plus stdin text where applicable) to output text, so they are directly
//! unit-testable.

use std::io::BufRead;

use lfrt_analysis::admission::{admit as run_admission, AdmissionTask, Discipline};
use lfrt_analysis::RetryBoundInput;
use lfrt_bench::Args;
use lfrt_core::{Edf, EdfPi, Lbesa, Llf, Rm, RuaLockBased, RuaLockFree};
use lfrt_sim::mp::MpEngine;
use lfrt_sim::workload::{ArrivalStyle, TufClass, WorkloadSpec};
use lfrt_sim::{sojourn_percentiles, Engine, SharingMode, SimConfig, SimOutcome, TaskSpec};
use lfrt_uam::{ArrivalTrace, TraceStats, Uam};

fn spec_from(args: &Args) -> WorkloadSpec {
    WorkloadSpec {
        num_tasks: args.get_u64("tasks", 10) as usize,
        num_objects: args.get_u64("objects", 10) as usize,
        accesses_per_job: args.get_u64("accesses", 4) as usize,
        tuf_class: match args.get_str("tufs", "step").as_str() {
            "hetero" | "heterogeneous" => TufClass::Heterogeneous,
            _ => TufClass::Step,
        },
        target_load: args.get_f64("load", 0.6),
        window_range: (args.get_u64("wmin", 6_000), args.get_u64("wmax", 18_000)),
        max_burst: args.get_u64("burst", 2) as u32,
        critical_time_frac: args.get_f64("cfrac", 0.9),
        arrival_style: ArrivalStyle::RandomUam {
            intensity: args.get_f64("intensity", 3.0),
        },
        horizon: args.get_u64("horizon", 500_000),
        read_fraction: args.get_f64("reads", 0.0),
        seed: args.get_u64("seed", 1),
    }
}

/// `lfrt workload` — run a workload and report the metrics.
pub fn workload(args: &Args) -> Result<String, String> {
    let spec = spec_from(args);
    let (tasks, traces) = spec.build().map_err(|e| e.to_string())?;
    let sharing = match args.get_str("sharing", "lockfree").as_str() {
        "lockfree" => SharingMode::LockFree {
            access_ticks: args.get_u64("s", 10),
        },
        "lockbased" => SharingMode::LockBased {
            access_ticks: args.get_u64("r", 400),
        },
        "ideal" => SharingMode::Ideal,
        other => return Err(format!("unknown sharing mode {other:?}")),
    };
    let want_gantt = args.get_str("gantt", "false") == "true";
    let config = SimConfig::new(sharing).trace(want_gantt);
    let cpus = args.get_u64("cpus", 1) as usize;
    let scheduler_name = args.get_str("scheduler", "rua");
    let outcome = dispatch_run(tasks, traces, config, cpus, &scheduler_name)?;
    let mut out = render_metrics(&scheduler_name, sharing, &outcome);
    if want_gantt {
        out.push('\n');
        out.push_str(&outcome.trace.render_gantt(72));
    }
    Ok(out)
}

fn dispatch_run(
    tasks: Vec<TaskSpec>,
    traces: Vec<ArrivalTrace>,
    config: SimConfig,
    cpus: usize,
    scheduler: &str,
) -> Result<SimOutcome, String> {
    macro_rules! run_with {
        ($sched:expr) => {
            if cpus <= 1 {
                Engine::new(tasks, traces, config)
                    .map_err(|e| e.to_string())?
                    .run($sched)
            } else {
                MpEngine::new(tasks, traces, config, cpus)
                    .map_err(|e| e.to_string())?
                    .run($sched)
            }
        };
    }
    Ok(match scheduler {
        "rua" | "rua-lockfree" => run_with!(RuaLockFree::new()),
        "rua-lockbased" => run_with!(RuaLockBased::new()),
        "edf" => run_with!(Edf::new()),
        "edf-pi" => run_with!(EdfPi::new()),
        "rm" => run_with!(Rm::new()),
        "llf" => run_with!(Llf::new()),
        "lbesa" => run_with!(Lbesa::new()),
        other => return Err(format!("unknown scheduler {other:?}")),
    })
}

fn render_metrics(scheduler: &str, sharing: SharingMode, outcome: &SimOutcome) -> String {
    let m = &outcome.metrics;
    let mut out = String::new();
    out.push_str(&format!("scheduler {scheduler}, sharing {sharing:?}\n"));
    out.push_str(&format!(
        "released {}  completed {}  aborted {}\n",
        m.released(),
        m.completed(),
        m.aborted()
    ));
    out.push_str(&format!("AUR {:.3}  CMR {:.3}\n", m.aur(), m.cmr()));
    out.push_str(&format!(
        "retries {}  blockings {}  preemptions {}  scheduler invocations {}\n",
        m.retries(),
        m.blockings(),
        m.preemptions(),
        m.sched_invocations
    ));
    if let Some(p) = sojourn_percentiles(&outcome.records) {
        out.push_str(&format!(
            "sojourn p50 {}  p90 {}  p99 {}  max {} (over {} completions)\n",
            p.p50, p.p90, p.p99, p.max, p.n
        ));
    }
    out
}

/// `lfrt admit` — admission-test the generated task set.
pub fn admit(args: &Args) -> Result<String, String> {
    let spec = spec_from(args);
    let (tasks, _) = spec.build().map_err(|e| e.to_string())?;
    let s = args.get_u64("s", 20);
    let admission: Vec<AdmissionTask> = tasks
        .iter()
        .map(|t| AdmissionTask {
            uam: *t.uam(),
            critical_time: t.tuf().critical_time(),
            compute: t.compute_ticks(),
            accesses: t.access_count() as u64,
        })
        .collect();
    let report = run_admission(&admission, Discipline::LockFree { access_ticks: s });
    let mut out = String::new();
    for (task, verdict) in tasks.iter().zip(&report.per_task) {
        out.push_str(&format!(
            "{:<8} worst {:>9} of {:>9} budget — {}\n",
            task.name(),
            verdict.worst_sojourn,
            verdict.critical_time,
            if verdict.admitted {
                "admitted"
            } else {
                "REJECTED"
            }
        ));
    }
    out.push_str(&format!(
        "verdict: {}\n",
        if report.all_admitted() {
            "all admitted"
        } else {
            "not schedulable in the worst case"
        }
    ));
    Ok(out)
}

/// `lfrt bound` — the Theorem 2 calculator.
pub fn bound(args: &Args) -> Result<String, String> {
    let critical = args.get_u64("critical", 0);
    if critical == 0 {
        return Err("--critical is required".into());
    }
    let others = parse_others(&args.get_str("others", ""))?;
    let input = RetryBoundInput {
        own_max_arrivals: args.get_u64("a", 1) as u32,
        critical_time: critical,
        others,
    };
    Ok(format!(
        "x = {}\nretry bound f ≤ {}\n",
        input.interference_x(),
        input.retry_bound()
    ))
}

/// Parses `a:w,a:w,...` into UAMs.
pub fn parse_others(text: &str) -> Result<Vec<Uam>, String> {
    let mut out = Vec::new();
    for part in text.split(',').filter(|p| !p.trim().is_empty()) {
        let (a, w) = part
            .split_once(':')
            .ok_or_else(|| format!("expected a:w, got {part:?}"))?;
        let a: u32 = a
            .trim()
            .parse()
            .map_err(|_| format!("bad burst in {part:?}"))?;
        let w: u64 = w
            .trim()
            .parse()
            .map_err(|_| format!("bad window in {part:?}"))?;
        out.push(Uam::new(1, a.max(1), w).map_err(|e| e.to_string())?);
    }
    Ok(out)
}

/// `lfrt fit` — UAM model identification from an arrival trace on stdin.
pub fn fit(args: &Args, input: &str) -> Result<String, String> {
    let trace = ArrivalTrace::read_csv(input.as_bytes()).map_err(|e| e.to_string())?;
    let window = args.get_u64("window", 10_000);
    let horizon = args.get_u64("horizon", trace.times().last().map_or(0, |&t| t + 1));
    let fitted = Uam::fit(&trace, window, horizon).ok_or("empty trace or zero window")?;
    let stats = TraceStats::of(&trace).ok_or("empty trace")?;
    Ok(format!(
        "arrivals {}  span {}..{}\ngaps: min {} mean {:.1} max {}\nfitted ⟨l={}, a={}, W={}⟩\npeak window occupancy {:.2}\n",
        stats.count,
        stats.first,
        stats.last,
        stats.min_gap,
        stats.mean_gap,
        stats.max_gap,
        fitted.min_arrivals(),
        fitted.max_arrivals(),
        fitted.window(),
        TraceStats::peak_window_occupancy(&trace, &fitted),
    ))
}

/// `lfrt summary` — summarize a job-record CSV.
pub fn summary<R: BufRead>(reader: &mut R) -> Result<String, String> {
    let records = lfrt_sim::csv::read_records(reader).map_err(|e| e.to_string())?;
    if records.is_empty() {
        return Ok("no records\n".into());
    }
    let completed = records.iter().filter(|r| r.completed).count();
    let utility: f64 = records.iter().map(|r| r.utility).sum();
    let retries: u64 = records.iter().map(|r| r.retries).sum();
    let blockings: u64 = records.iter().map(|r| r.blockings).sum();
    let mut out = format!(
        "records {}  completed {}  aborted {}\ntotal utility {utility:.2}  retries {retries}  blockings {blockings}\n",
        records.len(),
        completed,
        records.len() - completed,
    );
    if let Some(p) = sojourn_percentiles(&records) {
        out.push_str(&format!(
            "sojourn p50 {}  p90 {}  p99 {}  max {}\n",
            p.p50, p.p90, p.p99, p.max
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(pairs: &[(&str, &str)]) -> Args {
        let raw: Vec<String> = pairs
            .iter()
            .flat_map(|(k, v)| [format!("--{k}"), v.to_string()])
            .collect();
        Args::parse(raw)
    }

    #[test]
    fn parse_others_accepts_lists() {
        let uams = parse_others("2:1000, 1:500").expect("valid");
        assert_eq!(uams.len(), 2);
        assert_eq!(uams[0].max_arrivals(), 2);
        assert_eq!(uams[1].window(), 500);
        assert!(parse_others("").expect("empty ok").is_empty());
        assert!(parse_others("nonsense").is_err());
        assert!(parse_others("1:0").is_err(), "zero window rejected");
    }

    #[test]
    fn bound_command_computes_theorem2() {
        let out = bound(&args(&[
            ("critical", "1000"),
            ("a", "1"),
            ("others", "2:500"),
        ]))
        .expect("valid");
        // x = 2·(⌈1000/500⌉+1) = 6; bound = 3 + 12 = 15.
        assert!(out.contains("x = 6"), "{out}");
        assert!(out.contains("≤ 15"), "{out}");
        assert!(bound(&args(&[("a", "1")])).is_err(), "critical required");
    }

    #[test]
    fn workload_command_runs_and_reports() {
        let out = workload(&args(&[
            ("tasks", "4"),
            ("objects", "2"),
            ("load", "0.3"),
            ("horizon", "100000"),
            ("scheduler", "rua"),
        ]))
        .expect("valid run");
        assert!(out.contains("AUR"), "{out}");
        assert!(out.contains("released"), "{out}");
    }

    #[test]
    fn workload_command_multiprocessor_and_gantt() {
        let out = workload(&args(&[
            ("tasks", "3"),
            ("load", "0.3"),
            ("horizon", "50000"),
            ("cpus", "2"),
            ("gantt", "true"),
        ]))
        .expect("valid run");
        assert!(out.contains('|'), "gantt rows expected: {out}");
    }

    #[test]
    fn workload_rejects_unknown_inputs() {
        assert!(workload(&args(&[("scheduler", "what")])).is_err());
        assert!(workload(&args(&[("sharing", "what")])).is_err());
    }

    #[test]
    fn admit_command_reports_verdicts() {
        let out = admit(&args(&[
            ("tasks", "3"),
            ("load", "0.05"),
            ("wmin", "50000"),
            ("wmax", "90000"),
        ]))
        .expect("valid");
        assert!(out.contains("admitted"), "{out}");
    }

    #[test]
    fn fit_command_identifies_model() {
        let trace = "0\n100\n100\n8000\n8100\n";
        let out = fit(&args(&[("window", "8000"), ("horizon", "16000")]), trace).expect("valid");
        assert!(out.contains("a=3") || out.contains("a=2"), "{out}");
        assert!(fit(&args(&[]), "garbage\n").is_err());
    }

    #[test]
    fn summary_command_round_trips_records() {
        let csv = "job,task,arrival,resolved_at,completed,utility,retries,blockings,preemptions\n\
                   0,0,0,100,true,5,1,0,0\n1,0,50,400,false,0,2,1,0\n";
        let out = summary(&mut csv.as_bytes()).expect("valid");
        assert!(out.contains("records 2"), "{out}");
        assert!(out.contains("completed 1"), "{out}");
        assert!(out.contains("retries 3"), "{out}");
    }
}
