//! Online model identification: the motivating systems of the paper have
//! arrival behaviour that is *not known a priori*. This example observes a
//! burst-heavy arrival stream, fits the tightest UAM `⟨l, a, W⟩` to it with
//! [`Uam::fit`], derives the Theorem 2 retry bound from the *fitted* model,
//! and verifies by simulation that the bound holds for the remainder of the
//! stream — the full sense-model-bound-verify loop of an adaptive system.
//!
//! Run with: `cargo run --release --example model_identification`

use lockfree_rt::analysis::RetryBoundInput;
use lockfree_rt::core::RuaLockFree;
use lockfree_rt::sim::{AccessKind, Engine, ObjectId, Segment, SharingMode, SimConfig, TaskSpec};
use lockfree_rt::tuf::Tuf;
use lockfree_rt::uam::{ArrivalGenerator, ArrivalTrace, RandomUamArrivals, TraceStats, Uam};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A "black box" arrival source: we pretend not to know its true model
    // ⟨1, 3, 8000⟩ and only see its arrivals.
    let hidden = Uam::new(1, 3, 8_000)?;
    let observed = RandomUamArrivals::new(hidden, 99)
        .with_intensity(4.0)
        .generate(400_000);
    println!("observed {} arrivals over 400 ms", observed.len());
    let stats = TraceStats::of(&observed).expect("non-empty");
    println!(
        "inter-arrival gaps: min {} µs, mean {:.0} µs, max {} µs",
        stats.min_gap, stats.mean_gap, stats.max_gap
    );

    // Identify: fit the tightest UAM at the candidate window.
    let fitted = Uam::fit(&observed, 8_000, 400_000).expect("non-empty");
    println!(
        "fitted model: ⟨l={}, a={}, W={}⟩ (hidden truth: ⟨1, 3, 8000⟩)",
        fitted.min_arrivals(),
        fitted.max_arrivals(),
        fitted.window()
    );
    assert!(observed.conforms_to(&fitted).is_ok());
    assert!(
        fitted.max_arrivals() <= hidden.max_arrivals(),
        "fit never over-estimates a"
    );

    // Bound: Theorem 2 for a peer task under the fitted interference.
    let peer_critical = 12_000;
    let bound = RetryBoundInput {
        own_max_arrivals: 1,
        critical_time: peer_critical,
        others: vec![fitted],
    }
    .retry_bound();
    println!("Theorem 2 bound for a peer job (C = {peer_critical} µs): ≤ {bound} retries");

    // Verify: simulate the peer against the observed stream and audit.
    let peer = TaskSpec::builder("peer")
        .tuf(Tuf::step(5.0, peer_critical)?)
        .uam(Uam::periodic(20_000))
        .segments(vec![
            Segment::Compute(300),
            Segment::Access {
                object: ObjectId::new(0),
                kind: AccessKind::Write,
            },
            Segment::Compute(300),
        ])
        .build()?;
    let source = TaskSpec::builder("source")
        .tuf(Tuf::step(1.0, 7_000)?)
        .uam(fitted)
        .segments(vec![Segment::Access {
            object: ObjectId::new(0),
            kind: AccessKind::Write,
        }])
        .build()?;
    let peer_trace: ArrivalTrace = (0..20).map(|k| k * 20_000).collect();
    let outcome = Engine::new(
        vec![peer, source],
        vec![peer_trace, observed],
        SimConfig::new(SharingMode::LockFree { access_ticks: 150 }),
    )?
    .run(RuaLockFree::new());
    let worst = outcome
        .records
        .iter()
        .filter(|r| r.task.index() == 0)
        .map(|r| r.retries)
        .max()
        .unwrap_or(0);
    println!("measured worst peer retries: {worst} ≤ {bound}  ✓");
    assert!(
        worst <= bound,
        "the bound derived from the fitted model must hold"
    );
    Ok(())
}
