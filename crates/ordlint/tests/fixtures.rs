//! Fixture tests: every rule fires at exactly the expected file lines — no
//! more, no fewer — over the hand-written sources in `tests/fixtures/`.
//! (That directory has no `crates/` subdirectory, so [`analyze`] walks it
//! recursively instead of using the workspace layout.)

use std::path::{Path, PathBuf};

use lfrt_ordlint::analyze;

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// `(rule, line)` pairs of every finding in one fixture file, in report
/// order.
fn findings_in(file: &str) -> Vec<(String, usize)> {
    let (_, findings) = analyze(&fixtures_root()).expect("fixture scan");
    findings
        .iter()
        .filter(|f| f.file == file)
        .map(|f| (f.rule.to_string(), f.line))
        .collect()
}

fn pairs(raw: &[(&str, usize)]) -> Vec<(String, usize)> {
    raw.iter().map(|(r, l)| (r.to_string(), *l)).collect()
}

#[test]
fn ord001_fires_on_relaxed_publication_only() {
    assert_eq!(findings_in("ord001.rs"), pairs(&[("ORD001", 5)]));
}

#[test]
fn ord002_fires_on_binding_and_chain_derefs() {
    assert_eq!(
        findings_in("ord002.rs"),
        pairs(&[("ORD002", 4), ("ORD002", 9)])
    );
}

#[test]
fn ord003_fires_with_ord005_on_the_swapped_pair() {
    assert_eq!(
        findings_in("ord003.rs"),
        pairs(&[("ORD003", 5), ("ORD005", 5)])
    );
}

#[test]
fn ord004_fires_without_dekker_or_fence() {
    assert_eq!(findings_in("ord004.rs"), pairs(&[("ORD004", 4)]));
}

#[test]
fn ord005_fires_on_feedback_only_failure_value() {
    assert_eq!(findings_in("ord005.rs"), pairs(&[("ORD005", 6)]));
}

#[test]
fn ord006_fires_on_unpaired_fences() {
    assert_eq!(
        findings_in("ord006.rs"),
        pairs(&[("ORD006", 5), ("ORD006", 9)])
    );
}

#[test]
fn clean_fixture_is_clean() {
    assert_eq!(findings_in("clean.rs"), pairs(&[]));
}

#[test]
fn findings_carry_function_and_receiver() {
    let (_, findings) = analyze(&fixtures_root()).expect("fixture scan");
    let f = findings
        .iter()
        .find(|f| f.file == "ord002.rs" && f.line == 4)
        .expect("binding-deref finding");
    assert_eq!(f.function, "deref_via_binding");
    assert_eq!(f.receiver, "head");
    assert_eq!(f.severity, "error");
}

#[test]
fn fixture_scan_sees_every_file() {
    let (analysis, findings) = analyze(&fixtures_root()).expect("fixture scan");
    assert_eq!(
        analysis.files,
        [
            "clean.rs",
            "ord001.rs",
            "ord002.rs",
            "ord003.rs",
            "ord004.rs",
            "ord005.rs",
            "ord006.rs",
            "rawstr.rs"
        ]
    );
    assert_eq!(findings.len(), 9, "{findings:?}");
}

#[test]
fn byte_string_escape_does_not_hide_the_following_site() {
    let (analysis, _) = analyze(&fixtures_root()).expect("fixture scan");
    let site = analysis
        .sites
        .iter()
        .find(|(file, _)| file == "rawstr.rs")
        .map(|(_, s)| s)
        .expect("the load after the byte string must be scanned as a site");
    assert_eq!(site.method, "load");
    assert_eq!(site.function, "tagged");
    assert_eq!(site.orderings, ["Acquire"]);
    // ...and the fixture is otherwise clean.
    assert_eq!(findings_in("rawstr.rs"), pairs(&[]));
}
