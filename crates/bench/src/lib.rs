//! Shared infrastructure for the experiment harness: summary statistics,
//! plain-text table rendering, a tiny CLI-flag parser, and synthetic
//! scheduler contexts for the cost ablations.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation; see `DESIGN.md` §5 for the experiment index and
//! `EXPERIMENTS.md` for recorded outputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stats;
pub mod synth;
pub mod table;
pub mod workloads;

use std::collections::HashMap;

/// A minimal `--key value` flag parser for the experiment binaries.
///
/// Flags may appear after a literal `--` separator (as cargo passes them).
///
/// # Examples
///
/// ```
/// use lfrt_bench::Args;
///
/// let args = Args::parse(["--load", "1.1", "--tufs", "hetero"].iter().map(|s| s.to_string()));
/// assert_eq!(args.get_f64("load", 0.4), 1.1);
/// assert_eq!(args.get_str("tufs", "step"), "hetero");
/// assert_eq!(args.get_u64("seed", 1), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses flags from an iterator of raw arguments.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Self {
        let mut values = HashMap::new();
        let mut iter = raw.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if arg == "--" {
                continue;
            }
            if let Some(key) = arg.strip_prefix("--") {
                if let Some(value) = iter.peek() {
                    if !value.starts_with("--") {
                        values.insert(key.to_string(), iter.next().expect("peeked"));
                        continue;
                    }
                }
                values.insert(key.to_string(), String::from("true"));
            }
        }
        Self { values }
    }

    /// Parses the process's own command line.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// String flag with a default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values.get(key).cloned().unwrap_or_else(|| default.to_string())
    }

    /// Float flag with a default.
    ///
    /// # Panics
    ///
    /// Panics if the flag is present but not a valid float.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.values
            .get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{key} expects a number, got {v}")))
            .unwrap_or(default)
    }

    /// Integer flag with a default.
    ///
    /// # Panics
    ///
    /// Panics if the flag is present but not a valid integer.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{key} expects an integer, got {v}")))
            .unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_flags() {
        let args = Args::parse(
            ["--", "--load", "0.9", "--verbose", "--seed", "7"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(args.get_f64("load", 0.0), 0.9);
        assert_eq!(args.get_u64("seed", 0), 7);
        assert_eq!(args.get_str("verbose", "false"), "true");
        assert_eq!(args.get_str("missing", "x"), "x");
    }
}
