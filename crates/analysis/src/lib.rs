//! The analytical results of *Lock-Free Synchronization for Dynamic
//! Embedded Real-Time Systems* (Cho, Ravindran, Jensen — DATE 2006),
//! implemented as checkable formulas:
//!
//! * [`RetryBoundInput`] — **Theorem 2**: the first upper bound on lock-free
//!   retries under the unimodal arbitrary arrival model,
//!   `f_i ≤ 3a_i + Σ_{j≠i} 2a_j(⌈C_i/W_j⌉ + 1)`;
//! * [`SojournComparison`] — **Theorem 3**: the conditions on the access
//!   time ratio `s/r` under which a job's worst-case sojourn time is shorter
//!   with lock-free sharing than with lock-based;
//! * [`aur_bounds`] — **Lemmas 4 and 5**: lower and upper bounds on the
//!   accrued utility ratio of lock-free and lock-based RUA under UAM;
//! * [`admission`] — a sufficient schedulability (admission) test assembled
//!   from the bounds above: whatever it admits meets all critical times.
//!
//! Everything here is pure arithmetic over task parameters; the simulation
//! crates cross-validate these formulas against measured behaviour (see the
//! workspace `tests/` and the `lfrt-bench` binaries).
//!
//! # Examples
//!
//! ```
//! use lfrt_analysis::RetryBoundInput;
//! use lfrt_uam::Uam;
//!
//! # fn main() -> Result<(), lfrt_uam::UamError> {
//! let bound = RetryBoundInput {
//!     own_max_arrivals: 1,
//!     critical_time: 1_000,
//!     others: vec![Uam::new(1, 2, 500)?],
//! }
//! .retry_bound();
//! // 3·1 + 2·2·(⌈1000/500⌉ + 1) = 3 + 12 = 15.
//! assert_eq!(bound, 15);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
mod aur;
pub mod compare;
mod retry_bound;
mod sojourn;

pub use aur::{aur_bounds, AurBounds, AurTaskParams};
pub use retry_bound::RetryBoundInput;
pub use sojourn::SojournComparison;
