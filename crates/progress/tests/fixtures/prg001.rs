//! PRG001 fixtures: CAS retry loops with and without bounded backoff.

pub struct Prg001Broken {
    head: AtomicUsize,
}

impl Prg001Broken {
    pub fn update(&self) -> usize {
        loop {
            let cur = self.head.load(Acquire);
            match self.head.compare_exchange(cur, cur + 1, AcqRel, Acquire) {
                Ok(v) => return v,
                Err(_) => continue,
            }
        }
    }
}

pub struct Prg001Clean {
    head: AtomicUsize,
}

impl Prg001Clean {
    pub fn update(&self) -> usize {
        let backoff = Backoff::new();
        loop {
            let cur = self.head.load(Acquire);
            match self.head.compare_exchange(cur, cur + 1, AcqRel, Acquire) {
                Ok(v) => return v,
                Err(_) => backoff.spin(),
            }
        }
    }
}
