//! The Mars Pathfinder priority inversion, four ways.
//!
//! The 1997 Pathfinder lander kept resetting on Mars: a low-priority
//! meteorological task held the information-bus mutex, a high-priority bus
//! management task blocked on it, and a medium-priority communications task
//! preempted the holder for so long that the watchdog declared the bus
//! manager dead. The fix was enabling priority inheritance on the mutex.
//!
//! This example reconstructs that scenario on the simulator and runs it
//! under four disciplines:
//!
//! 1. **EDF + locks** — unbounded inversion, the bus manager misses;
//! 2. **EDF + priority inheritance** — the holder inherits, inversion
//!    bounded to one critical section, the bus manager meets;
//! 3. **lock-based RUA** — dependency chains achieve inheritance natively;
//! 4. **lock-free sharing** — no locks, no inversion, no story.
//!
//! Run with: `cargo run --release --example mars_pathfinder`

use lockfree_rt::core::{Edf, EdfPi, RuaLockBased, RuaLockFree};
use lockfree_rt::sim::{
    AccessKind, Engine, ObjectId, Segment, SharingMode, SimConfig, SimOutcome, TaskSpec,
    UaScheduler,
};
use lockfree_rt::tuf::Tuf;
use lockfree_rt::uam::{ArrivalTrace, Uam};

const BUS: usize = 0;

/// Bus transactions as explicit critical sections (lock-based runs) or as a
/// single lock-free access of the same length (lock-free runs).
fn bus_transaction(hold: u64, lock_based: bool) -> Vec<Segment> {
    if lock_based {
        vec![
            Segment::Acquire {
                object: ObjectId::new(BUS),
            },
            Segment::Compute(hold),
            Segment::Release {
                object: ObjectId::new(BUS),
            },
        ]
    } else {
        vec![Segment::Access {
            object: ObjectId::new(BUS),
            kind: AccessKind::Write,
        }]
    }
}

fn scenario(
    lock_based: bool,
) -> Result<(Vec<TaskSpec>, Vec<ArrivalTrace>), Box<dyn std::error::Error>> {
    // Meteorological task: low urgency, long 3 ms bus transaction.
    let meteo = TaskSpec::builder("meteo")
        .tuf(Tuf::step(1.0, 80_000)?)
        .uam(Uam::periodic(100_000))
        .segments(bus_transaction(3_000, lock_based))
        .build()?;
    // Bus management: the watchdog-protected task — 5 ms deadline, needs
    // the bus briefly.
    let bus_mgmt = TaskSpec::builder("bus-mgmt")
        .tuf(Tuf::step(100.0, 5_000)?)
        .uam(Uam::periodic(100_000))
        .segments(bus_transaction(200, lock_based))
        .build()?;
    // Communications: medium urgency, long-running, touches no locks —
    // pure preemption pressure.
    let comms = TaskSpec::builder("comms")
        .tuf(Tuf::step(10.0, 40_000)?)
        .uam(Uam::periodic(100_000))
        .segments(vec![Segment::Compute(30_000)])
        .build()?;
    Ok((
        vec![meteo, bus_mgmt, comms],
        vec![
            ArrivalTrace::new(vec![0]),     // meteo grabs the bus first
            ArrivalTrace::new(vec![1_000]), // bus mgmt arrives mid-hold
            ArrivalTrace::new(vec![1_100]), // comms piles on
        ],
    ))
}

fn run<S: UaScheduler>(
    sharing: SharingMode,
    scheduler: S,
) -> Result<SimOutcome, Box<dyn std::error::Error>> {
    let (tasks, traces) = scenario(sharing.uses_locks())?;
    Ok(Engine::new(tasks, traces, SimConfig::new(sharing))?.run(scheduler))
}

fn report(label: &str, outcome: &SimOutcome) {
    let bus = outcome
        .records
        .iter()
        .find(|r| r.task.index() == 1)
        .expect("bus mgmt ran");
    println!(
        "{label:<22} bus-mgmt {}  (resolved t={} µs, watchdog at 6000)",
        if bus.completed {
            "MET its deadline ✓"
        } else {
            "WATCHDOG RESET ✗"
        },
        bus.resolved_at
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Mars Pathfinder, reconstructed (1 tick = 1 µs):\n");
    let lock = SharingMode::LockBased { access_ticks: 1 };

    let inversion = run(lock, Edf::new())?;
    report("EDF + locks:", &inversion);

    let inherited = run(lock, EdfPi::new())?;
    report("EDF + inheritance:", &inherited);

    let rua = run(lock, RuaLockBased::new())?;
    report("lock-based RUA:", &rua);

    // Lock-free: the bus transactions become retryable accesses of the
    // same length — no lock, no inversion.
    let lock_free = run(
        SharingMode::LockFree { access_ticks: 200 },
        RuaLockFree::new(),
    )?;
    report("lock-free RUA:", &lock_free);

    // The punchline, asserted.
    let failed = |o: &SimOutcome| {
        !o.records
            .iter()
            .find(|r| r.task.index() == 1)
            .expect("ran")
            .completed
    };
    assert!(failed(&inversion), "plain EDF must exhibit the inversion");
    assert!(!failed(&inherited), "inheritance must fix it");
    assert!(!failed(&rua), "RUA's dependency chains must fix it");
    assert!(!failed(&lock_free), "lock-free sharing dissolves it");
    println!("\nthe famous failure reproduces only under plain EDF with locks.");
    Ok(())
}
