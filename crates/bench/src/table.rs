//! Plain-text table rendering for experiment outputs.

/// Renders an aligned plain-text table to a `String`.
///
/// # Examples
///
/// ```
/// use lfrt_bench::table::render;
///
/// let out = render(
///     &["n", "aur"],
///     &[vec!["1".into(), "0.99".into()], vec!["10".into(), "0.52".into()]],
/// );
/// assert!(out.contains("aur"));
/// assert!(out.lines().count() >= 4);
/// ```
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:>w$} ", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("|")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Prints a titled table to stdout.
pub fn print(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    print!("{}", render(header, rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let out = render(
            &["x", "value"],
            &[
                vec!["1".into(), "short".into()],
                vec!["1000".into(), "a-much-longer-cell".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines share the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn handles_ragged_rows() {
        let out = render(&["a", "b"], &[vec!["1".into()]]);
        assert!(out.contains('1'));
    }
}
