//! **Contended sweep for the contention-adaptation layer** — where the
//! elimination-backoff stack and the sharded MPMC queue are supposed to
//! earn their keep.
//!
//! For each thread count in the sweep, every structure pair (`stack` vs
//! `stack_elim`, `mpmc` vs `mpmc_sharded`) runs the same workload: all
//! threads hammer push/pop (enqueue/dequeue) pairs on one shared instance
//! behind a start barrier. Alongside ns/op, the run reports the adaptation
//! telemetry: elimination hits/misses from the `EliminationArray` counters
//! and shard steals from the flight recorder's `shard_steal` events (the
//! recorder is always on in this binary — per-phase drains attribute the
//! counts to their thread count, and `--trace <path>` additionally writes
//! the merged histogram report from the same events).
//!
//! Numbers from this binary are **not** gated by `compare_reports`:
//! contended throughput on a shared CI runner is noise, and on a 1-CPU box
//! elimination pairs rarely overlap inside the bounded exchange window
//! (the partner must probe the slot while the offer is parked mid-spin),
//! so hit counts there are best-effort context, not a contract — see
//! EXPERIMENTS.md for numbers from a real multi-core run. What IS gated is
//! the uncontended cost of the same structures (`uncontended_ops
//! --assert-contention-layer`).
//!
//! Usage: `cargo run -p lfrt-bench --release --bin contended_ops --
//! [--threads 4] [--ops 100000] [--quick] [--json <path>] [--trace <path>]`

use std::sync::{Arc, Barrier};
use std::time::Instant;

use lfrt_bench::json::{self, Point, Report};
use lfrt_bench::{trace, Args};
use lfrt_lockfree::{BoundedMpmcQueue, ShardedMpmcQueue, TreiberStack};
use lfrt_trace::{DrainStats, Event, EventKind, TraceSnapshot};

/// Per-shard capacity for the queue pair: large enough that full-queue
/// backpressure does not dominate, small enough to live in cache.
const QUEUE_CAPACITY: usize = 1024;

/// One contended phase, returning wall-clock ns per completed op.
///
/// With one thread the workload is `ops` push/pop pairs (the uncontended
/// floor of the table). With more, the threads split into producers and
/// consumers — each producer pushes `ops` elements (yielding on
/// backpressure), each consumer keeps popping until it has taken `ops`
/// (yielding on empty). The split is what gives the adaptation layers
/// something to adapt to: colliding opposite operations can eliminate, and
/// a consumer whose home shard runs dry has to steal.
fn run_phase<S: Send + Sync + 'static>(
    threads: usize,
    ops: usize,
    shared: Arc<S>,
    push: impl Fn(&S, u64) -> bool + Send + Sync + Copy + 'static,
    pop: impl Fn(&S) -> bool + Send + Sync + Copy + 'static,
) -> f64 {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let workers: Vec<_> = (0..threads)
        .map(|w| {
            let shared = Arc::clone(&shared);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                if threads == 1 {
                    for i in 0..ops {
                        while !push(&shared, i as u64) {
                            std::thread::yield_now();
                        }
                        while !pop(&shared) {
                            std::thread::yield_now();
                        }
                    }
                } else if w % 2 == 0 {
                    for i in 0..ops {
                        while !push(&shared, (w * ops + i) as u64) {
                            std::thread::yield_now();
                        }
                    }
                } else {
                    let mut taken = 0;
                    while taken < ops {
                        if pop(&shared) {
                            taken += 1;
                        } else {
                            std::thread::yield_now();
                        }
                    }
                }
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for worker in workers {
        worker.join().expect("worker panicked");
    }
    let nanos = start.elapsed().as_nanos() as f64;
    let total_ops = if threads == 1 { 2 * ops } else { threads * ops };
    nanos / (total_ops as f64)
}

/// Drains the recorder and counts events of `kind`, appending the raw
/// events so the end-of-run `--trace` report still sees everything.
fn drain_count(kind: EventKind, all: &mut Vec<Event>, stats: &mut DrainStats) -> u64 {
    let (events, s) = lfrt_trace::drain();
    stats.rings = stats.rings.max(s.rings);
    stats.overwritten += s.overwritten;
    stats.discarded += s.discarded;
    let count = events.iter().filter(|e| e.kind == kind).count() as u64;
    all.extend(events);
    count
}

fn main() {
    let args = Args::from_env();
    let quick = args.quick();
    let started = Instant::now();

    // Rounded up to even: the producer/consumer split must balance, or a
    // bounded queue phase could leave producers parked on a full ring no
    // consumer will ever drain.
    let max_threads = (args.threads().max(2) + 1) & !1;
    let ops = args.get_usize("ops", if quick { 20_000 } else { 100_000 });

    // Sweep powers of two up to the requested thread count (always
    // including it), so the table shows the layer switching on.
    let mut sweep: Vec<usize> = vec![1, 2, 4, 8]
        .into_iter()
        .filter(|&t| t < max_threads)
        .collect();
    sweep.push(max_threads);

    // The recorder is on for the whole run: phase drains below attribute
    // elimination and steal events to their thread count.
    lfrt_trace::set_enabled(true);
    let mut all_events: Vec<Event> = Vec::new();
    let mut drain_stats = DrainStats::default();

    println!("# Contended sweep ({ops} pairs/thread): plain vs contention-adaptive");
    println!(
        "{:<14} {:>7} {:>10} {:>12} {:>12} {:>10}",
        "structure", "threads", "ns/op", "elim_hits", "elim_misses", "steals"
    );

    let mut report = Report::new(
        "contended_ops",
        "table:contended",
        "Contended ns/op sweep with elimination/steal telemetry (not gated)",
    )
    .config("ops_per_thread", ops);

    for &threads in &sweep {
        // Fresh structures per phase: counters and rings start at zero.
        let stack_push = |s: &TreiberStack<u64>, i: u64| {
            s.push(i);
            true
        };
        let stack_pop = |s: &TreiberStack<u64>| s.pop().is_some();

        let stack = Arc::new(TreiberStack::new());
        let stack_ns = run_phase(threads, ops, stack, stack_push, stack_pop);
        let _ = drain_count(EventKind::ElimHit, &mut all_events, &mut drain_stats);

        let elim = Arc::new(TreiberStack::with_elimination());
        let elim_ns = run_phase(threads, ops, Arc::clone(&elim), stack_push, stack_pop);
        let array = elim.elimination().expect("constructed with elimination");
        let (hits, misses) = (array.hits(), array.misses());
        let _ = drain_count(EventKind::ElimHit, &mut all_events, &mut drain_stats);

        let queue_push = |q: &BoundedMpmcQueue<u64>, i: u64| q.push(i).is_ok();
        let queue_pop = |q: &BoundedMpmcQueue<u64>| q.pop().is_some();

        let mpmc = Arc::new(BoundedMpmcQueue::new(QUEUE_CAPACITY));
        let mpmc_ns = run_phase(threads, ops, mpmc, queue_push, queue_pop);
        let _ = drain_count(EventKind::ShardSteal, &mut all_events, &mut drain_stats);

        // Each shard gets the plain queue's capacity, so backpressure per
        // home shard matches the unsharded baseline.
        let sharded = Arc::new(ShardedMpmcQueue::new(
            lfrt_lockfree::sharded::DEFAULT_SHARDS,
            QUEUE_CAPACITY,
        ));
        let sharded_ns = run_phase(
            threads,
            ops,
            sharded,
            |q: &ShardedMpmcQueue<u64>, i: u64| q.push(i).is_ok(),
            |q: &ShardedMpmcQueue<u64>| q.pop().is_some(),
        );
        let steals = drain_count(EventKind::ShardSteal, &mut all_events, &mut drain_stats);

        for (name, ns, h, m, st) in [
            ("stack", stack_ns, 0, 0, 0),
            ("stack_elim", elim_ns, hits, misses, 0),
            ("mpmc", mpmc_ns, 0, 0, 0),
            ("mpmc_sharded", sharded_ns, 0, 0, steals),
        ] {
            println!("{name:<14} {threads:>7} {ns:>10.1} {h:>12} {m:>12} {st:>10}");
            report.points.push(Point {
                params: vec![
                    ("structure".into(), name.into()),
                    ("threads".into(), threads.to_string().into()),
                ],
                timing: vec![
                    ("ns_per_op".into(), ns.into()),
                    ("elim_hits".into(), h.into()),
                    ("elim_misses".into(), m.into()),
                    ("shard_steals".into(), st.into()),
                ],
                ..Default::default()
            });
        }
    }

    lfrt_trace::set_enabled(false);

    if let Some(path) = args.json_path() {
        let meta = json::RunMeta::capture(max_threads, quick);
        json::write_reports(&path, &[report], meta, started).expect("write json report");
    } else {
        let _ = report.to_json();
    }

    // `--trace`: the merged histogram report over every phase's events,
    // equivalent to what `trace::Session` would have drained at exit.
    if let Some(path) = args.trace_path() {
        let snap = TraceSnapshot::from_events(&all_events, drain_stats);
        let trace_report = trace::report_from_snapshot("contended_ops", &snap);
        let meta = json::RunMeta::capture(max_threads, quick);
        json::write_reports(&path, &[trace_report], meta, started).expect("write trace report");
    }
}
