//! The paper's §3.4.1 worked examples, reproduced literally.
//!
//! Figure 5: three jobs where T1 holds the resource both T2 and T3 need, so
//! the chains are ⟨T1⟩, ⟨T1, T2⟩, ⟨T1, T3⟩. Examined in PUD order
//! (T2, T1, T3) with C3 < C1 < C2, the construction must first produce
//! ⟨T1, T2⟩, skip T1 (already inserted as T2's dependent), and then — the
//! Figure 5 subtlety — *remove and reinsert* T1 in front of T3 with its
//! effective critical time advanced, ending at ⟨T1, T3, T2⟩.

use lfrt_core::RuaLockBased;
use lfrt_sim::{JobId, JobView, ObjectId, SchedulerContext, TaskId, UaScheduler};
use lfrt_tuf::Tuf;

struct Fixture {
    tufs: Vec<Tuf>,
}

impl Fixture {
    fn new(utilities: &[f64]) -> Self {
        Self {
            tufs: utilities
                .iter()
                .map(|&u| Tuf::step(u, 1_000_000).expect("valid tuf"))
                .collect(),
        }
    }

    fn view(
        &self,
        id: usize,
        critical: u64,
        remaining: u64,
        blocked_on: Option<usize>,
        holds: Option<usize>,
    ) -> JobView<'_> {
        JobView {
            id: JobId::new(id),
            task: TaskId::new(id),
            arrival: 0,
            absolute_critical_time: critical,
            window: 1_000_000,
            tuf: &self.tufs[id],
            remaining,
            blocked_on: blocked_on.map(ObjectId::new),
            holds: holds.map(ObjectId::new).into_iter().collect(),
        }
    }
}

#[test]
fn figure5_removal_and_reinsertion() {
    // Utilities chosen so the PUD order is T2 > T1 > T3:
    //   PUD(T1) = 10/50 = 0.20
    //   PUD(T2) = (10 + 40)/100 = 0.50
    //   PUD(T3) = (10 + 5)/100 = 0.15
    // (job ids 1, 2, 3; id 0 is unused so names match the paper).
    let fixture = Fixture::new(&[0.0, 10.0, 40.0, 5.0]);
    let ctx = SchedulerContext {
        now: 0,
        jobs: vec![
            fixture.view(1, 400, 50, None, Some(0)), // T1 holds R
            fixture.view(2, 500, 50, Some(0), None), // T2 waits on R
            fixture.view(3, 300, 50, Some(0), None), // T3 waits on R
        ],
    };
    let decision = RuaLockBased::new().schedule(&ctx);
    assert_eq!(
        decision.order,
        vec![JobId::new(1), JobId::new(3), JobId::new(2)],
        "the paper's Figure 5 outcome ⟨T1, T3, T2⟩"
    );
}

#[test]
fn figure4_case2_dependent_with_later_critical_time_moves_forward() {
    // Figure 4's Case 2: T1's chain is ⟨T2, T1⟩ with C2 > C1. T2 must be
    // inserted before T1 anyway, with C2 advanced to C1 — so the output
    // order is ⟨T2, T1⟩ even though plain ECF would say ⟨T1, T2⟩.
    let fixture = Fixture::new(&[0.0, 40.0, 10.0]);
    let ctx = SchedulerContext {
        now: 0,
        jobs: vec![
            fixture.view(1, 300, 50, Some(0), None), // T1 urgent, blocked on R
            fixture.view(2, 900, 50, None, Some(0)), // T2 lazy, holds R
        ],
    };
    let decision = RuaLockBased::new().schedule(&ctx);
    assert_eq!(
        decision.order,
        vec![JobId::new(2), JobId::new(1)],
        "the dependency order overrides ECF (Figure 4 Case 2)"
    );
}

#[test]
fn infeasible_insertion_is_rejected_keeping_the_previous_schedule() {
    // A high-PUD job whose own critical time cannot be met must be rejected,
    // leaving the earlier (feasible) insertions untouched — §3.4's
    // "tentative schedule is discarded".
    let fixture = Fixture::new(&[0.0, 5.0, 100.0]);
    let ctx = SchedulerContext {
        now: 0,
        jobs: vec![
            fixture.view(1, 10_000, 50, None, None),
            // Enormous utility (so it is examined first) but impossible:
            // 900 ticks of work before t = 100.
            fixture.view(2, 100, 900, None, None),
        ],
    };
    let decision = RuaLockBased::new().schedule(&ctx);
    assert_eq!(
        decision.order,
        vec![JobId::new(1)],
        "the impossible job is rejected"
    );
}
