//! Parallel sweep execution with deterministic result order.
//!
//! Every experiment is a *sweep*: an ordered list of independent points
//! (seed × load × object-count × …) whose evaluations share nothing but
//! read-only configuration. [`Sweep`] fans those points out over a pool of
//! `std::thread` workers and hands the results back **in input order**, so
//! callers observe exactly the sequence a serial `for` loop would have
//! produced — tables, JSON documents, and digests are identical for
//! `--threads 1` and `--threads 8`.
//!
//! Scheduling is a single shared [`AtomicUsize`] work index: each worker
//! claims the next unstarted point, evaluates it, and sends `(index,
//! result)` down an [`mpsc`] channel. The receiver slots results by index,
//! which is what makes the merge order-stable regardless of which worker
//! finished first.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// An ordered set of independent experiment points to evaluate.
///
/// # Examples
///
/// ```
/// use lfrt_bench::runner::Sweep;
///
/// let squares = Sweep::new("squares", (0u64..8).collect::<Vec<_>>())
///     .threads(4)
///     .run(|&n| n * n);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
#[derive(Debug)]
pub struct Sweep<P> {
    label: String,
    points: Vec<P>,
    threads: usize,
}

impl<P: Sync> Sweep<P> {
    /// A sweep over `points`, labelled for progress output.
    pub fn new(label: impl Into<String>, points: Vec<P>) -> Self {
        Self {
            label: label.into(),
            points,
            threads: 1,
        }
    }

    /// Sets the worker-pool size (clamped to at least 1; capped at the
    /// point count since extra workers would only idle).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Number of points in the sweep.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sweep has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Evaluates `eval` on every point and returns the results in the order
    /// the points were given, regardless of worker interleaving.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any `eval` invocation (the whole run aborts —
    /// an experiment with a failed point must not emit partial results).
    pub fn run<R, F>(self, eval: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&P) -> R + Sync,
    {
        let n = self.points.len();
        let workers = self.threads.min(n.max(1));
        eprintln!("[{}] {} point(s) on {} thread(s)", self.label, n, workers);
        if n == 0 {
            return Vec::new();
        }
        if workers == 1 {
            // Serial fast path: same order by construction, no pool setup.
            return self.points.iter().map(&eval).collect();
        }

        let next = &AtomicUsize::new(0);
        let points = &self.points;
        let eval = &eval;
        let (tx, rx) = mpsc::channel::<(usize, R)>();

        let mut slots: Vec<Option<R>> = std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || {
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        let Some(point) = points.get(index) else {
                            break;
                        };
                        // A send only fails if the receiver hung up, which
                        // cannot happen while this scope holds it alive.
                        tx.send((index, eval(point))).expect("receiver alive");
                    }
                });
            }
            drop(tx); // workers hold the remaining clones

            let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
            for (index, result) in rx {
                debug_assert!(slots[index].is_none(), "point {index} evaluated twice");
                slots[index] = Some(result);
            }
            slots
        });

        (0..n)
            .map(|i| slots[i].take().expect("every point evaluated exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_input_order_across_thread_counts() {
        let points: Vec<u64> = (0..57).collect();
        let serial = Sweep::new("t", points.clone())
            .threads(1)
            .run(|&p| p * 3 + 1);
        for workers in [2, 4, 8] {
            let parallel = Sweep::new("t", points.clone()).threads(workers).run(|&p| {
                // Perturb finish order so late indices can finish early.
                if p % 5 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                p * 3 + 1
            });
            assert_eq!(parallel, serial, "threads={workers}");
        }
    }

    #[test]
    fn evaluates_every_point_exactly_once() {
        let hits = AtomicU64::new(0);
        let results = Sweep::new("t", (0..100u64).collect::<Vec<_>>())
            .threads(7)
            .run(|&p| {
                hits.fetch_add(1, Ordering::Relaxed);
                p
            });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(results.len(), 100);
    }

    #[test]
    fn handles_empty_and_single_point_sweeps() {
        let empty: Vec<u32> = Sweep::new("t", Vec::<u32>::new()).threads(8).run(|&p| p);
        assert!(empty.is_empty());
        let one = Sweep::new("t", vec![41u32]).threads(8).run(|&p| p + 1);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let results = Sweep::new("t", vec![1u32, 2]).threads(0).run(|&p| p);
        assert_eq!(results, vec![1, 2]);
    }
}
