//! `lfrt-trace`: a lock-free flight recorder for the workspace's hot paths.
//!
//! The paper's case for lock-free sharing rests on *distributions* — how
//! often a CAS loop retries, how long an operation takes under interference,
//! when the epoch reclaimer advances — yet the aggregate `OpStats` counters
//! only report totals after the fact. This crate records individual events
//! as they happen, cheaply enough to leave compiled in everywhere:
//!
//! * **Always compiled, runtime-toggleable.** Every instrumentation site
//!   costs one `Relaxed` load and a predictable branch while the recorder is
//!   disabled (the default). [`set_enabled`] flips it on at runtime.
//! * **Hot path is wait-free and allocation-free.** Each thread owns a
//!   cache-padded fixed-capacity ring of 16-byte events ([`ring`]): a slot
//!   is written with `Relaxed` stores and published by a `Release` store of
//!   the ring head (single writer, overwrite-oldest). Registration — the
//!   only allocation — happens once per thread, on its first *enabled*
//!   event.
//! * **Cold path drains without stopping writers.** [`drain`] snapshots
//!   every ring seqlock-style (read head, copy, re-read head, discard the
//!   overwrite window) and [`snapshot`] folds events into per-event-type
//!   log-bucketed histograms ([`hist`]).
//!
//! The event vocabulary is deliberately small ([`EventKind`]): CAS
//! attempt/retry/success from the lock-free structures, backoff spin/yield,
//! epoch pin/advance/collect/defer from the reclaimer, scheduler
//! admit/preempt/abort, node-pool hit/miss/spill/refill from the
//! epoch-recycling pools, elimination hit/miss from the stack's exchanger,
//! and shard-steal from the sharded MPMC wrapper. [`CasOp`] packages the
//! per-operation protocol
//! (timestamp at start, retry events, a success event carrying
//! `retries | latency`) so call sites stay two lines long.
//!
//! This crate sits *below* everything else in the workspace — the vendored
//! `crossbeam` emits into it — so it depends on nothing and implements its
//! own cache padding.
//!
//! # Examples
//!
//! ```
//! use lfrt_trace as trace;
//!
//! let _guard = trace::tests_serialize(); // recorder state is process-global
//! trace::set_enabled(true);
//! let mut op = trace::CasOp::start(trace::Site::StackPush);
//! op.attempt();
//! op.retry(); // lost a CAS race, going around again
//! op.attempt();
//! op.success();
//! trace::set_enabled(false);
//!
//! let snap = trace::snapshot();
//! let cas = snap.kind(trace::EventKind::CasSuccess).unwrap();
//! assert_eq!(cas.count, 1);
//! assert_eq!(snap.kind(trace::EventKind::CasRetry).unwrap().count, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod ring;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

pub use hist::Histogram;
pub use ring::{DrainStats, Event, RING_CAPACITY};

/// What happened. Packed into the top byte of an event's data word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// One pass of a lock-free retry loop began (value: pass index).
    CasAttempt = 0,
    /// A pass lost its race and will go around (value: retry count so far).
    CasRetry = 1,
    /// The operation completed (value: [`pack_op`] of retries and latency).
    CasSuccess = 2,
    /// `Backoff::spin` busy-waited (value: number of pause hints).
    BackoffSpin = 3,
    /// `Backoff::snooze` escalated to `yield_now` (value: backoff step).
    BackoffYield = 4,
    /// A thread pinned the epoch at the outermost level (value: epoch).
    EpochPin = 5,
    /// The global epoch advanced (value: new epoch).
    EpochAdvance = 6,
    /// A collection pass freed expired garbage (value: objects destroyed).
    EpochCollect = 7,
    /// An object was deferred into the current bag (value: bag length).
    EpochDefer = 8,
    /// The scheduler admitted a job/chain as feasible (value: chain length).
    SchedAdmit = 9,
    /// The running job was preempted (value: job index).
    SchedPreempt = 10,
    /// A job/chain was rejected or aborted (value: chain length).
    SchedAbort = 11,
    /// A node pool served an acquire from the thread cache (value: pool id).
    PoolHit = 12,
    /// A pool acquire fell through to the global allocator (value: pool id).
    PoolMiss = 13,
    /// A full thread cache spilled a chunk to the shared overflow
    /// (value: blocks spilled).
    PoolSpill = 14,
    /// A thread cache refilled from the shared overflow (value: blocks
    /// taken).
    PoolRefill = 15,
    /// A colliding push/pop pair exchanged through the elimination array
    /// without touching the stack head (value: live exchanger width).
    ElimHit = 16,
    /// An elimination attempt found no partner — occupied slot, timeout,
    /// or empty scan (value: live exchanger width).
    ElimMiss = 17,
    /// A sharded-queue pop drained a non-home shard (value: shard index).
    ShardSteal = 18,
}

impl EventKind {
    /// Every kind, in discriminant order.
    pub const ALL: [EventKind; 19] = [
        EventKind::CasAttempt,
        EventKind::CasRetry,
        EventKind::CasSuccess,
        EventKind::BackoffSpin,
        EventKind::BackoffYield,
        EventKind::EpochPin,
        EventKind::EpochAdvance,
        EventKind::EpochCollect,
        EventKind::EpochDefer,
        EventKind::SchedAdmit,
        EventKind::SchedPreempt,
        EventKind::SchedAbort,
        EventKind::PoolHit,
        EventKind::PoolMiss,
        EventKind::PoolSpill,
        EventKind::PoolRefill,
        EventKind::ElimHit,
        EventKind::ElimMiss,
        EventKind::ShardSteal,
    ];

    /// Decodes a discriminant; `None` for out-of-range bytes.
    pub fn from_u8(raw: u8) -> Option<EventKind> {
        EventKind::ALL.get(raw as usize).copied()
    }

    /// Stable lower-case name, used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::CasAttempt => "cas_attempt",
            EventKind::CasRetry => "cas_retry",
            EventKind::CasSuccess => "cas_success",
            EventKind::BackoffSpin => "backoff_spin",
            EventKind::BackoffYield => "backoff_yield",
            EventKind::EpochPin => "epoch_pin",
            EventKind::EpochAdvance => "epoch_advance",
            EventKind::EpochCollect => "epoch_collect",
            EventKind::EpochDefer => "epoch_defer",
            EventKind::SchedAdmit => "sched_admit",
            EventKind::SchedPreempt => "sched_preempt",
            EventKind::SchedAbort => "sched_abort",
            EventKind::PoolHit => "pool_hit",
            EventKind::PoolMiss => "pool_miss",
            EventKind::PoolSpill => "pool_spill",
            EventKind::PoolRefill => "pool_refill",
            EventKind::ElimHit => "elim_hit",
            EventKind::ElimMiss => "elim_miss",
            EventKind::ShardSteal => "shard_steal",
        }
    }
}

/// Where it happened. Packed into the second byte of an event's data word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Site {
    /// Treiber stack push loop.
    StackPush = 0,
    /// Treiber stack pop loop.
    StackPop = 1,
    /// Michael–Scott queue enqueue loop.
    QueueEnqueue = 2,
    /// Michael–Scott queue dequeue loop.
    QueueDequeue = 3,
    /// Harris-style list insert loop.
    ListInsert = 4,
    /// Harris-style list remove loop.
    ListRemove = 5,
    /// Vyukov bounded MPMC push loop.
    MpmcPush = 6,
    /// Vyukov bounded MPMC pop loop.
    MpmcPop = 7,
    /// Wait-free SPSC ring push.
    RingPush = 8,
    /// Wait-free SPSC ring pop.
    RingPop = 9,
    /// The vendored epoch reclaimer (pin/advance/collect/defer).
    Epoch = 10,
    /// Scheduler decisions (admit/preempt/abort).
    Sched = 11,
    /// Backoff and anything without a more specific site.
    Other = 12,
    /// The epoch-recycling node pools (hit/miss/spill/refill).
    Pool = 13,
    /// The Treiber stack's elimination exchanger (hit/miss).
    StackElim = 14,
    /// The sharded MPMC wrapper (steal events; the per-shard CAS loops
    /// report under [`Site::MpmcPush`]/[`Site::MpmcPop`]).
    Sharded = 15,
}

impl Site {
    /// Every site, in discriminant order.
    pub const ALL: [Site; 16] = [
        Site::StackPush,
        Site::StackPop,
        Site::QueueEnqueue,
        Site::QueueDequeue,
        Site::ListInsert,
        Site::ListRemove,
        Site::MpmcPush,
        Site::MpmcPop,
        Site::RingPush,
        Site::RingPop,
        Site::Epoch,
        Site::Sched,
        Site::Other,
        Site::Pool,
        Site::StackElim,
        Site::Sharded,
    ];

    /// Decodes a discriminant; `None` for out-of-range bytes.
    pub fn from_u8(raw: u8) -> Option<Site> {
        Site::ALL.get(raw as usize).copied()
    }

    /// Stable lower-case name, used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Site::StackPush => "stack_push",
            Site::StackPop => "stack_pop",
            Site::QueueEnqueue => "queue_enqueue",
            Site::QueueDequeue => "queue_dequeue",
            Site::ListInsert => "list_insert",
            Site::ListRemove => "list_remove",
            Site::MpmcPush => "mpmc_push",
            Site::MpmcPop => "mpmc_pop",
            Site::RingPush => "ring_push",
            Site::RingPop => "ring_pop",
            Site::Epoch => "epoch",
            Site::Sched => "sched",
            Site::Other => "other",
            Site::Pool => "pool",
            Site::StackElim => "stack_elim",
            Site::Sharded => "sharded",
        }
    }
}

/// Event values are truncated to this many bits (48) so kind and site fit
/// in the same word.
pub const VALUE_BITS: u32 = 48;
const VALUE_MASK: u64 = (1 << VALUE_BITS) - 1;

/// Master switch. `false` at startup; every instrumentation site loads it
/// `Relaxed` and bails before touching anything else.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns the recorder on or off, process-wide.
///
/// Toggling is `Relaxed`: sites racing with the flip may record (or skip) a
/// few boundary events, which a lossy flight recorder tolerates by design.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the recorder is currently on. This is the entire disabled-mode
/// hot path: one `Relaxed` load and a branch.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Monotonic nanoseconds since the recorder's first use in this process.
///
/// All event timestamps share this origin, so events from different threads
/// order correctly when merged.
#[inline]
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

/// Records one event on the calling thread's ring. No-op while disabled.
///
/// `value` is truncated to [`VALUE_BITS`]. Never blocks, never allocates
/// (after the thread's one-time ring registration), never fails: if the
/// thread is mid-teardown the event is silently dropped.
#[inline]
pub fn emit(kind: EventKind, site: Site, value: u64) {
    if !enabled() {
        return;
    }
    ring::write(now_ns(), pack(kind, site, value));
}

#[inline]
fn pack(kind: EventKind, site: Site, value: u64) -> u64 {
    ((kind as u64) << 56) | ((site as u64) << 48) | (value & VALUE_MASK)
}

/// Packs a completed operation's retry count and latency into one event
/// value: `retries` in the top 16 bits, nanoseconds in the bottom 32.
/// Both saturate.
pub fn pack_op(retries: u64, latency_ns: u64) -> u64 {
    (retries.min(0xFFFF) << 32) | latency_ns.min(u32::MAX as u64)
}

/// Retry count from a [`pack_op`] value.
pub fn op_retries(value: u64) -> u64 {
    value >> 32
}

/// Latency in nanoseconds from a [`pack_op`] value.
pub fn op_latency_ns(value: u64) -> u64 {
    value & u32::MAX as u64
}

/// Per-operation recording guard for a lock-free retry loop.
///
/// Created at the top of an operation, it captures the start timestamp
/// *once* (only if the recorder is enabled); [`CasOp::attempt`] and
/// [`CasOp::retry`] mark loop passes; [`CasOp::success`] emits a
/// [`EventKind::CasSuccess`] event whose value packs the retry count and
/// the operation's latency. When the recorder is disabled, `start` costs
/// one load and a branch and everything else is a branch on a local bool.
#[derive(Debug)]
pub struct CasOp {
    site: Site,
    start_ns: u64,
    retries: u32,
    active: bool,
}

impl CasOp {
    /// Begins recording one operation at `site` (no-op while disabled).
    #[inline]
    pub fn start(site: Site) -> CasOp {
        let active = enabled();
        CasOp {
            site,
            start_ns: if active { now_ns() } else { 0 },
            retries: 0,
            active,
        }
    }

    /// Whether this guard is actually recording (recorder was enabled at
    /// [`CasOp::start`]).
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Marks the start of a loop pass.
    #[inline]
    pub fn attempt(&mut self) {
        if self.active {
            emit(EventKind::CasAttempt, self.site, self.retries as u64);
        }
    }

    /// Marks a lost race: the pass failed and the loop will retry.
    #[inline]
    pub fn retry(&mut self) {
        if self.active {
            self.retries += 1;
            emit(EventKind::CasRetry, self.site, self.retries as u64);
        }
    }

    /// Marks completion, emitting retries + latency in one event.
    ///
    /// "Success" means the operation finished — a pop observing an empty
    /// stack completes (wait-free) just like one returning a value.
    #[inline]
    pub fn success(self) {
        if self.active {
            let latency = now_ns().saturating_sub(self.start_ns);
            emit(
                EventKind::CasSuccess,
                self.site,
                pack_op(self.retries as u64, latency),
            );
        }
    }
}

/// Drains every registered ring and returns the merged raw events (ordered
/// by timestamp) plus loss accounting. See [`ring::drain_all`].
pub fn drain() -> (Vec<Event>, DrainStats) {
    ring::drain_all()
}

/// Drains every ring and folds the events into per-kind and per-site
/// histograms. The cheap way to turn a run into numbers.
pub fn snapshot() -> TraceSnapshot {
    let (events, stats) = drain();
    TraceSnapshot::from_events(&events, stats)
}

/// Aggregated view of one drain: per-event-kind histograms plus per-site
/// operation latency/retry distributions (from `CasSuccess` events).
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// Number of rings (≈ threads) that contributed events.
    pub rings: usize,
    /// Events kept in this drain.
    pub events: u64,
    /// Events lost to ring overwrite before the drain reached them.
    pub overwritten: u64,
    /// Copied events discarded because the writer may have been overwriting
    /// them mid-drain (the seqlock-style tear window).
    pub discarded: u64,
    /// Per-kind summaries, only for kinds that appeared.
    pub kinds: Vec<KindSummary>,
    /// Per-site operation summaries, only for sites with completed ops.
    pub sites: Vec<SiteSummary>,
}

/// Distribution of one event kind's values across a drain.
#[derive(Debug, Clone)]
pub struct KindSummary {
    /// The event kind.
    pub kind: EventKind,
    /// Events of this kind.
    pub count: u64,
    /// Histogram of event values. For [`EventKind::CasSuccess`] this holds
    /// the unpacked latency in nanoseconds.
    pub value: Histogram,
    /// For [`EventKind::CasSuccess`] only: histogram of retries per op.
    pub retries: Option<Histogram>,
}

/// Per-site operation latency/retry distributions (from `CasSuccess`).
#[derive(Debug, Clone)]
pub struct SiteSummary {
    /// The instrumentation site.
    pub site: Site,
    /// Completed operations observed at this site.
    pub ops: u64,
    /// Latency per completed operation, nanoseconds.
    pub latency_ns: Histogram,
    /// Retries per completed operation.
    pub retries: Histogram,
}

impl TraceSnapshot {
    /// Builds a snapshot from already-drained events.
    pub fn from_events(events: &[Event], stats: DrainStats) -> TraceSnapshot {
        let mut kind_hist: Vec<(u64, Histogram, Histogram)> = EventKind::ALL
            .iter()
            .map(|_| (0, Histogram::new(), Histogram::new()))
            .collect();
        let mut site_hist: Vec<(u64, Histogram, Histogram)> = Site::ALL
            .iter()
            .map(|_| (0, Histogram::new(), Histogram::new()))
            .collect();
        for ev in events {
            let slot = &mut kind_hist[ev.kind as usize];
            slot.0 += 1;
            if ev.kind == EventKind::CasSuccess {
                slot.1.record(op_latency_ns(ev.value));
                slot.2.record(op_retries(ev.value));
                let site = &mut site_hist[ev.site as usize];
                site.0 += 1;
                site.1.record(op_latency_ns(ev.value));
                site.2.record(op_retries(ev.value));
            } else {
                slot.1.record(ev.value);
            }
        }
        TraceSnapshot {
            rings: stats.rings,
            events: events.len() as u64,
            overwritten: stats.overwritten,
            discarded: stats.discarded,
            kinds: kind_hist
                .into_iter()
                .enumerate()
                .filter(|(_, (count, _, _))| *count > 0)
                .map(|(i, (count, value, retries))| KindSummary {
                    kind: EventKind::ALL[i],
                    count,
                    retries: (EventKind::ALL[i] == EventKind::CasSuccess).then(|| retries.clone()),
                    value,
                })
                .collect(),
            sites: site_hist
                .into_iter()
                .enumerate()
                .filter(|(_, (ops, _, _))| *ops > 0)
                .map(|(i, (ops, latency_ns, retries))| SiteSummary {
                    site: Site::ALL[i],
                    ops,
                    latency_ns,
                    retries,
                })
                .collect(),
        }
    }

    /// Summary for one kind, if any events of it were seen.
    pub fn kind(&self, kind: EventKind) -> Option<&KindSummary> {
        self.kinds.iter().find(|k| k.kind == kind)
    }

    /// Summary for one site, if any operations completed there.
    pub fn site(&self, site: Site) -> Option<&SiteSummary> {
        self.sites.iter().find(|s| s.site == site)
    }
}

/// Serializes tests (and other callers) that manipulate the process-global
/// recorder: enable/emit/drain under this guard to keep parallel tests from
/// seeing each other's events.
///
/// Ignores mutex poisoning — a panicked test must not cascade.
pub fn tests_serialize() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_roundtrips() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::from_u8(kind as u8), Some(kind));
            assert!(!kind.name().is_empty());
        }
        for site in Site::ALL {
            assert_eq!(Site::from_u8(site as u8), Some(site));
            assert!(!site.name().is_empty());
        }
        assert_eq!(EventKind::from_u8(200), None);
        assert_eq!(Site::from_u8(200), None);

        let v = pack_op(3, 1_234);
        assert_eq!(op_retries(v), 3);
        assert_eq!(op_latency_ns(v), 1_234);
        // Saturation, not wrap.
        let big = pack_op(u64::MAX, u64::MAX);
        assert_eq!(op_retries(big), 0xFFFF);
        assert_eq!(op_latency_ns(big), u32::MAX as u64);
        assert!(big <= VALUE_MASK);
    }

    #[test]
    fn timestamps_are_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn disabled_casop_is_inert() {
        let _guard = tests_serialize();
        set_enabled(false);
        drain(); // flush anything an earlier serialized test left behind
        let mut op = CasOp::start(Site::StackPush);
        assert!(!op.is_active());
        op.attempt();
        op.retry();
        op.success();
        // Nothing was recorded and nothing to drain beyond possible leftovers
        // from other tests (which the guard excludes).
        let snap = snapshot();
        assert_eq!(snap.events, 0);
    }
}
