//! **Memory footprint under sustained churn** — the observable difference
//! between real epoch-based reclamation and the leak-forever stand-in it
//! replaced.
//!
//! A counting global allocator tracks live heap bytes while worker threads
//! push/pop through a [`LockFreeQueue`] and a [`TreiberStack`] for millions
//! of operations. With the old stand-in every retired node stayed allocated,
//! so live bytes grew linearly with operation count (~24 B/op: this run's
//! default churn would leak tens of megabytes). With epoch reclamation the
//! footprint must stay *flat*: bounded by the in-flight elements plus the
//! per-thread deferred-garbage bags, independent of how long the run lasts.
//!
//! `--check` turns the bound into an exit code for CI: peak live growth over
//! the pre-churn baseline must stay under `--bound-bytes` (default 4 MiB —
//! two orders of magnitude below what the leak would produce, two above
//! normal jitter from thread stacks and collector bags).
//!
//! **Pool churn (PR 9):** a second, single-threaded phase measures
//! *allocator calls per operation* in steady state for each structure in
//! both its pooled mode (nodes recycle through `lfrt_lockfree::pool`) and
//! the boxed passthrough baseline. The boxed mode pays ~1 allocation per
//! push/pop pair; the pooled mode must be allocation-free once its caches
//! are warm — `--check` asserts `allocs_per_op < 0.05` for the pooled
//! structures, and the `allocs_per_op` values feed the CI perf gate.
//!
//! `--json <path>` writes the footprint as a report document whose numbers
//! all live under `timing` (live-heap peaks and allocator-call rates are
//! host-dependent); `peak_growth_bytes` and the `pool_churn` rows'
//! `allocs_per_op` are metrics the CI perf gate (`compare_reports`) tracks
//! against `BENCH_baseline.json`.
//!
//! Usage: `cargo run -p lfrt-bench --release --bin churn_footprint --
//! [--ops 250000] [--threads 4] [--bound-bytes 4194304] [--check] [--quick]
//! [--json <path>]`

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use lfrt_bench::json::{self, Point, Report};
use lfrt_bench::Args;
use lfrt_lockfree::{LockFreeQueue, TreiberStack};

/// Wraps the system allocator and tracks the current live byte count.
struct CountingAlloc;

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counters are
// pure bookkeeping on the side.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            LIVE_BYTES.fetch_add(layout.size(), Ordering::Relaxed);
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            LIVE_BYTES.fetch_add(new_size, Ordering::Relaxed);
            LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        new_ptr
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn live() -> usize {
    LIVE_BYTES.load(Ordering::Relaxed)
}

fn alloc_calls() -> usize {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Runs `threads` workers doing `ops` push+pop pairs each against both
/// structures, sampling peak live bytes from the main thread. Returns
/// `(total_ops, peak_live_bytes)`.
fn churn(threads: usize, ops: usize) -> (usize, usize) {
    let queue = Arc::new(LockFreeQueue::new());
    let stack = Arc::new(TreiberStack::new());
    let stop = Arc::new(AtomicBool::new(false));

    let workers: Vec<_> = (0..threads)
        .map(|w| {
            let queue = Arc::clone(&queue);
            let stack = Arc::clone(&stack);
            std::thread::spawn(move || {
                for i in 0..ops {
                    let v = (w * ops + i) as u64;
                    queue.enqueue(v);
                    let _ = queue.dequeue();
                    stack.push(v);
                    let _ = stack.pop();
                }
            })
        })
        .collect();

    // Sample the footprint while the workers churn.
    let sampler = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut peak = 0usize;
            while !stop.load(Ordering::Relaxed) {
                peak = peak.max(live());
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            peak.max(live())
        })
    };

    for h in workers {
        h.join().expect("churn worker panicked");
    }
    stop.store(true, Ordering::Relaxed);
    let peak = sampler.join().expect("sampler panicked");
    // 2 structures × ops per worker × workers push/pop pairs.
    (2 * threads * ops, peak)
}

/// Steady-state allocator calls per operation: run `warmup` push/pop pairs
/// to heat the pool's per-thread cache (the epoch collector runs every 16
/// pins, recycling retired nodes back into it), then count allocator calls
/// across `pairs` more. One "op" is one push+pop pair — one node lifecycle
/// — so the boxed baseline lands at ~1.0 and the warm pool at ~0.0.
fn steady_state_allocs(warmup: usize, pairs: usize, mut pair: impl FnMut(u64)) -> f64 {
    for i in 0..warmup {
        pair(i as u64);
    }
    let before = alloc_calls();
    for i in 0..pairs {
        pair((warmup + i) as u64);
    }
    (alloc_calls() - before) as f64 / pairs as f64
}

/// The pooled-vs-boxed allocator-call rates: `(label, allocs_per_op)` for
/// the stack and queue in both node-sourcing modes.
fn pool_churn(warmup: usize, pairs: usize) -> Vec<(&'static str, f64)> {
    let stack = TreiberStack::new();
    let stack_boxed = TreiberStack::new_boxed();
    let queue = LockFreeQueue::new();
    let queue_boxed = LockFreeQueue::new_boxed();
    vec![
        (
            "stack_pooled",
            steady_state_allocs(warmup, pairs, |i| {
                stack.push(i);
                let _ = stack.pop();
            }),
        ),
        (
            "stack_boxed",
            steady_state_allocs(warmup, pairs, |i| {
                stack_boxed.push(i);
                let _ = stack_boxed.pop();
            }),
        ),
        (
            "queue_pooled",
            steady_state_allocs(warmup, pairs, |i| {
                queue.enqueue(i);
                let _ = queue.dequeue();
            }),
        ),
        (
            "queue_boxed",
            steady_state_allocs(warmup, pairs, |i| {
                queue_boxed.enqueue(i);
                let _ = queue_boxed.dequeue();
            }),
        ),
    ]
}

fn main() {
    let started = std::time::Instant::now();
    let args = Args::from_env();
    let quick = args.quick();
    let trace = lfrt_bench::trace::Session::from_args(&args, "churn_footprint");
    let threads = args.get_usize("threads", 4);
    let ops = args.get_usize("ops", if quick { 50_000 } else { 250_000 });
    let bound = args.get_usize("bound-bytes", 4 * 1024 * 1024);
    let check = args.get_bool("check");

    println!("# Live-heap footprint under sustained lock-free churn");
    println!("# {threads} threads x {ops} push/pop pairs on LockFreeQueue + TreiberStack");

    // Warm up thread-local epoch records and take the baseline afterwards so
    // one-time allocations (thread stacks cached by the runtime, collector
    // registry) don't count against the churn.
    let (_, _) = churn(threads, 100);
    let baseline = live();

    let (total_ops, peak) = churn(threads, ops);
    let growth = peak.saturating_sub(baseline);
    let final_live = live();

    // The leak-forever stand-in grew ~24 B per queue/stack op pair.
    let leak_estimate = total_ops.saturating_mul(24);

    // Pool churn: steady-state allocator calls per node lifecycle, pooled
    // vs boxed. Single-threaded on purpose — the question is whether the
    // warm hot path touches the allocator at all, not how it scales.
    let churn_pairs = args.get_usize("pool-pairs", if quick { 5_000 } else { 20_000 });
    let churn_warmup = args.get_usize("pool-warmup", if quick { 2_000 } else { 4_000 });
    let pool_rows = pool_churn(churn_warmup, churn_pairs);

    println!("baseline_live_bytes = {baseline}");
    println!("peak_live_bytes     = {peak}");
    println!("final_live_bytes    = {final_live}");
    println!("peak_growth_bytes   = {growth}");
    println!("total_ops           = {total_ops}");
    println!("old_leak_estimate   = {leak_estimate} (linear growth before epoch reclamation)");
    println!("# pool churn: allocator calls per push+pop pair, steady state ({churn_pairs} pairs after {churn_warmup} warmup)");
    for (label, apo) in &pool_rows {
        println!("allocs_per_op[{label}] = {apo:.4}");
    }
    println!(
        "{{\"bench\":\"churn_footprint\",\"threads\":{threads},\"ops_per_thread\":{ops},\
         \"total_ops\":{total_ops},\"baseline_bytes\":{baseline},\"peak_bytes\":{peak},\
         \"growth_bytes\":{growth},\"bound_bytes\":{bound}}}"
    );

    if let Some(path) = args.json_path() {
        let mut report = Report::new(
            "churn_footprint",
            "table:churn",
            "Live-heap growth under sustained lock-free churn",
        )
        .config("bound_bytes", bound);
        // Worker count and op count go under `timing`, not `params`: both
        // follow the forwarded `--threads`/`--quick` flags, and the payload
        // of a report must be identical across worker counts (the CI
        // determinism check diffs `--threads 1` against `--threads 8`).
        report.points.push(Point {
            params: vec![("structures".into(), "queue+stack".into())],
            timing: vec![
                ("workers".into(), threads.into()),
                ("ops_per_worker".into(), ops.into()),
                ("baseline_live_bytes".into(), baseline.into()),
                ("peak_live_bytes".into(), peak.into()),
                ("final_live_bytes".into(), final_live.into()),
                ("peak_growth_bytes".into(), growth.into()),
                ("total_ops".into(), total_ops.into()),
            ],
            ..Default::default()
        });
        // One point per pool-churn row. `pool_churn` (not `structure`) is
        // the param key so the gate can tell these rows from the footprint
        // point above; `allocs_per_op` is gated (floored at 0.05 by the
        // gate so near-zero pooled rates compare stably).
        for (label, apo) in &pool_rows {
            report.points.push(Point {
                params: vec![("pool_churn".into(), (*label).into())],
                timing: vec![
                    ("allocs_per_op".into(), (*apo).into()),
                    ("pairs".into(), churn_pairs.into()),
                    ("warmup_pairs".into(), churn_warmup.into()),
                ],
                ..Default::default()
            });
        }
        let meta = json::RunMeta::capture(threads, quick);
        json::write_reports(&path, &[report], meta, started).expect("write json report");
    }
    trace.finish(threads, quick);

    if check {
        if growth > bound {
            eprintln!(
                "FAIL: peak live growth {growth} B exceeds bound {bound} B — \
                 retired nodes are accumulating instead of being reclaimed"
            );
            std::process::exit(1);
        }
        println!("OK: peak live growth {growth} B within bound {bound} B");
        // The pooled structures must be allocation-free in steady state:
        // a warm cache that still reaches the allocator means recycling
        // broke (nodes leak out of the pool and every op pays a miss).
        const POOLED_ALLOCS_BOUND: f64 = 0.05;
        for (label, apo) in &pool_rows {
            if label.ends_with("_pooled") && *apo >= POOLED_ALLOCS_BOUND {
                eprintln!(
                    "FAIL: {label} makes {apo:.4} allocator calls per op in steady \
                     state (bound {POOLED_ALLOCS_BOUND}) — the node pool is not recycling"
                );
                std::process::exit(1);
            }
        }
        println!("OK: pooled steady-state allocs/op below {POOLED_ALLOCS_BOUND} (boxed ~1.0)");
    }
}
