//! The six progress rules, PRG001–PRG006.
//!
//! PRG001, PRG003, and PRG004 are *structural*: they apply to every
//! scanned function, manifest or not — a pause-less CAS retry loop or a
//! guard-escaping pointer is wrong no matter what the enclosing op
//! declares. PRG002, PRG005, and PRG006 are *contract* rules: they check
//! the call graph reachable from each declared op against its declared
//! class (`lock_free`+ must not reach a blocking primitive, `wait_free`
//! must not spin on another thread's progress, `no_alloc` must not reach
//! the heap).

use std::collections::HashMap;

use crate::callgraph::Graph;
use crate::manifest::Manifest;
use crate::scan::{FnInfo, LoopInfo};

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule ID (`PRG001`...).
    pub rule: String,
    /// Relative path of the file.
    pub file: String,
    /// 1-based line of the anchoring token.
    pub line: usize,
    /// Qualified name of the containing function.
    pub function: String,
    /// Rule-specific discriminator — the baseline key's fourth component
    /// (CAS receiver, blocking token, escaping identifier, alloc token,
    /// loop keyword + re-read receiver).
    pub detail: String,
    /// Human-readable explanation.
    pub message: String,
}

/// Context shared by all rules: the flat function list, which file each
/// function is in, and per-function line lookup.
pub struct Ctx<'a> {
    /// All scanned functions, flat across files.
    pub fns: &'a [FnInfo],
    /// Parallel to `fns`: relative path of the defining file.
    pub files: &'a [String],
    /// Parallel to `fns`: maps a byte offset to a 1-based line.
    pub lines: &'a dyn Fn(usize, usize) -> usize,
    /// The call graph.
    pub graph: &'a Graph,
    /// The manifest.
    pub manifest: &'a Manifest,
    /// Per-op resolved root functions (qname -> fn indices).
    pub op_roots: &'a HashMap<String, Vec<usize>>,
}

impl Ctx<'_> {
    fn line(&self, fn_idx: usize, offset: usize) -> usize {
        (self.lines)(fn_idx, offset)
    }
}

/// Runs all six rules, sorted by (file, line, rule).
pub fn run_rules(ctx: &Ctx<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    prg001_cas_without_backoff(ctx, &mut findings);
    prg002_blocking_reachable(ctx, &mut findings);
    prg003_guard_escape(ctx, &mut findings);
    prg004_retire_before_unlink(ctx, &mut findings);
    prg005_unbounded_wait_free_loop(ctx, &mut findings);
    prg006_alloc_reachable(ctx, &mut findings);
    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.detail).cmp(&(&b.file, b.line, &b.rule, &b.detail))
    });
    findings
}

/// The innermost loop of `f` containing `offset`.
fn innermost_loop(f: &FnInfo, offset: usize) -> Option<&LoopInfo> {
    f.loops
        .iter()
        .filter(|l| l.span.0 <= offset && offset < l.span.1)
        .min_by_key(|l| l.span.1 - l.span.0)
}

/// PRG001: a CAS retry loop with no bounded `Backoff` pacing call
/// (`.spin()`/`.snooze()`) anywhere in the loop body. Structural — every
/// scanned function, declared or not.
fn prg001_cas_without_backoff(ctx: &Ctx<'_>, findings: &mut Vec<Finding>) {
    for (i, f) in ctx.fns.iter().enumerate() {
        for cas in &f.cas {
            let Some(lp) = innermost_loop(f, cas.offset) else {
                continue; // single-attempt CAS, nothing to pace
            };
            let paced = f.pacing.iter().any(|&p| lp.span.0 <= p && p < lp.span.1);
            if paced {
                continue;
            }
            findings.push(Finding {
                rule: "PRG001".into(),
                file: ctx.files[i].clone(),
                line: ctx.line(i, cas.offset),
                function: f.qname.clone(),
                detail: cas.receiver.clone(),
                message: format!(
                    "CAS retry {} on `{}` has no bounded Backoff on its failure arm \
                     (add `backoff.spin()`/`snooze()` or justify in progress.toml)",
                    lp.kind, cas.receiver
                ),
            });
        }
    }
}

/// PRG002: a blocking primitive reachable in the call graph from an op
/// declared `lock_free` or `wait_free`. One finding per blocking site,
/// naming every declared op that reaches it and one witness path.
fn prg002_blocking_reachable(ctx: &Ctx<'_>, findings: &mut Vec<Finding>) {
    // site key: (fn_idx, token offset) -> (ops, witness path)
    let mut sites: HashMap<(usize, usize), (Vec<String>, Vec<usize>)> = HashMap::new();
    for op in &ctx.manifest.ops {
        if !op.class.at_least_lock_free() {
            continue;
        }
        let roots = &ctx.op_roots[&op.name];
        let reached = ctx.graph.reachable(roots);
        for (&fn_idx, path) in &reached {
            for tok in &ctx.fns[fn_idx].blocking {
                let entry = sites
                    .entry((fn_idx, tok.offset))
                    .or_insert_with(|| (Vec::new(), path.clone()));
                entry.0.push(format!("{} ({})", op.name, op.class));
            }
        }
    }
    for ((fn_idx, offset), (mut ops, path)) in sites {
        ops.sort();
        ops.dedup();
        let f = &ctx.fns[fn_idx];
        let token = f
            .blocking
            .iter()
            .find(|t| t.offset == offset)
            .map(|t| t.token.clone())
            .unwrap_or_default();
        let via: Vec<&str> = path.iter().map(|&k| ctx.fns[k].qname.as_str()).collect();
        findings.push(Finding {
            rule: "PRG002".into(),
            file: ctx.files[fn_idx].clone(),
            line: ctx.line(fn_idx, offset),
            function: f.qname.clone(),
            detail: token.clone(),
            message: format!(
                "blocking primitive `{token}` reachable from declared op(s) {} \
                 (via {})",
                ops.join(", "),
                via.join(" -> ")
            ),
        });
    }
}

/// PRG003: a value derived from an epoch-`Guard` load used after the
/// guard's lexical scope (use-after-unpin). Structural; the detection
/// lives in [`crate::scan`], this rule just reports it.
fn prg003_guard_escape(ctx: &Ctx<'_>, findings: &mut Vec<Finding>) {
    for (i, f) in ctx.fns.iter().enumerate() {
        for esc in &f.guard_escapes {
            findings.push(Finding {
                rule: "PRG003".into(),
                file: ctx.files[i].clone(),
                line: ctx.line(i, esc.offset),
                function: f.qname.clone(),
                detail: esc.token.clone(),
                message: format!(
                    "`{}` is derived from an epoch-Guard load but used after the \
                     guard is dropped — the epoch may have advanced and the \
                     pointee been reclaimed",
                    esc.token
                ),
            });
        }
    }
}

/// PRG004: `defer_destroy`/`defer_recycle` issued in a function with no
/// preceding CAS — retiring a node before (or without) the unlink CAS that
/// makes it unreachable. For the recycle flavor this is precisely the
/// reuse-before-grace hazard: a reachable node handed to the pool can be
/// re-acquired and overwritten under a concurrent reader. Textual-order
/// approximation within one function body: sound for the unlink-then-retire
/// idiom every structure here uses, and anything cleverer lands in the
/// baseline with a justification.
fn prg004_retire_before_unlink(ctx: &Ctx<'_>, findings: &mut Vec<Finding>) {
    for (i, f) in ctx.fns.iter().enumerate() {
        for defer in &f.defers {
            let unlinked = f.cas.iter().any(|c| c.offset < defer.offset);
            if unlinked {
                continue;
            }
            findings.push(Finding {
                rule: "PRG004".into(),
                file: ctx.files[i].clone(),
                line: ctx.line(i, defer.offset),
                function: f.qname.clone(),
                detail: defer.token.clone(),
                message: format!(
                    "{} with no preceding unlink CAS in this function — a node \
                     must be unreachable before it is retired or recycled",
                    defer.token
                ),
            });
        }
    }
}

/// PRG005: a `loop`/`while` reachable from an op declared `wait_free`
/// whose body re-reads shared state (atomic load or CAS) — the loop's
/// exit can depend on another thread's progress, which is exactly what
/// wait-freedom rules out. `for` loops are bounded by their iterator and
/// exempt.
fn prg005_unbounded_wait_free_loop(ctx: &Ctx<'_>, findings: &mut Vec<Finding>) {
    let mut sites: HashMap<(usize, usize), Vec<String>> = HashMap::new();
    for op in &ctx.manifest.ops {
        if op.class != crate::manifest::Class::WaitFree {
            continue;
        }
        let roots = &ctx.op_roots[&op.name];
        for &fn_idx in ctx.graph.reachable(roots).keys() {
            let f = &ctx.fns[fn_idx];
            for lp in &f.loops {
                let rereads_shared = shared_reread_in(f, lp);
                if rereads_shared {
                    sites
                        .entry((fn_idx, lp.offset))
                        .or_default()
                        .push(op.name.clone());
                }
            }
        }
    }
    for ((fn_idx, offset), mut ops) in sites {
        ops.sort();
        ops.dedup();
        let f = &ctx.fns[fn_idx];
        let lp = f.loops.iter().find(|l| l.offset == offset).unwrap();
        findings.push(Finding {
            rule: "PRG005".into(),
            file: ctx.files[fn_idx].clone(),
            line: ctx.line(fn_idx, offset),
            function: f.qname.clone(),
            detail: lp.kind.into(),
            message: format!(
                "`{}` re-reads shared state with no iteration bound, but is \
                 reachable from wait_free-declared op(s) {} — a wait-free op \
                 cannot wait on another thread's progress",
                lp.kind,
                ops.join(", ")
            ),
        });
    }
}

/// Whether a loop body re-reads shared state: any atomic `.load(` call or
/// CAS inside the span.
fn shared_reread_in(f: &FnInfo, lp: &LoopInfo) -> bool {
    let in_span = |o: usize| lp.span.0 <= o && o < lp.span.1;
    f.cas.iter().any(|c| in_span(c.offset))
        || f.calls
            .iter()
            .any(|c| in_span(c.offset) && (c.name == "load" || c.name == "load_ord"))
}

/// PRG006: a heap allocation reachable from an op declared `no_alloc`.
fn prg006_alloc_reachable(ctx: &Ctx<'_>, findings: &mut Vec<Finding>) {
    let mut sites: HashMap<(usize, usize), Vec<String>> = HashMap::new();
    for op in &ctx.manifest.ops {
        if !op.no_alloc {
            continue;
        }
        let roots = &ctx.op_roots[&op.name];
        for &fn_idx in ctx.graph.reachable(roots).keys() {
            for tok in &ctx.fns[fn_idx].allocs {
                sites
                    .entry((fn_idx, tok.offset))
                    .or_default()
                    .push(op.name.clone());
            }
        }
    }
    for ((fn_idx, offset), mut ops) in sites {
        ops.sort();
        ops.dedup();
        let f = &ctx.fns[fn_idx];
        let token = f
            .allocs
            .iter()
            .find(|t| t.offset == offset)
            .map(|t| t.token.clone())
            .unwrap_or_default();
        findings.push(Finding {
            rule: "PRG006".into(),
            file: ctx.files[fn_idx].clone(),
            line: ctx.line(fn_idx, offset),
            function: f.qname.clone(),
            detail: token.clone(),
            message: format!(
                "heap allocation `{token}` reachable from no_alloc-declared op(s) {}",
                ops.join(", ")
            ),
        });
    }
}
