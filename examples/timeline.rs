//! Visual timeline: the same three-task contention scenario executed under
//! lock-based and lock-free sharing, rendered as ASCII Gantt charts from
//! the simulator's trace log. Watch the blocking gap under locks turn into
//! overlapped (retried) progress under lock-free sharing.
//!
//! Run with: `cargo run --example timeline`

use lockfree_rt::core::RuaLockFree;
use lockfree_rt::sim::{
    AccessKind, Engine, ObjectId, Segment, SharingMode, SimConfig, TaskSpec, TraceEvent,
};
use lockfree_rt::tuf::Tuf;
use lockfree_rt::uam::{ArrivalTrace, Uam};

fn access(object: usize) -> Segment {
    Segment::Access {
        object: ObjectId::new(object),
        kind: AccessKind::Write,
    }
}

fn scenario() -> Result<(Vec<TaskSpec>, Vec<ArrivalTrace>), Box<dyn std::error::Error>> {
    let slow_logger = TaskSpec::builder("logger")
        .tuf(Tuf::step(1.0, 9_000)?)
        .uam(Uam::periodic(50_000))
        .segments(vec![
            Segment::Compute(200),
            access(0),
            Segment::Compute(200),
        ])
        .build()?;
    let urgent_a = TaskSpec::builder("urgent-a")
        .tuf(Tuf::step(10.0, 2_000)?)
        .uam(Uam::periodic(50_000))
        .segments(vec![access(0), Segment::Compute(100)])
        .build()?;
    let urgent_b = TaskSpec::builder("urgent-b")
        .tuf(Tuf::step(10.0, 3_000)?)
        .uam(Uam::periodic(50_000))
        .segments(vec![access(0), Segment::Compute(100)])
        .build()?;
    Ok((
        vec![slow_logger, urgent_a, urgent_b],
        vec![
            ArrivalTrace::new(vec![0]),
            ArrivalTrace::new(vec![400]),
            ArrivalTrace::new(vec![500]),
        ],
    ))
}

fn run(sharing: SharingMode) -> Result<(), Box<dyn std::error::Error>> {
    let (tasks, traces) = scenario()?;
    let outcome =
        Engine::new(tasks, traces, SimConfig::new(sharing).trace(true))?.run(RuaLockFree::new());
    println!("{}", outcome.trace.render_gantt(72));
    let blocked = outcome
        .trace
        .filter(|e| matches!(e, TraceEvent::Blocked { .. }))
        .len();
    let retried = outcome
        .trace
        .filter(|e| matches!(e, TraceEvent::Retried { .. }))
        .len();
    println!(
        "blockings {blocked}, retries {retried}, AUR {:.3}, CMR {:.3}\n",
        outcome.metrics.aur(),
        outcome.metrics.cmr()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("J0 = logger (long critical section), J1/J2 = urgent jobs.\n");
    println!("== lock-based (r = 800 µs critical sections) ==");
    run(SharingMode::LockBased { access_ticks: 800 })?;
    println!("== lock-free (s = 150 µs attempts, retried on interference) ==");
    run(SharingMode::LockFree { access_ticks: 150 })?;
    Ok(())
}
