//! Summary statistics for experiment reporting.

/// Mean, standard deviation, and 95% confidence half-width of a sample set.
///
/// The paper reports each data point with a 95% confidence interval; this is
/// the same normal-approximation interval (`1.96·σ/√n`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased, `n-1` denominator).
    pub std_dev: f64,
    /// Half-width of the 95% confidence interval around the mean.
    pub ci95: f64,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Summarizes `samples`. Returns zeros for an empty slice.
    pub fn of(samples: &[f64]) -> Self {
        let n = samples.len();
        if n == 0 {
            return Self {
                mean: 0.0,
                std_dev: 0.0,
                ci95: 0.0,
                n: 0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Self {
                mean,
                std_dev: 0.0,
                ci95: 0.0,
                n,
            };
        }
        let var = samples.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        let std_dev = var.sqrt();
        let ci95 = 1.96 * std_dev / (n as f64).sqrt();
        Self {
            mean,
            std_dev,
            ci95,
            n,
        }
    }

    /// Renders as `mean ± ci95` with the given precision.
    pub fn display(&self, precision: usize) -> String {
        format!("{:.p$} ± {:.p$}", self.mean, self.ci95, p = precision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton() {
        assert_eq!(Summary::of(&[]).n, 0);
        let s = Summary::of(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev with n-1: sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!(s.ci95 > 0.0);
    }

    #[test]
    fn display_formats() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert!(s.display(2).contains("±"));
    }
}
