//! Per-module publication graph.
//!
//! For each file, sites are grouped by their normalized receiver: the
//! store-like sites of a receiver are its *writers* (they publish data),
//! the load-like sites its *readers*. A receiver with both is a
//! publication edge — the pairings a human reviewer would walk to check
//! that every Release store meets an Acquire load. The graph is pure
//! inventory (no rule fires from it); it goes into the report so the
//! hand-review gap this crate closes stays visible.

use crate::scan::{Kind, ScanResult};

/// One endpoint of a publication edge.
#[derive(Debug, Clone)]
pub struct Access {
    /// Enclosing function.
    pub function: String,
    /// 1-based line.
    pub line: usize,
    /// The site's first literal ordering token.
    pub ordering: String,
    /// Access class name (`load`, `store`, `cas`, ...).
    pub kind: &'static str,
}

/// All accesses of one receiver in one file.
#[derive(Debug, Clone)]
pub struct GraphEntry {
    /// File the receiver lives in.
    pub file: String,
    /// Normalized receiver chain.
    pub receiver: String,
    /// Store-like sites (publishers).
    pub writers: Vec<Access>,
    /// Load-like sites (observers).
    pub readers: Vec<Access>,
}

/// Builds the publication graph for one scanned file.
pub fn publication_graph(file: &str, scan: &ScanResult) -> Vec<GraphEntry> {
    let mut entries: Vec<GraphEntry> = Vec::new();
    for site in &scan.sites {
        if site.kind == Kind::Fence {
            continue;
        }
        let access = Access {
            function: site.function.clone(),
            line: site.line,
            ordering: site.orderings.first().cloned().unwrap_or_default(),
            kind: site.kind.name(),
        };
        let entry = match entries.iter_mut().find(|e| e.receiver == site.receiver) {
            Some(e) => e,
            None => {
                entries.push(GraphEntry {
                    file: file.to_string(),
                    receiver: site.receiver.clone(),
                    writers: Vec::new(),
                    readers: Vec::new(),
                });
                entries.last_mut().expect("just pushed")
            }
        };
        if site.kind.is_store_like() {
            entry.writers.push(access.clone());
        }
        if site.kind.is_load_like() {
            entry.readers.push(access);
        }
    }
    entries.sort_by(|a, b| a.receiver.cmp(&b.receiver));
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_file;
    use crate::source::SourceFile;

    #[test]
    fn groups_receivers_into_writers_and_readers() {
        let src = "
fn push(&self) {
    let top = self.top.load(Acquire, g);
    self.top.compare_exchange(top, new, Release, Relaxed, g);
}
fn is_empty(&self) { self.top.load(Acquire, g); }
";
        let sf = SourceFile::new("s.rs", src);
        let g = publication_graph("s.rs", &scan_file(&sf));
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].receiver, "self.top");
        // The CAS is both writer and reader; the two loads are readers.
        assert_eq!(g[0].writers.len(), 1);
        assert_eq!(g[0].readers.len(), 3);
        assert_eq!(g[0].writers[0].function, "push");
        assert_eq!(g[0].writers[0].ordering, "Release");
    }
}
