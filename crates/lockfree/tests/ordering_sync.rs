//! Keeps the interleave models' *declared* orderings in sync with the real
//! structures' orderings pinned in `ordering_pins.rs`.
//!
//! The weak-memory explorer (`lfrt-interleave` store-buffer and relaxed
//! modes) only checks what the models declare: a model whose `_ord` calls
//! drift from the real code's orderings silently verifies the wrong
//! algorithm. This suite pins each audited real site *together with* its
//! model mirror, so weakening either side — say, downgrading the real
//! stack's `Release` publication without touching `ModelTreiberStack`, or
//! vice versa — fails here and forces both edits (plus the restated
//! argument in `ordering_pins.rs`) to land together.
//!
//! Like `ordering_pins.rs`, the assertions are whitespace-insensitive
//! source-text checks: the same literal tokens `lfrt-ordlint` scans.

use std::path::{Path, PathBuf};

fn real(file: &str) -> String {
    read(Path::new(env!("CARGO_MANIFEST_DIR")).join("src").join(file))
}

fn model(file: &str) -> String {
    read(
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../interleave/src/models")
            .join(file),
    )
}

fn read(path: PathBuf) -> String {
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

fn squash(text: &str) -> String {
    text.chars().filter(|c| !c.is_whitespace()).collect()
}

/// Asserts one real-site/model-site pair: both texts must contain their
/// respective needle, or the pair has drifted.
fn assert_pair(
    real_file: &str,
    real_needle: &str,
    model_file: &str,
    model_needle: &str,
    why: &str,
) {
    let real_text = squash(&real(real_file));
    let model_text = squash(&model(model_file));
    assert!(
        real_text.contains(&squash(real_needle)),
        "lockfree/src/{real_file}: expected `{real_needle}` ({why}); if the real \
         ordering changed, update models/{model_file} and ordering_pins.rs with it"
    );
    assert!(
        model_text.contains(&squash(model_needle)),
        "interleave/src/models/{model_file}: expected `{model_needle}` ({why}); \
         the model no longer declares the ordering lockfree/src/{real_file} uses"
    );
}

/// Treiber stack: Acquire top loads, Release/Relaxed CASes, and the
/// pre-publication next write (`Relaxed` in the real code, a non-step
/// `store_plain` in the model — both claim "no concurrent readers yet").
#[test]
fn stack_model_orderings_match_real() {
    assert_pair(
        "stack.rs",
        "self.top.load(Acquire, guard)",
        "stack.rs",
        "self.top.load_ord(Acquire)",
        "push/pop acquire the published top",
    );
    assert_pair(
        "stack.rs",
        "compare_exchange(top, new, Release, Relaxed, guard)",
        "stack.rs",
        "compare_exchange_ord(top, idx, Release, Relaxed)",
        "push publishes with Release, retries Relaxed",
    );
    assert_pair(
        "stack.rs",
        "compare_exchange(top, next, Release, Relaxed, guard)",
        "stack.rs",
        "compare_exchange_ord(top, next, Release, Relaxed)",
        "pop unlinks with Release, retries Relaxed",
    );
    assert_pair(
        "stack.rs",
        "new.next.store(top, Relaxed)",
        "stack.rs",
        "node.next.store_plain(top)",
        "pre-publication init carries no ordering obligation",
    );
}

/// Michael–Scott queue: Acquire head/tail/next loads, Release/Relaxed
/// CASes at all four publication sites.
#[test]
fn queue_model_orderings_match_real() {
    for (real_site, model_site, why) in [
        (
            "self.tail.load(Acquire, guard)",
            "self.tail.load_ord(Acquire)",
            "tail load acquires the last published node",
        ),
        (
            "compare_exchange(tail, next, Release, Relaxed, guard)",
            "compare_exchange_ord(tail, next, Release, Relaxed)",
            "tail swing publishes with Release",
        ),
        (
            "compare_exchange(Shared::null(), new, Release, Relaxed, guard)",
            "compare_exchange_ord(NIL, idx, Release, Relaxed)",
            "enqueue link-in publishes with Release",
        ),
        (
            "compare_exchange(head, next, Release, Relaxed, guard)",
            "compare_exchange_ord(head, next, Release, Relaxed)",
            "dequeue unlinks with Release",
        ),
    ] {
        assert_pair("queue.rs", real_site, "queue.rs", model_site, why);
    }
}

/// Vyukov MPMC: Relaxed ticket loads/CASes, Acquire sequence loads,
/// Release sequence hand-offs.
#[test]
fn mpmc_model_orderings_match_real() {
    assert_pair(
        "mpmc.rs",
        "slot.sequence.load(Ordering::Acquire)",
        "mpmc.rs",
        "slot.sequence.load_ord(Acquire)",
        "the sequence load is the slot's acquire edge",
    );
    assert_pair(
        "mpmc.rs",
        "slot.sequence.store(tail.wrapping_add(1), Ordering::Release)",
        "mpmc.rs",
        "slot.sequence.store_ord(tail.wrapping_add(1), Release)",
        "the producer hands the slot over with Release",
    );
    assert_pair(
        "mpmc.rs",
        "Ordering::Relaxed, Ordering::Relaxed,",
        "mpmc.rs",
        "tail.wrapping_add(1), Relaxed, Relaxed,",
        "ticket CAS needs no ordering: the sequence protocol synchronizes",
    );
}

/// NBW seqlock: the fence pairing is the whole algorithm — writer Release
/// fence + Release close, reader Acquire open + Acquire fence before the
/// recheck. The relaxed-mode explorer now exercises the reader fence for
/// real (`StaleNbwReader` is the model with it deleted).
#[test]
fn nbw_model_orderings_match_real() {
    assert_pair(
        "nbw.rs",
        "fence(Ordering::Release)",
        "nbw.rs",
        "fence(Release)",
        "writer: version bump must not sink below payload stores",
    );
    assert_pair(
        "nbw.rs",
        "shared.version.store(v + 2, Ordering::Release)",
        "nbw.rs",
        "self.version.store_ord(v + 2, Release)",
        "writer: closing version store publishes the payload",
    );
    assert_pair(
        "nbw.rs",
        "shared.version.load(Ordering::Acquire)",
        "nbw.rs",
        "self.version.load_ord(Acquire)",
        "reader: opening version load acquires the last publication",
    );
    assert_pair(
        "nbw.rs",
        "fence(Ordering::Acquire)",
        "nbw.rs",
        "fence(Acquire)",
        "reader: payload reads must not sink below the recheck",
    );
}

/// SPSC ring: Relaxed own-index loads, Acquire foreign-index loads,
/// Release index publications.
#[test]
fn ring_model_orderings_match_real() {
    for (real_site, model_site, why) in [
        (
            "shared.tail.load(Ordering::Relaxed)",
            "self.tail.load_ord(Relaxed)",
            "producer owns tail: Relaxed self-read",
        ),
        (
            "shared.head.load(Ordering::Acquire)",
            "self.head.load_ord(Acquire)",
            "producer acquires the consumer's frees",
        ),
        (
            "shared.tail.store(next, Ordering::Release)",
            "self.tail.store_ord(next, Release)",
            "producer publishes the filled slot with Release",
        ),
        (
            "shared.tail.load(Ordering::Acquire)",
            "self.tail.load_ord(Acquire)",
            "consumer acquires the producer's fills",
        ),
    ] {
        assert_pair("ring.rs", real_site, "ring.rs", model_site, why);
    }
}

/// CAS register: Acquire read, AcqRel/Relaxed update CAS — including the
/// audit's downgraded failure ordering (ordering_pins.rs states the
/// argument; this pins that the model matches it).
#[test]
fn register_model_orderings_match_real() {
    assert_pair(
        "register.rs",
        "self.value.load(Ordering::Acquire)",
        "register.rs",
        "self.value.load_ord(Acquire)",
        "read acquires the last published value",
    );
    assert_pair(
        "register.rs",
        "compare_exchange_weak(current, next, Ordering::AcqRel, Ordering::Relaxed,)",
        "register.rs",
        "compare_exchange_ord(current, next, AcqRel, Relaxed)",
        "update CAS: AcqRel success, audited Relaxed failure",
    );
}
