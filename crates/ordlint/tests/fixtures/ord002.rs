//! ORD002 fixture: dereferencing the value of a Relaxed load.

fn deref_via_binding(head: &Atomic) {
    let node = head.load(Relaxed, guard);
    let next = node.deref().next;
}

fn deref_in_chain(head: &Atomic) {
    let next = head.load(Relaxed, guard).deref().next;
}

fn acquire_is_fine(head: &Atomic) {
    let node = head.load(Acquire, guard);
    let next = node.deref().next;
}

fn plain_value_is_fine(version: &AtomicU64) {
    let v = version.load(Relaxed);
    let w = v + 1;
}
