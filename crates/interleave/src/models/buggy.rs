//! Intentionally broken variants of the mirrored models.
//!
//! These exist to prove the explorer earns its keep: each struct plants one
//! classic lock-free bug, and a test in `tests/explorer.rs` (plus the
//! regression suite in `crates/lockfree/tests/interleavings.rs`) asserts
//! the explorer finds a schedule exposing it — and that the faithful model
//! of the real algorithm survives the *same* scenario.
//!
//! The planted bugs:
//! - [`RacyStack`]: Treiber pop with the CAS replaced by a blind store —
//!   the textbook lost update.
//! - [`AbaStack`]: Treiber stack over a recycling arena that reuses freed
//!   node slots immediately (no epoch/grace period) — the ABA problem the
//!   paper's §1.2 discusses and crossbeam's epochs prevent in
//!   `crates/lockfree`.
//! - [`TornNbw`]: the NBW payload without the version protocol — readers
//!   can observe half of one write and half of another.
//!
//! Two further variants are **weak-memory** bugs: correct under every
//! sequentially consistent interleaving, broken only once stores can
//! reorder, so they need [`crate::Config::store_buffer`] exploration
//! (`tests/weak_memory.rs`) — the demonstrators that the store-buffer mode
//! is strictly stronger than SC exploration:
//! - [`RelaxedPubStack`]: a node published with a `Relaxed` store, so the
//!   publication can commit before the node's initialization (ordlint rule
//!   ORD001's dynamic counterpart).
//! - [`FencelessNbw`]: the NBW writer without its `Release` fence, so a
//!   payload write can commit before the version goes odd and a reader
//!   accepts a torn snapshot.

use std::sync::atomic::Ordering;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
use std::sync::{Arc, Mutex};

use crate::arena::NIL;
use crate::atomic::{fence, Atomic};
use crate::runtime;
use crate::runtime::spin_hint;

/// A Treiber-like stack whose pop *stores* the new top instead of CAS-ing
/// it. Two overlapping pops can both read the same top, both "succeed", and
/// return the same element while losing another.
pub struct RacyStack {
    top: Atomic<usize>,
    nodes: Mutex<Vec<Arc<RacyNode>>>,
}

struct RacyNode {
    value: u64,
    next: Atomic<usize>,
}

impl RacyStack {
    /// An empty stack.
    pub fn new() -> Self {
        Self {
            top: Atomic::new(NIL),
            nodes: Mutex::new(Vec::new()),
        }
    }

    fn get(&self, idx: usize) -> Arc<RacyNode> {
        Arc::clone(&self.nodes.lock().unwrap_or_else(|e| e.into_inner())[idx])
    }

    /// Correct Treiber push (the bug is confined to `pop`).
    pub fn push(&self, value: u64) {
        runtime::step_write(); // allocation, like `Arena::alloc`
        let idx = {
            let mut nodes = self.nodes.lock().unwrap_or_else(|e| e.into_inner());
            nodes.push(Arc::new(RacyNode {
                value,
                next: Atomic::new(NIL),
            }));
            nodes.len() - 1
        };
        let node = self.get(idx);
        loop {
            let top = self.top.load();
            node.next.store_plain(top);
            if self.top.compare_exchange(top, idx).is_ok() {
                return;
            }
        }
    }

    /// BUG: detaches the top with a plain store. A pop that parked between
    /// the load and the store clobbers a concurrent pop's update.
    pub fn pop(&self) -> Option<u64> {
        let top = self.top.load();
        if top == NIL {
            return None;
        }
        let node = self.get(top);
        let next = node.next.load();
        // Should be `compare_exchange(top, next)`.
        self.top.store(next);
        Some(node.value)
    }

    /// Post-check helper (single-threaded use only).
    pub fn drain_plain(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cursor = self.top.load_plain();
        while cursor != NIL {
            let node = self.get(cursor);
            out.push(node.value);
            cursor = node.next.load_plain();
        }
        out
    }
}

impl Default for RacyStack {
    fn default() -> Self {
        Self::new()
    }
}

struct AbaNode {
    value: Atomic<u64>,
    next: Atomic<usize>,
}

/// A Treiber stack over a **recycling** arena: `pop` returns the node's
/// index to a free list and `push` reuses the oldest freed index
/// immediately. The push/pop step structure is exactly
/// [`crate::models::ModelTreiberStack`]'s — the only difference is
/// reclamation, which is the whole point: with reuse, a parked pop's
/// `compare_exchange(top, next)` can succeed against a *recycled* node that
/// happens to carry the same index (A → B → A), splicing a freed node back
/// into the stack. The faithful model's append-only [`crate::Arena`]
/// (standing in for crossbeam's epochs) makes that schedule harmless.
pub struct AbaStack {
    top: Atomic<usize>,
    nodes: Mutex<Vec<Arc<AbaNode>>>,
    /// Freed indices, reused FIFO.
    free: Mutex<Vec<usize>>,
}

impl AbaStack {
    /// An empty stack.
    pub fn new() -> Self {
        Self {
            top: Atomic::new(NIL),
            nodes: Mutex::new(Vec::new()),
            free: Mutex::new(Vec::new()),
        }
    }

    fn get(&self, idx: usize) -> Arc<AbaNode> {
        Arc::clone(&self.nodes.lock().unwrap_or_else(|e| e.into_inner())[idx])
    }

    /// BUG (half 1): allocation reuses the oldest freed slot.
    fn alloc(&self, value: u64) -> usize {
        runtime::step_write(); // one scheduled step, like `Arena::alloc`
        let reused = {
            let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
            if free.is_empty() {
                None
            } else {
                Some(free.remove(0))
            }
        };
        match reused {
            Some(idx) => {
                let node = self.get(idx);
                node.value.store_plain(value);
                node.next.store_plain(NIL);
                idx
            }
            None => {
                let mut nodes = self.nodes.lock().unwrap_or_else(|e| e.into_inner());
                nodes.push(Arc::new(AbaNode {
                    value: Atomic::new(value),
                    next: Atomic::new(NIL),
                }));
                nodes.len() - 1
            }
        }
    }

    /// Same steps as `ModelTreiberStack::push`.
    pub fn push(&self, value: u64) {
        let idx = self.alloc(value);
        let node = self.get(idx);
        loop {
            let top = self.top.load();
            node.next.store_plain(top);
            if self.top.compare_exchange(top, idx).is_ok() {
                return;
            }
        }
    }

    /// Same steps as `ModelTreiberStack::pop`, plus: BUG (half 2) — the
    /// winning pop frees its node immediately instead of deferring to a
    /// grace period.
    pub fn pop(&self) -> Option<u64> {
        loop {
            let top = self.top.load();
            if top == NIL {
                return None;
            }
            let node = self.get(top);
            let next = node.next.load();
            if self.top.compare_exchange(top, next).is_ok() {
                let value = node.value.load_plain();
                self.free
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(top);
                return Some(value);
            }
        }
    }

    /// Post-check helper (single-threaded use only).
    pub fn drain_plain(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cursor = self.top.load_plain();
        while cursor != NIL {
            let node = self.get(cursor);
            out.push(node.value.load_plain());
            cursor = node.next.load_plain();
        }
        out
    }
}

impl Default for AbaStack {
    fn default() -> Self {
        Self::new()
    }
}

/// The NBW payload with the version protocol deleted: a reader overlapping
/// a write can return `a` from the new write and `b` from the old one — the
/// torn read the real register's version check exists to reject.
pub struct TornNbw {
    a: Atomic<u64>,
    b: Atomic<u64>,
}

impl TornNbw {
    /// A register holding `(a, b)`.
    pub fn new(a: u64, b: u64) -> Self {
        Self {
            a: Atomic::new(a),
            b: Atomic::new(b),
        }
    }

    /// BUG: publishes the two words with no version bracket.
    pub fn write(&self, a: u64, b: u64) {
        self.a.store(a);
        self.b.store(b);
    }

    /// BUG: reads the two words with no consistency check.
    pub fn read(&self) -> (u64, u64) {
        (self.a.load(), self.b.load())
    }
}

/// A single-producer linked stack whose push *publishes* the node with a
/// store of configurable ordering — the publish-before-initialize bug of
/// ordlint rule ORD001, in executable form.
///
/// `push` initializes the node's payload and link with `Relaxed` stores and
/// then makes the node reachable by storing its index to `top`. With a
/// `Relaxed` publish ([`RelaxedPubStack::relaxed`]) nothing orders the
/// publication after the initialization: under
/// [`crate::MemoryMode::StoreBuffer`] the `top` store may commit first, and
/// a concurrent `peek` dereferences a node whose payload write is still
/// sitting in the producer's store buffer — it reads the slot's stale
/// sentinel. Under sequential consistency the program-order steps are the
/// visibility order, so SC exploration passes every schedule; the same
/// structure with a `Release` publish ([`RelaxedPubStack::release`]) passes
/// even under the store buffer, because a `Release` store only commits once
/// the initialization has.
pub struct RelaxedPubStack {
    top: Atomic<usize>,
    nodes: Vec<PubNode>,
    publish: Ordering,
}

struct PubNode {
    value: Atomic<u64>,
    next: Atomic<usize>,
}

impl RelaxedPubStack {
    /// A stack with `slots` preallocated nodes, payloads zeroed (so a leaked
    /// uninitialized read is observable as `0`), publishing with `publish`.
    pub fn new(slots: usize, publish: Ordering) -> Self {
        Self {
            top: Atomic::new(NIL),
            nodes: (0..slots)
                .map(|_| PubNode {
                    value: Atomic::new(0),
                    next: Atomic::new(NIL),
                })
                .collect(),
            publish,
        }
    }

    /// The buggy variant: `Relaxed` publication.
    pub fn relaxed(slots: usize) -> Self {
        Self::new(slots, Relaxed)
    }

    /// The fixed counterpart: `Release` publication, same step structure.
    pub fn release(slots: usize) -> Self {
        Self::new(slots, Release)
    }

    /// Initializes node `slot` with `value` and publishes it as the new top.
    /// Single-producer: callers must not push the same slot twice or push
    /// concurrently (matching the SPSC-style ownership the pattern models).
    pub fn push(&self, slot: usize, value: u64) {
        let node = &self.nodes[slot];
        // The producer owns `top` for writing, so a `Relaxed` read suffices.
        let top = self.top.load_ord(Relaxed);
        // Node initialization: `Relaxed` on purpose — ordering is supposed
        // to come from the *publish* store below.
        node.value.store_ord(value, Relaxed);
        node.next.store_ord(top, Relaxed);
        // Publication. BUG when `self.publish` is `Relaxed`: may become
        // visible before the two initialization stores above.
        self.top.store_ord(slot, self.publish);
    }

    /// Dereferences the current top's payload, or `None` on an empty stack.
    pub fn peek(&self) -> Option<u64> {
        let top = self.top.load_ord(Acquire);
        if top == NIL {
            return None;
        }
        Some(self.nodes[top].value.load_ord(Relaxed))
    }
}

/// The NBW writer with its `Release` fence deleted. The version protocol is
/// intact — under sequential consistency every interleaving still passes —
/// but with nothing ordering the version-odd store before the payload
/// stores, a payload write can commit *first*: a reader then observes the
/// old even version, a half-new payload, and a recheck that still sees the
/// old even version, accepting the torn snapshot
/// [`crate::models::ModelNbw`]'s fence exists to prevent.
pub struct FencelessNbw {
    version: Atomic<u64>,
    a: Atomic<u64>,
    b: Atomic<u64>,
    /// When true, the `Release` fence is restored — the fixed counterpart,
    /// step-identical otherwise.
    fenced: bool,
}

impl FencelessNbw {
    /// A register holding `(a, b)` with the writer's fence deleted.
    pub fn new(a: u64, b: u64) -> Self {
        Self::with_fence(a, b, false)
    }

    /// The fixed counterpart: same steps, fence restored.
    pub fn fixed(a: u64, b: u64) -> Self {
        Self::with_fence(a, b, true)
    }

    fn with_fence(a: u64, b: u64, fenced: bool) -> Self {
        Self {
            version: Atomic::new(0),
            a: Atomic::new(a),
            b: Atomic::new(b),
            fenced,
        }
    }

    /// `ModelNbw::write` minus the `Release` fence (unless `fixed`).
    pub fn write(&self, a: u64, b: u64) {
        let v = self.version.load_ord(Relaxed);
        self.version.store_ord(v + 1, Relaxed);
        // BUG: `ModelNbw` fences here; without it the payload stores below
        // may commit before the version goes odd.
        if self.fenced {
            fence(Release);
        }
        self.a.store_ord(a, Relaxed);
        self.b.store_ord(b, Relaxed);
        self.version.store_ord(v + 2, Release);
    }

    /// Identical to `ModelNbw::read`.
    pub fn read(&self) -> (u64, u64) {
        loop {
            let v1 = self.version.load_ord(Acquire);
            if !v1.is_multiple_of(2) {
                spin_hint();
                continue;
            }
            let a = self.a.load_ord(Relaxed);
            let b = self.b.load_ord(Relaxed);
            fence(Acquire);
            if self.version.load_ord(Relaxed) == v1 {
                return (a, b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_threaded_all_behave() {
        // Absent interference every variant looks correct — the bugs only
        // exist in specific interleavings, which is why they need the
        // explorer at all.
        let racy = RacyStack::new();
        racy.push(1);
        racy.push(2);
        assert_eq!(racy.pop(), Some(2));
        assert_eq!(racy.drain_plain(), vec![1]);

        let aba = AbaStack::new();
        aba.push(1);
        aba.push(2);
        assert_eq!(aba.pop(), Some(2));
        aba.push(3); // reuses node 1's slot
        assert_eq!(aba.pop(), Some(3));
        assert_eq!(aba.pop(), Some(1));
        assert_eq!(aba.pop(), None);

        let torn = TornNbw::new(0, 0);
        torn.write(3, 6);
        assert_eq!(torn.read(), (3, 6));

        // The weak-memory variants are indistinguishable from their fixed
        // counterparts outside a store-buffer execution.
        let pubstack = RelaxedPubStack::relaxed(2);
        assert_eq!(pubstack.peek(), None);
        pubstack.push(0, 41);
        pubstack.push(1, 42);
        assert_eq!(pubstack.peek(), Some(42));

        let fenceless = FencelessNbw::new(0, 0);
        fenceless.write(3, 6);
        assert_eq!(fenceless.read(), (3, 6));
    }
}
