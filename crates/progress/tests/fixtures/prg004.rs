//! PRG004 fixtures: retiring a node before vs. after the unlink CAS.

pub struct Prg004Broken {
    head: Atomic<u64>,
}

impl Prg004Broken {
    pub fn op(&self, guard: &Guard) {
        let cur = self.head.load(Acquire, guard);
        unsafe { guard.defer_destroy(cur) };
        let _ = self
            .head
            .compare_exchange(cur, Shared::null(), AcqRel, Acquire, guard);
    }
}

pub struct Prg004Clean {
    head: Atomic<u64>,
}

impl Prg004Clean {
    pub fn op(&self, guard: &Guard) {
        let cur = self.head.load(Acquire, guard);
        let _ = self
            .head
            .compare_exchange(cur, Shared::null(), AcqRel, Acquire, guard);
        unsafe { guard.defer_destroy(cur) };
    }
}

pub struct Prg004RecycleBroken {
    head: Atomic<u64>,
}

impl Prg004RecycleBroken {
    pub fn op(&self, guard: &Guard) {
        let cur = self.head.load(Acquire, guard);
        unsafe { guard.defer_recycle(cur, recycle_raw, 0) };
        let _ = self
            .head
            .compare_exchange(cur, Shared::null(), AcqRel, Acquire, guard);
    }
}

pub struct Prg004RecycleClean {
    head: Atomic<u64>,
}

impl Prg004RecycleClean {
    pub fn op(&self, guard: &Guard) {
        let cur = self.head.load(Acquire, guard);
        let _ = self
            .head
            .compare_exchange(cur, Shared::null(), AcqRel, Acquire, guard);
        unsafe { guard.defer_recycle(cur, recycle_raw, 0) };
    }
}
