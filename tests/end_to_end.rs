//! End-to-end comparisons reproducing the paper's headline qualitative
//! results on randomized UAM workloads, plus facade-API smoke tests.

use lockfree_rt::core::{Edf, RuaLockBased, RuaLockFree};
use lockfree_rt::sim::workload::{ArrivalStyle, TufClass, WorkloadSpec};
use lockfree_rt::sim::{Engine, OverheadModel, SharingMode, SimConfig, SimOutcome, UaScheduler};

/// The paper's measured reality: lock-based object access (RUA's resource
/// manager) is far more expensive than a CAS retry loop. These constants
/// stand in for the Figure 8 measurement (r ≫ s).
const R: u64 = 400;
const S: u64 = 25;

fn spec(load: f64, objects: usize, tufs: TufClass, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        num_tasks: 10,
        num_objects: objects,
        accesses_per_job: 4,
        tuf_class: tufs,
        target_load: load,
        window_range: (20_000, 60_000),
        max_burst: 2,
        critical_time_frac: 0.9,
        arrival_style: ArrivalStyle::RandomUam { intensity: 2.0 },
        horizon: 1_500_000,
        read_fraction: 0.0,
        seed,
    }
}

fn run<Sched: UaScheduler>(
    spec: &WorkloadSpec,
    sharing: SharingMode,
    scheduler: Sched,
) -> SimOutcome {
    let (tasks, traces) = spec.build().expect("valid workload");
    Engine::new(
        tasks,
        traces,
        SimConfig::new(sharing).overhead(OverheadModel::per_op(0.05)),
    )
    .expect("valid engine")
    .run(scheduler)
}

#[test]
fn underload_both_disciplines_perform_well() {
    let w = spec(0.3, 4, TufClass::Step, 1);
    let lf = run(
        &w,
        SharingMode::LockFree { access_ticks: S },
        RuaLockFree::new(),
    );
    let lb = run(
        &w,
        SharingMode::LockBased { access_ticks: R },
        RuaLockBased::new(),
    );
    assert!(
        lf.metrics.aur() > 0.95,
        "lock-free underload AUR {}",
        lf.metrics.aur()
    );
    assert!(
        lb.metrics.aur() > 0.80,
        "lock-based underload AUR {}",
        lb.metrics.aur()
    );
}

#[test]
fn overload_lock_free_beats_lock_based() {
    // Figures 12/13: during overloads with many shared objects, lock-based
    // RUA collapses while lock-free RUA keeps accruing.
    for seed in [2u64, 3, 4] {
        let w = spec(1.1, 10, TufClass::Heterogeneous, seed);
        let lf = run(
            &w,
            SharingMode::LockFree { access_ticks: S },
            RuaLockFree::new(),
        );
        let lb = run(
            &w,
            SharingMode::LockBased { access_ticks: R },
            RuaLockBased::new(),
        );
        assert!(
            lf.metrics.aur() > lb.metrics.aur(),
            "seed {seed}: lock-free AUR {} must beat lock-based {}",
            lf.metrics.aur(),
            lb.metrics.aur()
        );
        assert!(
            lf.metrics.cmr() > lb.metrics.cmr(),
            "seed {seed}: lock-free CMR {} must beat lock-based {}",
            lf.metrics.cmr(),
            lb.metrics.cmr()
        );
    }
}

#[test]
fn lock_free_rua_tracks_ideal_rua() {
    // Figure 9's qualitative core: lock-free RUA performs almost as well as
    // the ideal (zero-cost-object) RUA.
    let w = spec(0.7, 10, TufClass::Step, 5);
    let ideal = run(&w, SharingMode::Ideal, RuaLockFree::new());
    let lf = run(
        &w,
        SharingMode::LockFree { access_ticks: S },
        RuaLockFree::new(),
    );
    assert!(
        (ideal.metrics.aur() - lf.metrics.aur()).abs() < 0.10,
        "lock-free {} should track ideal {}",
        lf.metrics.aur(),
        ideal.metrics.aur()
    );
}

#[test]
fn overload_rua_beats_edf_on_utility() {
    // The reason UA scheduling exists: during overloads EDF thrashes while
    // RUA sheds low-return jobs.
    let mut better = 0;
    let mut total_rua = 0.0;
    let mut total_edf = 0.0;
    for seed in [7u64, 8, 9, 10, 11] {
        let w = spec(1.4, 4, TufClass::Step, seed);
        let rua = run(
            &w,
            SharingMode::LockFree { access_ticks: S },
            RuaLockFree::new(),
        );
        let edf = run(&w, SharingMode::LockFree { access_ticks: S }, Edf::new());
        total_rua += rua.metrics.aur();
        total_edf += edf.metrics.aur();
        if rua.metrics.aur() >= edf.metrics.aur() {
            better += 1;
        }
    }
    assert!(
        better >= 4,
        "RUA should beat EDF on most overloaded seeds ({better}/5)"
    );
    assert!(total_rua > total_edf, "aggregate utility must favor RUA");
}

#[test]
fn more_objects_hurt_lock_based_not_lock_free() {
    // Figures 10–13's x-axis: increasing the number of shared objects (and
    // hence lock traffic) degrades lock-based RUA; lock-free RUA stays flat.
    let few = spec(0.9, 2, TufClass::Step, 13);
    let many = {
        let mut s = spec(0.9, 2, TufClass::Step, 13);
        s.num_objects = 10;
        s.accesses_per_job = 8;
        s
    };
    let lb_few = run(
        &few,
        SharingMode::LockBased { access_ticks: R },
        RuaLockBased::new(),
    );
    let lb_many = run(
        &many,
        SharingMode::LockBased { access_ticks: R },
        RuaLockBased::new(),
    );
    let lf_few = run(
        &few,
        SharingMode::LockFree { access_ticks: S },
        RuaLockFree::new(),
    );
    let lf_many = run(
        &many,
        SharingMode::LockFree { access_ticks: S },
        RuaLockFree::new(),
    );
    let lb_drop = lb_few.metrics.aur() - lb_many.metrics.aur();
    let lf_drop = lf_few.metrics.aur() - lf_many.metrics.aur();
    assert!(
        lb_drop > lf_drop,
        "lock-based degradation ({lb_drop:.3}) must exceed lock-free ({lf_drop:.3})"
    );
    assert!(
        lf_many.metrics.aur() > 0.9,
        "lock-free stays healthy: {}",
        lf_many.metrics.aur()
    );
}

#[test]
fn facade_reexports_compose() {
    // The README quickstart path: everything reachable through the facade.
    let tuf = lockfree_rt::tuf::Tuf::step(1.0, 1_000).expect("valid");
    let uam = lockfree_rt::uam::Uam::periodic(1_000);
    let task = lockfree_rt::sim::TaskSpec::builder("t")
        .tuf(tuf)
        .uam(uam)
        .segments(vec![lockfree_rt::sim::Segment::Compute(100)])
        .build()
        .expect("valid task");
    let outcome = lockfree_rt::sim::Engine::new(
        vec![task],
        vec![lockfree_rt::uam::ArrivalTrace::new(vec![0])],
        lockfree_rt::sim::SimConfig::new(lockfree_rt::sim::SharingMode::Ideal),
    )
    .expect("valid engine")
    .run(lockfree_rt::core::RuaLockFree::new());
    assert_eq!(outcome.metrics.completed(), 1);

    // The concurrent objects are also part of the public story.
    let queue = lockfree_rt::lockfree::LockFreeQueue::new();
    queue.enqueue(42u32);
    assert_eq!(queue.dequeue(), Some(42));
}
