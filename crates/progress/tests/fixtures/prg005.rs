//! PRG005 fixtures: the same retry-until-even seqlock read loop, once
//! declared wait_free (fires) and once declared lock_free (clean).

pub struct Prg005Broken {
    seq: AtomicUsize,
}

impl Prg005Broken {
    pub fn read(&self) -> usize {
        loop {
            let s = self.seq.load(Acquire);
            if s % 2 == 0 {
                return s;
            }
        }
    }
}

pub struct Prg005Clean {
    seq: AtomicUsize,
}

impl Prg005Clean {
    pub fn read(&self) -> usize {
        loop {
            let s = self.seq.load(Acquire);
            if s % 2 == 0 {
                return s;
            }
        }
    }
}
