use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::utils::{Backoff, CachePadded};

use crate::stats::OpStats;

/// A bounded lock-free multi-producer/multi-consumer queue (Vyukov's
/// sequence-stamped ring).
///
/// Each slot carries a sequence counter that encodes whose turn it is:
/// producers claim a slot by CAS on the tail, consumers by CAS on the head,
/// and the per-slot sequence hand-off makes the data transfer itself
/// wait-free once the index CAS is won. A failed CAS is one retry of the
/// kind the paper's Theorem 2 bounds for scheduled tasks; retries are
/// counted in [`BoundedMpmcQueue::stats`].
///
/// Unlike the unbounded [`LockFreeQueue`](crate::LockFreeQueue), this queue
/// allocates once at construction — the usual choice for embedded systems
/// that forbid dynamic allocation after initialization.
///
/// The step structure (P1–P5/C1–C5 below) is mirrored by
/// `lfrt-interleave`'s `ModelMpmcQueue`; exploring that model is what
/// surfaced the capacity-1 defect fixed in [`BoundedMpmcQueue::new`]
/// (regression test: `tests/interleavings.rs`).
///
/// # Examples
///
/// ```
/// use lfrt_lockfree::BoundedMpmcQueue;
///
/// let q = BoundedMpmcQueue::new(4);
/// assert!(q.push(1).is_ok());
/// assert!(q.push(2).is_ok());
/// assert_eq!(q.pop(), Some(1));
/// assert_eq!(q.pop(), Some(2));
/// assert_eq!(q.pop(), None);
/// ```
pub struct BoundedMpmcQueue<T> {
    /// Each slot is cache-line padded: a producer publishing slot `i` and a
    /// consumer draining slot `i ± 1` must not invalidate each other's
    /// lines (8 unpadded `u64` slots would share one line).
    slots: Box<[CachePadded<Slot<T>>]>,
    /// Enqueue/dequeue tickets live on separate lines from each other and
    /// from the slots — the two most contended words in the structure.
    head: CachePadded<AtomicUsize>,
    tail: CachePadded<AtomicUsize>,
    stats: OpStats,
}

struct Slot<T> {
    sequence: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

// SAFETY: slot access is handed off through the per-slot sequence protocol;
// exactly one thread touches a slot's value between sequence transitions.
unsafe impl<T: Send> Send for BoundedMpmcQueue<T> {}
// SAFETY: as above.
unsafe impl<T: Send> Sync for BoundedMpmcQueue<T> {}

impl<T: Send> BoundedMpmcQueue<T> {
    /// Creates a queue holding up to `capacity` elements (rounded up to the
    /// next power of two internally, with a minimum of 2).
    ///
    /// The minimum matters: the sequence protocol needs at least two slots
    /// to tell "free for this lap" from "published by this lap". With a
    /// single slot, a producer's published sequence `t + 1` equals the next
    /// ticket, so a second push would claim the slot and overwrite the
    /// unconsumed element — and the skipped sequence then livelocks `pop`.
    /// The deterministic interleaving model caught exactly that history
    /// (`crates/interleave`); the same floor is applied there.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let cap = capacity.next_power_of_two().max(2);
        let slots: Box<[CachePadded<Slot<T>>]> = (0..cap)
            .map(|i| {
                CachePadded::new(Slot {
                    sequence: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
            })
            .collect();
        Self {
            slots,
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
            stats: OpStats::new(),
        }
    }

    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    /// Appends `value`, or hands it back if the queue is full.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` when the queue is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut trace = lfrt_trace::CasOp::start(lfrt_trace::Site::MpmcPush);
        let mask = self.mask();
        let backoff = Backoff::new();
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            self.stats.attempt();
            trace.attempt();
            let slot = &self.slots[tail & mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            match seq as isize - tail as isize {
                0 => {
                    // The slot is free for this ticket; claim it.
                    match self.tail.compare_exchange_weak(
                        tail,
                        tail.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: winning the tail CAS grants exclusive
                            // write access to this slot until the sequence
                            // store below hands it to a consumer.
                            unsafe { (*slot.value.get()).write(value) };
                            slot.sequence.store(tail.wrapping_add(1), Ordering::Release);
                            trace.success();
                            return Ok(());
                        }
                        Err(actual) => {
                            self.stats.retry();
                            trace.retry();
                            backoff.spin();
                            tail = actual;
                        }
                    }
                }
                d if d < 0 => {
                    trace.success(); // completed: observed full
                    return Err(value); // a full lap behind: full
                }
                _ => {
                    // Another producer advanced; reload and retry.
                    self.stats.retry();
                    trace.retry();
                    backoff.spin();
                    tail = self.tail.load(Ordering::Relaxed);
                }
            }
        }
    }

    /// Removes the oldest element, or `None` if the queue is empty.
    pub fn pop(&self) -> Option<T> {
        let mut trace = lfrt_trace::CasOp::start(lfrt_trace::Site::MpmcPop);
        let mask = self.mask();
        let backoff = Backoff::new();
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            self.stats.attempt();
            trace.attempt();
            let slot = &self.slots[head & mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            match seq as isize - (head.wrapping_add(1)) as isize {
                0 => {
                    match self.head.compare_exchange_weak(
                        head,
                        head.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: winning the head CAS grants exclusive
                            // read access; the producer initialized the slot
                            // before its Release store of this sequence.
                            let value = unsafe { (*slot.value.get()).assume_init_read() };
                            slot.sequence
                                .store(head.wrapping_add(mask + 1), Ordering::Release);
                            trace.success();
                            return Some(value);
                        }
                        Err(actual) => {
                            self.stats.retry();
                            trace.retry();
                            backoff.spin();
                            head = actual;
                        }
                    }
                }
                d if d < 0 => {
                    trace.success(); // completed: observed empty
                    return None; // nothing published yet: empty
                }
                _ => {
                    self.stats.retry();
                    trace.retry();
                    backoff.spin();
                    head = self.head.load(Ordering::Relaxed);
                }
            }
        }
    }

    /// Whether the queue is observed empty (racy under concurrency).
    pub fn is_empty(&self) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[head & self.mask()];
        (slot.sequence.load(Ordering::Acquire) as isize) - (head.wrapping_add(1) as isize) < 0
    }

    /// The attempt/retry counters of this queue.
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }
}

impl<T> fmt::Debug for BoundedMpmcQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoundedMpmcQueue")
            .field("capacity", &self.slots.len())
            .field("stats", &self.stats.snapshot())
            .finish_non_exhaustive()
    }
}

impl<T> Drop for BoundedMpmcQueue<T> {
    fn drop(&mut self) {
        // Drain remaining initialized elements: a slot holds a value iff its
        // sequence equals position + 1 (published, unconsumed).
        let mask = self.slots.len() - 1;
        let mut head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        while head != tail {
            let slot = &mut self.slots[head & mask];
            if *slot.sequence.get_mut() == head.wrapping_add(1) {
                // SAFETY: published and never consumed; both endpoints are
                // gone (`&mut self`).
                unsafe { (*slot.value.get()).assume_init_drop() };
            }
            head = head.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_capacity() {
        let q = BoundedMpmcQueue::new(4);
        for i in 0..4 {
            assert!(q.push(i).is_ok());
        }
        assert_eq!(q.push(99), Err(99), "full at power-of-two capacity");
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_one_gets_two_slots_and_conserves_elements() {
        // Regression: with a single slot, the second push used to claim the
        // slot of the still-unconsumed first element (sequence t + 1 equals
        // the next ticket), losing it and livelocking the next pop.
        let q = BoundedMpmcQueue::new(1);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok(), "rounded up to two slots");
        assert_eq!(q.push(3), Err(3), "full at two");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let q = BoundedMpmcQueue::new(3);
        for i in 0..4 {
            assert!(q.push(i).is_ok(), "rounded capacity admits 4");
        }
        assert!(q.push(4).is_err());
    }

    #[test]
    fn drop_frees_unconsumed_elements() {
        let q = BoundedMpmcQueue::new(8);
        for i in 0..5 {
            q.push(Box::new(i)).expect("room");
        }
        let _ = q.pop();
        drop(q); // 4 remaining boxes freed exactly once
    }

    #[test]
    fn wraparound_reuses_slots() {
        let q = BoundedMpmcQueue::new(2);
        for lap in 0..100u64 {
            assert!(q.push(lap).is_ok());
            assert_eq!(q.pop(), Some(lap));
        }
    }

    #[test]
    fn concurrent_element_conservation() {
        const THREADS: usize = 4;
        const PER_THREAD: usize = 2_000;
        let q = Arc::new(BoundedMpmcQueue::new(64));
        let producers: Vec<_> = (0..THREADS)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        let mut v = p * PER_THREAD + i;
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::hint::spin_loop();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..THREADS)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while got.len() < PER_THREAD {
                        if let Some(v) = q.pop() {
                            got.push(v);
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                    got
                })
            })
            .collect();
        for h in producers {
            h.join().expect("producer panicked");
        }
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|h| h.join().expect("consumer panicked"))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..THREADS * PER_THREAD).collect::<Vec<_>>());
        assert!(q.is_empty());
    }
}
