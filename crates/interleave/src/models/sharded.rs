//! Model of the sharded MPMC queue, mirroring
//! `crates/lockfree/src/sharded.rs`: N independent [`ModelMpmcQueue`]
//! shards, per-thread enqueue affinity, and a stealing dequeue scan.
//!
//! The real `ShardedMpmcQueue` computes a home shard from the caller's
//! thread hash; the model takes the home index as an explicit argument
//! (`push_from`/`pop_from`), since model threads are scheduled actors, not
//! OS threads. All scheduled steps belong to the underlying
//! [`ModelMpmcQueue`] ring protocol (P1–P5/C1–C5); the scan order itself
//! is thread-local control flow and takes no step, exactly like the real
//! `(home + i) & mask` loop.
//!
//! The seeded twin ([`ModelShardedQueue::steal_repush`]) encodes the
//! tempting-but-wrong "affinity restore": when the dequeue scan steals
//! from a remote shard, the twin moves the stolen element back into the
//! caller's home shard and reports the pop as empty, retrying later. The
//! re-push can meet a full home shard — and then the element is gone:
//! the shard-scan lost-item bug. The faithful scan returns the stolen
//! element directly and never re-publishes it.

use super::mpmc::ModelMpmcQueue;

/// A sharded bounded MPMC queue; see the module docs.
pub struct ModelShardedQueue {
    shards: Vec<ModelMpmcQueue>,
    /// Seeded bug: steals re-push into the home shard (lossy when full)
    /// instead of returning the stolen element.
    steal_repush: bool,
}

impl ModelShardedQueue {
    /// The faithful model: `shards` independent rings of `per_shard_capacity`
    /// (both rounded like the real constructor).
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `per_shard_capacity` is zero.
    pub fn new(shards: usize, per_shard_capacity: usize) -> Self {
        Self::with_bug(shards, per_shard_capacity, false)
    }

    /// The shard-scan lost-item twin; see the module docs.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `per_shard_capacity` is zero.
    pub fn steal_repush(shards: usize, per_shard_capacity: usize) -> Self {
        Self::with_bug(shards, per_shard_capacity, true)
    }

    fn with_bug(shards: usize, per_shard_capacity: usize, steal_repush: bool) -> Self {
        assert!(shards > 0, "shard count must be positive");
        let count = shards.next_power_of_two();
        Self {
            shards: (0..count)
                .map(|_| ModelMpmcQueue::new(per_shard_capacity))
                .collect(),
            steal_repush,
        }
    }

    fn mask(&self) -> usize {
        self.shards.len() - 1
    }

    /// Mirrors `ShardedMpmcQueue::push` with the caller's home shard made
    /// explicit: try `home`, then scan the remaining shards in order; `Err`
    /// only when every shard rejected the value as full.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` when all shards are full.
    pub fn push_from(&self, home: usize, value: u64) -> Result<(), u64> {
        let mask = self.mask();
        let mut value = value;
        for i in 0..self.shards.len() {
            match self.shards[(home + i) & mask].push(value) {
                Ok(()) => return Ok(()),
                Err(v) => value = v,
            }
        }
        Err(value)
    }

    /// Mirrors `ShardedMpmcQueue::pop`: try `home`, then steal-scan the
    /// remaining shards; `None` only when every shard read empty.
    pub fn pop_from(&self, home: usize) -> Option<u64> {
        let mask = self.mask();
        for i in 0..self.shards.len() {
            let shard = (home + i) & mask;
            if let Some(value) = self.shards[shard].pop() {
                if i != 0 && self.steal_repush {
                    // Seeded bug: "restore affinity" by re-enqueueing the
                    // stolen element at home and reporting empty. The
                    // element now depends on home having room — when the
                    // re-push meets a full shard it is silently dropped.
                    let _ = self.shards[home & mask].push(value);
                    return None;
                }
                return Some(value);
            }
        }
        None
    }

    /// Post-check helper: remaining elements shard by shard, without
    /// scheduling (single-threaded use only).
    pub fn drain_plain(&self) -> Vec<u64> {
        self.shards
            .iter()
            .flat_map(|shard| shard.drain_plain())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_affinity_and_steal() {
        let q = ModelShardedQueue::new(2, 2);
        q.push_from(0, 1).unwrap();
        q.push_from(1, 2).unwrap();
        // Home hit first, then the steal finds the remote element.
        assert_eq!(q.pop_from(0), Some(1));
        assert_eq!(q.pop_from(0), Some(2));
        assert_eq!(q.pop_from(0), None);
    }

    #[test]
    fn push_overflows_to_next_shard() {
        // Per-shard capacity 1 rounds up to the ring's 2-slot minimum.
        let q = ModelShardedQueue::new(2, 1);
        for v in 0..4 {
            q.push_from(0, v).unwrap();
        }
        assert_eq!(q.push_from(0, 9), Err(9), "all shards full");
        let mut all = q.drain_plain();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn steal_repush_twin_relocates_and_reports_empty() {
        let q = ModelShardedQueue::steal_repush(2, 2);
        q.push_from(1, 7).unwrap();
        // The steal finds 7 but the twin re-homes it and reports empty.
        assert_eq!(q.pop_from(0), None);
        // Single-threaded, the home shard has room, so the element
        // survives relocation; the *loss* needs the home shard to fill
        // between the steal and the re-push — the interleave test's job.
        assert_eq!(q.pop_from(0), Some(7));
        assert_eq!(q.pop_from(0), None);
    }
}
