//! End-to-end tests of the `lfrt` binary: spawn the real executable and
//! check its output and exit codes.

use std::io::Write;
use std::process::{Command, Stdio};

fn lfrt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lfrt"))
}

#[test]
fn help_prints_usage() {
    let out = lfrt().arg("help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("USAGE"));
    assert!(text.contains("workload"));
}

#[test]
fn no_arguments_fails_with_usage() {
    let out = lfrt().output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .expect("utf8")
        .contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = lfrt().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
}

#[test]
fn workload_runs_deterministically() {
    let run = || {
        let out = lfrt()
            .args([
                "workload",
                "--tasks",
                "4",
                "--load",
                "0.4",
                "--horizon",
                "100000",
                "--seed",
                "7",
            ])
            .output()
            .expect("spawn");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("utf8")
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed, same report");
    assert!(a.contains("AUR"));
}

#[test]
fn bound_computes_known_value() {
    let out = lfrt()
        .args([
            "bound",
            "--critical",
            "1000",
            "--a",
            "1",
            "--others",
            "2:500",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("≤ 15"), "{text}");
}

#[test]
fn fit_reads_stdin() {
    let mut child = lfrt()
        .args(["fit", "--window", "100", "--horizon", "1000"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(b"0\n10\n10\n500\n")
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("a=3"), "{text}");
}

#[test]
fn summary_reads_record_csv() {
    let mut child = lfrt()
        .arg("summary")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn");
    let csv = "job,task,arrival,resolved_at,completed,utility,retries,blockings,preemptions\n\
               0,0,0,100,true,5,0,0,0\n";
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(csv.as_bytes())
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("records 1"), "{text}");
}
