//! ORD003 fixture: failure ordering stronger than success. The swapped
//! pair also fires ORD005: its Acquire failure value goes unused.

fn swapped_pair(v: &AtomicUsize) {
    let _ = v.compare_exchange(0, 1, Relaxed, Acquire);
}

fn ordered_pair(v: &Atomic) {
    match v.compare_exchange(a, b, AcqRel, Acquire) {
        Ok(_) => {}
        Err(seen) => drop(seen.deref()),
    }
}
