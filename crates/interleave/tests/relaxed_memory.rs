//! Relaxed-mode (ARM/POWER-class) exploration tests: the seeded
//! load-reordering bugs must be caught with a replayable schedule under
//! [`Config::relaxed`] while (a) the *same* models pass every sequentially
//! consistent schedule AND every store-buffer schedule within the same
//! bounds — proving both weaker modes cannot see these bugs — and (b) their
//! fixed counterparts pass the same relaxed bounds. The faithful mirrors of
//! `crates/lockfree` re-run under the relaxed mode and must stay green: the
//! orderings the real code declares are sufficient even once `Relaxed`
//! loads can read stale values.

use std::sync::{Arc, Mutex};

use lfrt_interleave::models::buggy::{MsgPassing, StaleNbwReader, StalePubRing, MSG};
use lfrt_interleave::models::{
    ModelCasRegister, ModelMpmcQueue, ModelMsQueue, ModelNbw, ModelSpscRing, ModelTreiberStack,
};
use lfrt_interleave::{
    explore, replay_in, Config, FailureKind, MemoryMode, Plan, Schedule, REORDER_BASE,
};

fn relaxed_mode() -> MemoryMode {
    MemoryMode::Relaxed {
        bound: MemoryMode::DEFAULT_BOUND,
        window: MemoryMode::DEFAULT_WINDOW,
    }
}

fn store_buffer_mode() -> MemoryMode {
    MemoryMode::StoreBuffer {
        bound: MemoryMode::DEFAULT_BOUND,
    }
}

/// Asserts the failing schedule carries at least one stale-read decision —
/// the witness that the failure genuinely needs load reordering, not just
/// store buffering.
fn assert_reorder_bearing(schedule: &Schedule) {
    assert!(
        schedule.steps().iter().any(|&id| id >= REORDER_BASE),
        "failing schedule {schedule} has no stale-read decision"
    );
}

/// Replays `schedule` under the relaxed mode and asserts the same panic
/// message reproduces — the determinism obligation for persisted failures.
fn assert_replays(schedule: &Schedule, needle: &str, scenario: impl Fn() -> Plan) {
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        replay_in(relaxed_mode(), schedule, &scenario)
    }))
    .expect_err("replay must reproduce the relaxed-memory failure");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains(needle), "{msg}");
}

// ---------------------------------------------------------------------------
// Seeded bug 1: message passing with a load-buffering consumer.
// ---------------------------------------------------------------------------

/// Producer `Release`-publishes; consumer asserts a visible flag implies a
/// complete message.
fn msg_passing_scenario(make: fn() -> MsgPassing) -> Plan {
    let mp = Arc::new(make());
    let producer = Arc::clone(&mp);
    let consumer = Arc::clone(&mp);
    Plan::new()
        .thread(move || producer.publish())
        .thread(move || {
            if let Some(got) = consumer.consume() {
                assert_eq!(got, MSG, "flag visible but message incomplete: {got}");
            }
        })
}

#[test]
fn msg_passing_passes_every_sc_schedule() {
    explore(&Config::exhaustive("msg-passing-sc"), || {
        msg_passing_scenario(MsgPassing::relaxed)
    })
    .assert_ok();
}

#[test]
fn msg_passing_passes_every_store_buffer_schedule() {
    // The demonstrator that TSO exploration alone cannot see this bug: the
    // producer's release store commits in order, and store-buffer loads
    // always read the freshest committed value.
    explore(&Config::store_buffer("msg-passing-tso"), || {
        msg_passing_scenario(MsgPassing::relaxed)
    })
    .assert_ok();
}

#[test]
fn msg_passing_caught_by_relaxed_with_replayable_schedule() {
    let report = explore(&Config::relaxed("msg-passing-relaxed"), || {
        msg_passing_scenario(MsgPassing::relaxed)
    });
    let failure = report.assert_fails();
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("message incomplete"),
        "{failure:?}"
    );
    assert_reorder_bearing(&failure.schedule);
    assert_replays(&failure.schedule, "message incomplete", || {
        msg_passing_scenario(MsgPassing::relaxed)
    });
}

#[test]
fn acquire_consumer_passes_the_same_relaxed_bounds() {
    explore(&Config::relaxed("msg-passing-fixed"), || {
        msg_passing_scenario(MsgPassing::acquire)
    })
    .assert_ok();
}

// ---------------------------------------------------------------------------
// Seeded bug 2: seqlock/NBW reader with the Acquire fence deleted.
// ---------------------------------------------------------------------------

/// The relaxed config shared by the NBW pair: as in `tests/weak_memory.rs`,
/// the reader's retry loop multiplied by flush *and* stale-read decisions
/// makes exhaustive exploration explode, so the pair runs CHESS-bounded at
/// 3 preemptions. The seeded fence bug needs exactly 3 (switch to the
/// writer, one payload flush mid-read, one more flush while the reader is
/// runnable), so the bound is tight but sufficient — and bug and fix run
/// under the *same* bounds.
fn nbw_relaxed(name: &'static str) -> Config {
    Config {
        preemption_bound: Some(3),
        ..Config::relaxed(name)
    }
}

fn nbw_store_buffer(name: &'static str) -> Config {
    Config {
        preemption_bound: Some(3),
        ..Config::store_buffer(name)
    }
}

/// One (correct, fenced) writer; the reader must never return a torn pair.
fn stale_nbw_scenario(fenced: bool) -> Plan {
    let nbw = Arc::new(if fenced {
        StaleNbwReader::fixed(0, 0)
    } else {
        StaleNbwReader::new(0, 0)
    });
    let writer = Arc::clone(&nbw);
    let reader = Arc::clone(&nbw);
    Plan::new()
        .thread(move || writer.write(1, 1))
        .thread(move || {
            let got = reader.read();
            assert!(got == (0, 0) || got == (1, 1), "torn NBW read: {got:?}");
        })
}

#[test]
fn stale_nbw_reader_passes_every_sc_schedule() {
    explore(&Config::exhaustive("stale-nbw-sc"), || {
        stale_nbw_scenario(false)
    })
    .assert_ok();
}

#[test]
fn stale_nbw_reader_passes_store_buffer_bounds() {
    // Under TSO the missing Acquire fence is a no-op (loads are never
    // reordered), so the buggy reader is step-identical to the fixed one
    // and passes the same bounds `fenced_nbw_passes...` pins green.
    explore(&nbw_store_buffer("stale-nbw-tso"), || {
        stale_nbw_scenario(false)
    })
    .assert_ok();
}

#[test]
fn stale_nbw_reader_caught_by_relaxed() {
    let report = explore(&nbw_relaxed("stale-nbw-relaxed"), || {
        stale_nbw_scenario(false)
    });
    let failure = report.assert_fails();
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(failure.message.contains("torn NBW read"), "{failure:?}");
    assert_reorder_bearing(&failure.schedule);
    assert_replays(&failure.schedule, "torn NBW read", || {
        stale_nbw_scenario(false)
    });
}

#[test]
fn fenced_nbw_reader_passes_the_same_relaxed_bounds() {
    explore(&nbw_relaxed("fenced-nbw-relaxed"), || {
        stale_nbw_scenario(true)
    })
    .assert_ok();
}

// ---------------------------------------------------------------------------
// Seeded bug 3: publication pair observed out of order by a relaxed
// consumer.
// ---------------------------------------------------------------------------

/// Producer `Release`-publishes two entries; the consumer must never read a
/// sentinel from a slot the tail claims is published.
fn pub_ring_scenario(make: fn() -> StalePubRing) -> Plan {
    let ring = Arc::new(make());
    let producer = Arc::clone(&ring);
    let consumer = Arc::clone(&ring);
    Plan::new()
        .thread(move || producer.produce())
        .thread(move || {
            for (i, v) in consumer.consume().into_iter().enumerate() {
                assert_ne!(v, 0, "published slot {i} read as sentinel");
            }
        })
}

#[test]
fn stale_pub_ring_passes_every_sc_schedule() {
    explore(&Config::exhaustive("stale-pub-ring-sc"), || {
        pub_ring_scenario(StalePubRing::relaxed)
    })
    .assert_ok();
}

#[test]
fn stale_pub_ring_passes_every_store_buffer_schedule() {
    explore(&Config::store_buffer("stale-pub-ring-tso"), || {
        pub_ring_scenario(StalePubRing::relaxed)
    })
    .assert_ok();
}

#[test]
fn stale_pub_ring_caught_by_relaxed_with_replayable_schedule() {
    let report = explore(&Config::relaxed("stale-pub-ring-relaxed"), || {
        pub_ring_scenario(StalePubRing::relaxed)
    });
    let failure = report.assert_fails();
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(failure.message.contains("read as sentinel"), "{failure:?}");
    assert_reorder_bearing(&failure.schedule);
    assert_replays(&failure.schedule, "read as sentinel", || {
        pub_ring_scenario(StalePubRing::relaxed)
    });
}

#[test]
fn acquire_ring_consumer_passes_the_same_relaxed_bounds() {
    explore(&Config::relaxed("stale-pub-ring-fixed"), || {
        pub_ring_scenario(StalePubRing::acquire)
    })
    .assert_ok();
}

// ---------------------------------------------------------------------------
// Replay refusal: a stale-read-bearing schedule is meaningless under any
// mode without a stale window, and must say so rather than diverge.
// ---------------------------------------------------------------------------

#[test]
fn reorder_schedule_refuses_sc_and_store_buffer_replay() {
    let report = explore(&Config::relaxed("msg-passing-refusal"), || {
        msg_passing_scenario(MsgPassing::relaxed)
    });
    let failure = report.assert_fails();
    assert_reorder_bearing(&failure.schedule);
    // Under SC the schedule's flush decisions are rejected first; under the
    // store-buffer mode flushes are legal, so the refusal must name the
    // stale-read decision specifically.
    let expected = [
        (MemoryMode::Sc, "flush decision"),
        (store_buffer_mode(), "stale-read decision"),
    ];
    for (mode, needle) in expected {
        let err = std::panic::catch_unwind(|| {
            replay_in(mode, &failure.schedule, || {
                msg_passing_scenario(MsgPassing::relaxed)
            })
        })
        .expect_err("a stale-read-bearing schedule must not replay under a windowless mode");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains(needle), "{msg}");
    }
}

// ---------------------------------------------------------------------------
// The faithful mirrors, re-run under the relaxed mode: the orderings the
// real code declares must be sufficient even with stale-read decisions in
// play. Scenarios mirror `tests/weak_memory.rs` exactly, bounds included.
// ---------------------------------------------------------------------------

/// The mirrors' relaxed config. The nightly extended-exploration CI job
/// sets `INTERLEAVE_EXTENDED=1` to deepen the stale window and buffer
/// bound past the per-PR defaults (more stale-read branching per load);
/// per-PR runs use [`Config::relaxed`] unchanged so the suite stays fast.
fn mirror_relaxed(name: &'static str) -> Config {
    let mut cfg = Config::relaxed(name);
    if std::env::var_os("INTERLEAVE_EXTENDED").is_some() {
        cfg.memory = MemoryMode::Relaxed {
            bound: 6,
            window: 3,
        };
    }
    cfg
}

#[test]
fn treiber_stack_sound_under_relaxed() {
    explore(&mirror_relaxed("treiber-relaxed"), || {
        let stack = Arc::new(ModelTreiberStack::new());
        let pusher = Arc::clone(&stack);
        let popper = Arc::clone(&stack);
        let popped = Arc::new(Mutex::new(None));
        let result = Arc::clone(&popped);
        let check_stack = Arc::clone(&stack);
        let check_popped = Arc::clone(&popped);
        Plan::new()
            .thread(move || pusher.push(7))
            .thread(move || {
                *result.lock().unwrap() = popper.pop();
            })
            .check(move || {
                let popped = *check_popped.lock().unwrap();
                let remaining = check_stack.drain_plain();
                match popped {
                    Some(7) => assert!(remaining.is_empty(), "popped yet still present"),
                    None => assert_eq!(remaining, vec![7], "push lost"),
                    other => panic!("popped a value never pushed: {other:?}"),
                }
            })
    })
    .assert_ok();
}

#[test]
fn ms_queue_sound_under_relaxed() {
    explore(&mirror_relaxed("ms-queue-relaxed"), || {
        let queue = Arc::new(ModelMsQueue::new());
        let producer = Arc::clone(&queue);
        let consumer = Arc::clone(&queue);
        let got = Arc::new(Mutex::new(None));
        let result = Arc::clone(&got);
        let check_queue = Arc::clone(&queue);
        let check_got = Arc::clone(&got);
        Plan::new()
            .thread(move || producer.enqueue(5))
            .thread(move || {
                *result.lock().unwrap() = consumer.dequeue();
            })
            .check(move || {
                let got = *check_got.lock().unwrap();
                let remaining = check_queue.drain_plain();
                match got {
                    Some(5) => assert!(remaining.is_empty(), "dequeued yet still queued"),
                    None => assert_eq!(remaining, vec![5], "enqueue lost"),
                    other => panic!("dequeued a value never enqueued: {other:?}"),
                }
            })
    })
    .assert_ok();
}

#[test]
fn spsc_ring_sound_under_relaxed() {
    explore(&mirror_relaxed("spsc-ring-relaxed"), || {
        let ring = Arc::new(ModelSpscRing::new(1));
        let producer = Arc::clone(&ring);
        let consumer = Arc::clone(&ring);
        let got = Arc::new(Mutex::new(Vec::new()));
        let result = Arc::clone(&got);
        let check_ring = Arc::clone(&ring);
        let check_got = Arc::clone(&got);
        Plan::new()
            .thread(move || {
                producer.push(7).expect("empty ring cannot be full");
            })
            .thread(move || {
                if let Some(v) = consumer.pop() {
                    result.lock().unwrap().push(v);
                }
            })
            .check(move || {
                let mut seen = check_got.lock().unwrap().clone();
                seen.extend(check_ring.drain_plain());
                assert_eq!(seen, vec![7], "ring lost or tore the element");
            })
    })
    .assert_ok();
}

#[test]
fn nbw_register_sound_under_relaxed() {
    // Same CHESS bound as the bug/fix pair, for the same tree-size reason;
    // `stale_nbw_reader_caught_by_relaxed` is the evidence this bound
    // reaches the stale reads that matter for this shape.
    explore(&nbw_relaxed("nbw-relaxed"), || {
        let nbw = Arc::new(ModelNbw::new(0, 0));
        let writer = Arc::clone(&nbw);
        let reader = Arc::clone(&nbw);
        Plan::new()
            .thread(move || writer.write(1, 2))
            .thread(move || {
                let got = reader.read();
                assert!(got == (0, 0) || got == (1, 2), "torn NBW read: {got:?}");
            })
    })
    .assert_ok();
}

#[test]
fn cas_register_sound_under_relaxed() {
    explore(&mirror_relaxed("cas-register-relaxed"), || {
        let reg = Arc::new(ModelCasRegister::new(0));
        let mut plan = Plan::new();
        for _ in 0..2 {
            let reg = Arc::clone(&reg);
            plan = plan.thread(move || {
                reg.update(|v| v + 1);
            });
        }
        let reg = Arc::clone(&reg);
        plan.check(move || assert_eq!(reg.load_plain(), 2, "lost update"))
    })
    .assert_ok();
}

#[test]
fn mpmc_queue_sound_under_relaxed() {
    explore(&mirror_relaxed("mpmc-relaxed"), || {
        let queue = Arc::new(ModelMpmcQueue::new(2));
        let producer = Arc::clone(&queue);
        let consumer = Arc::clone(&queue);
        let got = Arc::new(Mutex::new(None));
        let result = Arc::clone(&got);
        let check_queue = Arc::clone(&queue);
        let check_got = Arc::clone(&got);
        Plan::new()
            .thread(move || {
                producer.push(9).expect("2-capacity queue cannot be full");
            })
            .thread(move || {
                *result.lock().unwrap() = consumer.pop();
            })
            .check(move || {
                let got = *check_got.lock().unwrap();
                let remaining = check_queue.drain_plain();
                match got {
                    Some(9) => assert!(remaining.is_empty(), "popped yet still queued"),
                    None => assert_eq!(remaining, vec![9], "push lost"),
                    other => panic!("popped a value never pushed: {other:?}"),
                }
            })
    })
    .assert_ok();
}
