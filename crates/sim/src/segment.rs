use crate::ids::ObjectId;
use crate::Ticks;

/// How a job touches a shared object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read-only access. Under lock-free sharing, reads are invalidated by
    /// concurrent writes but do not themselves invalidate others.
    Read,
    /// A mutating access (e.g. enqueue/dequeue). Under lock-free sharing a
    /// committed write invalidates any in-flight access to the same object.
    Write,
}

/// One step of a job's execution plan.
///
/// A job alternates local computation with accesses to sequentially-shared
/// objects. Access durations are determined by the simulation's
/// [`SharingMode`](crate::SharingMode): `r` ticks for lock-based critical
/// sections, `s` ticks per lock-free attempt, zero for the ideal discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Segment {
    /// Local computation for the given number of ticks (part of `u_i`).
    Compute(Ticks),
    /// One flat access to a shared object (part of `m_i`): under lock-based
    /// sharing a self-contained critical section, under lock-free sharing
    /// one retryable attempt.
    Access {
        /// The object accessed.
        object: ObjectId,
        /// Whether the access mutates the object.
        kind: AccessKind,
    },
    /// Explicitly acquires the lock on `object` (lock-based sharing only),
    /// holding it across subsequent segments until the matching
    /// [`Segment::Release`]. Enables *nested* critical sections — the
    /// configuration under which RUA's deadlock detection and resolution
    /// (§3.3 of the paper) can actually trigger.
    Acquire {
        /// The object to lock.
        object: ObjectId,
    },
    /// Releases a lock previously taken by [`Segment::Acquire`].
    Release {
        /// The object to unlock.
        object: ObjectId,
    },
}

impl Segment {
    /// Whether this segment is a flat shared-object access (the `m_i` of
    /// the paper's analysis; explicit acquire/release pairs are counted
    /// separately).
    #[inline]
    pub fn is_access(&self) -> bool {
        matches!(self, Segment::Access { .. })
    }

    /// Whether this segment uses explicit lock structuring
    /// ([`Segment::Acquire`] or [`Segment::Release`]).
    #[inline]
    pub fn is_explicit_lock(&self) -> bool {
        matches!(self, Segment::Acquire { .. } | Segment::Release { .. })
    }

    /// Local compute ticks of this segment (zero for accesses and lock
    /// operations).
    #[inline]
    pub fn compute_ticks(&self) -> Ticks {
        match self {
            Segment::Compute(t) => *t,
            _ => 0,
        }
    }

    /// The object touched by this segment, if any.
    #[inline]
    pub fn object(&self) -> Option<ObjectId> {
        match self {
            Segment::Compute(_) => None,
            Segment::Access { object, .. }
            | Segment::Acquire { object }
            | Segment::Release { object } => Some(*object),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let c = Segment::Compute(25);
        assert!(!c.is_access());
        assert_eq!(c.compute_ticks(), 25);
        assert_eq!(c.object(), None);

        let a = Segment::Access {
            object: ObjectId::new(2),
            kind: AccessKind::Write,
        };
        assert!(a.is_access());
        assert_eq!(a.compute_ticks(), 0);
        assert_eq!(a.object(), Some(ObjectId::new(2)));
    }
}
