//! ORD001 fixture: Relaxed publication of a fresh allocation.

fn publish_relaxed(top: &Atomic) {
    let node = Box::new(Node::default());
    top.store(node, Relaxed);
}

fn publish_release(top: &Atomic) {
    let node = Box::new(Node::default());
    top.store(node, Release);
}
