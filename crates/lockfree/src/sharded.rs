//! Sharded bounded MPMC queue: N independent [`BoundedMpmcQueue`]s behind
//! per-thread enqueue affinity and a stealing dequeue scan.
//!
//! The Vyukov queue's cost under contention is serialization on its two
//! ticket words: every producer CASes the same `tail`, every consumer the
//! same `head`, and the retry traffic grows with the thread count — the
//! very effect the paper's retry-bound analysis prices. Sharding splits
//! the structure into `shards` independent rings so that, with threads
//! spread across shards, producers (and consumers) mostly contend only
//! within their shard.
//!
//! * **Enqueue affinity**: a thread's home shard is its Fibonacci-hashed
//!   ordinal (`crate::stats::thread_hash` — the same lane hash the
//!   `OpStats` stripes and the node pool's telemetry shards use) masked to
//!   the shard count. A full home shard falls through to a bounded scan of
//!   the others; `Err` is returned only when *every* shard is full.
//! * **Dequeue stealing**: a consumer drains its home shard first and
//!   steals from the others when home is empty (emitting one
//!   [`lfrt_trace::EventKind::ShardSteal`] event per successful steal), so
//!   no element is stranded by affinity.
//!
//! # Ordering semantics: FIFO **per shard**, not global
//!
//! Elements that land in the same shard dequeue in FIFO order (the
//! underlying ring's guarantee). Across shards there is **no order**: a
//! consumer may observe element B (its home shard) before an older A
//! (another shard). Uses that need a single total FIFO order must use
//! [`BoundedMpmcQueue`] directly — that serialization is exactly what a
//! total order costs. This is the standard sharded-queue contract
//! (documented here per the DESIGN.md §6d discussion); the interleave
//! mirror checks element conservation and per-shard FIFO, not global FIFO.
//!
//! Progress: push/pop are lock-free with the same argument as the
//! underlying ring — the scan adds a bounded number of shard attempts, and
//! a failed shard attempt means other threads completed operations.

use crate::mpmc::BoundedMpmcQueue;
use crate::stats::{thread_hash, StatsSnapshot};

/// Default shard count for [`ShardedMpmcQueue::with_default_shards`]: four
/// shards halve-twice the per-word contention at the 4-thread sweeps the
/// experiments run while keeping the full-scan cost (the worst-case pop on
/// an empty queue) trivial.
pub const DEFAULT_SHARDS: usize = 4;

/// A bounded MPMC queue sharded over independent [`BoundedMpmcQueue`]s.
///
/// # Examples
///
/// ```
/// use lfrt_lockfree::ShardedMpmcQueue;
///
/// let q = ShardedMpmcQueue::new(4, 64);
/// assert!(q.push(1).is_ok());
/// assert!(q.push(2).is_ok());
/// assert_eq!(q.pop(), Some(1));
/// assert_eq!(q.pop(), Some(2));
/// assert_eq!(q.pop(), None);
/// ```
/// (Single-threaded use stays globally FIFO — one thread has one home
/// shard. See the module docs for the cross-thread ordering contract.)
pub struct ShardedMpmcQueue<T> {
    shards: Box<[BoundedMpmcQueue<T>]>,
    /// `shards.len() - 1`; the count is a power of two.
    mask: usize,
}

impl<T: Send> ShardedMpmcQueue<T> {
    /// Creates a queue of `shards` rings (rounded up to a power of two,
    /// minimum 1) holding up to `per_shard_capacity` elements each.
    ///
    /// # Panics
    ///
    /// Panics if `per_shard_capacity` is zero (the underlying ring's
    /// contract).
    pub fn new(shards: usize, per_shard_capacity: usize) -> Self {
        let count = shards.next_power_of_two().max(1);
        let shards: Box<[BoundedMpmcQueue<T>]> = (0..count)
            .map(|_| BoundedMpmcQueue::new(per_shard_capacity))
            .collect();
        Self {
            mask: count - 1,
            shards,
        }
    }

    /// Creates a queue of [`DEFAULT_SHARDS`] shards whose total capacity is
    /// at least `capacity`.
    pub fn with_default_shards(capacity: usize) -> Self {
        Self::new(DEFAULT_SHARDS, capacity.div_ceil(DEFAULT_SHARDS).max(1))
    }

    /// The calling thread's home shard index.
    fn home(&self) -> usize {
        thread_hash() & self.mask
    }

    /// Appends `value` to the calling thread's home shard, scanning the
    /// other shards if it is full.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` only when every shard is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let home = self.home();
        let mut value = value;
        for i in 0..self.shards.len() {
            match self.shards[(home + i) & self.mask].push(value) {
                Ok(()) => return Ok(()),
                Err(v) => value = v,
            }
        }
        Err(value)
    }

    /// Removes the oldest element of the calling thread's home shard, or
    /// steals the oldest element of another shard when home is empty.
    /// Returns `None` only when every shard is observed empty.
    pub fn pop(&self) -> Option<T> {
        let home = self.home();
        for i in 0..self.shards.len() {
            let shard = (home + i) & self.mask;
            if let Some(value) = self.shards[shard].pop() {
                if i != 0 {
                    lfrt_trace::emit(
                        lfrt_trace::EventKind::ShardSteal,
                        lfrt_trace::Site::Sharded,
                        shard as u64,
                    );
                }
                return Some(value);
            }
        }
        None
    }

    /// Whether every shard is observed empty (a snapshot under
    /// concurrency, like the underlying ring's).
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Attempt/retry counters summed over every shard's [`crate::OpStats`].
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let mut total = StatsSnapshot::default();
        for shard in self.shards.iter() {
            let snap = shard.stats().snapshot();
            total.attempts += snap.attempts;
            total.retries += snap.retries;
        }
        total
    }
}

impl<T> std::fmt::Debug for ShardedMpmcQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMpmcQueue")
            .field("shards", &(self.mask + 1))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_thread_fifo_round_trip() {
        let q = ShardedMpmcQueue::new(4, 8);
        for i in 0..8 {
            assert!(q.push(i).is_ok());
        }
        for i in 0..8 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedMpmcQueue::<u64>::new(3, 4).shard_count(), 4);
        assert_eq!(ShardedMpmcQueue::<u64>::new(1, 4).shard_count(), 1);
        assert_eq!(ShardedMpmcQueue::<u64>::new(0, 4).shard_count(), 1);
        assert!(ShardedMpmcQueue::<u64>::with_default_shards(100).shard_count() >= 1);
    }

    #[test]
    fn full_means_every_shard_full() {
        // 2 shards x 2 slots: a single thread must be able to place 4
        // elements (affinity overflow scans the sibling shard) and the
        // fifth must bounce.
        let q = ShardedMpmcQueue::new(2, 2);
        for i in 0..4 {
            assert!(q.push(i).is_ok(), "push {i} should overflow-scan");
        }
        assert_eq!(q.push(4), Err(4));
        let mut drained = Vec::new();
        while let Some(v) = q.pop() {
            drained.push(v);
        }
        drained.sort_unstable();
        assert_eq!(drained, vec![0, 1, 2, 3]);
    }

    #[test]
    fn steal_scan_recovers_other_shards_elements() {
        // Fill every shard from this thread, then drain: the non-home
        // elements arrive via the steal scan.
        let q = ShardedMpmcQueue::new(4, 2);
        for i in 0..8 {
            assert!(q.push(i).is_ok());
        }
        let mut drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        drained.sort_unstable();
        assert_eq!(drained, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_element_conservation() {
        const THREADS: usize = 4;
        const PER_THREAD: usize = 5_000;
        let q = Arc::new(ShardedMpmcQueue::new(4, 1024));
        let producers: Vec<_> = (0..THREADS)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        let mut v = p * PER_THREAD + i;
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(back) => v = back,
                            }
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..THREADS)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while got.len() < PER_THREAD {
                        if let Some(v) = q.pop() {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        for h in producers {
            h.join().expect("producer panicked");
        }
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|h| h.join().expect("consumer panicked"))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..THREADS * PER_THREAD).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    fn per_shard_fifo_holds_for_one_producer_one_shard() {
        // One thread, one shard: degenerates to the plain ring, which is
        // exactly the per-shard FIFO contract.
        let q = ShardedMpmcQueue::new(1, 64);
        for i in 0..64 {
            assert!(q.push(i).is_ok());
        }
        for i in 0..64 {
            assert_eq!(q.pop(), Some(i));
        }
    }
}
