//! Model of Treiber's stack, mirroring `crates/lockfree/src/stack.rs`.

use crate::arena::{Arena, NIL};
use crate::atomic::Atomic;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};

/// A stack node: payload plus the `next` link published by the push CAS.
pub struct StackNode {
    /// The element.
    pub value: u64,
    /// Index of the node below, or [`NIL`].
    pub next: Atomic<usize>,
}

/// Treiber stack over arena indices. The arena is append-only, which is
/// precisely the guarantee crossbeam's epochs give the real stack: a node
/// observed by a concurrent `pop` is never recycled under it, so the ABA
/// case cannot arise. Compare [`crate::models::buggy::AbaStack`].
pub struct ModelTreiberStack {
    top: Atomic<usize>,
    arena: Arena<StackNode>,
}

impl ModelTreiberStack {
    /// An empty stack.
    pub fn new() -> Self {
        Self {
            top: Atomic::new(NIL),
            arena: Arena::new(),
        }
    }

    /// Mirrors `TreiberStack::push`.
    pub fn push(&self, value: u64) {
        // Owned::new — node allocation (step, for deterministic indices).
        let idx = self.arena.alloc(StackNode {
            value,
            next: Atomic::new(NIL),
        });
        let node = self.arena.get(idx);
        loop {
            // S1: `self.top.load(Acquire)`.
            let top = self.top.load_ord(Acquire);
            // Pre-publication `new.next.store(top, Relaxed)`: not a step —
            // unreachable by other threads until the CAS below.
            node.next.store_plain(top);
            // S2: `self.top.compare_exchange(top, new, Release, Relaxed)`.
            if self
                .top
                .compare_exchange_ord(top, idx, Release, Relaxed)
                .is_ok()
            {
                return;
            }
            // Err(e) => retry with the node we still own.
        }
    }

    /// Mirrors `TreiberStack::pop`.
    pub fn pop(&self) -> Option<u64> {
        loop {
            // S1: `self.top.load(Acquire)`.
            let top = self.top.load_ord(Acquire);
            // `unsafe { top.as_ref() }?` — empty check.
            if top == NIL {
                return None;
            }
            let node = self.arena.get(top);
            // S2: `top_ref.next.load(Relaxed)`.
            let next = node.next.load_ord(Relaxed);
            // S3: `self.top.compare_exchange(top, next, Release, Relaxed)`.
            if self
                .top
                .compare_exchange_ord(top, next, Release, Relaxed)
                .is_ok()
            {
                // `ptr::read(&top_ref.data)` after winning the CAS:
                // exclusive by protocol, not a step.
                return Some(node.value);
            }
        }
    }

    /// Post-check helper: drains remaining elements top-down without
    /// scheduling (single-threaded use only).
    pub fn drain_plain(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cursor = self.top.load_plain();
        while cursor != NIL {
            let node = self.arena.get(cursor);
            out.push(node.value);
            cursor = node.next.load_plain();
        }
        out
    }
}

impl Default for ModelTreiberStack {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_single_threaded() {
        let s = ModelTreiberStack::new();
        s.push(1);
        s.push(2);
        s.push(3);
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.drain_plain(), vec![2, 1]);
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
    }
}
