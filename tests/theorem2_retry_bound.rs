//! Cross-validation of Theorem 2: measured lock-free retries never exceed
//! the analytic bound, on UAM-conformant workloads including the adversarial
//! arrival patterns from the proof.

use lockfree_rt::analysis::RetryBoundInput;
use lockfree_rt::core::RuaLockFree;
use lockfree_rt::sim::workload::{ArrivalStyle, TufClass, WorkloadSpec};
use lockfree_rt::sim::{Engine, SharingMode, SimConfig, TaskSpec};
use lockfree_rt::uam::Uam;

fn check_retries_against_bound(spec: &WorkloadSpec, access_ticks: u64) {
    let (tasks, traces) = spec.build().expect("valid workload");
    for (task, trace) in tasks.iter().zip(&traces) {
        assert!(
            trace.conforms_to(task.uam()).is_ok(),
            "trace must satisfy the UAM for the bound to apply"
        );
    }
    let params: Vec<(Uam, u64)> = tasks
        .iter()
        .map(|t| (*t.uam(), t.tuf().critical_time()))
        .collect();
    let bounds: Vec<u64> = (0..tasks.len())
        .map(|i| RetryBoundInput::for_task(&params, i).retry_bound())
        .collect();
    let outcome = Engine::new(
        tasks,
        traces,
        SimConfig::new(SharingMode::LockFree { access_ticks }),
    )
    .expect("valid engine")
    .run(RuaLockFree::new());
    assert!(
        outcome.metrics.released() > 10,
        "workload must exercise the system"
    );
    let mut any_retry = false;
    for record in &outcome.records {
        let bound = bounds[record.task.index()];
        assert!(
            record.retries <= bound,
            "job {} of task {} suffered {} retries, above the Theorem 2 bound {}",
            record.id,
            record.task,
            record.retries,
            bound
        );
        any_retry |= record.retries > 0;
    }
    // The check is only meaningful if contention actually happened.
    assert!(any_retry, "workload produced no retries; tighten it");
}

#[test]
fn random_uam_workload_respects_bound() {
    let spec = WorkloadSpec {
        num_tasks: 8,
        num_objects: 2, // few objects => heavy contention
        accesses_per_job: 4,
        tuf_class: TufClass::Step,
        target_load: 0.8,
        window_range: (5_000, 20_000),
        max_burst: 3,
        critical_time_frac: 0.9,
        arrival_style: ArrivalStyle::RandomUam { intensity: 3.0 },
        horizon: 400_000,
        read_fraction: 0.0,
        seed: 5,
    };
    check_retries_against_bound(&spec, 200);
}

#[test]
fn adversarial_back_to_back_bursts_respect_bound() {
    let spec = WorkloadSpec {
        num_tasks: 6,
        num_objects: 1, // single shared object: worst contention
        accesses_per_job: 3,
        tuf_class: TufClass::Heterogeneous,
        target_load: 0.9,
        window_range: (8_000, 12_000),
        max_burst: 2,
        critical_time_frac: 0.95,
        arrival_style: ArrivalStyle::BackToBackBurst,
        horizon: 300_000,
        read_fraction: 0.0,
        seed: 11,
    };
    check_retries_against_bound(&spec, 300);
}

#[test]
fn overloaded_system_respects_bound() {
    // Overloads shorten effective lifetimes via aborts; retries must still
    // obey the bound (the proof only uses the [t0, t0+C] window).
    let spec = WorkloadSpec {
        num_tasks: 10,
        num_objects: 3,
        accesses_per_job: 5,
        tuf_class: TufClass::Step,
        target_load: 1.3,
        window_range: (5_000, 15_000),
        max_burst: 2,
        critical_time_frac: 0.9,
        arrival_style: ArrivalStyle::RandomUam { intensity: 4.0 },
        horizon: 300_000,
        read_fraction: 0.0,
        seed: 23,
    };
    check_retries_against_bound(&spec, 150);
}

#[test]
fn many_seeds_never_violate() {
    for seed in 0..10 {
        let spec = WorkloadSpec {
            num_tasks: 5,
            num_objects: 2,
            accesses_per_job: 3,
            tuf_class: TufClass::Step,
            target_load: 0.7,
            window_range: (4_000, 10_000),
            max_burst: 2,
            critical_time_frac: 0.9,
            arrival_style: ArrivalStyle::RandomUam { intensity: 3.0 },
            horizon: 150_000,
            read_fraction: 0.0,
            seed,
        };
        let (tasks, traces) = spec.build().expect("valid workload");
        let params: Vec<(Uam, u64)> = tasks
            .iter()
            .map(|t| (*t.uam(), t.tuf().critical_time()))
            .collect();
        let bounds: Vec<u64> = (0..tasks.len())
            .map(|i| RetryBoundInput::for_task(&params, i).retry_bound())
            .collect();
        let outcome = Engine::new(
            tasks,
            traces,
            SimConfig::new(SharingMode::LockFree { access_ticks: 120 }),
        )
        .expect("valid engine")
        .run(RuaLockFree::new());
        for record in &outcome.records {
            assert!(
                record.retries <= bounds[record.task.index()],
                "seed {seed}: job {} exceeded bound",
                record.id
            );
        }
    }
}

#[test]
fn bound_is_independent_of_object_count_in_measurement_too() {
    // Theorem 2's remark: f_i does not grow with the number of objects a
    // job touches. Double the objects per job while keeping arrivals fixed;
    // the per-task bound is unchanged and still holds.
    let mk = |accesses: usize, seed: u64| WorkloadSpec {
        num_tasks: 6,
        num_objects: 6,
        accesses_per_job: accesses,
        tuf_class: TufClass::Step,
        target_load: 0.8,
        window_range: (6_000, 9_000),
        max_burst: 2,
        critical_time_frac: 0.9,
        arrival_style: ArrivalStyle::RandomUam { intensity: 3.0 },
        horizon: 200_000,
        read_fraction: 0.0,
        seed,
    };
    for accesses in [2usize, 4, 8] {
        let spec = mk(accesses, 3);
        let (tasks, traces) = spec.build().expect("valid workload");
        let params: Vec<(Uam, u64)> = tasks
            .iter()
            .map(|t| (*t.uam(), t.tuf().critical_time()))
            .collect();
        let outcome = Engine::new(
            tasks,
            traces,
            SimConfig::new(SharingMode::LockFree { access_ticks: 100 }),
        )
        .expect("valid engine")
        .run(RuaLockFree::new());
        for record in &outcome.records {
            let bound = RetryBoundInput::for_task(&params, record.task.index()).retry_bound();
            assert!(record.retries <= bound);
        }
    }
}

/// A hand-built two-task scenario where the bound is tight enough to reason
/// about: the victim's measured retries stay within a small fraction of the
/// analytic ceiling, demonstrating the bound is meaningful rather than
/// vacuous.
#[test]
fn hand_built_scenario_bound_is_not_vacuous() {
    use lockfree_rt::sim::{AccessKind, ObjectId, Segment};
    use lockfree_rt::tuf::Tuf;
    use lockfree_rt::uam::ArrivalTrace;

    let shared_access = Segment::Access {
        object: ObjectId::new(0),
        kind: AccessKind::Write,
    };
    // Victim performs 12 back-to-back accesses of 300 ticks each; the
    // interferer (higher PUD, shorter critical time) arrives every 1000
    // ticks and stomps the object mid-access, costing one retry each time.
    let victim = TaskSpec::builder("victim")
        .tuf(Tuf::step(1.0, 10_000).expect("valid"))
        .uam(Uam::new(1, 1, 10_000).expect("valid"))
        .segments(vec![shared_access; 12])
        .build()
        .expect("valid task");
    let interferer = TaskSpec::builder("interferer")
        .tuf(Tuf::step(10.0, 900).expect("valid"))
        .uam(Uam::new(1, 1, 1_000).expect("valid"))
        .segments(vec![shared_access])
        .build()
        .expect("valid task");
    let outcome = Engine::new(
        vec![victim, interferer],
        vec![
            ArrivalTrace::new(vec![0]),
            ArrivalTrace::new((0..10).map(|k| 100 + k * 1_000).collect()),
        ],
        SimConfig::new(SharingMode::LockFree { access_ticks: 300 }),
    )
    .expect("valid engine")
    .run(RuaLockFree::new());
    let victim_rec = outcome
        .records
        .iter()
        .find(|r| r.task.index() == 0)
        .expect("victim resolved");
    let bound = RetryBoundInput {
        own_max_arrivals: 1,
        critical_time: 10_000,
        others: vec![Uam::new(1, 1, 1_000).expect("valid")],
    }
    .retry_bound(); // 3 + 2·1·(10+1) = 25
    assert_eq!(bound, 25);
    assert!(victim_rec.retries <= bound);
    assert!(
        victim_rec.retries >= 5,
        "scenario should force many retries (got {})",
        victim_rec.retries
    );
}
