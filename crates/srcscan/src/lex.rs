//! Token-level helpers over cleaned source text.
//!
//! Everything here operates on the blanked text from [`crate::source`], so
//! brackets and identifiers can be matched without worrying about comments
//! or string literals. Offsets in and out are byte offsets into that text
//! (identical to offsets into the raw text).

/// Whether `b` can appear inside a Rust identifier.
pub fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// The last non-whitespace byte before `pos`.
pub fn prev_sig(bytes: &[u8], pos: usize) -> Option<u8> {
    bytes[..pos]
        .iter()
        .rev()
        .copied()
        .find(|b| !b.is_ascii_whitespace())
}

/// Byte offset of the bracket matching `bytes[open]`.
pub fn matching(bytes: &[u8], open: usize, op: u8, cl: u8) -> Option<usize> {
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        if b == op {
            depth += 1;
        } else if b == cl {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Byte offset of the opening bracket matching the closer at `close`.
pub fn matching_back(bytes: &[u8], close: usize, op: u8, cl: u8) -> Option<usize> {
    let mut depth = 0usize;
    for i in (0..=close).rev() {
        if bytes[i] == cl {
            depth += 1;
        } else if bytes[i] == op {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Walks backwards from the `.` before a method name, collecting the
/// receiver chain (identifiers, field accesses, balanced `()` and `[]`).
/// Returns the normalized chain (whitespace stripped, index expressions
/// collapsed to `[_]`, call arguments to `()`) and its leading identifier.
///
/// `name_start` must point at the method identifier, whose significant
/// preceding byte is a `.` (the caller checks with [`prev_sig`]).
pub fn receiver_chain(clean: &str, name_start: usize) -> (String, String) {
    let bytes = clean.as_bytes();
    let mut i = name_start;
    while i > 0 && bytes[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    debug_assert_eq!(bytes.get(i - 1), Some(&b'.'));
    i -= 1; // now at the `.`
    let chain_end = i;
    let mut start = i;
    loop {
        while start > 0 && bytes[start - 1].is_ascii_whitespace() {
            start -= 1;
        }
        if start == 0 {
            break;
        }
        match bytes[start - 1] {
            b')' => match matching_back(bytes, start - 1, b'(', b')') {
                Some(open) => start = open,
                None => break,
            },
            b']' => match matching_back(bytes, start - 1, b'[', b']') {
                Some(open) => start = open,
                None => break,
            },
            b'.' => start -= 1,
            c if is_ident_char(c) => {
                while start > 0 && is_ident_char(bytes[start - 1]) {
                    start -= 1;
                }
                // A `::` path prefix ends the chain at this identifier.
                if start >= 2 && &bytes[start - 2..start] == b"::" {
                    break;
                }
                // Continue only through a field access.
                let mut j = start;
                while j > 0 && bytes[j - 1].is_ascii_whitespace() {
                    j -= 1;
                }
                if j > 0 && bytes[j - 1] == b'.' {
                    start = j - 1;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    let span = &clean[start..chain_end];
    (normalize_receiver(span), leading_ident(span))
}

/// Normalizes a receiver span: whitespace stripped, index expressions
/// collapsed to `[_]`, call arguments to `()`.
pub fn normalize_receiver(span: &str) -> String {
    let bytes = span.as_bytes();
    let mut out = String::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'[' => {
                out.push_str("[_]");
                i = matching(bytes, i, b'[', b']').map_or(bytes.len(), |c| c + 1);
            }
            b'(' => {
                out.push_str("()");
                i = matching(bytes, i, b'(', b')').map_or(bytes.len(), |c| c + 1);
            }
            b if b.is_ascii_whitespace() => i += 1,
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    out
}

/// The leading identifier of a receiver span (`self`, `node`, ...).
pub fn leading_ident(span: &str) -> String {
    span.trim_start()
        .bytes()
        .take_while(|&b| is_ident_char(b))
        .map(|b| b as char)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receiver_chain_walks_fields_indexes_and_calls() {
        let src = "x = self.slots[tail & mask].sequence.load";
        let name_start = src.len() - "load".len();
        let (chain, base) = receiver_chain(src, name_start);
        assert_eq!(chain, "self.slots[_].sequence");
        assert_eq!(base, "self");
    }

    #[test]
    fn receiver_chain_stops_at_path_prefix() {
        let src = "epoch::pin().top.load";
        let name_start = src.len() - "load".len();
        let (chain, base) = receiver_chain(src, name_start);
        assert_eq!(chain, "pin().top");
        assert_eq!(base, "pin");
    }

    #[test]
    fn matching_pairs_nest() {
        let bytes = b"a(b(c)d)e";
        assert_eq!(matching(bytes, 1, b'(', b')'), Some(7));
        assert_eq!(matching_back(bytes, 7, b'(', b')'), Some(1));
    }

    #[test]
    fn prev_sig_skips_whitespace() {
        assert_eq!(prev_sig(b"a .  x", 5), Some(b'.'));
        assert_eq!(prev_sig(b"   x", 3), None);
    }
}
