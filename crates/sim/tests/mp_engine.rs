//! Multiprocessor engine tests: parallel speedup, cross-CPU lock-free
//! interference without preemption, cross-CPU blocking, and degeneration to
//! the uniprocessor engine at m = 1.

use lfrt_sim::mp::MpEngine;
use lfrt_sim::{
    AccessKind, Decision, Engine, JobId, ObjectId, SchedulerContext, Segment, SharingMode,
    SimConfig, TaskSpec, UaScheduler,
};
use lfrt_tuf::Tuf;
use lfrt_uam::{ArrivalTrace, Uam};

#[derive(Clone)]
struct Edf;

impl UaScheduler for Edf {
    fn name(&self) -> &str {
        "edf-test"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        let mut order: Vec<JobId> = ctx.jobs.iter().map(|j| j.id).collect();
        order.sort_by_key(|&id| {
            let j = ctx.job(id).expect("listed job");
            (j.absolute_critical_time, id)
        });
        Decision {
            order,
            ops: 1,
            ..Decision::default()
        }
    }
}

fn task(name: &str, critical: u64, segments: Vec<Segment>) -> TaskSpec {
    TaskSpec::builder(name)
        .tuf(Tuf::step(1.0, critical).expect("valid tuf"))
        .uam(Uam::periodic(critical.max(1)))
        .segments(segments)
        .build()
        .expect("valid task")
}

fn access(object: usize) -> Segment {
    Segment::Access {
        object: ObjectId::new(object),
        kind: AccessKind::Write,
    }
}

#[test]
fn two_cpus_run_independent_jobs_in_parallel() {
    let a = task("a", 10_000, vec![Segment::Compute(1_000)]);
    let b = task("b", 10_000, vec![Segment::Compute(1_000)]);
    let outcome = MpEngine::new(
        vec![a, b],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![0])],
        SimConfig::new(SharingMode::Ideal),
        2,
    )
    .expect("valid engine")
    .run(Edf);
    assert_eq!(outcome.metrics.completed(), 2);
    // Both finish at t = 1000: true parallelism, zero preemptions.
    for r in &outcome.records {
        assert_eq!(r.resolved_at, 1_000);
        assert_eq!(r.preemptions, 0);
    }
}

#[test]
fn single_cpu_mp_matches_uniprocessor_engine() {
    let mk = || {
        (
            vec![
                task("a", 10_000, vec![Segment::Compute(700), access(0)]),
                task("b", 4_000, vec![access(0), Segment::Compute(300)]),
            ],
            vec![
                ArrivalTrace::new(vec![0, 10_000]),
                ArrivalTrace::new(vec![100]),
            ],
        )
    };
    let (tasks, traces) = mk();
    let uni = Engine::new(
        tasks,
        traces,
        SimConfig::new(SharingMode::LockFree { access_ticks: 200 }),
    )
    .expect("valid engine")
    .run(Edf);
    let (tasks, traces) = mk();
    let mp = MpEngine::new(
        tasks,
        traces,
        SimConfig::new(SharingMode::LockFree { access_ticks: 200 }),
        1,
    )
    .expect("valid engine")
    .run(Edf);
    assert_eq!(
        uni.records, mp.records,
        "m = 1 must degenerate to the uniprocessor engine"
    );
}

#[test]
fn concurrent_lock_free_access_interferes_without_preemption() {
    // Two CPUs, two jobs, one object, simultaneous 500-tick write attempts.
    // Both start at version 0; one commits at 500 (version 1); the other's
    // check fails and it retries — interference with zero preemptions,
    // impossible on a uniprocessor.
    let a = task("a", 50_000, vec![access(0)]);
    let b = task("b", 50_001, vec![access(0)]);
    let outcome = MpEngine::new(
        vec![a, b],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![0])],
        SimConfig::new(SharingMode::LockFree { access_ticks: 500 }),
        2,
    )
    .expect("valid engine")
    .run(Edf);
    assert_eq!(outcome.metrics.completed(), 2);
    assert_eq!(
        outcome.metrics.preemptions(),
        0,
        "nobody was ever descheduled"
    );
    assert_eq!(
        outcome.metrics.retries(),
        1,
        "exactly one attempt loses the race"
    );
    let latest = outcome
        .records
        .iter()
        .map(|r| r.resolved_at)
        .max()
        .expect("ran");
    assert_eq!(latest, 1_000, "loser retries once: 500 wasted + 500 clean");
}

#[test]
fn lock_based_blocks_across_cpus() {
    let holder = task("holder", 50_000, vec![access(0), Segment::Compute(10)]);
    let waiter = task("waiter", 50_001, vec![access(0)]);
    let outcome = MpEngine::new(
        vec![holder, waiter],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![0])],
        SimConfig::new(SharingMode::LockBased { access_ticks: 400 }),
        2,
    )
    .expect("valid engine")
    .run(Edf);
    assert_eq!(outcome.metrics.completed(), 2);
    assert_eq!(outcome.metrics.blockings(), 1);
    let waiter_rec = outcome
        .records
        .iter()
        .find(|r| r.task.index() == 1)
        .expect("ran");
    // Waits for the holder's 400-tick critical section, then runs its own.
    assert_eq!(waiter_rec.resolved_at, 800);
}

#[test]
fn more_cpus_never_reduce_throughput() {
    let tasks = |n: usize| -> (Vec<TaskSpec>, Vec<ArrivalTrace>) {
        let t: Vec<TaskSpec> = (0..n)
            .map(|i| task(&format!("t{i}"), 3_000, vec![Segment::Compute(1_000)]))
            .collect();
        let traces = (0..n).map(|_| ArrivalTrace::new(vec![0])).collect();
        (t, traces)
    };
    // Four 1000-tick jobs, critical time 3000: one CPU finishes two (the
    // third would complete exactly AT its critical time, which is a miss).
    let (t, tr) = tasks(4);
    let one = MpEngine::new(t, tr, SimConfig::new(SharingMode::Ideal), 1)
        .expect("valid engine")
        .run(Edf);
    let (t, tr) = tasks(4);
    let two = MpEngine::new(t, tr, SimConfig::new(SharingMode::Ideal), 2)
        .expect("valid engine")
        .run(Edf);
    assert_eq!(one.metrics.completed(), 2);
    assert_eq!(one.metrics.aborted(), 2);
    assert_eq!(two.metrics.completed(), 4, "two CPUs finish all four");
}

#[test]
fn zero_processors_rejected() {
    let t = task("t", 1_000, vec![Segment::Compute(10)]);
    assert!(MpEngine::new(
        vec![t],
        vec![ArrivalTrace::new(vec![0])],
        SimConfig::new(SharingMode::Ideal),
        0,
    )
    .is_err());
}

#[test]
fn mp_runs_are_deterministic() {
    let spec = lfrt_sim::workload::WorkloadSpec::paper_baseline(77);
    let run = || {
        let (tasks, traces) = spec.build().expect("valid workload");
        MpEngine::new(
            tasks,
            traces,
            SimConfig::new(SharingMode::LockFree { access_ticks: 10 }),
            3,
        )
        .expect("valid engine")
        .run(Edf)
    };
    let a = run();
    let b = run();
    assert_eq!(a.records, b.records);
}

#[test]
fn partitioned_dispatch_pins_tasks_to_their_cpu() {
    // Task 0 → CPU 0, tasks 1 and 2 → CPU 1. CPU 1 serializes its two
    // jobs even though CPU 0 goes idle after 500 ticks.
    let tasks = vec![
        task("t0", 50_000, vec![Segment::Compute(500)]),
        task("t1", 50_001, vec![Segment::Compute(1_000)]),
        task("t2", 50_002, vec![Segment::Compute(1_000)]),
    ];
    let traces = vec![
        ArrivalTrace::new(vec![0]),
        ArrivalTrace::new(vec![0]),
        ArrivalTrace::new(vec![0]),
    ];
    let outcome = MpEngine::new(tasks, traces, SimConfig::new(SharingMode::Ideal), 2)
        .expect("valid engine")
        .with_partitioning(vec![0, 1, 1])
        .expect("valid assignment")
        .run(Edf);
    assert_eq!(outcome.metrics.completed(), 3);
    let done = |t: usize| {
        outcome
            .records
            .iter()
            .find(|r| r.task.index() == t)
            .expect("ran")
            .resolved_at
    };
    assert_eq!(done(0), 500);
    assert_eq!(done(1), 1_000);
    // t2 cannot migrate to the idle CPU 0: it waits for t1.
    assert_eq!(done(2), 2_000);
}

#[test]
fn global_beats_partitioned_on_imbalanced_load() {
    // Same workload as above under global dispatch: t2 migrates to the idle
    // CPU and everything finishes by 1500.
    let tasks = vec![
        task("t0", 50_000, vec![Segment::Compute(500)]),
        task("t1", 50_001, vec![Segment::Compute(1_000)]),
        task("t2", 50_002, vec![Segment::Compute(1_000)]),
    ];
    let traces = vec![
        ArrivalTrace::new(vec![0]),
        ArrivalTrace::new(vec![0]),
        ArrivalTrace::new(vec![0]),
    ];
    let outcome = MpEngine::new(tasks, traces, SimConfig::new(SharingMode::Ideal), 2)
        .expect("valid engine")
        .run(Edf);
    let makespan = outcome
        .records
        .iter()
        .map(|r| r.resolved_at)
        .max()
        .expect("ran");
    assert_eq!(makespan, 1_500, "global dispatch fills the idle CPU");
}

#[test]
fn bad_partition_assignments_rejected() {
    let t = task("t", 1_000, vec![Segment::Compute(10)]);
    let engine = MpEngine::new(
        vec![t.clone()],
        vec![ArrivalTrace::new(vec![0])],
        SimConfig::new(SharingMode::Ideal),
        2,
    )
    .expect("valid engine");
    assert!(
        engine.with_partitioning(vec![5]).is_err(),
        "cpu out of range"
    );
    let engine = MpEngine::new(
        vec![t],
        vec![ArrivalTrace::new(vec![0])],
        SimConfig::new(SharingMode::Ideal),
        2,
    )
    .expect("valid engine");
    assert!(
        engine.with_partitioning(vec![0, 1]).is_err(),
        "wrong length"
    );
}

#[test]
fn crash_injection_works_on_multiprocessors() {
    // The crasher dies on its CPU while a peer keeps running on another.
    let crasher = TaskSpec::builder("crasher")
        .tuf(Tuf::step(1.0, 100_000).expect("valid tuf"))
        .uam(Uam::periodic(1_000_000))
        .segments(vec![Segment::Compute(5_000)])
        .crash_after(700)
        .build()
        .expect("valid task");
    let peer = task("peer", 100_000, vec![Segment::Compute(2_000)]);
    let outcome = MpEngine::new(
        vec![crasher, peer],
        vec![ArrivalTrace::new(vec![0]), ArrivalTrace::new(vec![0])],
        SimConfig::new(SharingMode::Ideal),
        2,
    )
    .expect("valid engine")
    .run(Edf);
    assert_eq!(outcome.metrics.crashed(), 1);
    assert_eq!(outcome.metrics.completed(), 1);
    let crash = outcome
        .records
        .iter()
        .find(|r| r.task.index() == 0)
        .expect("crashed");
    assert_eq!(crash.resolved_at, 700);
    let peer_rec = outcome
        .records
        .iter()
        .find(|r| r.task.index() == 1)
        .expect("ran");
    assert_eq!(peer_rec.resolved_at, 2_000, "the peer is unaffected");
}

#[test]
fn partitioning_by_object_eliminates_cross_cpu_blocking() {
    // Tasks 0-1 share object 0; tasks 2-3 share object 1. Partitioned so
    // each object's users live on one CPU, lock requests never cross CPUs
    // and — on a uniprocessor-per-partition — never even contend, because a
    // partition's jobs run one at a time. Global dispatch, by contrast,
    // runs two users of the same object simultaneously and blocks.
    let mk = |name: &str, object: usize| {
        TaskSpec::builder(name)
            .tuf(Tuf::step(1.0, 50_000).expect("valid tuf"))
            .uam(Uam::periodic(100_000))
            .segments(vec![access(object), Segment::Compute(100)])
            .build()
            .expect("valid task")
    };
    let tasks = vec![mk("a0", 0), mk("a1", 0), mk("b0", 1), mk("b1", 1)];
    let traces: Vec<ArrivalTrace> = (0..4).map(|_| ArrivalTrace::new(vec![0])).collect();
    let sharing = SharingMode::LockBased {
        access_ticks: 1_000,
    };

    let global = MpEngine::new(tasks.clone(), traces.clone(), SimConfig::new(sharing), 2)
        .expect("valid engine")
        .run(Edf);
    let partitioned = MpEngine::new(tasks, traces, SimConfig::new(sharing), 2)
        .expect("valid engine")
        .with_partitioning(vec![0, 0, 1, 1])
        .expect("valid assignment")
        .run(Edf);

    assert_eq!(global.metrics.completed(), 4);
    assert_eq!(partitioned.metrics.completed(), 4);
    assert!(
        global.metrics.blockings() >= 1,
        "global dispatch contends cross-CPU"
    );
    assert_eq!(
        partitioned.metrics.blockings(),
        0,
        "object-aligned partitioning removes lock contention entirely"
    );
}
