//! `lfrt-interleave`: a deterministic concurrency-testing harness for the
//! lock-free object suite of `crates/lockfree`.
//!
//! The paper's correctness argument (lock-free retry loops linearize, and
//! Theorem 2 bounds how often they retry) is only as good as the
//! implementations being *actually* linearizable. Stress tests sample a
//! handful of interleavings per run; this crate instead **enumerates** them.
//! In the style of CHESS and loom, a scenario is rebuilt and re-run once per
//! schedule, with every shared-memory operation (an [`Atomic`] load, store,
//! swap, or CAS, or an [`Arena`] allocation) a scheduling decision point:
//!
//! ```
//! use lfrt_interleave::{explore, Atomic, Config, Plan};
//! use std::sync::Arc;
//!
//! let report = explore(&Config::exhaustive("cas-counter"), || {
//!     let counter = Arc::new(Atomic::new(0u64));
//!     let mut plan = Plan::new();
//!     for _ in 0..2 {
//!         let counter = Arc::clone(&counter);
//!         plan = plan.thread(move || {
//!             // One lock-free increment: load, then CAS, retried on
//!             // interference — two yield points per attempt.
//!             loop {
//!                 let seen = counter.load();
//!                 if counter.compare_exchange(seen, seen + 1).is_ok() {
//!                     break;
//!                 }
//!             }
//!         });
//!     }
//!     let counter = Arc::clone(&counter);
//!     plan.check(move || assert_eq!(counter.load_plain(), 2))
//! });
//! report.assert_ok(); // every interleaving of the two increments is sound
//! ```
//!
//! # What a failure looks like
//!
//! When a schedule makes a model panic (or livelock), the [`Report`] carries
//! a [`Schedule`] — a dot-joined list of thread ids, e.g. `"0.0.1.1.0"` —
//! and [`Report::assert_ok`] prints it before panicking. Feed that string to
//! [`replay_str`] with the same scenario factory to re-run the *exact*
//! failing interleaving under a debugger, deterministic every time.
//!
//! # Linearizability
//!
//! [`History`] timestamps each operation's invocation and response during a
//! run; [`linear::find_witness`] then searches for a sequential order of
//! the completed operations that (a) respects real time — an operation that
//! returned before another was invoked stays before it — and (b) replays
//! correctly against a [`SeqSpec`] reference model ([Wing & Gong's
//! algorithm][wg]). The specs in [`spec`] cover every shared-object family
//! in `crates/lockfree`; the step-faithful mirrors of the real algorithms
//! live in [`models`], and the intentionally broken variants the explorer
//! must catch live in [`models::buggy`].
//!
//! [wg]: https://doi.org/10.1006/jpdc.1993.1015
//!
//! # Scope
//!
//! By default the model executes under **sequential consistency**:
//! exploration covers every interleaving of the instrumented steps but no
//! weak-memory reordering, and only schedules within the configured
//! preemption bound (see [`Config`]). [`Config::store_buffer`] adds a
//! TSO/PSO-style **store-buffer mode**: the `_ord` operations of [`Atomic`]
//! declare the orderings the mirrored real code uses, `Relaxed`/`Release`
//! stores commit at explicit flush steps the explorer enumerates, and a
//! failing weak-memory schedule replays with [`replay_in`].
//! [`Config::relaxed`] goes further to an ARM/POWER-class **relaxed mode**:
//! on top of the store buffers, each location keeps a bounded history of
//! superseded values and a `Relaxed` load may be granted a *stale-read*
//! decision (ids ≥ [`REORDER_BASE`]) returning one of them — modeling the
//! load–load/load–store reorderings TSO forbids — while `Acquire` loads and
//! fences drain the thread's stale set. IRIW / multi-copy atomicity remains
//! out of scope. See `DESIGN.md` ("What the interleaving checker does — and
//! does not — prove") for the full caveats.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod arena;
mod atomic;
mod explore;
mod history;
mod runtime;
mod schedule;

pub mod linear;
pub mod models;
pub mod spec;

pub use arena::{Arena, NIL};
pub use atomic::{fence, Atomic};
pub use explore::{explore, replay, replay_in, replay_str, Config, Failure, FailureKind, Report};
pub use history::{CompletedOp, History, OpToken};
pub use linear::SeqSpec;
pub use runtime::{
    spin_hint, MemoryMode, Plan, FLUSH_BASE, FLUSH_STRIDE, MAX_THREADS, REORDER_BASE,
    REORDER_STRIDE,
};
pub use schedule::{ParseScheduleError, Schedule};

/// The memory-ordering vocabulary of the `_ord` operations — re-exported
/// from `std` so models and the mirrored real code name orderings
/// identically.
pub use std::sync::atomic::Ordering;
