//! Epoch-recycling node pools: allocation-free steady-state hot paths.
//!
//! Every mutating hot path in this crate used to pay a global-allocator
//! round trip per operation (`Owned::new` on push/enqueue/insert, a
//! deferred `Box::from_raw` free on pop/dequeue/remove). The paper's QNX
//! prototype avoided exactly that with *type-stable node pools*; this
//! module is the epoch-integrated equivalent:
//!
//! * **Per-thread bounded caches.** Each thread keeps up to [`LOCAL_CAP`]
//!   free blocks per pool in a plain `Vec` (capacity reserved once, so the
//!   hot path never reallocates). An acquire pops from it; a recycle pushes
//!   to it. No atomics, no sharing, no allocator.
//! * **Shared overflow for asymmetric workloads.** When a cache fills
//!   (a consumer thread recycling nodes it never acquires), it spills a
//!   [`SPILL_CHUNK`]-block *segment* to a per-pool Treiber stack with one
//!   CAS; a producer thread whose cache runs dry refills from it. The
//!   refill protocol is **detach-all**: one atomic `swap` takes the whole
//!   segment chain, the refiller keeps the first segment and re-pushes the
//!   rest with one CAS. No overflow operation ever dereferences a block it
//!   does not exclusively own — a pop-one-segment protocol would have to
//!   read the popped segment's chain link *before* winning the pop CAS,
//!   racing a concurrent refiller that already took the segment, handed
//!   its blocks out, and let their new owner overwrite (or even free —
//!   `acquire`'s contract permits direct dealloc, and the structures'
//!   `Drop` impls use it) that very word. Detach-all removes the stale
//!   read instead of trying to tolerate it, and makes a version-tagged
//!   head unnecessary: Treiber *push* has no ABA hazard, and the swap
//!   compares nothing.
//! * **ABA safety via the epoch grace period.** Blocks enter a pool only
//!   through `Guard::defer_recycle`, which runs the recycler after the same
//!   two-epoch-advance grace period that gates `defer_destroy`'s free. A
//!   block can therefore never be handed out again while any thread pinned
//!   before its retirement could still dereference it — reuse is gated on
//!   the exact advance that makes the free safe today.
//!
//! Pools are keyed by `(size, align, pooled)` layout in a global lock-free
//! registry and leaked (`&'static`), like the epoch registry's thread
//! records: the set of node layouts is small and fixed. A layout too small
//! to carry the two free-list link words (size < 16 or align < 8) — and any
//! pool requested with `pooled = false` — degrades to *passthrough* mode,
//! where acquire is a plain allocation and recycle a plain free: the
//! measured "boxed" baseline the benches compare against.
//!
//! Telemetry: per-pool hit/miss/spill/refill/recycle counters and
//! `lfrt-trace` events (`PoolHit`/`PoolMiss`/`PoolSpill`/`PoolRefill` at
//! `Site::Pool`). The per-op counters (hits, recycles) accumulate in plain
//! per-thread cells — an atomic RMW per op costs more than the pool saves
//! over `malloc` — and flush into the shared cache-padded shards on the
//! cold events (spill, refill, thread exit). [`RawPool::stats`] folds the
//! calling thread's unflushed cells in, so same-thread observers are exact
//! and cross-thread observers lag by at most one cache's accumulation.

use std::alloc::Layout;
use std::cell::{Cell, RefCell};
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

use crossbeam::utils::{Backoff, CachePadded};
use lfrt_trace as trace;

/// Maximum free blocks a thread caches per pool before spilling.
pub const LOCAL_CAP: usize = 64;
/// Blocks per overflow segment: a full cache spills this many in one CAS,
/// and a dry cache refills this many in one CAS.
pub const SPILL_CHUNK: usize = 32;
/// Telemetry stripes; each thread picks one at cache creation.
const SHARDS: usize = 8;

/// A block must hold two link words while free: `word0` links blocks within
/// a segment, `word1` (head block only) links segments.
const MIN_BLOCK_SIZE: usize = 2 * std::mem::size_of::<*mut u8>();
const MIN_BLOCK_ALIGN: usize = std::mem::align_of::<*mut u8>();

/// Reads/writes of a free block's link words. `word0` is the intra-segment
/// next-block link; `word1` (meaningful on a segment's head block only) is
/// the next-segment link.
///
/// # Safety (all four)
///
/// `block` must point to a live allocation of at least [`MIN_BLOCK_SIZE`]
/// bytes aligned to [`MIN_BLOCK_ALIGN`], exclusively owned by the caller
/// for writes.
unsafe fn read_word0(block: *mut u8) -> *mut u8 {
    unsafe { block.cast::<*mut u8>().read() }
}

unsafe fn write_word0(block: *mut u8, next: *mut u8) {
    unsafe { block.cast::<*mut u8>().write(next) }
}

unsafe fn read_word1(block: *mut u8) -> *mut u8 {
    unsafe { block.cast::<*mut u8>().add(1).read() }
}

unsafe fn write_word1(block: *mut u8, next_seg: *mut u8) {
    unsafe { block.cast::<*mut u8>().add(1).write(next_seg) }
}

/// One telemetry stripe. Summed into a [`PoolStats`] by [`RawPool::stats`].
#[derive(Default)]
struct Shard {
    hits: AtomicUsize,
    misses: AtomicUsize,
    spills: AtomicUsize,
    refills: AtomicUsize,
    recycles: AtomicUsize,
}

/// Lifetime telemetry totals of one pool, summed over its stripes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Whether this pool actually caches blocks (false = passthrough).
    pub pooled: bool,
    /// Acquires served from the thread cache (steady-state fast path).
    pub hits: usize,
    /// Acquires that fell through to the global allocator because the
    /// cache *and* overflow were dry.
    ///
    /// Only meaningful in pooled mode. A passthrough pool hits the
    /// allocator on *every* acquire by construction and deliberately does
    /// not count them: it exists to measure the boxed baseline, and an
    /// atomic RMW per acquire would distort the very path it measures —
    /// so `misses` reads 0 there, as do all the other counters.
    pub misses: usize,
    /// Cache-full spills of a segment to the shared overflow.
    pub spills: usize,
    /// Cache-empty refills of a segment from the shared overflow.
    pub refills: usize,
    /// Blocks recycled into a thread cache after their grace period.
    pub recycles: usize,
}

/// A per-layout, process-global node pool. Obtained with
/// [`RawPool::for_layout`] and never dropped (`&'static`).
pub struct RawPool {
    /// Index into each thread's cache vector.
    id: usize,
    layout: Layout,
    /// False = passthrough: acquire allocates, recycle frees.
    pooled: bool,
    /// Treiber stack of spilled segments, linked through each segment head
    /// block's `word1`. Popped only whole (detach-all swap), so no ABA tag
    /// is needed and nothing is ever dereferenced before it is owned.
    overflow: CachePadded<AtomicPtr<u8>>,
    shards: [CachePadded<Shard>; SHARDS],
}

/// One entry of the global pool registry (a lock-free prepend-only list,
/// like the epoch thread-record registry).
struct PoolReg {
    pool: RawPool,
    next: AtomicPtr<PoolReg>,
}

static REGISTRY: AtomicPtr<PoolReg> = AtomicPtr::new(ptr::null_mut());
static NEXT_ID: AtomicUsize = AtomicUsize::new(0);

/// One thread's bounded free-block cache for one pool.
struct Cache {
    pool: &'static RawPool,
    /// This thread's telemetry stripe in `pool.shards`: the Fibonacci-
    /// hashed thread ordinal (`crate::stats::thread_hash`) masked to
    /// [`SHARDS`] — the same lane hash `OpStats` stripes by, so both
    /// telemetry layers put a thread in the same relative lane. The
    /// round-robin counter this replaced (`NEXT_SHARD.fetch_add % SHARDS`)
    /// drifted under thread churn: exits never decremented it, so
    /// long-running processes walked the assignment around the ring and
    /// the two layers' stripes fell out of correspondence.
    shard: usize,
    /// Per-op counters, accumulated without atomics and flushed to the
    /// shard on cold events (see [`Cache::flush_stats`]).
    hits: Cell<usize>,
    recycles: Cell<usize>,
    /// Free blocks, LIFO. Capacity reserved once; `len` never exceeds
    /// [`LOCAL_CAP`] (spill runs first), so pushes never reallocate.
    blocks: Vec<*mut u8>,
}

impl Cache {
    fn new(pool: &'static RawPool) -> Cache {
        Cache {
            pool,
            shard: crate::stats::thread_hash() & (SHARDS - 1),
            hits: Cell::new(0),
            recycles: Cell::new(0),
            blocks: Vec::with_capacity(LOCAL_CAP),
        }
    }

    /// Publishes the accumulated per-op counts into the shared shard.
    /// Called on spill/refill (once per [`SPILL_CHUNK`] ops) and on thread
    /// exit, never on the per-op path.
    fn flush_stats(&self) {
        let shard = &self.pool.shards[self.shard];
        let hits = self.hits.replace(0);
        if hits > 0 {
            shard.hits.fetch_add(hits, Ordering::Relaxed);
        }
        let recycles = self.recycles.replace(0);
        if recycles > 0 {
            shard.recycles.fetch_add(recycles, Ordering::Relaxed);
        }
    }
}

impl Drop for Cache {
    fn drop(&mut self) {
        self.flush_stats();
        // Thread exit: hand every cached block to the shared overflow so
        // surviving threads keep recycling them.
        while self.blocks.len() >= SPILL_CHUNK {
            self.pool.spill(&mut self.blocks, self.shard);
        }
        let n = self.blocks.len();
        if n > 0 {
            let mut chain: *mut u8 = ptr::null_mut();
            for b in self.blocks.drain(..) {
                // SAFETY: cached blocks are live, exclusively owned, and at
                // least MIN_BLOCK-sized (pooled mode guarantees it).
                unsafe { write_word0(b, chain) };
                chain = b;
            }
            self.pool.push_segment(chain, n, self.shard);
        }
    }
}

thread_local! {
    /// Per-thread caches, indexed by pool id.
    static CACHES: RefCell<Vec<Option<Cache>>> = const { RefCell::new(Vec::new()) };
}

impl RawPool {
    /// The process-global pool for `layout`, creating and publishing it on
    /// first use. `pooled = false` requests a passthrough pool (the boxed
    /// baseline); a layout too small for the free-list link words degrades
    /// to passthrough regardless.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized layouts (nothing to pool, nothing to allocate).
    pub fn for_layout(layout: Layout, pooled: bool) -> &'static RawPool {
        assert!(layout.size() > 0, "zero-sized layouts are not supported");
        let pooled = pooled && layout.size() >= MIN_BLOCK_SIZE && layout.align() >= MIN_BLOCK_ALIGN;
        let key = (layout.size(), layout.align(), pooled);
        let mut spare: Option<Box<PoolReg>> = None;
        let backoff = Backoff::new();
        loop {
            let mut cursor = REGISTRY.load(Ordering::Acquire);
            while let Some(reg) = unsafe { cursor.as_ref() } {
                if (
                    reg.pool.layout.size(),
                    reg.pool.layout.align(),
                    reg.pool.pooled,
                ) == key
                {
                    return &reg.pool;
                }
                cursor = reg.next.load(Ordering::Acquire);
            }
            let node = spare.take().unwrap_or_else(|| {
                Box::new(PoolReg {
                    pool: RawPool {
                        id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                        layout,
                        pooled,
                        overflow: CachePadded::new(AtomicPtr::new(ptr::null_mut())),
                        shards: std::array::from_fn(|_| CachePadded::new(Shard::default())),
                    },
                    next: AtomicPtr::new(ptr::null_mut()),
                })
            });
            let head = REGISTRY.load(Ordering::Acquire);
            node.next.store(head, Ordering::Relaxed);
            let raw = Box::into_raw(node);
            // Failure ordering Relaxed: the failed value is discarded — the
            // retry re-walks from a fresh Acquire load at the loop top.
            match REGISTRY.compare_exchange(head, raw, Ordering::Release, Ordering::Relaxed) {
                // SAFETY: just published and never unpublished — 'static.
                Ok(_) => return unsafe { &(*raw).pool },
                Err(_) => {
                    // Lost the publish race; reclaim the box and re-walk —
                    // the winner may have published this very key.
                    spare = Some(unsafe { Box::from_raw(raw) });
                    backoff.spin();
                }
            }
        }
    }

    /// The pool for `T`'s layout (pooled mode).
    pub fn of<T>() -> &'static RawPool {
        RawPool::for_layout(Layout::new::<T>(), true)
    }

    /// The passthrough pool for `T`'s layout: acquire allocates, recycle
    /// frees — the measured boxed baseline.
    pub fn of_boxed<T>() -> &'static RawPool {
        RawPool::for_layout(Layout::new::<T>(), false)
    }

    /// The context word for [`crossbeam::epoch::Guard::defer_recycle`]:
    /// this pool's address, handed back to [`recycle_raw`].
    pub fn ctx(&'static self) -> usize {
        self as *const RawPool as usize
    }

    /// Hands out one uninitialized block of this pool's layout.
    ///
    /// Steady state this is a thread-cache `Vec::pop` (or one overflow CAS
    /// per [`SPILL_CHUNK`] blocks); only a genuinely dry pool — or
    /// passthrough mode — falls through to the global allocator.
    ///
    /// The caller owns the block exclusively and must eventually return it
    /// via [`recycle_raw`] (through `defer_recycle`) or free it with the
    /// global allocator under this pool's layout.
    #[inline]
    pub fn acquire(&'static self) -> *mut u8 {
        if self.pooled {
            match CACHES.try_with(|caches| self.cache_pop(&mut caches.borrow_mut())) {
                Ok(Some(block)) => return block,
                // Cache and overflow dry, or TLS already torn down.
                _ => self.count_miss(),
            }
        }
        self.alloc_block()
    }

    /// Lifetime telemetry totals: the shared stripes plus the calling
    /// thread's unflushed per-op cells. Exact for everything the calling
    /// thread did and for exited threads; another *live* thread's hits and
    /// recycles appear once its cache flushes (on a spill, a refill, or
    /// thread exit), so cross-thread reads can lag by one accumulation.
    pub fn stats(&self) -> PoolStats {
        let mut s = PoolStats {
            pooled: self.pooled,
            hits: 0,
            misses: 0,
            spills: 0,
            refills: 0,
            recycles: 0,
        };
        for shard in &self.shards {
            s.hits += shard.hits.load(Ordering::Relaxed);
            s.misses += shard.misses.load(Ordering::Relaxed);
            s.spills += shard.spills.load(Ordering::Relaxed);
            s.refills += shard.refills.load(Ordering::Relaxed);
            s.recycles += shard.recycles.load(Ordering::Relaxed);
        }
        let _ = CACHES.try_with(|caches| {
            if let Some(Some(cache)) = caches.borrow().get(self.id) {
                s.hits += cache.hits.get();
                s.recycles += cache.recycles.get();
            }
        });
        s
    }

    /// Returns every block in the shared overflow *and the calling thread's
    /// cache* to the global allocator, reporting how many were freed. The
    /// teardown lever for leak accounting — pools themselves are `'static`
    /// and never drop.
    ///
    /// # Safety
    ///
    /// No other thread may be operating on this pool concurrently (acquire,
    /// recycle, or purge): a racing refill would take blocks this purge
    /// promises to have freed, and a racing recycle could repopulate the
    /// overflow behind the single detach below.
    pub unsafe fn purge(&'static self) -> usize {
        let mut freed = 0;
        let _ = CACHES.try_with(|caches| {
            let mut caches = caches.borrow_mut();
            if let Some(Some(cache)) = caches.get_mut(self.id) {
                for b in cache.blocks.drain(..) {
                    // SAFETY: cached blocks came from this pool's layout and
                    // are exclusively owned.
                    unsafe { std::alloc::dealloc(b, self.layout) };
                    freed += 1;
                }
            }
        });
        // Detach the whole chain in one swap; the quiescence contract means
        // nothing is pushed concurrently, so one swap takes everything.
        let mut seg = self.overflow.swap(ptr::null_mut(), Ordering::Acquire);
        while !seg.is_null() {
            // SAFETY: the swap detached the chain — it is exclusively ours.
            let next_seg = unsafe { read_word1(seg) };
            let mut b = seg;
            while !b.is_null() {
                // SAFETY: as above; each block freed once.
                let next = unsafe { read_word0(b) };
                unsafe { std::alloc::dealloc(b, self.layout) };
                freed += 1;
                b = next;
            }
            seg = next_seg;
        }
        freed
    }

    /// Fast path: pop from (or refill) the calling thread's cache. The
    /// steady-state branch is a bounds-checked index and a `Vec::pop`; the
    /// first touch per (thread, pool) takes the `#[cold]` detour once.
    #[inline]
    fn cache_pop(&'static self, caches: &mut Vec<Option<Cache>>) -> Option<*mut u8> {
        let cache = match caches.get_mut(self.id) {
            Some(Some(cache)) => cache,
            _ => Self::cache_init(caches, self),
        };
        if let Some(block) = cache.blocks.pop() {
            cache.hits.set(cache.hits.get() + 1);
            trace::emit(trace::EventKind::PoolHit, trace::Site::Pool, self.id as u64);
            return Some(block);
        }
        let taken = self.refill(&mut cache.blocks);
        if taken > 0 {
            cache.flush_stats();
            self.shards[cache.shard]
                .refills
                .fetch_add(1, Ordering::Relaxed);
            trace::emit(
                trace::EventKind::PoolRefill,
                trace::Site::Pool,
                taken as u64,
            );
            return cache.blocks.pop();
        }
        None
    }

    /// First touch of this pool by this thread: grow the cache vector and
    /// build the cache. Out of line so the per-op path stays branch+pop.
    #[cold]
    fn cache_init<'a>(caches: &'a mut Vec<Option<Cache>>, pool: &'static RawPool) -> &'a mut Cache {
        if caches.len() <= pool.id {
            caches.resize_with(pool.id + 1, || None);
        }
        caches[pool.id].get_or_insert_with(|| Cache::new(pool))
    }

    /// Returns a block to the calling thread's cache (spilling a segment
    /// first if the cache is full), or straight to the overflow when the
    /// thread's TLS is already torn down.
    fn recycle(&'static self, block: *mut u8) {
        if !self.pooled {
            // SAFETY: passthrough — the block is exclusively ours, came from
            // the global allocator under this layout, and is freed once.
            unsafe { std::alloc::dealloc(block, self.layout) };
            return;
        }
        let cached = CACHES.try_with(|caches| {
            let mut caches = caches.borrow_mut();
            let cache = match caches.get_mut(self.id) {
                Some(Some(cache)) => cache,
                _ => Self::cache_init(&mut caches, self),
            };
            if cache.blocks.len() >= LOCAL_CAP {
                cache.flush_stats();
                self.spill(&mut cache.blocks, cache.shard);
            }
            cache.blocks.push(block);
            cache.recycles.set(cache.recycles.get() + 1);
        });
        if cached.is_err() {
            // Thread teardown: publish the lone block as a one-block segment.
            // SAFETY: exclusively owned, MIN_BLOCK-sized (pooled mode).
            unsafe { write_word0(block, ptr::null_mut()) };
            self.push_segment(block, 1, 0);
        }
    }

    /// Links [`SPILL_CHUNK`] blocks from `blocks` into a segment and pushes
    /// it to the shared overflow with one CAS.
    fn spill(&'static self, blocks: &mut Vec<*mut u8>, shard: usize) {
        debug_assert!(blocks.len() >= SPILL_CHUNK);
        let mut chain: *mut u8 = ptr::null_mut();
        for _ in 0..SPILL_CHUNK {
            let b = blocks.pop().expect("spill on an under-full cache");
            // SAFETY: cached blocks are live, exclusively owned, and at
            // least MIN_BLOCK-sized.
            unsafe { write_word0(b, chain) };
            chain = b;
        }
        self.push_segment(chain, SPILL_CHUNK, shard);
    }

    /// Pushes an exclusively owned segment (blocks chained via `word0`,
    /// null-terminated) onto the overflow stack.
    fn push_segment(&'static self, seg: *mut u8, blocks: usize, shard: usize) {
        self.push_segments(seg, seg);
        self.shards[shard].spills.fetch_add(1, Ordering::Relaxed);
        trace::emit(
            trace::EventKind::PoolSpill,
            trace::Site::Pool,
            blocks as u64,
        );
    }

    /// Publishes an exclusively owned chain of segments (`chain` first,
    /// `tail` last, linked via `word1` in between — `tail`'s own `word1` is
    /// overwritten here) onto the overflow with one CAS. Treiber push needs
    /// no ABA tag: the CAS writes nothing derived from a pre-CAS read of
    /// shared memory, only `chain`, which the caller owns.
    fn push_segments(&'static self, chain: *mut u8, tail: *mut u8) {
        let backoff = Backoff::new();
        let mut head = self.overflow.load(Ordering::Relaxed);
        loop {
            // SAFETY: the chain (tail included) is still exclusively ours
            // until the CAS publishes it.
            unsafe { write_word1(tail, head) };
            match self
                .overflow
                .compare_exchange(head, chain, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => {
                    head = actual;
                    backoff.spin();
                }
            }
        }
    }

    /// Refills `into` with one segment's blocks from the overflow; returns
    /// the number taken (0 = overflow empty).
    ///
    /// Protocol: **detach-all, keep one, push the rest back.** One `swap`
    /// takes the entire chain; only then — owning it exclusively — do we
    /// read any link word. A pop-one protocol would read the head segment's
    /// chain link before winning its CAS, racing the block's next owner
    /// (who may overwrite or legally free it); no version tag fixes the
    /// read itself, so the protocol avoids it entirely. The cost is a small
    /// window where a concurrent refiller sees an empty overflow (between
    /// our swap and push-back) and falls through to the allocator — a miss
    /// on a cold path, not a safety event.
    fn refill(&'static self, into: &mut Vec<*mut u8>) -> usize {
        debug_assert!(into.is_empty(), "refill into a non-empty cache");
        if self.overflow.load(Ordering::Relaxed).is_null() {
            return 0;
        }
        let seg = self.overflow.swap(ptr::null_mut(), Ordering::Acquire);
        if seg.is_null() {
            // Lost the race to another refiller between the check and swap.
            return 0;
        }
        // SAFETY: the swap detached the whole chain; every segment and
        // block reachable from `seg` is exclusively ours.
        let rest = unsafe { read_word1(seg) };
        let mut taken = 0;
        let mut b = seg;
        // Bounded: segments hold at most SPILL_CHUNK blocks.
        while !b.is_null() {
            // SAFETY: as above.
            let next = unsafe { read_word0(b) };
            into.push(b);
            taken += 1;
            b = next;
        }
        if !rest.is_null() {
            // Walk to the tail (exclusively owned, plain reads) and re-push
            // the remainder as one pre-linked chain.
            let mut tail = rest;
            loop {
                // SAFETY: as above.
                let next_seg = unsafe { read_word1(tail) };
                if next_seg.is_null() {
                    break;
                }
                tail = next_seg;
            }
            self.push_segments(rest, tail);
        }
        taken
    }

    fn count_miss(&'static self) {
        // No cache at hand on this path; stripe 0 absorbs the (cold) count.
        self.shards[0].misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Cold path: one global-allocator block of this pool's layout.
    fn alloc_block(&'static self) -> *mut u8 {
        // SAFETY: `for_layout` rejected zero-sized layouts.
        let block = unsafe { std::alloc::alloc(self.layout) };
        if block.is_null() {
            std::alloc::handle_alloc_error(self.layout);
        }
        trace::emit(
            trace::EventKind::PoolMiss,
            trace::Site::Pool,
            self.id as u64,
        );
        block
    }
}

/// The recycler passed to `Guard::defer_recycle`: runs after the block's
/// grace period and returns it to the pool identified by `ctx`.
///
/// # Safety
///
/// `ptr` must be an exclusively owned, unreachable block allocated under
/// the layout of the pool whose [`RawPool::ctx`] produced `ctx`, with any
/// non-trivially-droppable payload already moved out.
pub(crate) unsafe fn recycle_raw(ptr: *mut u8, ctx: usize) {
    // SAFETY: `ctx` came from `RawPool::ctx` on a leaked, never-freed pool.
    let pool: &'static RawPool = unsafe { &*(ctx as *const RawPool) };
    pool.recycle(ptr);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A layout no other test (or structure) uses, so the pool's counters
    /// are isolated even across parallel tests.
    #[repr(align(8))]
    struct TestBlock {
        _bytes: [u8; 40],
    }

    #[test]
    fn acquire_recycle_round_trip_hits_the_cache() {
        let pool = RawPool::of::<TestBlock>();
        let a = pool.acquire();
        // SAFETY: `a` is exclusively ours and unreachable.
        unsafe { recycle_raw(a, pool.ctx()) };
        let before = pool.stats();
        let b = pool.acquire();
        assert_eq!(a, b, "LIFO cache hands the recycled block back");
        let after = pool.stats();
        assert_eq!(after.hits, before.hits + 1);
        // SAFETY: exclusively ours; return it so the test leaks nothing.
        unsafe { std::alloc::dealloc(b, Layout::new::<TestBlock>()) };
    }

    #[test]
    fn same_layout_same_pool_different_mode_different_pool() {
        let a = RawPool::of::<TestBlock>();
        let b = RawPool::of::<TestBlock>();
        assert!(std::ptr::eq(a, b));
        let pass = RawPool::of_boxed::<TestBlock>();
        assert!(!std::ptr::eq(a, pass));
        assert!(!pass.stats().pooled);
        assert!(a.stats().pooled);
    }

    #[test]
    fn tiny_layouts_degrade_to_passthrough() {
        let pool = RawPool::for_layout(Layout::new::<u8>(), true);
        assert!(!pool.stats().pooled, "one-byte blocks cannot hold links");
    }

    #[test]
    fn passthrough_recycle_frees_immediately() {
        #[repr(align(8))]
        struct PassBlock {
            _bytes: [u8; 48],
        }
        let pool = RawPool::of_boxed::<PassBlock>();
        let a = pool.acquire();
        // SAFETY: exclusively ours, correct layout.
        unsafe { recycle_raw(a, pool.ctx()) };
        let s = pool.stats();
        assert_eq!((s.hits, s.recycles), (0, 0), "passthrough never caches");
    }

    #[test]
    fn spill_and_refill_move_segments_through_the_overflow() {
        // A unique layout so LOCAL_CAP arithmetic is exact.
        #[repr(align(8))]
        struct SpillBlock {
            _bytes: [u8; 56],
        }
        let pool = RawPool::of::<SpillBlock>();
        let blocks: Vec<*mut u8> = (0..LOCAL_CAP + 1).map(|_| pool.acquire()).collect();
        for b in &blocks {
            // SAFETY: each block exclusively ours.
            unsafe { recycle_raw(*b, pool.ctx()) };
        }
        let s = pool.stats();
        assert_eq!(s.spills, 1, "recycle #65 overflows the cache once");
        assert_eq!(s.recycles, LOCAL_CAP + 1);
        let cold_misses = s.misses;
        // Drain the cache dry: 33 cached blocks, then a refill kicks in.
        let mut got = Vec::new();
        for _ in 0..blocks.len() {
            got.push(pool.acquire());
        }
        let s = pool.stats();
        assert_eq!(s.refills, 1, "the spilled segment comes back in one CAS");
        assert_eq!(
            s.misses, cold_misses,
            "no allocator round trip in steady state"
        );
        got.sort_unstable();
        let mut want = blocks.clone();
        want.sort_unstable();
        assert_eq!(got, want, "exactly the recycled blocks come back");
        for b in got {
            // SAFETY: exclusively ours; free to end the test leak-clean.
            unsafe { std::alloc::dealloc(b, Layout::new::<SpillBlock>()) };
        }
    }

    #[test]
    fn purge_drains_overflow_and_cache() {
        #[repr(align(8))]
        struct PurgeBlock {
            _bytes: [u8; 64],
        }
        let pool = RawPool::of::<PurgeBlock>();
        let blocks: Vec<*mut u8> = (0..LOCAL_CAP + SPILL_CHUNK)
            .map(|_| pool.acquire())
            .collect();
        let n = blocks.len();
        for b in blocks {
            // SAFETY: exclusively ours.
            unsafe { recycle_raw(b, pool.ctx()) };
        }
        // SAFETY: this test's unique layout means no other thread touches
        // this pool.
        let freed = unsafe { pool.purge() };
        assert_eq!(freed, n, "every cached and spilled block is freed");
        // SAFETY: as above.
        assert_eq!(unsafe { pool.purge() }, 0, "second purge finds nothing");
    }
}
