use lfrt_uam::ArrivalTrace;

use crate::calendar::Calendar;
use crate::error::SimError;
use crate::event::EventKind;
use crate::ids::{JobId, TaskId};
use crate::job::{Job, JobPhase, JobRecord};
use crate::metrics::SimMetrics;
use crate::object::ObjectTable;
use crate::overhead::OverheadModel;
use crate::scheduler::{JobView, SchedulerContext, UaScheduler};
use crate::segment::{AccessKind, Segment};
use crate::task::{ExecTimeModel, SharingMode, TaskSpec};
use crate::tracelog::{AbortReason, TraceEvent, TraceLog};
use crate::{SimTime, Ticks};

/// Configuration of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    sharing: SharingMode,
    overhead: OverheadModel,
    record_jobs: bool,
    exec_time: ExecTimeModel,
    trace: bool,
    capacities: Vec<u32>,
    quantum: Option<Ticks>,
}

impl SimConfig {
    /// Creates a configuration for the given sharing discipline, with zero
    /// scheduler overhead and per-job records enabled.
    pub fn new(sharing: SharingMode) -> Self {
        Self {
            sharing,
            overhead: OverheadModel::zero(),
            record_jobs: true,
            exec_time: ExecTimeModel::Nominal,
            trace: false,
            capacities: Vec::new(),
            quantum: None,
        }
    }

    /// Sets the scheduler-overhead model.
    #[must_use]
    pub fn overhead(mut self, overhead: OverheadModel) -> Self {
        self.overhead = overhead;
        self
    }

    /// Enables or disables per-job [`JobRecord`] collection.
    #[must_use]
    pub fn record_jobs(mut self, record: bool) -> Self {
        self.record_jobs = record;
        self
    }

    /// Sets the execution-time model (default: nominal, no jitter).
    #[must_use]
    pub fn exec_time(mut self, model: ExecTimeModel) -> Self {
        self.exec_time = model;
        self
    }

    /// Enables fine-grained transition tracing (default off); the log is
    /// returned in [`SimOutcome::trace`].
    #[must_use]
    pub fn trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// The configured sharing discipline.
    pub fn sharing(&self) -> SharingMode {
        self.sharing
    }

    /// The configured execution-time model.
    pub fn exec_time_model(&self) -> ExecTimeModel {
        self.exec_time
    }

    /// The configured overhead model.
    pub fn overhead_model(&self) -> OverheadModel {
        self.overhead
    }

    /// Whether per-job records are collected.
    pub fn record_jobs_enabled(&self) -> bool {
        self.record_jobs
    }

    /// Whether fine-grained tracing is on.
    pub fn trace_enabled(&self) -> bool {
        self.trace
    }

    /// Enables quantum-based scheduling: the scheduler is additionally
    /// invoked at every multiple of `ticks` while jobs are live, the
    /// discipline of Anderson et al.'s quantum-based lock-free work (the
    /// paper's §1.1, reference \[2\]: with a sensible quantum, "each object
    /// access needs to be retried at most once").
    ///
    /// # Panics
    ///
    /// Panics if `ticks` is zero.
    #[must_use]
    pub fn quantum(mut self, ticks: Ticks) -> Self {
        assert!(ticks > 0, "quantum must be positive");
        self.quantum = Some(ticks);
        self
    }

    /// The configured scheduling quantum, if any.
    pub fn quantum_ticks(&self) -> Option<Ticks> {
        self.quantum
    }

    /// Sets per-object lock capacities (units), indexed by object id;
    /// unspecified objects keep capacity 1 (mutual exclusion). Capacities
    /// above 1 model RUA's *multiunit resources* — counting semaphores.
    #[must_use]
    pub fn object_capacities(mut self, capacities: Vec<u32>) -> Self {
        self.capacities = capacities;
        self
    }

    /// The configured per-object capacities.
    pub fn capacities(&self) -> &[u32] {
        &self.capacities
    }
}

/// The result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Aggregated metrics.
    pub metrics: SimMetrics,
    /// Per-job records (empty if disabled in [`SimConfig::record_jobs`]).
    pub records: Vec<JobRecord>,
    /// Fine-grained transition log (empty unless [`SimConfig::trace`]).
    pub trace: TraceLog,
}

/// The discrete-event simulation engine.
///
/// # Model
///
/// A single processor executes at most one job at a time. *Scheduling
/// events* are job arrivals, job departures (completion or abort at the
/// critical time), and — under [`SharingMode::LockBased`] — lock and unlock
/// requests. At each scheduling event the engine invokes the
/// [`UaScheduler`], charges the reported operation count as processor time
/// through the [`OverheadModel`] (a *kernel-busy window* during which no job
/// progresses, and during which further scheduling is deferred), and then
/// dispatches the first runnable job of the returned order.
///
/// If no job in the returned order is runnable but ready jobs exist, the
/// engine dispatches the ready job with the earliest critical time rather
/// than idling; RUA's "rejected" jobs thus still consume otherwise-idle
/// processor time, as they would in the ready queue of a real RTOS.
///
/// Object accesses follow the paper's two disciplines:
///
/// * **lock-based** — an access is a critical section of `r` ticks; a
///   request for a held lock blocks the job (a scheduling event) until the
///   owner's unlock (another scheduling event) wakes the waiters;
/// * **lock-free** — an access attempt runs for `s` ticks; if another job
///   *committed a write* to the same object while the attempt was in flight
///   (i.e. since it started, including across preemptions), the attempt
///   fails and retries from scratch — one retry of the kind bounded by the
///   paper's Theorem 2.
///
/// Critical-time expiry aborts a live job: its abort handler runs
/// immediately (charged as kernel-busy time), rolls back, and releases any
/// held lock (§3.5 of the paper).
#[derive(Debug)]
pub struct Engine {
    tasks: Vec<TaskSpec>,
    config: SimConfig,
    calendar: Calendar,
    jobs: Vec<Job>,
    live: Vec<JobId>,
    objects: ObjectTable,
    schedule: Vec<JobId>,
    running: Option<JobId>,
    kernel_busy_until: SimTime,
    resched_queued: bool,
    now: SimTime,
    metrics: SimMetrics,
    records: Vec<JobRecord>,
    exec_rng: Option<rand::rngs::StdRng>,
    trace: TraceLog,
}

impl Engine {
    /// Creates an engine for `tasks`, releasing jobs at the times in
    /// `traces` (one trace per task, same order).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TraceCountMismatch`] if the trace count differs
    /// from the task count.
    pub fn new(
        tasks: Vec<TaskSpec>,
        traces: Vec<ArrivalTrace>,
        config: SimConfig,
    ) -> Result<Self, SimError> {
        if tasks.len() != traces.len() {
            return Err(SimError::TraceCountMismatch {
                tasks: tasks.len(),
                traces: traces.len(),
            });
        }
        if !config.sharing.uses_locks() {
            if let Some(task) = tasks.iter().find(|t| t.uses_explicit_locks()) {
                return Err(SimError::NestedRequiresLockBased {
                    task: task.name().to_string(),
                });
            }
        }
        let num_objects = tasks
            .iter()
            .flat_map(|t| t.segments().iter())
            .filter_map(Segment::object)
            .map(|o| o.index() + 1)
            .max()
            .unwrap_or(0);
        let mut calendar = Calendar::new();
        for (idx, trace) in traces.iter().enumerate() {
            for &t in trace.times() {
                calendar.push(
                    t,
                    EventKind::Arrival {
                        task: TaskId::new(idx),
                    },
                );
            }
        }
        let mut objects = ObjectTable::new(num_objects);
        objects.set_capacities(&config.capacities);
        let metrics = SimMetrics::new(tasks.len());
        let exec_rng = match config.exec_time {
            ExecTimeModel::Nominal => None,
            ExecTimeModel::Uniform { seed, .. } => Some(
                <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed),
            ),
        };
        Ok(Self {
            tasks,
            config,
            calendar,
            jobs: Vec::new(),
            live: Vec::new(),
            objects,
            schedule: Vec::new(),
            running: None,
            kernel_busy_until: 0,
            resched_queued: false,
            now: 0,
            metrics,
            records: Vec::new(),
            exec_rng,
            trace: TraceLog::new(),
        })
    }

    /// Runs the simulation to completion (all jobs resolved) and returns the
    /// outcome.
    pub fn run<S: UaScheduler>(mut self, mut scheduler: S) -> SimOutcome {
        loop {
            let mut next = match (self.calendar.peek_time(), self.next_internal()) {
                (None, None) => break,
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (Some(a), Some(b)) => a.min(b),
            };
            // Quantum scheduling: wake the scheduler at every boundary while
            // jobs are live.
            if let Some(q) = self.config.quantum {
                if !self.live.is_empty() {
                    let boundary = (self.now / q + 1) * q;
                    next = next.min(boundary);
                }
            }
            debug_assert!(next >= self.now, "time went backwards");
            self.advance_running_to(next);
            self.now = next;
            self.metrics.makespan = self.metrics.makespan.max(self.now);

            let mut resched = false;
            if let Some(q) = self.config.quantum {
                if self.now.is_multiple_of(q) && !self.live.is_empty() {
                    resched = true;
                }
            }

            // Failure injection: a job that reached its crash point halts
            // forever, keeping its locks — before any completion handling.
            if let Some(id) = self.running {
                let job = &self.jobs[id.index()];
                if let Some(crash) = self.tasks[job.task.index()].crash_after() {
                    if job.executed >= crash && self.now >= self.kernel_busy_until {
                        self.crash_job(id);
                        resched = true;
                    }
                }
            }

            // Internal happening: the running job finished its current
            // activity (segment completion, lock release, or a lock-free
            // commit/retry decision).
            if self.running_activity_done() {
                resched |= self.handle_activity_completion();
            }

            // External events due now.
            while let Some((_, event)) = self.calendar.pop_due(self.now) {
                match event {
                    EventKind::Arrival { task } => {
                        self.release_job(task);
                        resched = true;
                    }
                    EventKind::CriticalTimeExpiry { job } => {
                        if self.jobs[job.index()].phase.is_live() {
                            self.abort_job(job, AbortReason::CriticalTime);
                            resched = true;
                        }
                    }
                    EventKind::Reschedule => {
                        self.resched_queued = false;
                        resched = true;
                    }
                }
            }

            if resched {
                self.request_reschedule(&mut scheduler);
            } else if self.now >= self.kernel_busy_until && self.prepare_running() {
                // The running job crossed into an access segment without an
                // intervening scheduling event; under lock-based sharing the
                // implied lock request is itself a scheduling event.
                self.request_reschedule(&mut scheduler);
            }
        }
        SimOutcome {
            metrics: self.metrics,
            records: self.records,
            trace: self.trace,
        }
    }

    #[inline]
    fn trace_event(&mut self, event: TraceEvent) {
        if self.config.trace {
            self.trace.push(self.now, event);
        }
    }

    /// When the running job's current activity will end, accounting for the
    /// kernel-busy window and any injected crash point; `None` when the
    /// processor has no dispatched job.
    fn next_internal(&self) -> Option<SimTime> {
        let id = self.running?;
        if self.now < self.kernel_busy_until {
            // The job resumes after the kernel finishes; re-evaluate then.
            return Some(self.kernel_busy_until);
        }
        let job = &self.jobs[id.index()];
        let mut left = self.activity_duration(job).saturating_sub(job.seg_progress);
        if let Some(crash) = self.tasks[job.task.index()].crash_after() {
            left = left.min(crash.saturating_sub(job.executed));
        }
        Some(self.now + left)
    }

    fn activity_duration(&self, job: &Job) -> Ticks {
        match self.tasks[job.task.index()].segments()[job.seg_idx] {
            // Actual compute time is the nominal duration scaled by the
            // job's context factor; schedulers keep seeing the nominal.
            Segment::Compute(t) => (t as f64 * job.exec_scale).round() as Ticks,
            Segment::Access { .. } => self.config.sharing.access_cost(),
            // Explicit lock structuring is instantaneous; the cost of the
            // protected work is carried by the segments in between.
            Segment::Acquire { .. } | Segment::Release { .. } => 0,
        }
    }

    fn advance_running_to(&mut self, next: SimTime) {
        if let Some(id) = self.running {
            let start = self.now.max(self.kernel_busy_until);
            if next > start {
                let job = &mut self.jobs[id.index()];
                job.seg_progress += next - start;
                job.executed += next - start;
                self.metrics.busy_ticks += next - start;
            }
        }
    }

    fn running_activity_done(&self) -> bool {
        match self.running {
            Some(id) if self.now >= self.kernel_busy_until => {
                let job = &self.jobs[id.index()];
                job.seg_progress >= self.activity_duration(job)
            }
            _ => false,
        }
    }

    /// Handles the running job finishing its current activity. Returns
    /// whether a scheduling event occurred.
    fn handle_activity_completion(&mut self) -> bool {
        let id = self
            .running
            .expect("activity completion without a running job");
        let idx = id.index();
        let task_idx = self.jobs[idx].task.index();
        let segment = self.tasks[task_idx].segments()[self.jobs[idx].seg_idx];
        let mut resched = false;
        match segment {
            Segment::Compute(_) => {
                self.advance_segment(idx);
            }
            Segment::Access { object, kind } => match self.config.sharing {
                SharingMode::LockBased { .. } => {
                    // Critical section done: unlock (a scheduling event) and
                    // wake the waiters.
                    debug_assert!(self.jobs[idx].holds.contains(&object));
                    self.release_lock(idx, id, object);
                    if kind == AccessKind::Write {
                        self.objects.commit_write(object);
                    }
                    self.advance_segment(idx);
                    resched = true;
                }
                SharingMode::LockFree { .. } => {
                    let started = self.jobs[idx]
                        .access_start_version
                        .expect("lock-free access completed without a start version");
                    let current = self.objects.version(object);
                    if current != started {
                        // Interference: another job committed a write while
                        // this attempt was in flight. Retry from scratch.
                        let job = &mut self.jobs[idx];
                        job.retries += 1;
                        job.seg_progress = 0;
                        job.access_start_version = Some(current);
                        self.trace_event(TraceEvent::Retried { job: id, object });
                    } else {
                        if kind == AccessKind::Write {
                            self.objects.commit_write(object);
                        }
                        self.jobs[idx].access_start_version = None;
                        self.advance_segment(idx);
                    }
                }
                SharingMode::Ideal => {
                    self.advance_segment(idx);
                }
            },
            Segment::Acquire { object } => {
                // The grant happened in `prepare_running`; crossing the
                // zero-length segment is bookkeeping only (the request
                // itself was already a scheduling event).
                debug_assert!(self.jobs[idx].holds.contains(&object));
                self.advance_segment(idx);
            }
            Segment::Release { object } => {
                self.release_lock(idx, id, object);
                // Writes made inside the explicit critical section become
                // visible on release.
                self.objects.commit_write(object);
                self.advance_segment(idx);
                resched = true;
            }
        }
        if self.jobs[idx].phase.is_live()
            && self.jobs[idx].seg_idx >= self.tasks[task_idx].segments().len()
        {
            self.complete_job(id);
            resched = true;
        }
        resched
    }

    fn advance_segment(&mut self, idx: usize) {
        let job = &mut self.jobs[idx];
        job.seg_idx += 1;
        job.seg_progress = 0;
    }

    /// Unlocks `object` held by job `id`, waking its waiters.
    fn release_lock(&mut self, idx: usize, id: JobId, object: crate::ids::ObjectId) {
        let woken = self.objects.unlock(object, id);
        for w in woken {
            self.jobs[w.index()].phase = JobPhase::Ready;
            self.trace_event(TraceEvent::Woken { job: w, object });
        }
        self.jobs[idx].holds.retain(|&o| o != object);
        self.trace_event(TraceEvent::LockReleased { job: id, object });
    }

    fn release_job(&mut self, task: TaskId) {
        let spec = &self.tasks[task.index()];
        let id = JobId::new(self.jobs.len());
        let critical = spec.tuf().critical_time();
        let max_utility = spec.tuf().max_utility();
        let mut job = Job::new(id, task, self.now, critical);
        if let (
            ExecTimeModel::Uniform {
                min_factor,
                max_factor,
                ..
            },
            Some(rng),
        ) = (self.config.exec_time, self.exec_rng.as_mut())
        {
            job.exec_scale = rand::RngExt::random_range(rng, min_factor..=max_factor);
        }
        self.calendar.push(
            job.absolute_critical_time,
            EventKind::CriticalTimeExpiry { job: id },
        );
        self.jobs.push(job);
        self.live.push(id);
        self.trace_event(TraceEvent::Released { job: id, task });
        let tm = self.metrics.task_mut(task.index());
        tm.released += 1;
        tm.utility_possible += max_utility;
    }

    fn complete_job(&mut self, id: JobId) {
        let idx = id.index();
        let task_idx = self.jobs[idx].task.index();
        let sojourn = self.now - self.jobs[idx].arrival;
        let critical = self.tasks[task_idx].tuf().critical_time();
        if sojourn >= critical {
            // Completing exactly at (or past) the critical time accrues
            // nothing; account it as the abort that would have raced it.
            self.abort_job(id, AbortReason::CriticalTime);
            return;
        }
        let utility = self.tasks[task_idx].tuf().utility(sojourn);
        {
            let job = &mut self.jobs[idx];
            job.phase = JobPhase::Completed;
            job.resolved_at = Some(self.now);
        }
        self.trace_event(TraceEvent::Completed { job: id, utility });
        let job = &self.jobs[idx];
        let (retries, blockings, preemptions) = (job.retries, job.blockings, job.preemptions);
        let tm = self.metrics.task_mut(task_idx);
        tm.completed += 1;
        tm.utility_accrued += utility;
        tm.sojourn_sum += sojourn;
        tm.sojourn_max = tm.sojourn_max.max(sojourn);
        tm.retries += retries;
        tm.blockings += blockings;
        tm.preemptions += preemptions;
        self.resolve(id, true, utility);
    }

    fn abort_job(&mut self, id: JobId, reason: AbortReason) {
        let idx = id.index();
        let task_idx = self.jobs[idx].task.index();
        // The abort handler runs immediately: roll back and release every
        // held lock (innermost first, though order is immaterial here).
        let held = std::mem::take(&mut self.jobs[idx].holds);
        for object in held.into_iter().rev() {
            let woken = self.objects.unlock(object, id);
            for w in woken {
                self.jobs[w.index()].phase = JobPhase::Ready;
            }
        }
        if let JobPhase::Blocked(object) = self.jobs[idx].phase {
            self.objects.remove_waiter(object, id);
        }
        {
            let job = &mut self.jobs[idx];
            job.phase = JobPhase::Aborted;
            job.resolved_at = Some(self.now);
        }
        self.trace_event(TraceEvent::Aborted { job: id, reason });
        let handler = self.tasks[task_idx].abort_handler_ticks();
        if handler > 0 {
            self.kernel_busy_until = self.kernel_busy_until.max(self.now) + handler;
        }
        let job = &self.jobs[idx];
        let (retries, blockings, preemptions) = (job.retries, job.blockings, job.preemptions);
        let tm = self.metrics.task_mut(task_idx);
        tm.aborted += 1;
        tm.retries += retries;
        tm.blockings += blockings;
        tm.preemptions += preemptions;
        self.resolve(id, false, 0.0);
    }

    /// Failure injection: halt `id` forever. Locks stay held (the crashed
    /// activity cannot run its handler), so lock-based blockers starve —
    /// the §1.1 failure mode lock-free sharing is immune to.
    fn crash_job(&mut self, id: JobId) {
        let idx = id.index();
        let task_idx = self.jobs[idx].task.index();
        {
            let job = &mut self.jobs[idx];
            job.phase = JobPhase::Crashed;
            job.resolved_at = Some(self.now);
        }
        self.trace_event(TraceEvent::Crashed { job: id });
        let job = &self.jobs[idx];
        let (retries, blockings, preemptions) = (job.retries, job.blockings, job.preemptions);
        let tm = self.metrics.task_mut(task_idx);
        tm.crashed += 1;
        tm.retries += retries;
        tm.blockings += blockings;
        tm.preemptions += preemptions;
        self.resolve(id, false, 0.0);
    }

    fn resolve(&mut self, id: JobId, completed: bool, utility: f64) {
        self.live.retain(|&j| j != id);
        if self.running == Some(id) {
            self.running = None;
        }
        if self.config.record_jobs {
            let job = &self.jobs[id.index()];
            self.records.push(JobRecord {
                id,
                task: job.task,
                arrival: job.arrival,
                resolved_at: job.resolved_at.expect("resolved job has a time"),
                completed,
                utility,
                retries: job.retries,
                blockings: job.blockings,
                preemptions: job.preemptions,
            });
        }
    }

    /// Runs the scheduler now, or defers it to the end of the kernel-busy
    /// window if the kernel is still charging a previous invocation.
    fn request_reschedule<S: UaScheduler>(&mut self, scheduler: &mut S) {
        if self.now < self.kernel_busy_until {
            if !self.resched_queued {
                self.calendar
                    .push(self.kernel_busy_until, EventKind::Reschedule);
                self.resched_queued = true;
            }
            return;
        }
        let previously_running = self.running;
        // Lock requests made during dispatch are themselves scheduling
        // events, so scheduling and dispatching iterate to a fixed point.
        // Each iteration either blocks one more job or grants one lock to
        // the dispatched job, so the loop terminates.
        loop {
            let decision = {
                let ctx = self.scheduler_context();
                scheduler.schedule(&ctx)
            };
            let charge = self.config.overhead.charge(decision.ops);
            self.trace_event(TraceEvent::SchedulerInvoked { ops: decision.ops });
            self.metrics.sched_invocations += 1;
            self.metrics.sched_ops += decision.ops;
            self.metrics.overhead_ticks += charge;
            self.kernel_busy_until = self.kernel_busy_until.max(self.now) + charge;
            // Deadlock resolution (§3.3): the scheduler may demand aborts;
            // executing them changes the situation, so schedule again.
            let mut aborted_any = false;
            for &victim in &decision.aborts {
                if self.jobs[victim.index()].phase.is_live() {
                    self.abort_job(victim, AbortReason::Deadlock);
                    aborted_any = true;
                }
            }
            if aborted_any {
                continue;
            }
            self.schedule = decision.order;
            self.dispatch();
            if !self.prepare_running() {
                break;
            }
        }
        // A context switch away from a job that is still ready (not blocked,
        // not resolved) is a preemption — the quantity Lemma 1 bounds.
        if let Some(prev) = previously_running {
            if self.running != Some(prev) && self.jobs[prev.index()].phase == JobPhase::Ready {
                self.jobs[prev.index()].preemptions += 1;
                self.trace_event(TraceEvent::Preempted { job: prev });
                lfrt_trace::emit(
                    lfrt_trace::EventKind::SchedPreempt,
                    lfrt_trace::Site::Sched,
                    prev.index() as u64,
                );
            }
        }
        if self.running != previously_running {
            if let Some(job) = self.running {
                self.trace_event(TraceEvent::Dispatched { job });
            }
        }
    }

    fn scheduler_context(&self) -> SchedulerContext<'_> {
        let jobs = self
            .live
            .iter()
            .map(|&id| {
                let job = &self.jobs[id.index()];
                let spec = &self.tasks[job.task.index()];
                JobView {
                    id,
                    task: job.task,
                    arrival: job.arrival,
                    absolute_critical_time: job.absolute_critical_time,
                    window: spec.uam().window(),
                    tuf: spec.tuf(),
                    remaining: job.remaining_exec(spec.segments(), self.config.sharing),
                    blocked_on: match job.phase {
                        JobPhase::Blocked(o) => Some(o),
                        _ => None,
                    },
                    holds: job.holds.clone(),
                }
            })
            .collect();
        SchedulerContext {
            now: self.now,
            jobs,
        }
    }

    fn dispatch(&mut self) {
        self.running = self
            .schedule
            .iter()
            .copied()
            .find(|&id| self.jobs[id.index()].phase == JobPhase::Ready);
        if self.running.is_none() {
            // Work-conserving fallback: rejected-but-ready jobs use
            // otherwise-idle processor time, earliest critical time first.
            self.running = self
                .live
                .iter()
                .copied()
                .filter(|&id| self.jobs[id.index()].phase == JobPhase::Ready)
                .min_by_key(|&id| self.jobs[id.index()].absolute_critical_time);
        }
    }

    /// Ensures the dispatched job can execute its current segment. Returns
    /// whether doing so raised a new scheduling event (a lock request).
    fn prepare_running(&mut self) -> bool {
        let Some(id) = self.running else { return false };
        let idx = id.index();
        let job = &self.jobs[idx];
        if job.seg_idx >= self.tasks[job.task.index()].segments().len() {
            return false;
        }
        let segment = self.tasks[job.task.index()].segments()[job.seg_idx];
        match (segment, self.config.sharing) {
            (Segment::Access { object, .. }, SharingMode::LockBased { .. })
                if !self.jobs[idx].holds.contains(&object) =>
            {
                // The lock request is a scheduling event whether granted or
                // not (§3 of the paper).
                self.request_lock(idx, id, object);
                true
            }
            (Segment::Acquire { object }, SharingMode::LockBased { .. })
                if !self.jobs[idx].holds.contains(&object) =>
            {
                self.request_lock(idx, id, object);
                true
            }
            (Segment::Access { object, .. }, SharingMode::LockFree { .. })
                if self.jobs[idx].access_start_version.is_none() =>
            {
                self.jobs[idx].access_start_version = Some(self.objects.version(object));
                false
            }
            _ => false,
        }
    }

    fn request_lock(&mut self, idx: usize, id: JobId, object: crate::ids::ObjectId) {
        if self.objects.try_lock(object, id) {
            self.jobs[idx].holds.push(object);
            self.trace_event(TraceEvent::LockAcquired { job: id, object });
        } else {
            self.jobs[idx].phase = JobPhase::Blocked(object);
            self.jobs[idx].blockings += 1;
            self.running = None;
            self.trace_event(TraceEvent::Blocked { job: id, object });
        }
    }
}
