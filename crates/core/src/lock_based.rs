use lfrt_sim::{Decision, JobId, SchedulerContext, UaScheduler};

use crate::construct::{build_schedule, sort_by_pud, RankedChain};
use crate::deadlock::select_victim;
use crate::dependency::{dependency_chain, Chain};
use crate::ops::OpsCounter;
use crate::pud::chain_pud;

/// Lock-based RUA: the full Resource-constrained Utility Accrual scheduler
/// with dependency chains (§3 of the paper).
///
/// At every scheduling event — arrivals, departures, and lock/unlock
/// requests — the algorithm:
///
/// 1. builds each job's dependency chain by following lock request/ownership
///    edges (`O(n)` per job, `O(n²)` total);
/// 2. computes each chain's potential utility density (`O(n²)` total);
/// 3. checks the chains for deadlock cycles and, if one is found (possible
///    only with nested critical sections), excludes the least-utility member
///    so its critical-time abort resolves the deadlock;
/// 4. sorts jobs by non-increasing PUD (`O(n log n)`);
/// 5. inserts each job and its dependents into an ECF tentative schedule,
///    respecting dependencies, keeping insertions only when feasible
///    (`O(n log n)` per job, `O(n² log n)` total — the dominating step).
///
/// The reported operation count therefore grows as `O(n² log n)`, which the
/// simulator's overhead model turns into the scheduling cost the paper's
/// Figure 9 measures.
///
/// # Examples
///
/// ```
/// use lfrt_core::RuaLockBased;
/// use lfrt_sim::UaScheduler;
///
/// let rua = RuaLockBased::new();
/// assert_eq!(rua.name(), "rua-lock-based");
/// ```
#[derive(Debug, Clone, Default)]
pub struct RuaLockBased {
    _private: (),
}

impl RuaLockBased {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl UaScheduler for RuaLockBased {
    fn name(&self) -> &str {
        "rua-lock-based"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        let mut ops = OpsCounter::new();
        // Steps 1–3: chains, deadlock handling, PUDs.
        let mut excluded: Vec<JobId> = Vec::new();
        let mut chains: Vec<RankedChain> = Vec::with_capacity(ctx.jobs.len());
        for view in &ctx.jobs {
            let chain = dependency_chain(ctx, view.id, &mut ops);
            if chain.is_cycle() {
                if let Some(victim) = select_victim(ctx, &chain, &mut ops) {
                    if !excluded.contains(&victim) {
                        excluded.push(victim);
                    }
                }
                continue;
            }
            let Chain::Acyclic(members) = chain else {
                unreachable!()
            };
            let pud = chain_pud(ctx, &members, &mut ops);
            chains.push(RankedChain {
                job: view.id,
                chain: members,
                pud,
            });
        }
        if !excluded.is_empty() {
            chains.retain(|c| {
                !excluded.contains(&c.job) && !c.chain.iter().any(|j| excluded.contains(j))
            });
        }
        // Step 4: sort by PUD.
        sort_by_pud(&mut chains, &mut ops);
        // Step 5: construct the feasible ECF schedule.
        let schedule = build_schedule(ctx, &chains, &mut ops);
        // Deadlock victims are handed to the engine for immediate abortion
        // (the abort-exception model of §3.5 resolves the deadlock).
        for victim in &excluded {
            lfrt_trace::emit(
                lfrt_trace::EventKind::SchedAbort,
                lfrt_trace::Site::Sched,
                victim.index() as u64,
            );
        }
        Decision {
            order: schedule.jobs(),
            ops: ops.total(),
            aborts: excluded,
        }
    }
}
