//! Criterion micro-benchmarks for the Figure 8 building blocks: lock-free
//! versus mutex-based queue operations, uncontended and contended, plus the
//! CAS register retry loop and the cost of over-strong memory orderings.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lfrt_lockfree::{
    nbw_register, spsc_ring, AtomicSnapshot, BoundedMpmcQueue, CasRegister, ConcurrentQueue,
    LockFreeList, LockFreeQueue, LockedQueue,
};

fn uncontended(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_uncontended");
    group.bench_function("lockfree_enq_deq", |b| {
        let q = LockFreeQueue::new();
        b.iter(|| {
            q.enqueue(std::hint::black_box(1u64));
            std::hint::black_box(q.dequeue());
        });
    });
    group.bench_function("locked_enq_deq", |b| {
        let q = LockedQueue::new();
        b.iter(|| {
            q.enqueue(std::hint::black_box(1u64));
            std::hint::black_box(q.dequeue());
        });
    });
    group.finish();
}

fn contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_contended_4_threads");
    group.sample_size(20);
    for name in ["lockfree", "locked"] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, &name| {
            b.iter_custom(|iters| {
                let queue: Arc<dyn ConcurrentQueue<u64>> = match name {
                    "lockfree" => Arc::new(LockFreeQueue::new()),
                    _ => Arc::new(LockedQueue::new()),
                };
                let stop = Arc::new(AtomicBool::new(false));
                let workers: Vec<_> = (0..3)
                    .map(|w| {
                        let queue = Arc::clone(&queue);
                        let stop = Arc::clone(&stop);
                        std::thread::spawn(move || {
                            let mut i = w as u64;
                            while !stop.load(Ordering::Relaxed) {
                                queue.enqueue(i);
                                let _ = queue.dequeue();
                                i = i.wrapping_add(1);
                            }
                        })
                    })
                    .collect();
                let start = std::time::Instant::now();
                for i in 0..iters {
                    queue.enqueue(i);
                    let _ = queue.dequeue();
                }
                let elapsed = start.elapsed();
                stop.store(true, Ordering::Relaxed);
                for w in workers {
                    w.join().expect("worker panicked");
                }
                elapsed
            });
        });
    }
    group.finish();
}

fn cas_register(c: &mut Criterion) {
    c.bench_function("cas_register_update", |b| {
        let r = CasRegister::new(0);
        b.iter(|| std::hint::black_box(r.update(|v| v.wrapping_add(1))));
    });
}

fn other_structures(c: &mut Criterion) {
    let mut group = c.benchmark_group("structures_uncontended");
    group.bench_function("mpmc_push_pop", |b| {
        let q = BoundedMpmcQueue::new(64);
        b.iter(|| {
            let _ = q.push(std::hint::black_box(1u64));
            std::hint::black_box(q.pop());
        });
    });
    group.bench_function("spsc_push_pop", |b| {
        let (mut tx, mut rx) = spsc_ring(64);
        b.iter(|| {
            let _ = tx.push(std::hint::black_box(1u64));
            std::hint::black_box(rx.pop());
        });
    });
    group.bench_function("nbw_write_read", |b| {
        let (mut w, r) = nbw_register((0u64, 0u64));
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            w.write((i, i));
            std::hint::black_box(r.read());
        });
    });
    group.bench_function("snapshot_scan_8_cells", |b| {
        let snap = AtomicSnapshot::new(8);
        b.iter(|| std::hint::black_box(snap.scan()));
    });
    group.bench_function("list_insert_remove_128", |b| {
        let list = LockFreeList::new();
        for k in (0..256).step_by(2) {
            list.insert(k);
        }
        let mut k = 1u64;
        b.iter(|| {
            k = (k + 2) % 256;
            list.insert(std::hint::black_box(k));
            list.remove(std::hint::black_box(k));
        });
    });
    group.finish();
}

/// An all-`SeqCst` mirror of [`BoundedMpmcQueue`] (same slot protocol,
/// every ordering maximal). `lfrt-ordlint` flags every site here as ORD004
/// ("SeqCst with no local Dekker pattern") — the baseline entries in
/// `ordlint.toml` keep it as a deliberate measuring stick, and the
/// `mpmc_ordering_cost` group below quantifies what the tuned orderings in
/// `crates/lockfree/src/mpmc.rs` buy. If someone re-strengthens the real
/// queue, the lint (and the gap in these numbers) is the regression guard.
struct SeqCstMpmcQueue {
    slots: Box<[SeqCstSlot]>,
    head: AtomicUsize,
    tail: AtomicUsize,
}

struct SeqCstSlot {
    sequence: AtomicUsize,
    value: UnsafeCell<MaybeUninit<u64>>,
}

// SAFETY: identical hand-off discipline to `BoundedMpmcQueue` — exactly one
// thread touches a slot's value between sequence transitions.
unsafe impl Send for SeqCstMpmcQueue {}
// SAFETY: as above.
unsafe impl Sync for SeqCstMpmcQueue {}

impl SeqCstMpmcQueue {
    fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let slots: Box<[SeqCstSlot]> = (0..cap)
            .map(|i| SeqCstSlot {
                sequence: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Self {
            slots,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    fn push(&self, value: u64) -> Result<(), u64> {
        let mask = self.slots.len() - 1;
        loop {
            let tail = self.tail.load(Ordering::SeqCst);
            let slot = &self.slots[tail & mask];
            let seq = slot.sequence.load(Ordering::SeqCst);
            match seq as isize - tail as isize {
                0 if self
                    .tail
                    .compare_exchange_weak(
                        tail,
                        tail.wrapping_add(1),
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                    .is_ok() =>
                {
                    // SAFETY: winning the tail CAS grants exclusive write
                    // access until the sequence store hands the slot over.
                    unsafe { (*slot.value.get()).write(value) };
                    slot.sequence.store(tail.wrapping_add(1), Ordering::SeqCst);
                    return Ok(());
                }
                d if d < 0 => return Err(value),
                _ => {}
            }
        }
    }

    fn pop(&self) -> Option<u64> {
        let mask = self.slots.len() - 1;
        loop {
            let head = self.head.load(Ordering::SeqCst);
            let slot = &self.slots[head & mask];
            let seq = slot.sequence.load(Ordering::SeqCst);
            match seq as isize - (head.wrapping_add(1)) as isize {
                0 if self
                    .head
                    .compare_exchange_weak(
                        head,
                        head.wrapping_add(1),
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                    .is_ok() =>
                {
                    // SAFETY: winning the head CAS grants exclusive read
                    // access; the producer initialized the slot first.
                    let value = unsafe { (*slot.value.get()).assume_init_read() };
                    slot.sequence
                        .store(head.wrapping_add(mask + 1), Ordering::SeqCst);
                    return Some(value);
                }
                d if d < 0 => return None,
                _ => {}
            }
        }
    }
}

/// Object-safe push/pop facade so the contended harness can drive the tuned
/// queue and its SeqCst mirror through one code path.
trait PushPop: Send + Sync + 'static {
    fn push64(&self, v: u64) -> Result<(), u64>;
    fn pop64(&self) -> Option<u64>;
}

impl PushPop for BoundedMpmcQueue<u64> {
    fn push64(&self, v: u64) -> Result<(), u64> {
        self.push(v)
    }
    fn pop64(&self) -> Option<u64> {
        self.pop()
    }
}

impl PushPop for SeqCstMpmcQueue {
    fn push64(&self, v: u64) -> Result<(), u64> {
        self.push(v)
    }
    fn pop64(&self) -> Option<u64> {
        self.pop()
    }
}

fn ordering_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpmc_ordering_cost");
    group.bench_function("tuned_push_pop", |b| {
        let q = BoundedMpmcQueue::new(64);
        b.iter(|| {
            let _ = q.push(std::hint::black_box(1u64));
            std::hint::black_box(q.pop());
        });
    });
    group.bench_function("seqcst_push_pop", |b| {
        let q = SeqCstMpmcQueue::new(64);
        b.iter(|| {
            let _ = q.push(std::hint::black_box(1u64));
            std::hint::black_box(q.pop());
        });
    });
    group.sample_size(20);
    for name in ["tuned", "seqcst"] {
        group.bench_with_input(
            BenchmarkId::new("contended_4_threads", name),
            &name,
            |b, &name| {
                b.iter_custom(|iters| {
                    let queue: Arc<dyn PushPop> = match name {
                        "tuned" => Arc::new(BoundedMpmcQueue::new(64)),
                        _ => Arc::new(SeqCstMpmcQueue::new(64)),
                    };
                    let stop = Arc::new(AtomicBool::new(false));
                    let workers: Vec<_> = (0..3)
                        .map(|w| {
                            let queue = Arc::clone(&queue);
                            let stop = Arc::clone(&stop);
                            std::thread::spawn(move || {
                                let mut i = w as u64;
                                while !stop.load(Ordering::Relaxed) {
                                    let _ = queue.push64(i);
                                    let _ = queue.pop64();
                                    i = i.wrapping_add(1);
                                }
                            })
                        })
                        .collect();
                    let start = std::time::Instant::now();
                    for i in 0..iters {
                        let _ = queue.push64(i);
                        let _ = queue.pop64();
                    }
                    let elapsed = start.elapsed();
                    stop.store(true, Ordering::Relaxed);
                    for w in workers {
                        w.join().expect("worker panicked");
                    }
                    elapsed
                });
            },
        );
    }
    group.finish();
}

/// A "before" mirror of [`BoundedMpmcQueue`] with this PR's contention
/// engineering stripped back out: unpadded slots and indices (head, tail
/// and the first slots share cache lines), a single shared attempt/retry
/// counter pair `fetch_add`ed from every thread, and no backoff on CAS
/// failure. Memory orderings are identical to the tuned queue, so the
/// `contention_engineering` group isolates exactly what padding, striping
/// and backoff buy — not what the orderings buy (that is `ordering_cost`'s
/// job).
struct LegacyMpmcQueue {
    slots: Box<[SeqCstSlot]>,
    head: AtomicUsize,
    tail: AtomicUsize,
    attempts: std::sync::atomic::AtomicU64,
    retries: std::sync::atomic::AtomicU64,
}

// SAFETY: identical hand-off discipline to `BoundedMpmcQueue` — exactly one
// thread touches a slot's value between sequence transitions.
unsafe impl Send for LegacyMpmcQueue {}
// SAFETY: as above.
unsafe impl Sync for LegacyMpmcQueue {}

impl LegacyMpmcQueue {
    fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let slots: Box<[SeqCstSlot]> = (0..cap)
            .map(|i| SeqCstSlot {
                sequence: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Self {
            slots,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            attempts: std::sync::atomic::AtomicU64::new(0),
            retries: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn push(&self, value: u64) -> Result<(), u64> {
        let mask = self.slots.len() - 1;
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            self.attempts.fetch_add(1, Ordering::Relaxed);
            let slot = &self.slots[tail & mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            match seq as isize - tail as isize {
                0 => match self.tail.compare_exchange_weak(
                    tail,
                    tail.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the tail CAS grants exclusive
                        // write access until the sequence store below.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.sequence.store(tail.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => {
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        tail = actual;
                    }
                },
                d if d < 0 => return Err(value),
                _ => {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    tail = self.tail.load(Ordering::Relaxed);
                }
            }
        }
    }

    fn pop(&self) -> Option<u64> {
        let mask = self.slots.len() - 1;
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            self.attempts.fetch_add(1, Ordering::Relaxed);
            let slot = &self.slots[head & mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            match seq as isize - (head.wrapping_add(1)) as isize {
                0 => match self.head.compare_exchange_weak(
                    head,
                    head.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the head CAS grants exclusive
                        // read access; the producer initialized the slot.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.sequence
                            .store(head.wrapping_add(mask + 1), Ordering::Release);
                        return Some(value);
                    }
                    Err(actual) => {
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        head = actual;
                    }
                },
                d if d < 0 => return None,
                _ => {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    head = self.head.load(Ordering::Relaxed);
                }
            }
        }
    }
}

impl PushPop for LegacyMpmcQueue {
    fn push64(&self, v: u64) -> Result<(), u64> {
        self.push(v)
    }
    fn pop64(&self) -> Option<u64> {
        self.pop()
    }
}

/// Before/after measurement for this PR's tentpole: the same Vyukov queue
/// with and without cache padding, striped stats, and CAS backoff.
/// Uncontended must be within noise (padding and striping only move bytes
/// around; backoff never fires without a failed CAS); contended is where
/// the win lives.
fn contention_engineering(c: &mut Criterion) {
    let mut group = c.benchmark_group("contention_engineering");
    group.bench_function("legacy_uncontended", |b| {
        let q = LegacyMpmcQueue::new(64);
        b.iter(|| {
            let _ = q.push(std::hint::black_box(1u64));
            std::hint::black_box(q.pop());
        });
    });
    group.bench_function("tuned_uncontended", |b| {
        let q = BoundedMpmcQueue::new(64);
        b.iter(|| {
            let _ = q.push(std::hint::black_box(1u64));
            std::hint::black_box(q.pop());
        });
    });
    group.sample_size(20);
    for name in ["legacy", "tuned"] {
        group.bench_with_input(
            BenchmarkId::new("contended_4_threads", name),
            &name,
            |b, &name| {
                b.iter_custom(|iters| {
                    let queue: Arc<dyn PushPop> = match name {
                        "legacy" => Arc::new(LegacyMpmcQueue::new(64)),
                        _ => Arc::new(BoundedMpmcQueue::new(64)),
                    };
                    let stop = Arc::new(AtomicBool::new(false));
                    let workers: Vec<_> = (0..3)
                        .map(|w| {
                            let queue = Arc::clone(&queue);
                            let stop = Arc::clone(&stop);
                            std::thread::spawn(move || {
                                let mut i = w as u64;
                                while !stop.load(Ordering::Relaxed) {
                                    let _ = queue.push64(i);
                                    let _ = queue.pop64();
                                    i = i.wrapping_add(1);
                                }
                            })
                        })
                        .collect();
                    let start = std::time::Instant::now();
                    for i in 0..iters {
                        let _ = queue.push64(i);
                        let _ = queue.pop64();
                    }
                    let elapsed = start.elapsed();
                    stop.store(true, Ordering::Relaxed);
                    for w in workers {
                        w.join().expect("worker panicked");
                    }
                    elapsed
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    uncontended,
    contended,
    cas_register,
    other_structures,
    ordering_cost,
    contention_engineering
);
criterion_main!(benches);
