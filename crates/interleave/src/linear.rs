//! A Wing–Gong linearizability checker.
//!
//! Given a history of concurrent operations (with real-time intervals) and a
//! sequential reference model, the checker searches for a *legal sequential
//! witness*: a total order of the operations that (a) respects real time —
//! if operation A returned before operation B was invoked, A comes first —
//! and (b) makes the reference model produce exactly the observed results.
//! The history is linearizable iff such a witness exists (Herlihy & Wing,
//! TOPLAS'90; the search strategy follows Wing & Gong, JPDC'93).
//!
//! The search is exponential in the worst case; histories produced by
//! small-bound exploration (≤ 64 operations, typically ≤ 12) check in
//! microseconds with the memoized backtracking used here.

use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;

use crate::history::CompletedOp;

/// A sequential reference model ("specification object").
///
/// `Clone + Eq + Hash` let the checker back up and memoize visited
/// `(pending-set, state)` pairs — the optimization that makes Wing–Gong
/// practical.
pub trait SeqSpec: Clone + Eq + Hash {
    /// Operation type (invocation).
    type Op: Clone + Debug;
    /// Response type.
    type Ret: PartialEq + Clone + Debug;

    /// Applies `op` sequentially, returning its response.
    fn apply(&mut self, op: &Self::Op) -> Self::Ret;
}

/// Searches for a linearization witness: returns the indices of `history`
/// in a legal sequential order, or `None` if the history is not
/// linearizable against `initial`.
///
/// # Panics
///
/// Panics if the history holds more than 64 operations (use smaller
/// exploration bounds).
pub fn find_witness<S: SeqSpec>(
    initial: &S,
    history: &[CompletedOp<S::Op, S::Ret>],
) -> Option<Vec<usize>> {
    assert!(
        history.len() <= 64,
        "history too large for the checker ({} ops > 64)",
        history.len()
    );
    let full: u64 = if history.len() == 64 {
        u64::MAX
    } else {
        (1u64 << history.len()) - 1
    };
    let mut witness = Vec::with_capacity(history.len());
    let mut seen: HashSet<(u64, S)> = HashSet::new();
    if dfs(initial.clone(), 0, full, history, &mut witness, &mut seen) {
        Some(witness)
    } else {
        None
    }
}

/// Checks linearizability and panics with a readable history dump when no
/// witness exists. The convenience form for test post-checks.
pub fn assert_linearizable<S: SeqSpec>(initial: &S, history: &[CompletedOp<S::Op, S::Ret>]) {
    if find_witness(initial, history).is_none() {
        let mut dump = String::new();
        for (i, op) in history.iter().enumerate() {
            dump.push_str(&format!(
                "  [{i}] t{} {:?} -> {:?} @ [{}, {}]\n",
                op.thread, op.op, op.result, op.call, op.ret
            ));
        }
        panic!("history is NOT linearizable — no sequential witness:\n{dump}");
    }
}

fn dfs<S: SeqSpec>(
    state: S,
    taken: u64,
    full: u64,
    history: &[CompletedOp<S::Op, S::Ret>],
    witness: &mut Vec<usize>,
    seen: &mut HashSet<(u64, S)>,
) -> bool {
    if taken == full {
        return true;
    }
    if !seen.insert((taken, state.clone())) {
        return false;
    }
    // The earliest response among the not-yet-linearized operations: any
    // operation invoked after it cannot be next (real-time order).
    let horizon = history
        .iter()
        .enumerate()
        .filter(|(i, _)| taken & (1 << i) == 0)
        .map(|(_, op)| op.ret)
        .min()
        .expect("non-full mask has remaining ops");
    for (i, op) in history.iter().enumerate() {
        if taken & (1 << i) != 0 || op.call > horizon {
            continue;
        }
        let mut next = state.clone();
        if next.apply(&op.op) != op.result {
            continue;
        }
        witness.push(i);
        if dfs(next, taken | (1 << i), full, history, witness, seen) {
            return true;
        }
        witness.pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{QueueOp, QueueRet, QueueSpec};

    fn op(
        thread: usize,
        op: QueueOp,
        result: QueueRet,
        call: u64,
        ret: u64,
    ) -> CompletedOp<QueueOp, QueueRet> {
        CompletedOp {
            thread,
            op,
            result,
            call,
            ret,
        }
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let h = vec![
            op(0, QueueOp::Enqueue(1), QueueRet::Pushed, 1, 2),
            op(0, QueueOp::Dequeue, QueueRet::Popped(Some(1)), 3, 4),
        ];
        assert_eq!(find_witness(&QueueSpec::new(), &h), Some(vec![0, 1]));
    }

    #[test]
    fn overlapping_ops_may_linearize_in_either_order() {
        // Dequeue overlaps the enqueue and observes it: legal, with the
        // enqueue linearized first despite being invoked second.
        let h = vec![
            op(0, QueueOp::Dequeue, QueueRet::Popped(Some(9)), 1, 4),
            op(1, QueueOp::Enqueue(9), QueueRet::Pushed, 2, 3),
        ];
        assert_eq!(find_witness(&QueueSpec::new(), &h), Some(vec![1, 0]));
    }

    #[test]
    fn real_time_order_is_respected() {
        // The dequeue returns before the enqueue is invoked, so it cannot
        // observe the value: not linearizable.
        let h = vec![
            op(0, QueueOp::Dequeue, QueueRet::Popped(Some(9)), 1, 2),
            op(1, QueueOp::Enqueue(9), QueueRet::Pushed, 3, 4),
        ];
        assert!(find_witness(&QueueSpec::new(), &h).is_none());
    }

    #[test]
    fn lost_element_is_rejected() {
        // Two enqueues, two dequeues, but one element vanishes.
        let h = vec![
            op(0, QueueOp::Enqueue(1), QueueRet::Pushed, 1, 2),
            op(0, QueueOp::Enqueue(2), QueueRet::Pushed, 3, 4),
            op(1, QueueOp::Dequeue, QueueRet::Popped(Some(2)), 5, 6),
            op(1, QueueOp::Dequeue, QueueRet::Popped(None), 7, 8),
        ];
        assert!(find_witness(&QueueSpec::new(), &h).is_none());
    }

    #[test]
    fn duplicated_element_is_rejected() {
        let h = vec![
            op(0, QueueOp::Enqueue(1), QueueRet::Pushed, 1, 2),
            op(1, QueueOp::Dequeue, QueueRet::Popped(Some(1)), 3, 4),
            op(1, QueueOp::Dequeue, QueueRet::Popped(Some(1)), 5, 6),
        ];
        assert!(find_witness(&QueueSpec::new(), &h).is_none());
    }

    #[test]
    #[should_panic(expected = "NOT linearizable")]
    fn assert_helper_dumps_history() {
        let h = vec![op(0, QueueOp::Dequeue, QueueRet::Popped(Some(1)), 1, 2)];
        assert_linearizable(&QueueSpec::new(), &h);
    }
}
