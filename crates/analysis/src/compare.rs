//! Task-set-wide application of Theorem 3: per-task sojourn-time
//! comparisons between lock-based and lock-free sharing, packaged as a
//! report for tooling and benches.

use crate::{RetryBoundInput, SojournComparison};
use lfrt_uam::Uam;

/// Per-task inputs for the discipline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareTask {
    /// Arrival model.
    pub uam: Uam,
    /// Critical time `C_i`, ticks.
    pub critical_time: u64,
    /// Shared-object accesses `m_i` per job.
    pub accesses: u64,
}

/// The Theorem 3 verdict for one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskComparison {
    /// `m_i`.
    pub accesses: u64,
    /// The `n_i ≤ 2a_i + x_i` blocker bound used.
    pub blockers: u64,
    /// `x_i`, the Theorem 2 interference term.
    pub interference_x: u64,
    /// The exact `s/r` threshold below which lock-free wins.
    pub ratio_threshold: f64,
    /// Whether lock-free wins at the given `s` and `r`.
    pub lock_free_wins: bool,
    /// Worst-case extra sojourn under lock-based sharing, ticks.
    pub lock_based_extra: f64,
    /// Worst-case extra sojourn under lock-free sharing, ticks.
    pub lock_free_extra: f64,
}

/// Applies Theorem 3 to every task of a set, with `n_i` instantiated at its
/// model bound `2a_i + x_i`.
///
/// # Examples
///
/// ```
/// use lfrt_analysis::compare::{compare_task_set, CompareTask};
/// use lfrt_uam::Uam;
///
/// # fn main() -> Result<(), lfrt_uam::UamError> {
/// let tasks = vec![
///     CompareTask { uam: Uam::new(1, 2, 10_000)?, critical_time: 9_000, accesses: 4 },
///     CompareTask { uam: Uam::new(1, 1, 20_000)?, critical_time: 18_000, accesses: 2 },
/// ];
/// let report = compare_task_set(&tasks, 400.0, 10.0);
/// assert!(report.iter().all(|t| t.lock_free_wins), "s/r = 1/40 wins everywhere");
/// # Ok(())
/// # }
/// ```
pub fn compare_task_set(
    tasks: &[CompareTask],
    lock_based_access: f64,
    lock_free_access: f64,
) -> Vec<TaskComparison> {
    (0..tasks.len())
        .map(|i| {
            let own = &tasks[i];
            let x = RetryBoundInput {
                own_max_arrivals: own.uam.max_arrivals(),
                critical_time: own.critical_time,
                others: tasks
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, t)| t.uam)
                    .collect(),
            }
            .interference_x();
            let blockers = 2 * u64::from(own.uam.max_arrivals()) + x;
            let cmp = SojournComparison {
                lock_based_access,
                lock_free_access,
                accesses: own.accesses,
                blockers,
                own_max_arrivals: own.uam.max_arrivals(),
                interference_x: x,
            };
            TaskComparison {
                accesses: own.accesses,
                blockers,
                interference_x: x,
                ratio_threshold: cmp.ratio_threshold(),
                lock_free_wins: cmp.lock_free_wins(),
                lock_based_extra: cmp.lock_based_extra(),
                lock_free_extra: cmp.lock_free_extra(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasks() -> Vec<CompareTask> {
        vec![
            CompareTask {
                uam: Uam::new(1, 2, 10_000).expect("valid"),
                critical_time: 9_000,
                accesses: 4,
            },
            CompareTask {
                uam: Uam::new(1, 1, 20_000).expect("valid"),
                critical_time: 18_000,
                accesses: 8,
            },
        ]
    }

    #[test]
    fn tiny_ratio_wins_everywhere() {
        let report = compare_task_set(&tasks(), 1_000.0, 1.0);
        assert!(report.iter().all(|t| t.lock_free_wins));
    }

    #[test]
    fn unit_ratio_loses_everywhere() {
        let report = compare_task_set(&tasks(), 100.0, 100.0);
        assert!(report.iter().all(|t| !t.lock_free_wins));
    }

    #[test]
    fn verdict_matches_raw_theorem() {
        let report = compare_task_set(&tasks(), 300.0, 90.0);
        for t in &report {
            assert_eq!(t.lock_free_wins, t.lock_based_extra > t.lock_free_extra);
            assert!(t.ratio_threshold <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn empty_set_is_empty_report() {
        assert!(compare_task_set(&[], 100.0, 10.0).is_empty());
    }
}
