use crate::Ticks;

/// Converts a scheduler's reported operation count into charged processor
/// time.
///
/// The paper's Figure 9 (Critical-time Miss Load) hinges on scheduler
/// overhead: lock-based RUA's `O(n² log n)` work per event versus lock-free
/// RUA's `O(n²)` versus an "ideal" zero-overhead scheduler. Rather than
/// hard-coding asymptotic formulas, the simulator charges
/// `ops × ticks_per_op` where `ops` is counted by the *actual* scheduler
/// implementation, so measured overheads scale exactly as the real
/// algorithms do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadModel {
    ticks_per_op: f64,
}

impl OverheadModel {
    /// Charges `ticks_per_op` ticks of processor time per scheduler
    /// operation.
    ///
    /// # Panics
    ///
    /// Panics if `ticks_per_op` is negative, NaN, or infinite.
    pub fn per_op(ticks_per_op: f64) -> Self {
        assert!(
            ticks_per_op.is_finite() && ticks_per_op >= 0.0,
            "ticks_per_op must be a finite non-negative number"
        );
        Self { ticks_per_op }
    }

    /// No overhead: scheduling is free (the "ideal" scheduler of Figure 9).
    pub fn zero() -> Self {
        Self { ticks_per_op: 0.0 }
    }

    /// The configured cost per operation.
    pub fn ticks_per_op(&self) -> f64 {
        self.ticks_per_op
    }

    /// Processor time charged for a scheduler invocation reporting `ops`
    /// operations (rounded to the nearest tick).
    pub fn charge(&self, ops: u64) -> Ticks {
        (ops as f64 * self.ticks_per_op).round() as Ticks
    }
}

impl Default for OverheadModel {
    fn default() -> Self {
        Self::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_charges_nothing() {
        assert_eq!(OverheadModel::zero().charge(1_000_000), 0);
    }

    #[test]
    fn proportional_charging() {
        let m = OverheadModel::per_op(0.5);
        assert_eq!(m.charge(0), 0);
        assert_eq!(m.charge(10), 5);
        assert_eq!(m.charge(11), 6); // rounds 5.5 away from zero
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_rejected() {
        let _ = OverheadModel::per_op(-1.0);
    }
}
